"""Team 8 (Cornell): bucket-of-models ensemble.

Three model classes are trained independently — a C4.5-style tree
augmented with functional decomposition when the information gain is
weak, a 17-tree depth-8 random forest, and an MLP whose activation may
be *sine* (periodic features; their parity-circuit rescue).  The MLP is
synthesized by full truth-table enumeration, which restricts it to
benchmarks with fewer than ~20 inputs.  The model with the best
validation accuracy that stays under 5000 gates is submitted.
"""

from __future__ import annotations

import numpy as np

from repro.aig.aig import AIG
from repro.aig.build import from_truth_table
from repro.contest.problem import LearningProblem, Solution
from repro.flows.api import Candidate, FinalizeSpec, Flow, FlowContext, Stage
from repro.flows.registry import register
from repro.ml.decision_tree import DecisionTree
from repro.ml.forest import RandomForest
from repro.ml.mlp import MLP
from repro.synth.from_forest import forest_to_aig
from repro.synth.from_tree import tree_to_aig


def _decomposing_tree_stage(ctx: FlowContext) -> list[Candidate]:
    """Custom C4.5 with functional decomposition (grid over tau / N)."""
    params, problem = ctx.params, ctx.problem
    X, y = problem.train.X, problem.train.y
    out: list[Candidate] = []
    for tau in params["taus"]:
        for min_samples in params["min_samples"]:
            tree = DecisionTree(
                min_samples_leaf=min_samples,
                decomposition_tau=tau,
                max_depth=12,
            ).fit(X, y)
            out.append(Candidate(
                f"bdt[tau={tau},N={min_samples}]", tree_to_aig(tree)
            ))
    return out


def _forest_stage(ctx: FlowContext) -> list[Candidate]:
    params, problem = ctx.params, ctx.problem
    forest = RandomForest(
        n_trees=params["forest_trees"], max_depth=8, rng=ctx.rng
    ).fit(problem.train.X, problem.train.y)
    return [Candidate(
        f"rf{params['forest_trees']}", forest_to_aig(forest)
    )]


def _mlp_truth_table_aig(
    problem, params, activation: str, rng
) -> AIG:
    """Train an MLP and synthesize it by exhaustive enumeration."""
    n = problem.n_inputs
    mlp = MLP(hidden_sizes=params["mlp_hidden"], activation=activation,
              rng=rng)
    mlp.fit(problem.train.X.astype(float), problem.train.y,
            epochs=params["mlp_epochs"])
    grid = np.zeros((1 << n, n), dtype=np.uint8)
    for i in range(n):
        grid[:, i] = (np.arange(1 << n) >> i) & 1
    pred = mlp.predict(grid.astype(float))
    table = 0
    for m in np.nonzero(pred)[0]:
        table |= 1 << int(m)
    return from_truth_table(table, n)


def _mlp_stage(ctx: FlowContext) -> list[Candidate]:
    """Sine/ReLU MLPs via full truth-table enumeration (small inputs)."""
    params, problem = ctx.params, ctx.problem
    if problem.n_inputs > params["mlp_max_inputs"]:
        return []
    return [
        Candidate(
            f"mlp-{activation}",
            _mlp_truth_table_aig(problem, params, activation, ctx.rng),
        )
        for activation in ("sine", "relu")
    ]


FLOW = register(Flow(
    "team08",
    team="Cornell",
    techniques={"decision tree", "random forest", "neural network",
                "ensemble"},
    description="Bucket of models: decomposing C4.5 grid, 17-tree "
                "forest, sine/ReLU MLPs by truth-table enumeration",
    efforts={
        "small": {
            "taus": (0.01,),
            "min_samples": (1, 8),
            "forest_trees": 9,
            "mlp_max_inputs": 16,
            "mlp_epochs": 30,
            "mlp_hidden": (24, 12),
        },
        "full": {
            "taus": (0.005, 0.02, 0.05),
            "min_samples": (1, 4, 8, 16),
            "forest_trees": 17,
            "mlp_max_inputs": 20,
            "mlp_epochs": 80,
            "mlp_hidden": (64, 32),
        },
    },
    stages=(
        Stage("decomposing-trees", _decomposing_tree_stage,
              "C4.5 + functional decomposition grid"),
        Stage("forest", _forest_stage, "17-tree random forest"),
        Stage("mlp", _mlp_stage, "sine/ReLU MLP truth-table synthesis"),
    ),
    finalize=FinalizeSpec(),
))


def run(
    problem: LearningProblem, effort: str = "small", master_seed: int = 0
) -> Solution:
    """Deprecated shim — use ``repro.flows.get_flow("team08")``."""
    return FLOW.run(problem, effort=effort, master_seed=master_seed)
