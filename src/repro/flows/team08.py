"""Team 8 (Cornell): bucket-of-models ensemble.

Three model classes are trained independently — a C4.5-style tree
augmented with functional decomposition when the information gain is
weak, a 17-tree depth-8 random forest, and an MLP whose activation may
be *sine* (periodic features; their parity-circuit rescue).  The MLP is
synthesized by full truth-table enumeration, which restricts it to
benchmarks with fewer than ~20 inputs.  The model with the best
validation accuracy that stays under 5000 gates is submitted.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.aig.aig import AIG
from repro.aig.build import from_truth_table
from repro.contest.problem import MAX_AND_NODES, LearningProblem, Solution
from repro.flows.common import (
    constant_solution,
    finalize_aig,
    flow_rng,
    pick_best,
)
from repro.ml.decision_tree import DecisionTree
from repro.ml.forest import RandomForest
from repro.ml.mlp import MLP
from repro.synth.from_forest import forest_to_aig
from repro.synth.from_tree import tree_to_aig

_PARAMS = {
    "small": {
        "taus": (0.01,),
        "min_samples": (1, 8),
        "forest_trees": 9,
        "mlp_max_inputs": 16,
        "mlp_epochs": 30,
        "mlp_hidden": (24, 12),
    },
    "full": {
        "taus": (0.005, 0.02, 0.05),
        "min_samples": (1, 4, 8, 16),
        "forest_trees": 17,
        "mlp_max_inputs": 20,
        "mlp_epochs": 80,
        "mlp_hidden": (64, 32),
    },
}


def _mlp_truth_table_aig(
    problem, params, activation: str, rng
) -> AIG:
    """Train an MLP and synthesize it by exhaustive enumeration."""
    n = problem.n_inputs
    mlp = MLP(hidden_sizes=params["mlp_hidden"], activation=activation,
              rng=rng)
    mlp.fit(problem.train.X.astype(float), problem.train.y,
            epochs=params["mlp_epochs"])
    grid = np.zeros((1 << n, n), dtype=np.uint8)
    for i in range(n):
        grid[:, i] = (np.arange(1 << n) >> i) & 1
    pred = mlp.predict(grid.astype(float))
    table = 0
    for m in np.nonzero(pred)[0]:
        table |= 1 << int(m)
    return from_truth_table(table, n)


def run(
    problem: LearningProblem, effort: str = "small", master_seed: int = 0
) -> Solution:
    params = _PARAMS[effort]
    rng = flow_rng("team08", problem, master_seed)
    X, y = problem.train.X, problem.train.y
    candidates: List[Tuple[str, AIG]] = []

    # Custom C4.5 with functional decomposition (grid over tau / N).
    for tau in params["taus"]:
        for min_samples in params["min_samples"]:
            tree = DecisionTree(
                min_samples_leaf=min_samples,
                decomposition_tau=tau,
                max_depth=12,
            ).fit(X, y)
            candidates.append(
                (f"bdt[tau={tau},N={min_samples}]", tree_to_aig(tree))
            )

    forest = RandomForest(
        n_trees=params["forest_trees"], max_depth=8, rng=rng
    ).fit(X, y)
    candidates.append((f"rf{params['forest_trees']}", forest_to_aig(forest)))

    if problem.n_inputs <= params["mlp_max_inputs"]:
        for activation in ("sine", "relu"):
            candidates.append(
                (
                    f"mlp-{activation}",
                    _mlp_truth_table_aig(problem, params, activation, rng),
                )
            )

    finalized = [
        (name, finalize_aig(aig, rng, max_nodes=MAX_AND_NODES))
        for name, aig in candidates
    ]
    best = pick_best(finalized, problem.valid)
    if best is None:
        return constant_solution(problem, "team08")
    name, aig, acc = best
    return Solution(
        aig=aig, method=f"team08:{name}", metadata={"valid_accuracy": acc}
    )
