"""Team 10 (Utah): depth-8 decision trees with training augmentation.

Train a max-depth-8 DT on the training PLA; if validation accuracy is
below 70%, merge the validation set into the training set and retrain
(the paper notes the failing cases hovered around 50% regardless).
The tree is annotated as a multiplexer netlist and optimized — the
flow that produced the smallest circuits in the contest (average 140
AND nodes, none above 300).
"""

from __future__ import annotations

from repro.contest.problem import LearningProblem, Solution
from repro.flows.common import aig_accuracy, finalize_aig, flow_rng
from repro.ml.decision_tree import DecisionTree
from repro.synth.from_tree import tree_to_aig

MAX_DEPTH = 8
MIN_VALID_ACCURACY = 0.70


def run(
    problem: LearningProblem, effort: str = "small", master_seed: int = 0
) -> Solution:
    del effort  # this flow has a single configuration
    rng = flow_rng("team10", problem, master_seed)
    tree = DecisionTree(max_depth=MAX_DEPTH, criterion="gini")
    tree.fit(problem.train.X, problem.train.y)
    aig = tree_to_aig(tree)
    valid_acc = aig_accuracy(aig, problem.valid)
    augmented = False
    if valid_acc < MIN_VALID_ACCURACY:
        merged = problem.merged_train_valid()
        tree = DecisionTree(max_depth=MAX_DEPTH, criterion="gini")
        tree.fit(merged.X, merged.y)
        aig = tree_to_aig(tree)
        augmented = True
    aig = finalize_aig(aig, rng)
    return Solution(
        aig=aig,
        method="team10:dt8",
        metadata={"augmented": augmented, "leaves": tree.num_leaves()},
    )
