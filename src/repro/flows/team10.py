"""Team 10 (Utah): depth-8 decision trees with training augmentation.

Train a max-depth-8 DT on the training PLA; if validation accuracy is
below 70%, merge the validation set into the training set and retrain
(the paper notes the failing cases hovered around 50% regardless).
The tree is annotated as a multiplexer netlist and optimized — the
flow that produced the smallest circuits in the contest (average 140
AND nodes, none above 300).
"""

from __future__ import annotations

from repro.contest.problem import LearningProblem, Solution
from repro.flows.api import (
    Candidate,
    FinalizeSpec,
    Flow,
    FlowContext,
    Stage,
    select_sole_candidate,
)
from repro.flows.common import aig_accuracy
from repro.flows.registry import register
from repro.ml.decision_tree import DecisionTree
from repro.synth.from_tree import tree_to_aig

MAX_DEPTH = 8
MIN_VALID_ACCURACY = 0.70


def _tree_stage(ctx: FlowContext) -> list[Candidate]:
    problem = ctx.problem
    tree = DecisionTree(max_depth=MAX_DEPTH, criterion="gini")
    tree.fit(problem.train.X, problem.train.y)
    aig = tree_to_aig(tree)
    valid_acc = aig_accuracy(aig, problem.valid)
    augmented = False
    if valid_acc < MIN_VALID_ACCURACY:
        merged = ctx.merged_train_valid()
        tree = DecisionTree(max_depth=MAX_DEPTH, criterion="gini")
        tree.fit(merged.X, merged.y)
        aig = tree_to_aig(tree)
        augmented = True
    return [Candidate(
        "dt8", aig,
        provenance={"augmented": augmented, "leaves": tree.num_leaves()},
    )]


FLOW = register(Flow(
    "team10",
    team="Utah",
    techniques={"decision tree"},
    description="Depth-8 decision tree, retrained on train+valid when "
                "validation accuracy dips below 70%",
    # A single configuration: the effort knob is accepted (contract)
    # but changes nothing.
    efforts={"small": {}, "full": {}},
    stages=(
        Stage("dt8", _tree_stage,
              "depth-8 DT with conditional augmentation"),
    ),
    finalize=FinalizeSpec(),
    select=select_sole_candidate,
))


def run(
    problem: LearningProblem, effort: str = "small", master_seed: int = 0
) -> Solution:
    """Deprecated shim — use ``repro.flows.get_flow("team10")``."""
    return FLOW.run(problem, effort=effort, master_seed=master_seed)
