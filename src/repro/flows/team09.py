"""Team 9 (UFSC/UFRGS): bootstrapped Cartesian Genetic Programming.

A decision tree and espresso each produce a starter AIG on half the
training data; if the better one reaches at least 55% accuracy, CGP
fine-tunes it on the full training set (genome sized at twice the AIG,
no mini-batches).  Otherwise the search starts from random individuals
with mini-batch fitness that reshuffles every few hundred generations.
The (1+4)-ES with the 1/5th mutation-rate rule and preferential
selection of larger phenotypes comes from ``repro.cgp``.
"""

from __future__ import annotations

from repro.cgp import AIG_FUNCTIONS, XAIG_FUNCTIONS, CGPEvolver, CGPGenome
from repro.contest.problem import LearningProblem, Solution
from repro.flows.api import Candidate, FinalizeSpec, Flow, FlowContext, Stage
from repro.flows.common import aig_accuracy
from repro.flows.registry import register
from repro.ml.decision_tree import DecisionTree
from repro.synth.from_sop import cover_to_aig
from repro.synth.from_tree import tree_to_aig
from repro.twolevel.espresso import espresso_from_samples

BOOTSTRAP_THRESHOLD = 0.55


def _evolve_stage(ctx: FlowContext) -> list[Candidate]:
    """Bootstrap starters on half the data, CGP-evolve, and send both
    the evolved circuit and the starter into the funnel."""
    params, rng, problem = ctx.params, ctx.rng, ctx.problem

    # Bootstrap candidates trained on half the training set (the other
    # half is reserved for the CGP fine-tuning, per the write-up).
    half_a, half_b = problem.train.split_stratified(0.5, rng)
    starters = []
    tree = DecisionTree(max_depth=8).fit(half_a.X, half_a.y)
    starters.append(("dt", tree_to_aig(tree)))
    esp_data = half_a
    limit = params["espresso_max_samples"]
    if esp_data.n_samples > limit:
        esp_data = esp_data.sample_fraction(limit / esp_data.n_samples, rng)
    cover = espresso_from_samples(esp_data.X, esp_data.y,
                                  first_irredundant=True)
    starters.append(("espresso", cover_to_aig(cover).extract_cone()))
    starters = [
        (name, aig, aig_accuracy(aig, half_b)) for name, aig in starters
    ]
    starters.sort(key=lambda s: -s[2])
    boot_name, boot_aig, boot_acc = starters[0]

    function_set = (
        XAIG_FUNCTIONS if "xaig" in params["function_sets"] else AIG_FUNCTIONS
    )
    if boot_acc >= BOOTSTRAP_THRESHOLD and boot_aig.num_ands > 0:
        seed = CGPGenome.from_aig(boot_aig, rng=rng,
                                  function_set=function_set)
        evolver = CGPEvolver(
            n_nodes=seed.n_nodes,
            function_set=function_set,
            rng=rng,
        )
        genome, fit = evolver.run(
            half_b.X, half_b.y,
            generations=params["generations"],
            seed_genome=seed,
        )
        ctx.state["mode"] = f"bootstrap[{boot_name}]"
    else:
        evolver = CGPEvolver(
            n_nodes=params["random_nodes"],
            function_set=function_set,
            batch_size=params["batch_size"],
            batch_generations=params["batch_generations"],
            rng=rng,
        )
        genome, fit = evolver.run(
            problem.train.X, problem.train.y,
            generations=params["generations"],
        )
        ctx.state["mode"] = "random-init"
    ctx.state["train_fitness"] = fit
    # Keep whichever of {evolved, starter} validates better.
    return [
        Candidate("evolved", genome.to_aig()),
        Candidate(f"starter-{boot_name}", boot_aig),
    ]


def _package(ctx: FlowContext, name, aig, acc) -> Solution:
    return Solution(
        aig=aig,
        method=f"{ctx.flow.name}:{ctx.state['mode']}:{name}",
        metadata={"train_fitness": ctx.state["train_fitness"],
                  "valid_accuracy": acc},
    )


FLOW = register(Flow(
    "team09",
    team="UFSC/UFRGS",
    techniques={"CGP", "decision tree", "ESPRESSO/SOP"},
    description="CGP fine-tuning bootstrapped from DT/espresso "
                "starters (random init below 55%)",
    efforts={
        "small": {
            "generations": 600,
            "random_nodes": 200,
            "batch_size": 512,
            "batch_generations": 200,
            "espresso_max_samples": 1500,
            "function_sets": ("aig",),
        },
        "full": {
            "generations": 25000,
            "random_nodes": 5000,
            "batch_size": 1024,
            "batch_generations": 1000,
            "espresso_max_samples": 8000,
            "function_sets": ("aig", "xaig"),
        },
    },
    stages=(
        Stage("evolve", _evolve_stage,
              "bootstrap starters, CGP evolution, starter rescue"),
    ),
    finalize=FinalizeSpec(),
    package=_package,
))


def run(
    problem: LearningProblem, effort: str = "small", master_seed: int = 0
) -> Solution:
    """Deprecated shim — use ``repro.flows.get_flow("team09")``."""
    return FLOW.run(problem, effort=effort, master_seed=master_seed)
