"""Team 1 (Tokyo/Berkeley) — the contest winner.

Portfolio of four methods, best-on-validation wins:

1. pre-defined standard function matching (adders, comparators,
   symmetric functions, ...) — "the most important method in the
   contest";
2. ESPRESSO stopped after the first irredundant pass;
3. a memorization LUT network whose shape parameters are beam-searched
   while validation accuracy improves;
4. random forests with 4-16 estimators.

Any circuit above 5000 AND nodes is reduced by simulation-guided
constant substitution (``repro.aig.approx``).
"""

from __future__ import annotations

from repro.contest.problem import LearningProblem, Solution
from repro.flows.api import (
    Candidate,
    FinalizeSpec,
    Flow,
    FlowContext,
    Stage,
    match_standard_stage,
)
from repro.flows.common import aig_accuracy
from repro.flows.registry import register
from repro.ml.forest import RandomForest
from repro.ml.lutnet import LUTNetwork
from repro.synth.from_forest import forest_to_aig
from repro.synth.from_lutnet import lutnet_to_aig
from repro.synth.from_sop import cover_to_aig
from repro.twolevel.espresso import espresso_from_samples


def _espresso_stage(ctx: FlowContext) -> list[Candidate]:
    """ESPRESSO with first-irredundant stop (subsampled when large:
    two-level covers of huge sample sets overfit anyway)."""
    limit = ctx.params["espresso_max_samples"]
    esp_data = ctx.problem.train
    if esp_data.n_samples > limit:
        # The subsample draws from the flow's RNG stream, so the cover
        # is flow-specific and must not be cached.
        esp_data = esp_data.sample_fraction(
            limit / esp_data.n_samples, ctx.rng
        )
        cover = espresso_from_samples(
            esp_data.X, esp_data.y, first_irredundant=True
        )
    else:
        # Deterministic function of the training set: shareable.
        cover = ctx.artifact(
            "espresso-cover", ("train", True),
            lambda: espresso_from_samples(
                esp_data.X, esp_data.y, first_irredundant=True
            ),
        )
    return [Candidate("espresso", cover_to_aig(cover))]


def _lut_beam_stage(ctx: FlowContext) -> list[Candidate]:
    """Increment LUT-network shape while validation accuracy improves."""
    layers, width = ctx.params["lut_start"]
    out: list[Candidate] = []
    best_acc = -1.0
    for _ in range(ctx.params["lut_beam_steps"]):
        net = LUTNetwork(
            n_layers=layers, luts_per_layer=width, lut_size=4, rng=ctx.rng
        )
        net.fit(ctx.problem.train.X, ctx.problem.train.y)
        aig = lutnet_to_aig(net).extract_cone()
        acc = aig_accuracy(aig, ctx.problem.valid)
        out.append(Candidate(f"lutnet[{layers}x{width}]", aig))
        if acc <= best_acc:
            break
        best_acc = acc
        layers, width = layers + 1, width * 2
    return out


def _forest_stage(ctx: FlowContext) -> list[Candidate]:
    """Random forests, 4-16 estimators (odd counts for clean votes)."""
    out: list[Candidate] = []
    for n_trees in ctx.params["forest_sizes"]:
        forest = RandomForest(
            n_trees=n_trees,
            max_depth=ctx.params["forest_depth"],
            feature_fraction=0.5,
            rng=ctx.rng,
        )
        forest.fit(ctx.problem.train.X, ctx.problem.train.y)
        out.append(Candidate(f"rf{n_trees}", forest_to_aig(forest)))
    return out


FLOW = register(Flow(
    "team01",
    team="Tokyo/Berkeley",
    techniques={"random forest", "LUT network", "ESPRESSO/SOP",
                "function matching", "approximation"},
    description="Match / espresso / LUT-net beam / forests, "
                "best-on-validation (the contest winner)",
    efforts={
        "small": {
            "forest_sizes": (5, 9),
            "forest_depth": 8,
            "lut_start": (2, 32),     # layers, width
            "lut_beam_steps": 2,
            "espresso_max_samples": 3000,
        },
        "full": {
            "forest_sizes": (5, 7, 9, 11, 13, 15),
            "forest_depth": 10,
            "lut_start": (2, 64),
            "lut_beam_steps": 6,
            "espresso_max_samples": 13000,
        },
    },
    stages=(
        Stage("match", match_standard_stage,
              "exact standard-function hit ends the flow"),
        Stage("espresso", _espresso_stage,
              "first-irredundant two-level cover"),
        Stage("lutnet-beam", _lut_beam_stage,
              "LUT-network shape beam search"),
        Stage("forests", _forest_stage, "random forest sweep"),
    ),
    # Approximate oversize candidates before comparing, as the team did.
    finalize=FinalizeSpec(),
))


def run(
    problem: LearningProblem, effort: str = "small", master_seed: int = 0
) -> Solution:
    """Deprecated shim — use ``repro.flows.get_flow("team01")``."""
    return FLOW.run(problem, effort=effort, master_seed=master_seed)
