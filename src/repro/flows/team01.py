"""Team 1 (Tokyo/Berkeley) — the contest winner.

Portfolio of four methods, best-on-validation wins:

1. pre-defined standard function matching (adders, comparators,
   symmetric functions, ...) — "the most important method in the
   contest";
2. ESPRESSO stopped after the first irredundant pass;
3. a memorization LUT network whose shape parameters are beam-searched
   while validation accuracy improves;
4. random forests with 4-16 estimators.

Any circuit above 5000 AND nodes is reduced by simulation-guided
constant substitution (``repro.aig.approx``).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.aig.aig import AIG
from repro.contest.problem import MAX_AND_NODES, LearningProblem, Solution
from repro.flows.common import (
    aig_accuracy,
    constant_solution,
    finalize_aig,
    flow_rng,
    pick_best,
)
from repro.ml.forest import RandomForest
from repro.ml.lutnet import LUTNetwork
from repro.synth.from_forest import forest_to_aig
from repro.synth.from_lutnet import lutnet_to_aig
from repro.synth.from_sop import cover_to_aig
from repro.synth.matching import match_standard_function
from repro.twolevel.espresso import espresso_from_samples

_PARAMS = {
    "small": {
        "forest_sizes": (5, 9),
        "forest_depth": 8,
        "lut_start": (2, 32),     # layers, width
        "lut_beam_steps": 2,
        "espresso_max_samples": 3000,
    },
    "full": {
        "forest_sizes": (5, 7, 9, 11, 13, 15),
        "forest_depth": 10,
        "lut_start": (2, 64),
        "lut_beam_steps": 6,
        "espresso_max_samples": 13000,
    },
}


def _lut_beam_search(problem, rng, params) -> List[Tuple[str, AIG]]:
    """Increment LUT-network shape while validation accuracy improves."""
    layers, width = params["lut_start"]
    out: List[Tuple[str, AIG]] = []
    best_acc = -1.0
    for _ in range(params["lut_beam_steps"]):
        net = LUTNetwork(
            n_layers=layers, luts_per_layer=width, lut_size=4, rng=rng
        )
        net.fit(problem.train.X, problem.train.y)
        aig = lutnet_to_aig(net).extract_cone()
        acc = aig_accuracy(aig, problem.valid)
        out.append((f"lutnet[{layers}x{width}]", aig))
        if acc <= best_acc:
            break
        best_acc = acc
        layers, width = layers + 1, width * 2
    return out


def run(
    problem: LearningProblem, effort: str = "small", master_seed: int = 0
) -> Solution:
    params = _PARAMS[effort]
    rng = flow_rng("team01", problem, master_seed)

    # 1. Standard function matching: exact hit ends the flow.
    merged = problem.merged_train_valid()
    match = match_standard_function(merged.X, merged.y)
    if match is not None:
        return Solution(
            aig=match.aig.extract_cone(),
            method="team01:match",
            metadata={"matched": match.name},
        )

    candidates: List[Tuple[str, AIG]] = []

    # 2. ESPRESSO with first-irredundant stop (subsampled when large:
    #    two-level covers of huge sample sets overfit anyway).
    limit = params["espresso_max_samples"]
    esp_data = problem.train
    if esp_data.n_samples > limit:
        esp_data = esp_data.sample_fraction(limit / esp_data.n_samples, rng)
    cover = espresso_from_samples(
        esp_data.X, esp_data.y, first_irredundant=True
    )
    candidates.append(("espresso", cover_to_aig(cover)))

    # 3. LUT network beam search.
    candidates.extend(_lut_beam_search(problem, rng, params))

    # 4. Random forests, 4-16 estimators (odd counts for clean votes).
    for n_trees in params["forest_sizes"]:
        forest = RandomForest(
            n_trees=n_trees,
            max_depth=params["forest_depth"],
            feature_fraction=0.5,
            rng=rng,
        )
        forest.fit(problem.train.X, problem.train.y)
        candidates.append((f"rf{n_trees}", forest_to_aig(forest)))

    # Approximate oversize candidates before comparing, as the team did.
    reduced: List[Tuple[str, AIG]] = []
    for name, aig in candidates:
        aig = finalize_aig(aig, rng, max_nodes=MAX_AND_NODES)
        reduced.append((name, aig))
    best = pick_best(reduced, problem.valid)
    if best is None:
        return constant_solution(problem, "team01")
    name, aig, acc = best
    return Solution(
        aig=aig,
        method=f"team01:{name}",
        metadata={"valid_accuracy": acc},
    )
