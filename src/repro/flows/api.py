"""The composable Flow API.

A *flow* — one team's end-to-end learn→synthesize→optimize pipeline —
is a first-class, declarative object instead of an ad-hoc module-level
``run()`` function:

``Flow``
    A named pipeline with metadata (team, paper techniques, effort
    grids as data) composed of :class:`Stage`\\ s.  Stages emit a
    stream of :class:`Candidate` circuits into the shared
    ``finalize_aig``/``pick_best`` funnel; a stage may instead
    short-circuit the whole flow by returning a finished
    :class:`~repro.contest.problem.Solution` (e.g. an exact standard-
    function match).  ``Flow.run`` keeps the historical contract
    ``run(problem, effort="small", master_seed=0) -> Solution``;
    ``Flow.run_detailed`` additionally returns the full candidate
    table as a :class:`FlowResult`.

``ArtifactCache``
    A per-(problem, seed) memo for *deterministic* intermediate
    artifacts — merged train+valid datasets, standard-function match
    scans, espresso covers, decision trees keyed by a digest of their
    training data.  Flows sharing a cache (the portfolio, contest
    grids over one problem) compute each shared artifact once.  Only
    artifacts that are pure functions of their key are cached, so a
    warm cache is *provably* behaviour-preserving: every flow returns
    byte-identical Solutions with or without sharing.  RNG-consuming
    artifacts (forests, LUT networks, MLPs) are deliberately not
    cached — each flow draws them from its own sequential seed stream,
    so two flows' "same" model family is bit-different by design.

Flows register themselves in :mod:`repro.flows.registry`; the runner,
CLI and analysis layers resolve them from there by name or by spec
string (``"team01:effort=full"``).
"""

from __future__ import annotations

import inspect
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.aig.aig import AIG
from repro.contest.problem import MAX_AND_NODES, LearningProblem, Solution
from repro.flows.common import (
    constant_solution,
    finalize_aig,
    flow_rng,
    pick_best,
)
from repro.ml.dataset import Dataset

__all__ = [
    "ArtifactCache",
    "Candidate",
    "FinalizeSpec",
    "Flow",
    "FlowContext",
    "FlowResult",
    "Stage",
    "match_standard_stage",
    "select_best_validation",
    "select_sole_candidate",
]


# --------------------------------------------------------------------
# Candidates
# --------------------------------------------------------------------

@dataclass(frozen=True)
class Candidate:
    """One circuit a stage proposes to the selection funnel.

    ``provenance`` is free-form bookkeeping (hyper-parameters, CV
    scores, member lists); single-candidate flows promote it verbatim
    into the Solution metadata.  ``stage`` is stamped by ``Flow.run``.
    """

    name: str
    aig: AIG
    provenance: Mapping[str, object] = field(default_factory=dict)
    stage: str | None = None

    def with_stage(self, stage: str) -> "Candidate":
        if self.stage is not None:
            return self
        return Candidate(self.name, self.aig, self.provenance, stage)


# --------------------------------------------------------------------
# Artifact cache
# --------------------------------------------------------------------

class ArtifactCache:
    """Memo for deterministic per-(problem, seed) artifacts.

    Keys are ``(problem identity, family, key)``; the problem is keyed
    by object identity, and the cache pins a strong reference to every
    problem it has seen so a recycled ``id()`` can never serve one
    problem's artifacts to another.  Values may be ``None`` (a
    *negative* match result is still a result).

    The cache must only ever hold artifacts that are pure functions of
    their key: anything consuming a flow's sequential RNG stream would
    make a warm cache observable in the flow's output, breaking the
    byte-equivalence guarantee the golden tests pin.
    """

    def __init__(self) -> None:
        self._artifacts: dict[tuple, object] = {}
        self._problems: dict[int, LearningProblem] = {}
        self._hits: dict[str, int] = {}
        self._misses: dict[str, int] = {}

    def get_or_compute(
        self,
        problem: LearningProblem,
        family: str,
        key: tuple,
        compute: Callable[[], object],
    ) -> object:
        """Return the cached artifact, computing (and storing) on miss."""
        self._problems[id(problem)] = problem
        full_key = (id(problem), family, key)
        if full_key in self._artifacts:
            self._hits[family] = self._hits.get(family, 0) + 1
            return self._artifacts[full_key]
        self._misses[family] = self._misses.get(family, 0) + 1
        value = compute()
        self._artifacts[full_key] = value
        return value

    @property
    def hits(self) -> int:
        return sum(self._hits.values())

    @property
    def misses(self) -> int:
        return sum(self._misses.values())

    def stats(self) -> dict[str, dict[str, int]]:
        """Per-family ``{"hits": n, "misses": m}`` counters."""
        return {
            family: {
                "hits": self._hits.get(family, 0),
                "misses": self._misses.get(family, 0),
            }
            for family in sorted(set(self._hits) | set(self._misses))
        }

    def __len__(self) -> int:
        return len(self._artifacts)

    @staticmethod
    def dataset_digest(*arrays: np.ndarray) -> str:
        """SHA-256 over array contents — the key for artifacts trained
        on data (identical data + identical hyper-parameters + a
        deterministic trainer ⇒ identical artifact).  Each array's
        dtype and shape are hashed ahead of its bytes, so arrays whose
        concatenated byte streams coincide still key differently."""
        import hashlib

        digest = hashlib.sha256()
        for arr in arrays:
            arr = np.ascontiguousarray(arr)
            digest.update(f"{arr.dtype.str}{arr.shape}|".encode("ascii"))
            digest.update(arr.tobytes())
        return digest.hexdigest()


# --------------------------------------------------------------------
# Context and stages
# --------------------------------------------------------------------

@dataclass
class FlowContext:
    """Everything a stage sees: the problem, resolved effort params,
    the flow's deterministic RNG stream, the artifact cache, and a
    scratch ``state`` dict for passing values between stages and into
    custom selectors."""

    flow: "Flow"
    problem: LearningProblem
    effort: str
    master_seed: int
    params: Mapping[str, object]
    cache: ArtifactCache
    rng: np.random.Generator
    state: dict[str, object] = field(default_factory=dict)
    candidates: list[Candidate] = field(default_factory=list)

    def derive_rng(self, *parts) -> np.random.Generator:
        """A fresh named sub-stream (same derivation as the legacy
        ``flow_rng(name, problem, master_seed, *parts)`` calls)."""
        return flow_rng(self.flow.name, self.problem, self.master_seed,
                        *parts)

    def artifact(self, family: str, key: tuple,
                 compute: Callable[[], object]) -> object:
        """Cache lookup scoped to this context's problem."""
        return self.cache.get_or_compute(self.problem, family, key, compute)

    def merged_train_valid(self) -> Dataset:
        """The train+valid merge, computed once per (problem, cache)."""
        return self.artifact(
            "merged-dataset", (), self.problem.merged_train_valid
        )

    def standard_match(self):
        """Shared standard-function match scan (Teams 1 and 7 run the
        identical deterministic scan on the identical merged data)."""
        from repro.synth.matching import match_standard_function

        merged = self.merged_train_valid()
        return self.artifact(
            "function-match", (),
            lambda: match_standard_function(merged.X, merged.y),
        )


#: What a stage may return: nothing, a candidate batch, or a finished
#: Solution that short-circuits the flow.
StageOutcome = None | Iterable[Candidate] | Solution


@dataclass(frozen=True)
class Stage:
    """One named step of a flow."""

    name: str
    fn: Callable[[FlowContext], StageOutcome]
    description: str = ""


def match_standard_stage(ctx: FlowContext) -> StageOutcome:
    """Shared opening stage of Teams 1 and 7: an exact standard-
    function hit (adder/comparator/parity/...) ends the flow."""
    match = ctx.standard_match()
    if match is None:
        return None
    return Solution(
        aig=match.aig.extract_cone(),
        method=f"{ctx.flow.name}:match",
        metadata={"matched": match.name},
    )


# --------------------------------------------------------------------
# Finalization and selection
# --------------------------------------------------------------------

@dataclass(frozen=True)
class FinalizeSpec:
    """How ``Flow.run`` post-processes emitted candidates (in emission
    order, drawing from the flow's sequential RNG — exactly where the
    legacy ``run()`` functions placed their ``finalize_aig`` loop).

    ``optimize`` may be a bool or a per-candidate predicate
    ``(AIG) -> bool`` (Team 5/6 skip the expensive passes above 4000
    nodes).  Flows that interleave finalization with training (Teams 4
    and 6) set ``Flow.finalize=None`` and finalize inside the stage.
    """

    max_nodes: int = MAX_AND_NODES
    optimize: bool | Callable[[AIG], bool] = True
    optimize_limit: int = 20000

    def apply(self, aig: AIG, rng: np.random.Generator) -> AIG:
        optimize = self.optimize
        if callable(optimize):
            optimize = optimize(aig)
        return finalize_aig(
            aig, rng, max_nodes=self.max_nodes, optimize=optimize,
            optimize_limit=self.optimize_limit,
        )


def select_best_validation(ctx: FlowContext) -> Solution:
    """Default funnel exit: best candidate by validation accuracy
    (``ctx.state["selection_data"]`` overrides the dataset — Team 5
    selects on its own re-split), majority-constant fallback when no
    stage produced anything."""
    data = ctx.state.get("selection_data", ctx.problem.valid)
    best = pick_best([(c.name, c.aig) for c in ctx.candidates], data)
    if best is None:
        return constant_solution(ctx.problem, ctx.flow.name)
    name, aig, acc = best
    return ctx.flow.package(ctx, name, aig, acc)


def select_sole_candidate(ctx: FlowContext) -> Solution:
    """Exit for single-candidate flows (Teams 2/3/7/10): the one
    emitted candidate wins outright and its provenance becomes the
    Solution metadata."""
    if len(ctx.candidates) != 1:
        raise ValueError(
            f"flow {ctx.flow.name!r} uses select_sole_candidate but "
            f"emitted {len(ctx.candidates)} candidates"
        )
    cand = ctx.candidates[0]
    return Solution(
        aig=cand.aig,
        method=f"{ctx.flow.name}:{cand.name}",
        metadata=dict(cand.provenance),
    )


def default_package(ctx: FlowContext, name: str, aig: AIG,
                    acc: float) -> Solution:
    """Default Solution packaging for the validation funnel."""
    return Solution(
        aig=aig,
        method=f"{ctx.flow.name}:{name}",
        metadata={"valid_accuracy": acc},
    )


# --------------------------------------------------------------------
# Results
# --------------------------------------------------------------------

@dataclass(frozen=True)
class CandidateRecord:
    """One row of a FlowResult's candidate table."""

    name: str
    stage: str | None
    num_ands: int
    provenance: Mapping[str, object]


@dataclass(frozen=True)
class FlowResult:
    """Uniform detailed result of a flow execution: the Solution plus
    the full candidate table and cache counters, for analysis layers
    that want more than the winning circuit."""

    flow: str
    effort: str
    master_seed: int
    solution: Solution
    candidates: tuple[CandidateRecord, ...]
    cache_stats: dict[str, dict[str, int]]
    short_circuited: bool = False


# --------------------------------------------------------------------
# The Flow object
# --------------------------------------------------------------------

class Flow:
    """A named, registered, stage-composed pipeline.

    Construction is declarative: metadata plus data (effort grids) plus
    a stage tuple plus (optionally) a finalize spec and a selector.
    Execution (:meth:`run`) is the uniform engine: resolve the effort
    grid, seed the RNG stream, run stages (a stage returning a Solution
    short-circuits), finalize the candidate stream in emission order,
    select.  Instances are callable with the historical module
    contract, so a ``Flow`` drops in anywhere a ``run()`` function was
    accepted.
    """

    def __init__(
        self,
        name: str,
        *,
        team: str,
        techniques: Iterable[str] = (),
        efforts: Mapping[str, Mapping[str, object]],
        stages: Sequence[Stage],
        finalize: FinalizeSpec | None = FinalizeSpec(),
        select: Callable[[FlowContext], Solution] = select_best_validation,
        package: Callable[..., Solution] = default_package,
        description: str = "",
        spec_params: Mapping[str, Callable[[str], object]] | None = None,
    ) -> None:
        if not stages:
            raise ValueError(f"flow {name!r} needs at least one stage")
        seen = set()
        for stage in stages:
            if stage.name in seen:
                raise ValueError(
                    f"flow {name!r} has duplicate stage {stage.name!r}"
                )
            seen.add(stage.name)
        self.name = name
        self.team = team
        self.techniques = frozenset(techniques)
        self.efforts = {k: dict(v) for k, v in efforts.items()}
        self.stages = tuple(stages)
        self.finalize = finalize
        self.select = select
        self.package = package
        self.description = description
        #: extra spec-string override keys -> value parsers (e.g. the
        #: portfolio's ``flows=team01+team10`` and ``jobs=4``).
        self.spec_params = dict(spec_params or {})

    # -- metadata ----------------------------------------------------

    def params_for(self, effort: str) -> dict[str, object]:
        """The effort grid as plain data (copy — stages may not rely
        on mutating the flow's grid)."""
        try:
            return dict(self.efforts[effort])
        except KeyError:
            raise KeyError(
                f"flow {self.name!r} has no effort {effort!r} "
                f"(choose from {sorted(self.efforts)})"
            ) from None

    @property
    def stage_names(self) -> tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)

    def __repr__(self) -> str:
        return (f"Flow({self.name!r}, team={self.team!r}, "
                f"stages={list(self.stage_names)!r}, "
                f"efforts={sorted(self.efforts)!r})")

    # -- execution ---------------------------------------------------

    def run(
        self,
        problem: LearningProblem,
        effort: str = "small",
        master_seed: int = 0,
        *,
        cache: ArtifactCache | None = None,
    ) -> Solution:
        """The flow contract: ``(problem, effort, master_seed) ->
        Solution``.  ``cache`` shares deterministic artifacts with
        other flows run on the same problem."""
        return self.run_detailed(
            problem, effort=effort, master_seed=master_seed, cache=cache
        ).solution

    __call__ = run

    def run_detailed(
        self,
        problem: LearningProblem,
        effort: str = "small",
        master_seed: int = 0,
        *,
        cache: ArtifactCache | None = None,
        state: Mapping[str, object] | None = None,
    ) -> FlowResult:
        """Run and return the Solution plus the full candidate table."""
        ctx = FlowContext(
            flow=self,
            problem=problem,
            effort=effort,
            master_seed=master_seed,
            params=self.params_for(effort),
            cache=cache if cache is not None else ArtifactCache(),
            rng=flow_rng(self.name, problem, master_seed),
            state=dict(state or {}),
        )
        solution: Solution | None = None
        for stage in self.stages:
            out = stage.fn(ctx)
            if isinstance(out, Solution):
                solution = out
                break
            if out is not None:
                for cand in out:
                    ctx.candidates.append(cand.with_stage(stage.name))
        short_circuited = solution is not None
        if solution is None:
            if self.finalize is not None:
                ctx.candidates = [
                    Candidate(
                        c.name,
                        self.finalize.apply(c.aig, ctx.rng),
                        c.provenance,
                        c.stage,
                    )
                    for c in ctx.candidates
                ]
            solution = self.select(ctx)
        return FlowResult(
            flow=self.name,
            effort=effort,
            master_seed=master_seed,
            solution=solution,
            candidates=tuple(
                CandidateRecord(
                    name=c.name,
                    stage=c.stage,
                    num_ands=c.aig.count_used_ands(),
                    provenance=dict(c.provenance),
                )
                for c in ctx.candidates
            ),
            cache_stats=ctx.cache.stats(),
            short_circuited=short_circuited,
        )


# --------------------------------------------------------------------
# Contract validation (used by the registry)
# --------------------------------------------------------------------

def check_flow_contract(fn: Callable, name: str = "<flow>") -> None:
    """Raise unless ``fn`` honours ``run(problem, effort="small",
    master_seed=0)``: those exact leading parameters, defaults on
    everything after ``problem``.  Extra parameters are allowed only
    with defaults (the portfolio's ``flows``/``jobs``/``cache``)."""
    sig = inspect.signature(fn)
    params = [p for p in sig.parameters.values()
              if p.kind is not inspect.Parameter.VAR_KEYWORD]
    names = [p.name for p in params]
    if names[:3] != ["problem", "effort", "master_seed"]:
        raise TypeError(
            f"flow {name!r} violates the contract: leading parameters "
            f"must be (problem, effort, master_seed), got {names[:3]}"
        )
    if params[1].default != "small":
        raise TypeError(
            f"flow {name!r}: effort must default to 'small', "
            f"got {params[1].default!r}"
        )
    if params[2].default != 0:
        raise TypeError(
            f"flow {name!r}: master_seed must default to 0, "
            f"got {params[2].default!r}"
        )
    for p in params[3:]:
        if p.default is inspect.Parameter.empty:
            raise TypeError(
                f"flow {name!r}: extra parameter {p.name!r} must have "
                f"a default (callers only pass the contract arguments)"
            )
