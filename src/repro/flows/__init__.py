"""The ten contest team flows plus the portfolio, as registered Flows.

Every flow is a :class:`repro.flows.api.Flow` — a named, registered
pipeline of :class:`~repro.flows.api.Stage`\\ s with declarative
metadata (team, paper techniques, effort grids as data) — honouring
the contract ``run(problem, effort="small", master_seed=0) ->
Solution``.  The ``effort`` knob selects hyper-parameter grids:
``"small"`` keeps every flow laptop-fast for tests and default
benches, ``"full"`` uses the paper's grids.

Look flows up through the registry::

    from repro.flows import get_flow, resolve_spec

    solution = get_flow("team01").run(problem, effort="small")
    result = get_flow("team01").run_detailed(problem)  # + candidate table
    full = resolve_spec("team01:effort=full")(problem)

``TECHNIQUES`` is the Fig. 1 matrix (derived from the registered
flows' metadata): which representation/technique each team used.

``ALL_FLOWS`` is the deprecated pre-registry interface — a plain
``{name: callable}`` dict over the ten team flows.  It keeps working
(the values are the registered Flow objects, which are callable with
the historical signature) but new code should use the registry.
"""

import warnings as _warnings

# Importing the flow modules registers their Flows.
from repro.flows import (  # noqa: F401  (registration side effects)
    api,
    portfolio as _portfolio_module,
    registry,
    team01,
    team02,
    team03,
    team04,
    team05,
    team06,
    team07,
    team08,
    team09,
    team10,
)
from repro.flows.api import ArtifactCache, Candidate, Flow, FlowResult, Stage
from repro.flows.portfolio import virtual_best
from repro.flows.registry import (
    REGISTRY,
    flow_names,
    get_flow,
    resolve_spec,
)

# The learned-scheduling flows live under repro.sched (they layer on
# top of this package); importing the module registers them too.
from repro.sched import flow as _sched_flow_module  # noqa: F401

#: The ten team flows, in contest order (single source of truth: the
#: portfolio's default member list).
TEAM_FLOW_NAMES = _portfolio_module.DEFAULT_MEMBERS


class _DeprecatedFlowDict(dict):
    """``ALL_FLOWS`` shim: warns once on item access, then behaves
    like the historical dict (values are callable Flow objects)."""

    _warned = False

    def __getitem__(self, key):
        if not _DeprecatedFlowDict._warned:
            _DeprecatedFlowDict._warned = True
            _warnings.warn(
                "ALL_FLOWS is deprecated; resolve flows through the "
                "registry (repro.flows.get_flow / resolve_spec)",
                DeprecationWarning,
                stacklevel=2,
            )
        return super().__getitem__(key)


ALL_FLOWS = _DeprecatedFlowDict(
    (name, REGISTRY.get(name)) for name in TEAM_FLOW_NAMES
)

# Fig. 1: techniques used by each team.
TECHNIQUE_NAMES = (
    "decision tree",
    "random forest",
    "boosting",
    "rule learner",
    "neural network",
    "LUT network",
    "ESPRESSO/SOP",
    "function matching",
    "feature selection",
    "CGP",
    "ensemble",
    "approximation",
)

#: Derived from the registered flows' declarative metadata.
TECHNIQUES = {
    name: set(REGISTRY.get(name).techniques) for name in TEAM_FLOW_NAMES
}

__all__ = [
    "ALL_FLOWS",
    "ArtifactCache",
    "Candidate",
    "Flow",
    "FlowResult",
    "REGISTRY",
    "Stage",
    "TEAM_FLOW_NAMES",
    "TECHNIQUES",
    "TECHNIQUE_NAMES",
    "api",
    "flow_names",
    "team01",
    "team02",
    "team03",
    "team04",
    "team05",
    "team06",
    "team07",
    "team08",
    "team09",
    "team10",
    "get_flow",
    "registry",
    "resolve_spec",
    "virtual_best",
]
