"""The ten contest team flows plus the virtual-best portfolio.

Each flow module exposes ``run(problem, effort="small", master_seed=0)
-> Solution`` mirroring one team's end-to-end pipeline as described in
the paper (overview section IV and the per-team appendices).  The
``effort`` knob selects hyper-parameter grids: ``"small"`` keeps every
flow laptop-fast for tests and default benches, ``"full"`` uses the
paper's grids.

``TECHNIQUES`` is the Fig. 1 matrix: which representation/technique
each team used.
"""

from repro.flows import (
    team01,
    team02,
    team03,
    team04,
    team05,
    team06,
    team07,
    team08,
    team09,
    team10,
)
from repro.flows.portfolio import virtual_best

ALL_FLOWS = {
    "team01": team01.run,
    "team02": team02.run,
    "team03": team03.run,
    "team04": team04.run,
    "team05": team05.run,
    "team06": team06.run,
    "team07": team07.run,
    "team08": team08.run,
    "team09": team09.run,
    "team10": team10.run,
}

# Fig. 1: techniques used by each team.
TECHNIQUE_NAMES = (
    "decision tree",
    "random forest",
    "boosting",
    "rule learner",
    "neural network",
    "LUT network",
    "ESPRESSO/SOP",
    "function matching",
    "feature selection",
    "CGP",
    "ensemble",
    "approximation",
)

TECHNIQUES = {
    "team01": {"random forest", "LUT network", "ESPRESSO/SOP",
               "function matching", "approximation"},
    "team02": {"decision tree", "rule learner"},
    "team03": {"decision tree", "neural network", "ensemble"},
    "team04": {"neural network", "feature selection", "boosting"},
    "team05": {"decision tree", "random forest", "neural network",
               "feature selection"},
    "team06": {"LUT network"},
    "team07": {"decision tree", "boosting", "function matching",
               "feature selection"},
    "team08": {"decision tree", "random forest", "neural network",
               "ensemble"},
    "team09": {"CGP", "decision tree", "ESPRESSO/SOP"},
    "team10": {"decision tree"},
}

__all__ = ["ALL_FLOWS", "TECHNIQUES", "TECHNIQUE_NAMES", "virtual_best"]
