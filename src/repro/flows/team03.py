"""Team 3 (NTU): DT / fringe-DT / pruned-NN models, 3-way ensemble.

The merged train+validation data is re-divided into three partitions;
each of the three leave-one-out groupings trains several models
(decision trees, fringe-feature trees, and a pruned MLP synthesized
neuron-by-neuron into LUTs) and keeps its validation winner.  The
submitted circuit is the majority vote of the three kept models; if it
busts the node cap the largest member is swapped for a smaller one.
"""

from __future__ import annotations

import numpy as np

from repro.aig.aig import AIG
from repro.contest.problem import MAX_AND_NODES, LearningProblem, Solution
from repro.flows.api import (
    Candidate,
    FinalizeSpec,
    Flow,
    FlowContext,
    Stage,
    StageOutcome,
    select_sole_candidate,
)
from repro.flows.common import aig_accuracy, constant_solution
from repro.flows.registry import register
from repro.ml.dataset import Dataset
from repro.ml.decision_tree import DecisionTree
from repro.ml.fringe import FringeDT
from repro.ml.mlp import MLP
from repro.synth.from_mlp import mlp_to_aig
from repro.synth.from_tree import fringe_dt_to_aig, tree_to_aig


def _train_candidates(
    train: Dataset, params, rng
) -> list[tuple[str, AIG]]:
    out: list[tuple[str, AIG]] = []
    for depth in params["dt_depths"]:
        tree = DecisionTree(max_depth=depth).fit(train.X, train.y)
        tree.prune(0.25)
        out.append((f"dt{depth}", tree_to_aig(tree)))
    fringe = FringeDT(
        max_iterations=params["fringe_iterations"],
        max_depth=10,
    ).fit(train.X, train.y)
    out.append(("fringe", fringe_dt_to_aig(fringe)))
    if train.n_inputs <= params["mlp_max_inputs"]:
        mlp = MLP(hidden_sizes=params["mlp_hidden"], activation="sigmoid",
                  rng=rng)
        mlp.fit(train.X.astype(float), train.y,
                epochs=params["mlp_epochs"])
        mlp.prune_to_fanin(
            params["prune_fanin"], train.X.astype(float), train.y,
            rounds=2, retrain_epochs=max(3, params["mlp_epochs"] // 4),
        )
        out.append(("nn", mlp_to_aig(mlp)))
    return out


def _ensemble_stage(ctx: FlowContext) -> StageOutcome:
    """Train per-partition winners, majority-vote them, recover size."""
    params, rng, problem = ctx.params, ctx.rng, ctx.problem
    merged = ctx.merged_train_valid()
    n = merged.n_samples
    order = rng.permutation(n)
    thirds = np.array_split(order, 3)

    members: list[tuple[str, AIG, float]] = []
    for g in range(3):
        valid_idx = thirds[g]
        train_idx = np.concatenate([thirds[j] for j in range(3) if j != g])
        train = merged.subset(train_idx)
        valid = merged.subset(valid_idx)
        best: tuple[str, AIG, float] | None = None
        for name, aig in _train_candidates(train, params, rng):
            aig = aig.extract_cone()
            acc = aig_accuracy(aig, valid)
            if best is None or acc > best[2] or (
                acc == best[2] and aig.num_ands < best[1].num_ands
            ):
                best = (name, aig, acc)
        if best is not None:
            members.append(best)

    if not members:
        return constant_solution(problem, "team03")

    def ensemble_of(selected: list[tuple[str, AIG, float]]) -> AIG:
        ens = AIG(problem.n_inputs)
        inputs = ens.input_lits()
        if len(selected) == 3:
            votes = [_graft(ens, aig, inputs) for _, aig, _ in selected]
            ens.set_output(ens.add_maj3(*votes))
        else:
            # Fewer than three members: fall back to the single best.
            _, aig, _ = max(selected, key=lambda m: m[2])
            ens.set_output(_graft(ens, aig, inputs))
        return ens

    members_now = list(members)
    ensemble = ensemble_of(members_now)
    # Size recovery: drop the largest member while over budget.
    while ensemble.num_ands > MAX_AND_NODES and len(members_now) > 1:
        largest = max(range(len(members_now)),
                      key=lambda i: members_now[i][1].num_ands)
        members_now.pop(largest)
        ensemble = ensemble_of(members_now)
    return [Candidate(
        "ensemble", ensemble,
        provenance={"members": [m[0] for m in members_now]},
    )]


def _graft(target: AIG, source: AIG, input_lits) -> int:
    """Copy ``source``'s single output cone into ``target``."""
    mapping = {0: 0}
    for i in range(source.n_inputs):
        mapping[1 + i] = input_lits[i]
    base = source.n_inputs + 1
    for j in range(source.num_ands):
        f0, f1 = source.fanins(base + j)
        a = mapping[f0 >> 1] ^ (f0 & 1)
        b = mapping[f1 >> 1] ^ (f1 & 1)
        mapping[base + j] = target.add_and(a, b)
    out = source.outputs[0]
    return mapping[out >> 1] ^ (out & 1)


FLOW = register(Flow(
    "team03",
    team="NTU",
    techniques={"decision tree", "neural network", "ensemble"},
    description="3-partition leave-one-out winners, MAJ-3 vote with "
                "size recovery",
    efforts={
        "small": {
            "dt_depths": (8,),
            "fringe_iterations": 4,
            "mlp_hidden": (24,),
            "mlp_epochs": 15,
            "mlp_max_inputs": 64,
            "prune_fanin": 8,
        },
        "full": {
            "dt_depths": (8, 12, None),
            "fringe_iterations": 10,
            "mlp_hidden": (64, 32),
            "mlp_epochs": 60,
            "mlp_max_inputs": 256,
            "prune_fanin": 12,
        },
    },
    stages=(
        Stage("ensemble", _ensemble_stage,
              "per-partition winners, majority vote, size recovery"),
    ),
    finalize=FinalizeSpec(),
    select=select_sole_candidate,
))


def run(
    problem: LearningProblem, effort: str = "small", master_seed: int = 0
) -> Solution:
    """Deprecated shim — use ``repro.flows.get_flow("team03")``."""
    return FLOW.run(problem, effort=effort, master_seed=master_seed)
