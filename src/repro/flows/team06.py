"""Team 6 (TU Dresden): pure memorization LUT networks.

Builds Chatterjee-style LUT networks over the training minterms,
sweeping the four hyper-parameters the write-up lists — LUT arity,
LUTs per layer, wiring scheme ('random set of inputs' vs 'unique but
random set of inputs') and depth — and keeps the best validation
configuration.  4-input LUTs gave the team the best average, which the
ablation bench reproduces.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.aig.aig import AIG
from repro.contest.problem import LearningProblem, Solution
from repro.flows.common import (
    constant_solution,
    finalize_aig,
    flow_rng,
    pick_best,
)
from repro.ml.lutnet import LUTNetwork
from repro.synth.from_lutnet import lutnet_to_aig

_PARAMS = {
    "small": {
        "shapes": ((2, 32), (3, 64)),
        "lut_sizes": (4,),
        "schemes": ("random", "unique"),
    },
    "full": {
        "shapes": ((2, 64), (3, 128), (4, 256), (6, 256)),
        "lut_sizes": (2, 4, 6),
        "schemes": ("random", "unique"),
    },
}


def run(
    problem: LearningProblem, effort: str = "small", master_seed: int = 0
) -> Solution:
    params = _PARAMS[effort]
    rng = flow_rng("team06", problem, master_seed)
    candidates: List[Tuple[str, AIG]] = []
    for scheme in params["schemes"]:
        for lut_size in params["lut_sizes"]:
            for layers, width in params["shapes"]:
                net = LUTNetwork(
                    n_layers=layers,
                    luts_per_layer=width,
                    lut_size=lut_size,
                    scheme=scheme,
                    rng=rng,
                )
                net.fit(problem.train.X, problem.train.y)
                aig = lutnet_to_aig(net)
                aig = finalize_aig(aig, rng, optimize=aig.num_ands < 4000)
                candidates.append(
                    (f"lutnet[{scheme},k={lut_size},{layers}x{width}]", aig)
                )
    best = pick_best(candidates, problem.valid)
    if best is None:
        return constant_solution(problem, "team06")
    name, aig, acc = best
    return Solution(
        aig=aig, method=f"team06:{name}", metadata={"valid_accuracy": acc}
    )
