"""Team 6 (TU Dresden): pure memorization LUT networks.

Builds Chatterjee-style LUT networks over the training minterms,
sweeping the four hyper-parameters the write-up lists — LUT arity,
LUTs per layer, wiring scheme ('random set of inputs' vs 'unique but
random set of inputs') and depth — and keeps the best validation
configuration.  4-input LUTs gave the team the best average, which the
ablation bench reproduces.
"""

from __future__ import annotations

from repro.contest.problem import LearningProblem, Solution
from repro.flows.api import Candidate, Flow, FlowContext, Stage
from repro.flows.common import finalize_aig
from repro.flows.registry import register
from repro.ml.lutnet import LUTNetwork
from repro.synth.from_lutnet import lutnet_to_aig


def _lut_sweep_stage(ctx: FlowContext) -> list[Candidate]:
    """Sweep scheme x arity x shape; candidates are finalized inline
    (the RNG stream interleaves training and finalization, as the
    original flow did)."""
    params, rng, problem = ctx.params, ctx.rng, ctx.problem
    out: list[Candidate] = []
    for scheme in params["schemes"]:
        for lut_size in params["lut_sizes"]:
            for layers, width in params["shapes"]:
                net = LUTNetwork(
                    n_layers=layers,
                    luts_per_layer=width,
                    lut_size=lut_size,
                    scheme=scheme,
                    rng=rng,
                )
                net.fit(problem.train.X, problem.train.y)
                aig = lutnet_to_aig(net)
                aig = finalize_aig(aig, rng, optimize=aig.num_ands < 4000)
                out.append(Candidate(
                    f"lutnet[{scheme},k={lut_size},{layers}x{width}]", aig
                ))
    return out


FLOW = register(Flow(
    "team06",
    team="TU Dresden",
    techniques={"LUT network"},
    description="Memorization LUT networks over arity/shape/wiring "
                "sweeps",
    efforts={
        "small": {
            "shapes": ((2, 32), (3, 64)),
            "lut_sizes": (4,),
            "schemes": ("random", "unique"),
        },
        "full": {
            "shapes": ((2, 64), (3, 128), (4, 256), (6, 256)),
            "lut_sizes": (2, 4, 6),
            "schemes": ("random", "unique"),
        },
    },
    stages=(
        Stage("lut-sweep", _lut_sweep_stage,
              "LUT-network hyper-parameter sweep"),
    ),
    finalize=None,  # finalization interleaves with training
))


def run(
    problem: LearningProblem, effort: str = "small", master_seed: int = 0
) -> Solution:
    """Deprecated shim — use ``repro.flows.get_flow("team06")``."""
    return FLOW.run(problem, effort=effort, master_seed=master_seed)
