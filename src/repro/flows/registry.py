"""The flow registry: name → :class:`~repro.flows.api.Flow`.

Every flow module registers its Flow at import time; the runner, CLI
and analysis layers resolve flows exclusively from here.  Resolution
accepts plain names (``"team01"``) and *spec strings* with overrides::

    team01                      the flow, contract defaults
    team01:effort=full          effort pinned (wins over the caller's)
    portfolio:flows=team01+team10,jobs=4
                                flow-specific extras (declared by the
                                flow via ``spec_params``)

Registration enforces the flow contract — ``run(problem,
effort="small", master_seed=0) -> Solution`` — so a mis-signed flow
fails at import, not mid-contest.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

from repro.flows.api import Flow, check_flow_contract
from repro.utils.suggest import did_you_mean

__all__ = [
    "REGISTRY",
    "FlowRegistry",
    "FlowSpec",
    "get_flow",
    "flow_names",
    "parse_spec",
    "register",
    "resolve_spec",
]


def parse_spec(spec: str) -> tuple[str, dict[str, str]]:
    """Split ``"name:key=value,key=value"`` into name + raw overrides.

    A plain name parses to ``(name, {})``.  Malformed override parts
    (no ``=``) raise ValueError so typos fail loudly instead of being
    mistaken for dotted import paths upstream.
    """
    name, _, rest = spec.partition(":")
    if not name:
        raise ValueError(f"empty flow name in spec {spec!r}")
    overrides: dict[str, str] = {}
    if rest:
        for part in rest.split(","):
            key, eq, value = part.partition("=")
            if not eq or not key:
                raise ValueError(
                    f"malformed override {part!r} in flow spec {spec!r} "
                    f"(expected key=value)"
                )
            if key in overrides:
                raise ValueError(
                    f"duplicate override {key!r} in flow spec {spec!r}"
                )
            overrides[key] = value
    return name, overrides


@dataclass(frozen=True)
class FlowSpec:
    """A resolved spec string: the flow plus pinned overrides.

    Callable with the flow contract; pinned overrides win over the
    caller's corresponding arguments (a task grid running
    ``team01:effort=full`` runs full effort regardless of the grid's
    default effort).
    """

    spec: str
    flow: Flow
    overrides: dict[str, object] = field(default_factory=dict)

    def __call__(self, problem, effort: str = "small",
                 master_seed: int = 0, **kwargs):
        # Pinned overrides win over the caller's kwargs — for every
        # key, not just effort: a task grid running a stored
        # "portfolio:flows=a+b" spec must execute exactly that spec.
        merged = dict(kwargs)
        merged.update(self.overrides)
        effort = merged.pop("effort", effort)
        return self.flow.run(
            problem, effort=effort, master_seed=master_seed, **merged
        )

    @property
    def name(self) -> str:
        return self.flow.name


class FlowRegistry:
    """Mutable name → Flow mapping with contract enforcement."""

    def __init__(self) -> None:
        self._flows: dict[str, Flow] = {}

    # -- registration ------------------------------------------------

    def register(self, flow: Flow, *, replace: bool = False) -> Flow:
        if not isinstance(flow, Flow):
            raise TypeError(
                f"only Flow instances can be registered, got {flow!r}; "
                f"wrap ad-hoc callables in a Flow (or use the runner's "
                f"'module:qualname' escape hatch, which bypasses the "
                f"registry)"
            )
        if "=" in flow.name or "," in flow.name:
            raise ValueError(
                f"flow name {flow.name!r} collides with spec syntax"
            )
        if flow.name in self._flows and not replace:
            raise ValueError(
                f"flow {flow.name!r} is already registered "
                f"(pass replace=True to override)"
            )
        check_flow_contract(flow.run, flow.name)
        self._flows[flow.name] = flow
        return flow

    def remove(self, name: str) -> None:
        """Unregister (tests and ad-hoc experiments)."""
        del self._flows[name]

    # -- lookup ------------------------------------------------------

    def get(self, name: str) -> Flow:
        try:
            return self._flows[name]
        except KeyError:
            hint = did_you_mean(name, self._flows)
            raise KeyError(
                f"unknown flow {name!r} (registered: "
                f"{self.names()}){hint}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._flows)

    def flows(self) -> dict[str, Flow]:
        return dict(self._flows)

    def __contains__(self, name: object) -> bool:
        return name in self._flows

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._flows)

    # -- spec resolution ---------------------------------------------

    def resolve(self, spec: str) -> Callable:
        """Resolve a name or spec string to a contract callable.

        Plain names return the Flow itself; specs with overrides
        return a :class:`FlowSpec`.  Override keys are validated here:
        ``effort`` must name one of the flow's grids, anything else
        must be declared by the flow's ``spec_params``.
        """
        name, raw = parse_spec(spec)
        flow = self.get(name)
        if not raw:
            return flow
        overrides: dict[str, object] = {}
        for key, value in raw.items():
            if key == "effort":
                if value not in flow.efforts:
                    raise ValueError(
                        f"flow {name!r} has no effort {value!r} "
                        f"(choose from {sorted(flow.efforts)})"
                    )
                overrides[key] = value
            elif key in flow.spec_params:
                try:
                    overrides[key] = flow.spec_params[key](value)
                except (TypeError, ValueError) as exc:
                    raise ValueError(
                        f"bad value {value!r} for override {key!r} in "
                        f"flow spec {spec!r}: {exc}"
                    ) from None
            else:
                allowed = ["effort"] + sorted(flow.spec_params)
                hint = did_you_mean(key, allowed)
                raise ValueError(
                    f"flow {name!r} does not accept override {key!r} "
                    f"in spec {spec!r} (allowed: {allowed}){hint}"
                )
        return FlowSpec(spec=spec, flow=flow, overrides=overrides)


#: The process-wide registry; flow modules populate it at import time.
REGISTRY = FlowRegistry()


def register(flow: Flow, *, replace: bool = False) -> Flow:
    """Register into the global registry (module-level convenience)."""
    return REGISTRY.register(flow, replace=replace)


def get_flow(name: str) -> Flow:
    return REGISTRY.get(name)


def flow_names() -> list[str]:
    return REGISTRY.names()


def resolve_spec(spec: str) -> Callable:
    return REGISTRY.resolve(spec)
