"""Team 2 (UFPel/UFRGS): J48 and PART via cross-validated selection.

The WEKA pipeline: convert the PLA to a tabular dataset, run J48
(C4.5) and PART with five confidence factors each, pick the winning
classifier+CF by cross-validation, then tune the minimum-instances
parameter (``-M``), train on train+validation merged and convert —
J48 through a PLA (``j48topla``), PART through a priority network.
"""

from __future__ import annotations

from repro.contest.problem import LearningProblem, Solution
from repro.flows.api import (
    Candidate,
    FinalizeSpec,
    Flow,
    FlowContext,
    Stage,
    select_sole_candidate,
)
from repro.flows.registry import register
from repro.ml.decision_tree import DecisionTree
from repro.ml.metrics import cross_val_accuracy
from repro.ml.rules import PartRuleLearner
from repro.synth.from_rules import rules_to_aig
from repro.synth.from_sop import cover_to_aig


def _fit_j48(X, y, cf: float, min_inst: int) -> DecisionTree:
    tree = DecisionTree(min_samples_leaf=max(1, min_inst))
    tree.fit(X, y)
    tree.prune(cf)
    return tree


def _cv_family_stage(ctx: FlowContext) -> None:
    """Step 1: pick classifier family and confidence factor by CV."""
    params, rng = ctx.params, ctx.rng
    merged = ctx.merged_train_valid()
    X, y = merged.X, merged.y
    best = None  # (cv_acc, family, cf)
    for cf in params["confidence_factors"]:
        j48_cv = cross_val_accuracy(
            lambda Xa, ya, Xb, cf=cf: _fit_j48(Xa, ya, cf, 2).predict(Xb),
            X, y, params["cv_folds"], rng,
        )
        part_cv = cross_val_accuracy(
            lambda Xa, ya, Xb, cf=cf: PartRuleLearner(
                confidence_factor=cf
            ).fit(Xa, ya).predict(Xb),
            X, y, params["cv_folds"], rng,
        )
        for family, acc in (("j48", j48_cv), ("part", part_cv)):
            if best is None or acc > best[0]:
                best = (acc, family, cf)
    _, ctx.state["family"], ctx.state["cf"] = best


def _tune_min_instances_stage(ctx: FlowContext) -> None:
    """Step 2: tune the minimum-instances parameter."""
    params, rng = ctx.params, ctx.rng
    merged = ctx.merged_train_valid()
    X, y = merged.X, merged.y
    family, cf = ctx.state["family"], ctx.state["cf"]
    best_m = None  # (cv_acc, m)
    for m in params["min_instances"]:
        if family == "j48":
            acc = cross_val_accuracy(
                lambda Xa, ya, Xb, m=m: _fit_j48(Xa, ya, cf, m).predict(Xb),
                X, y, params["cv_folds"], rng,
            )
        else:
            acc = cross_val_accuracy(
                lambda Xa, ya, Xb, m=m: PartRuleLearner(
                    confidence_factor=cf, min_samples_leaf=max(1, m)
                ).fit(Xa, ya).predict(Xb),
                X, y, params["cv_folds"], rng,
            )
        if best_m is None or acc > best_m[0]:
            best_m = (acc, m)
    _, ctx.state["min_instances"] = best_m


def _train_final_stage(ctx: FlowContext) -> list[Candidate]:
    """Step 3: final training and conversion."""
    merged = ctx.merged_train_valid()
    X, y = merged.X, merged.y
    family, cf = ctx.state["family"], ctx.state["cf"]
    m = ctx.state["min_instances"]
    if family == "j48":
        tree = _fit_j48(X, y, cf, m)
        aig = cover_to_aig(tree.to_cover())
        meta = {"family": "j48", "cf": cf, "min_instances": m,
                "leaves": tree.num_leaves()}
    else:
        rules = PartRuleLearner(
            confidence_factor=cf, min_samples_leaf=max(1, m)
        ).fit(X, y)
        aig = rules_to_aig(rules)
        meta = {"family": "part", "cf": cf, "min_instances": m,
                "rules": len(rules)}
    return [Candidate(family, aig, provenance=meta)]


FLOW = register(Flow(
    "team02",
    team="UFPel/UFRGS",
    techniques={"decision tree", "rule learner"},
    description="J48 vs PART by cross-validation, -M tuning, retrain "
                "on train+valid",
    efforts={
        "small": {
            "confidence_factors": (0.01, 0.25),
            "min_instances": (1, 3),
            "cv_folds": 3,
        },
        "full": {
            "confidence_factors": (0.001, 0.01, 0.1, 0.25, 0.5),
            "min_instances": (1, 2, 3, 4, 5, 10),
            "cv_folds": 10,
        },
    },
    stages=(
        Stage("cv-family", _cv_family_stage,
              "choose J48 vs PART and the confidence factor by CV"),
        Stage("tune-min-instances", _tune_min_instances_stage,
              "tune -M at the chosen family/CF"),
        Stage("train-final", _train_final_stage,
              "train on train+valid merged and convert to an AIG"),
    ),
    finalize=FinalizeSpec(),
    select=select_sole_candidate,
))


def run(
    problem: LearningProblem, effort: str = "small", master_seed: int = 0
) -> Solution:
    """Deprecated shim — use ``repro.flows.get_flow("team02")``."""
    return FLOW.run(problem, effort=effort, master_seed=master_seed)
