"""Team 2 (UFPel/UFRGS): J48 and PART via cross-validated selection.

The WEKA pipeline: convert the PLA to a tabular dataset, run J48
(C4.5) and PART with five confidence factors each, pick the winning
classifier+CF by cross-validation, then tune the minimum-instances
parameter (``-M``), train on train+validation merged and convert —
J48 through a PLA (``j48topla``), PART through a priority network.
"""

from __future__ import annotations

import numpy as np

from repro.contest.problem import LearningProblem, Solution
from repro.flows.common import finalize_aig, flow_rng
from repro.ml.decision_tree import DecisionTree
from repro.ml.metrics import cross_val_accuracy
from repro.ml.rules import PartRuleLearner
from repro.synth.from_sop import cover_to_aig
from repro.synth.from_rules import rules_to_aig

_PARAMS = {
    "small": {
        "confidence_factors": (0.01, 0.25),
        "min_instances": (1, 3),
        "cv_folds": 3,
    },
    "full": {
        "confidence_factors": (0.001, 0.01, 0.1, 0.25, 0.5),
        "min_instances": (1, 2, 3, 4, 5, 10),
        "cv_folds": 10,
    },
}


def _fit_j48(X, y, cf: float, min_inst: int) -> DecisionTree:
    tree = DecisionTree(min_samples_leaf=max(1, min_inst))
    tree.fit(X, y)
    tree.prune(cf)
    return tree


def run(
    problem: LearningProblem, effort: str = "small", master_seed: int = 0
) -> Solution:
    params = _PARAMS[effort]
    rng = flow_rng("team02", problem, master_seed)
    merged = problem.merged_train_valid()
    X, y = merged.X, merged.y

    # Step 1: pick classifier family and confidence factor by CV.
    best = None  # (cv_acc, family, cf)
    for cf in params["confidence_factors"]:
        j48_cv = cross_val_accuracy(
            lambda Xa, ya, Xb, cf=cf: _fit_j48(Xa, ya, cf, 2).predict(Xb),
            X, y, params["cv_folds"], rng,
        )
        part_cv = cross_val_accuracy(
            lambda Xa, ya, Xb, cf=cf: PartRuleLearner(
                confidence_factor=cf
            ).fit(Xa, ya).predict(Xb),
            X, y, params["cv_folds"], rng,
        )
        for family, acc in (("j48", j48_cv), ("part", part_cv)):
            if best is None or acc > best[0]:
                best = (acc, family, cf)
    _, family, cf = best

    # Step 2: tune the minimum-instances parameter.
    best_m = None  # (cv_acc, m)
    for m in params["min_instances"]:
        if family == "j48":
            acc = cross_val_accuracy(
                lambda Xa, ya, Xb, m=m: _fit_j48(Xa, ya, cf, m).predict(Xb),
                X, y, params["cv_folds"], rng,
            )
        else:
            acc = cross_val_accuracy(
                lambda Xa, ya, Xb, m=m: PartRuleLearner(
                    confidence_factor=cf, min_samples_leaf=max(1, m)
                ).fit(Xa, ya).predict(Xb),
                X, y, params["cv_folds"], rng,
            )
        if best_m is None or acc > best_m[0]:
            best_m = (acc, m)
    _, m = best_m

    # Step 3: final training and conversion.
    if family == "j48":
        tree = _fit_j48(X, y, cf, m)
        aig = cover_to_aig(tree.to_cover())
        meta = {"family": "j48", "cf": cf, "min_instances": m,
                "leaves": tree.num_leaves()}
    else:
        rules = PartRuleLearner(
            confidence_factor=cf, min_samples_leaf=max(1, m)
        ).fit(X, y)
        aig = rules_to_aig(rules)
        meta = {"family": "part", "cf": cf, "min_instances": m,
                "rules": len(rules)}
    aig = finalize_aig(aig, rng)
    return Solution(aig=aig, method=f"team02:{family}", metadata=meta)
