"""Team 7 (Wisconsin/IBM): function matching, else trees or XGBoost.

Before any ML, the training data is checked against symmetric
functions and pre-defined arithmetic patterns (the SHAP analysis in
the appendix is how such patterns were found); a hit emits the exact
custom AIG.  Otherwise 10-fold cross-validation decides between a
single unlimited-depth decision tree and a gradient-boosted ensemble
(125 trees, depth 5 at full effort); tree leaves become minimized SOP
terms, boosted leaves are quantized to one bit and aggregated with the
MAJ-5 network of Fig. 25.  Depth/round reductions kick in if the AIG
busts the cap.
"""

from __future__ import annotations

from repro.contest.problem import MAX_AND_NODES, LearningProblem, Solution
from repro.flows.common import aig_accuracy, finalize_aig, flow_rng
from repro.ml.boosting import GradientBoostedTrees
from repro.ml.decision_tree import DecisionTree
from repro.ml.metrics import cross_val_accuracy
from repro.synth.from_boosted import boosted_to_aig
from repro.synth.from_sop import cover_to_aig
from repro.synth.matching import match_standard_function

_PARAMS = {
    "small": {"n_rounds": 40, "depth": 4, "cv_folds": 3},
    "full": {"n_rounds": 125, "depth": 5, "cv_folds": 10},
}


def run(
    problem: LearningProblem, effort: str = "small", master_seed: int = 0
) -> Solution:
    params = _PARAMS[effort]
    rng = flow_rng("team07", problem, master_seed)
    merged = problem.merged_train_valid()

    match = match_standard_function(merged.X, merged.y)
    if match is not None:
        return Solution(
            aig=match.aig.extract_cone(),
            method="team07:match",
            metadata={"matched": match.name},
        )

    X, y = problem.train.X, problem.train.y
    dt_cv = cross_val_accuracy(
        lambda Xa, ya, Xb: DecisionTree().fit(Xa, ya).predict(Xb),
        X, y, params["cv_folds"], rng,
    )
    xgb_cv = cross_val_accuracy(
        lambda Xa, ya, Xb: GradientBoostedTrees(
            n_estimators=params["n_rounds"] // 2,
            max_depth=params["depth"],
        ).fit(Xa, ya).predict(Xb),
        X, y, params["cv_folds"], rng,
    )

    if dt_cv >= xgb_cv:
        tree = DecisionTree().fit(X, y)
        aig = cover_to_aig(tree.to_cover())
        # Cap handling: re-fit shallower trees until legal.
        depth = 16
        while aig.num_ands > MAX_AND_NODES and depth >= 4:
            tree = DecisionTree(max_depth=depth).fit(X, y)
            aig = cover_to_aig(tree.to_cover())
            depth -= 4
        family = "dt"
    else:
        rounds, depth = params["n_rounds"], params["depth"]
        model = GradientBoostedTrees(
            n_estimators=rounds, max_depth=depth
        ).fit(X, y)
        aig = boosted_to_aig(model)
        while aig.num_ands > MAX_AND_NODES and rounds > 5:
            rounds //= 2
            model = GradientBoostedTrees(
                n_estimators=rounds, max_depth=depth
            ).fit(X, y)
            aig = boosted_to_aig(model)
        family = "xgb"
    aig = finalize_aig(aig, rng)
    return Solution(
        aig=aig,
        method=f"team07:{family}",
        metadata={"dt_cv": dt_cv, "xgb_cv": xgb_cv},
    )
