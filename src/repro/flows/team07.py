"""Team 7 (Wisconsin/IBM): function matching, else trees or XGBoost.

Before any ML, the training data is checked against symmetric
functions and pre-defined arithmetic patterns (the SHAP analysis in
the appendix is how such patterns were found); a hit emits the exact
custom AIG.  Otherwise 10-fold cross-validation decides between a
single unlimited-depth decision tree and a gradient-boosted ensemble
(125 trees, depth 5 at full effort); tree leaves become minimized SOP
terms, boosted leaves are quantized to one bit and aggregated with the
MAJ-5 network of Fig. 25.  Depth/round reductions kick in if the AIG
busts the cap.
"""

from __future__ import annotations

from repro.contest.problem import MAX_AND_NODES, LearningProblem, Solution
from repro.flows.api import (
    Candidate,
    FinalizeSpec,
    Flow,
    FlowContext,
    Stage,
    match_standard_stage,
    select_sole_candidate,
)
from repro.flows.registry import register
from repro.ml.boosting import GradientBoostedTrees
from repro.ml.decision_tree import DecisionTree
from repro.ml.metrics import cross_val_accuracy
from repro.synth.from_boosted import boosted_to_aig
from repro.synth.from_sop import cover_to_aig


def _model_stage(ctx: FlowContext) -> list[Candidate]:
    """CV chooses DT vs boosted trees; cap recovery refits smaller."""
    params, rng = ctx.params, ctx.rng
    X, y = ctx.problem.train.X, ctx.problem.train.y
    dt_cv = cross_val_accuracy(
        lambda Xa, ya, Xb: DecisionTree().fit(Xa, ya).predict(Xb),
        X, y, params["cv_folds"], rng,
    )
    xgb_cv = cross_val_accuracy(
        lambda Xa, ya, Xb: GradientBoostedTrees(
            n_estimators=params["n_rounds"] // 2,
            max_depth=params["depth"],
        ).fit(Xa, ya).predict(Xb),
        X, y, params["cv_folds"], rng,
    )

    if dt_cv >= xgb_cv:
        tree = DecisionTree().fit(X, y)
        aig = cover_to_aig(tree.to_cover())
        # Cap handling: re-fit shallower trees until legal.
        depth = 16
        while aig.num_ands > MAX_AND_NODES and depth >= 4:
            tree = DecisionTree(max_depth=depth).fit(X, y)
            aig = cover_to_aig(tree.to_cover())
            depth -= 4
        family = "dt"
    else:
        rounds, depth = params["n_rounds"], params["depth"]
        model = GradientBoostedTrees(
            n_estimators=rounds, max_depth=depth
        ).fit(X, y)
        aig = boosted_to_aig(model)
        while aig.num_ands > MAX_AND_NODES and rounds > 5:
            rounds //= 2
            model = GradientBoostedTrees(
                n_estimators=rounds, max_depth=depth
            ).fit(X, y)
            aig = boosted_to_aig(model)
        family = "xgb"
    return [Candidate(
        family, aig, provenance={"dt_cv": dt_cv, "xgb_cv": xgb_cv}
    )]


FLOW = register(Flow(
    "team07",
    team="Wisconsin/IBM",
    techniques={"decision tree", "boosting", "function matching",
                "feature selection"},
    description="Standard-function matching, else CV-chosen DT vs "
                "gradient boosting with cap recovery",
    efforts={
        "small": {"n_rounds": 40, "depth": 4, "cv_folds": 3},
        "full": {"n_rounds": 125, "depth": 5, "cv_folds": 10},
    },
    stages=(
        Stage("match", match_standard_stage,
              "exact standard-function hit ends the flow"),
        Stage("model", _model_stage,
              "CV-selected DT or boosted ensemble"),
    ),
    finalize=FinalizeSpec(),
    select=select_sole_candidate,
))


def run(
    problem: LearningProblem, effort: str = "small", master_seed: int = 0
) -> Solution:
    """Deprecated shim — use ``repro.flows.get_flow("team07")``."""
    return FLOW.run(problem, effort=effort, master_seed=master_seed)
