"""Team 5 (UFRGS/UFSC): DT/RF grids + NN-guided expression search.

Decision trees and 3-tree forests are swept over depth {10, 20}, two
training-set proportions (80% and 40% of the merged data, both scored
on the same 20% validation split) and SelectKBest / SelectPercentile
feature pre-selection with three scoring functions.  Separately, an
MLP ranks features by first-layer weight magnitude and a small
exhaustive search applies OR/XOR/AND/NOT combinations over the top
four features (the XOR2 rescue path).  The best SOP under the node cap
wins.
"""

from __future__ import annotations

from itertools import combinations, product

import numpy as np

from repro.aig.aig import AIG, lit_not
from repro.contest.problem import LearningProblem, Solution
from repro.flows.api import (
    ArtifactCache,
    Candidate,
    FinalizeSpec,
    Flow,
    FlowContext,
    Stage,
)
from repro.flows.registry import register
from repro.ml.dataset import Dataset
from repro.ml.decision_tree import DecisionTree
from repro.ml.feature_select import select_k_best, select_percentile
from repro.ml.forest import RandomForest
from repro.ml.metrics import accuracy
from repro.ml.mlp import MLP
from repro.synth.from_forest import forest_to_aig
from repro.synth.from_tree import tree_to_aig

# The 2-level expression shapes of the exhaustive four-feature search.
_OPS = ("and", "or", "xor")


def _apply_op(op: str, a, b):
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    return a ^ b


def _expression_search(
    features: np.ndarray, X, y, Xv, yv
) -> tuple[float, tuple]:
    """Exhaustive OR/XOR/AND/NOT combinations over <= 4 features."""
    best = (-1.0, None)
    cols = {f: X[:, f].astype(bool) for f in features}
    vcols = {f: Xv[:, f].astype(bool) for f in features}
    for subset in list(combinations(features, 2)) + list(
        combinations(features, 3)
    ) + list(combinations(features, 4)):
        for negs in product((0, 1), repeat=len(subset)):
            vals = [
                ~cols[f] if neg else cols[f]
                for f, neg in zip(subset, negs, strict=True)
            ]
            vvals = [
                ~vcols[f] if neg else vcols[f]
                for f, neg in zip(subset, negs, strict=True)
            ]
            for ops in product(_OPS, repeat=len(subset) - 1):
                acc_val = vals[0]
                vacc = vvals[0]
                for op, nxt, vnxt in zip(ops, vals[1:], vvals[1:], strict=True):
                    acc_val = _apply_op(op, acc_val, nxt)
                    vacc = _apply_op(op, vacc, vnxt)
                train_acc = accuracy(y, acc_val.astype(np.uint8))
                if train_acc < 0.75:
                    continue
                valid_acc = accuracy(yv, vacc.astype(np.uint8))
                if valid_acc > best[0]:
                    best = (valid_acc, (subset, negs, ops))
    return best


def _expression_aig(n_inputs: int, recipe) -> AIG:
    subset, negs, ops = recipe
    aig = AIG(n_inputs)
    lits = [
        lit_not(aig.input_lit(f)) if neg else aig.input_lit(f)
        for f, neg in zip(subset, negs, strict=True)
    ]
    out = lits[0]
    for op, nxt in zip(ops, lits[1:], strict=True):
        if op == "and":
            out = aig.add_and(out, nxt)
        elif op == "or":
            out = aig.add_or(out, nxt)
        else:
            out = aig.add_xor(out, nxt)
    aig.set_output(out)
    return aig


def _split_stage(ctx: FlowContext) -> None:
    """80/20 stratified split preserving the label distribution; the
    20% side is the flow's private selection set."""
    merged = ctx.merged_train_valid()
    train80, valid20 = merged.split_stratified(0.8, ctx.rng)
    ctx.state["train80"] = train80
    ctx.state["selection_data"] = valid20


def _grid_stage(ctx: FlowContext) -> list[Candidate]:
    """The DT/RF sweep over (seed, proportion, selector, depth).

    Decision trees are deterministic in their training data, so the
    synthesized+embedded tree AIG is cached by a digest of (columns,
    data): at full effort the 80%-proportion grid cells are identical
    across the three sweep seeds and train once.  Forests draw from
    the per-seed RNG stream and are never cached.
    """
    params, problem = ctx.params, ctx.problem
    train80 = ctx.state["train80"]
    out: list[Candidate] = []
    for seed in params["seeds"]:
        seed_rng = ctx.derive_rng("grid", seed)
        for proportion in params["proportions"]:
            if proportion >= 0.8:
                train = train80
            else:
                train = train80.sample_fraction(
                    proportion / 0.8, seed_rng
                )
            for selector in params["selectors"]:
                cols = _select(train, selector)
                Xs = train.X[:, cols]
                for depth in params["depths"]:
                    digest = ArtifactCache.dataset_digest(
                        Xs, train.y, cols
                    )
                    tree_aig = ctx.artifact(
                        "decision-tree",
                        (digest, depth, "gini", problem.n_inputs),
                        lambda: _embed(
                            tree_to_aig(DecisionTree(
                                max_depth=depth, criterion="gini"
                            ).fit(Xs, train.y)),
                            cols, problem.n_inputs,
                        ),
                    )
                    out.append(Candidate(
                        f"dt[d={depth},p={proportion}]", tree_aig
                    ))
                    forest = RandomForest(
                        n_trees=3, max_depth=depth,
                        feature_fraction=0.7, rng=seed_rng,
                    ).fit(Xs, train.y)
                    out.append(Candidate(
                        f"rf3[d={depth},p={proportion}]",
                        _embed(forest_to_aig(forest), cols,
                               problem.n_inputs),
                    ))
    return out


def _expression_stage(ctx: FlowContext) -> list[Candidate]:
    """NN-guided four-feature expression search."""
    params, problem = ctx.params, ctx.problem
    train80 = ctx.state["train80"]
    valid20 = ctx.state["selection_data"]
    mlp = MLP(hidden_sizes=(100,), activation="relu", rng=ctx.rng)
    mlp.fit(train80.X.astype(float), train80.y,
            epochs=params["mlp_epochs"])
    top4 = np.argsort(-mlp.feature_importance(), kind="stable")[:4]
    score, recipe = _expression_search(
        top4, train80.X, train80.y, valid20.X, valid20.y
    )
    if recipe is None:
        return []
    return [Candidate("nn-expr", _expression_aig(problem.n_inputs, recipe))]


def _select(train: Dataset, selector) -> np.ndarray:
    if selector is None:
        return np.arange(train.n_inputs)
    kind, amount, score = selector
    if kind == "kbest":
        k = max(1, int(round(amount * train.n_inputs)))
        return select_k_best(train.X, train.y, k, score)
    return select_percentile(train.X, train.y, amount, score)


def _embed(aig: AIG, cols: np.ndarray, n_inputs: int) -> AIG:
    """Remap a model built on selected columns to the full input list."""
    if len(cols) == n_inputs and np.array_equal(cols,
                                                np.arange(n_inputs)):
        return aig
    out = AIG(n_inputs)
    mapping = {0: 0}
    for local, global_col in enumerate(cols):
        mapping[1 + local] = out.input_lit(int(global_col))
    base = aig.n_inputs + 1
    for j in range(aig.num_ands):
        f0, f1 = aig.fanins(base + j)
        a = mapping[f0 >> 1] ^ (f0 & 1)
        b = mapping[f1 >> 1] ^ (f1 & 1)
        mapping[base + j] = out.add_and(a, b)
    lit = aig.outputs[0]
    out.set_output(mapping[lit >> 1] ^ (lit & 1))
    return out


FLOW = register(Flow(
    "team05",
    team="UFRGS/UFSC",
    techniques={"decision tree", "random forest", "neural network",
                "feature selection"},
    description="DT/RF hyper-grid with feature pre-selection plus the "
                "NN-guided 4-feature expression rescue",
    efforts={
        "small": {
            "depths": (10,),
            "proportions": (0.8, 0.4),
            "selectors": (None, ("kbest", 0.5, "chi2")),
            "seeds": (0,),
            "mlp_epochs": 10,
        },
        "full": {
            "depths": (10, 20),
            "proportions": (0.8, 0.4),
            "selectors": (
                None,
                ("kbest", 0.25, "chi2"), ("kbest", 0.5, "chi2"),
                ("kbest", 0.75, "chi2"),
                ("kbest", 0.5, "f_classif"),
                ("kbest", 0.5, "mutual_info_classif"),
                ("percentile", 25, "chi2"), ("percentile", 50, "chi2"),
                ("percentile", 75, "chi2"),
            ),
            "seeds": (0, 1, 2),
            "mlp_epochs": 30,
        },
    },
    stages=(
        Stage("split", _split_stage, "80/20 stratified re-split"),
        Stage("grid", _grid_stage, "DT/RF sweep with feature selection"),
        Stage("nn-expr", _expression_stage,
              "NN-ranked 4-feature expression search"),
    ),
    # The team skipped the expensive passes on big SOPs.
    finalize=FinalizeSpec(optimize=lambda aig: aig.num_ands < 4000),
))


def run(
    problem: LearningProblem, effort: str = "small", master_seed: int = 0
) -> Solution:
    """Deprecated shim — use ``repro.flows.get_flow("team05")``."""
    return FLOW.run(problem, effort=effort, master_seed=master_seed)
