"""Team 4 (UT Austin): feature selection + AFN-style net + subspace
expansion.

The boolean space is pruned by a two-level feature-importance ranking
(an ensemble-model permutation importance, then score-based
cross-checked rankings) producing top-k feature groups for k in
[10, 16].  A logarithmic-interaction network (our AFN substitute) is
trained per group; its predictions over the full 2^k sub-hypercube are
expanded into a PLA whose pruned inputs are don't cares, synthesized,
and the best accuracy-vs-node candidate is kept (re-splitting the data
and retrying when everything scores badly).
"""

from __future__ import annotations

import numpy as np

from repro.aig.aig import AIG
from repro.aig.build import mux_tree_from_table
from repro.contest.problem import MAX_AND_NODES, LearningProblem, Solution
from repro.flows.api import Candidate, Flow, FlowContext, Stage
from repro.flows.common import constant_solution, finalize_aig, pick_best
from repro.flows.registry import register
from repro.ml.feature_select import (
    chi2_scores,
    mutual_info_scores,
    permutation_importance,
)
from repro.ml.forest import RandomForest
from repro.ml.mlp import LogInteractionNet


def _feature_groups(problem, params, rng) -> list[np.ndarray]:
    """Two-level importance ranking -> candidate feature index groups."""
    X, y = problem.train.X, problem.train.y
    n = X.shape[1]
    groups: list[np.ndarray] = []
    # Level 1: permutation importance of a small forest ensemble.
    forest = RandomForest(
        n_trees=9, max_depth=6, feature_fraction=0.5, rng=rng
    ).fit(X, y)
    sub = problem.valid.X[:512], problem.valid.y[:512]
    perm = permutation_importance(
        forest.predict, sub[0], sub[1],
        n_repeats=params["perm_repeats"], rng=rng,
    )
    # Level 2: model-free scores cross-checked.
    scores2 = chi2_scores(X, y) + mutual_info_scores(X, y)
    for k in params["ks"]:
        k = min(k, n)
        groups.append(np.sort(np.argsort(-perm, kind="stable")[:k]))
        groups.append(np.sort(np.argsort(-scores2, kind="stable")[:k]))
    # Deduplicate identical groups.
    unique = []
    seen = set()
    for g in groups:
        key = tuple(g.tolist())
        if key not in seen:
            seen.add(key)
            unique.append(g)
    return unique


def _subspace_aig(
    problem, group: np.ndarray, model: LogInteractionNet
) -> AIG:
    """Predict all 2^k patterns and synthesize over the selected
    features (the pruned inputs become structural don't cares)."""
    k = len(group)
    grid = np.zeros((1 << k, k), dtype=np.uint8)
    for i in range(k):
        grid[:, i] = (np.arange(1 << k) >> i) & 1
    pred = model.predict(grid)
    table = 0
    for m in np.nonzero(pred)[0]:
        table |= 1 << int(m)
    aig = AIG(problem.n_inputs)
    leaves = [aig.input_lit(int(c)) for c in group]
    aig.set_output(mux_tree_from_table(aig, table, leaves))
    return aig


def _afn_search_stage(ctx: FlowContext) -> list[Candidate]:
    """The whole retry loop: rank features, train per-group nets,
    expand subspaces, keep retrying (fresh RNG stream per attempt)
    until a candidate validates at 60%+ or attempts run out.  The
    chosen attempt's ``pick_best`` result is stashed for the selector,
    so the validation sweep runs once."""
    params, problem = ctx.params, ctx.problem
    candidates: list[Candidate] = []
    best = None
    for attempt in range(params["retries"] + 1):
        rng = ctx.derive_rng(attempt)
        groups = _feature_groups(problem, params, rng)
        candidates = []
        for gi, group in enumerate(groups):
            model = LogInteractionNet(
                n_cross=params["n_cross"],
                hidden_sizes=params["hidden"],
                rng=rng,
            )
            model.fit(
                problem.train.X[:, group], problem.train.y,
                epochs=params["epochs"],
            )
            aig = _subspace_aig(problem, group, model)
            aig = finalize_aig(aig, rng, max_nodes=MAX_AND_NODES)
            candidates.append(Candidate(f"afn[k={len(group)},g={gi}]", aig))
        best = pick_best(
            [(c.name, c.aig) for c in candidates], problem.valid
        )
        if best is not None and best[2] >= 0.6:
            break
    ctx.state["best"] = best
    return candidates


def _select_stashed_best(ctx: FlowContext) -> Solution:
    """Package the winner the search stage already scored (identical
    outcome to the default funnel, minus a redundant re-simulation)."""
    best = ctx.state["best"]
    if best is None:
        return constant_solution(ctx.problem, ctx.flow.name)
    name, aig, acc = best
    return ctx.flow.package(ctx, name, aig, acc)


FLOW = register(Flow(
    "team04",
    team="UT Austin",
    techniques={"neural network", "feature selection", "boosting"},
    description="Importance-ranked feature groups, AFN-style nets, "
                "2^k subspace expansion with retries",
    efforts={
        "small": {
            "ks": (10, 12),
            "epochs": 15,
            "n_cross": 24,
            "hidden": (32,),
            "perm_repeats": 2,
            "retries": 1,
        },
        "full": {
            "ks": (10, 11, 12, 13, 14, 15, 16),
            "epochs": 60,
            "n_cross": 64,
            "hidden": (80, 64),
            "perm_repeats": 10,
            "retries": 3,
        },
    },
    stages=(
        Stage("afn-search", _afn_search_stage,
              "feature groups -> subspace nets, retry on bad scores"),
    ),
    finalize=None,  # finalization happens inside the attempt loop
    select=_select_stashed_best,
))


def run(
    problem: LearningProblem, effort: str = "small", master_seed: int = 0
) -> Solution:
    """Deprecated shim — use ``repro.flows.get_flow("team04")``."""
    return FLOW.run(problem, effort=effort, master_seed=master_seed)
