"""Accuracy-area trade-off flow (the paper's second proposed extension).

The conclusion asks for "algorithms generating an optimal trade-off
between accuracy and area (instead of a single solution)".  This flow
returns a *Pareto set* of solutions per benchmark: candidates are
generated along two axes that the paper identifies as the main
accuracy/size levers — model capacity (tree depth / forest size) and
Team 1-style post-hoc approximation — then filtered to the frontier
using validation accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aig.aig import AIG
from repro.aig.approx import approximate_to_size
from repro.contest.problem import LearningProblem, Solution
from repro.flows.common import aig_accuracy, flow_rng
from repro.ml.decision_tree import DecisionTree
from repro.ml.forest import RandomForest
from repro.synth.from_forest import forest_to_aig
from repro.synth.from_tree import tree_to_aig


@dataclass
class TradeoffPoint:
    """One Pareto-frontier entry."""

    solution: Solution
    valid_accuracy: float

    @property
    def num_ands(self) -> int:
        return self.solution.num_ands


def run_tradeoff(
    problem: LearningProblem,
    effort: str = "small",
    master_seed: int = 0,
) -> list[TradeoffPoint]:
    """Return the validation-accuracy/size Pareto set (size ascending).

    Every returned circuit respects the 5000-node cap; successive
    entries strictly increase in both size and validation accuracy.
    """
    rng = flow_rng("tradeoff", problem, master_seed)
    depths = (2, 4, 6, 8) if effort == "small" else (2, 4, 6, 8, 10, 12)
    forest_sizes = (3, 7) if effort == "small" else (3, 7, 11, 15)

    candidates: list[AIG] = []
    for depth in depths:
        tree = DecisionTree(max_depth=depth).fit(
            problem.train.X, problem.train.y
        )
        candidates.append(tree_to_aig(tree).extract_cone())
    for n_trees in forest_sizes:
        forest = RandomForest(
            n_trees=n_trees, max_depth=8, feature_fraction=0.6, rng=rng
        ).fit(problem.train.X, problem.train.y)
        candidates.append(forest_to_aig(forest).extract_cone())
    # Approximation ladder from the largest candidate.
    largest = max(candidates, key=lambda a: a.num_ands)
    target = largest.num_ands // 2
    while target >= 8:
        candidates.append(
            approximate_to_size(largest, max_ands=target, rng=rng)
        )
        target //= 2

    scored = [
        (aig, aig_accuracy(aig, problem.valid))
        for aig in candidates
        if aig.num_ands <= 5000
    ]
    scored.sort(key=lambda entry: (entry[0].num_ands, -entry[1]))
    frontier: list[TradeoffPoint] = []
    best = -1.0
    for aig, acc in scored:
        if acc > best:
            best = acc
            frontier.append(
                TradeoffPoint(
                    solution=Solution(aig=aig, method="tradeoff"),
                    valid_accuracy=acc,
                )
            )
    return frontier
