"""Shared plumbing for the team flows.

The pieces every flow funnels through: the per-flow deterministic RNG
stream (:func:`flow_rng` — named sub-streams of
:func:`repro.utils.rng.rng_for`, so two flows on the same problem
never share randomness), the legality funnel (:func:`finalize_aig` —
cone-extract, optimize, approximate under the contest node cap) and
candidate selection (:func:`pick_best` — accuracy first, used-node
count as tie-break, over-cap candidates only as a last resort).

Determinism contract: everything here is a pure function of its
arguments plus the passed-in RNG stream; given the same ``(flow,
problem, master_seed)`` the same bytes come out.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.aig.aig import AIG, CONST0, CONST1
from repro.aig.approx import approximate_to_size
from repro.aig.optimize import balance, compress
from repro.contest.problem import MAX_AND_NODES, LearningProblem, Solution
from repro.ml.dataset import Dataset
from repro.ml.metrics import accuracy
from repro.sim.batch import output_predictions
from repro.utils.rng import rng_for


def flow_rng(flow: str, problem: LearningProblem, master_seed: int,
             *extra) -> np.random.Generator:
    """Deterministic per-flow, per-benchmark RNG stream."""
    return rng_for("flow", flow, problem.name, master_seed, *extra)


def aig_accuracy(aig: AIG, data: Dataset) -> float:
    """Accuracy of a single-output AIG on a dataset."""
    return accuracy(data.y, aig.simulate(data.X)[:, 0])


def constant_solution(problem: LearningProblem, method: str) -> Solution:
    """Majority-constant fallback when nothing can be trained."""
    aig = AIG(problem.n_inputs)
    majority = problem.train.merge(problem.valid).onset_fraction() > 0.5
    aig.set_output(CONST1 if majority else CONST0)
    return Solution(aig=aig, method=f"{method}+const")


def finalize_aig(
    aig: AIG,
    rng: np.random.Generator,
    max_nodes: int = MAX_AND_NODES,
    optimize: bool = True,
    optimize_limit: int = 20000,
) -> AIG:
    """Post-process a candidate circuit the way the teams used ABC.

    Garbage-collects, optimizes (skipping the expensive passes on very
    large graphs), and applies Team 1-style approximation if the result
    still exceeds the node cap.
    """
    aig = aig.extract_cone()
    if optimize:
        if aig.num_ands <= optimize_limit:
            aig = compress(aig)
        else:
            aig = balance(aig)
    if aig.num_ands > max_nodes:
        aig = approximate_to_size(aig, max_ands=max_nodes, rng=rng)
        if aig.num_ands <= optimize_limit:
            aig = compress(aig)
    return aig


def pick_best(
    candidates: Iterable[tuple[str, AIG]],
    data: Dataset,
    max_nodes: int = MAX_AND_NODES,
) -> tuple[str, AIG, float] | None:
    """Best legal candidate by accuracy on ``data`` (ties: smaller).

    Candidates over the node cap are only used if nothing legal exists;
    they obey the same ``(accuracy, size)`` ordering.  All candidates
    are scored in one batched pass (``data`` is bit-packed once).

    Size — both for the cap check and the tie-break — is the *used*
    node count, so a candidate that was never cone-extracted is not
    mis-ranked (or wrongly rejected as over-cap) because of dead logic
    the final circuit would not even ship.
    """
    candidates = list(candidates)
    if not candidates:
        return None
    preds = output_predictions([aig for _, aig in candidates], data.X)
    sizes = {id(aig): aig.count_used_ands() for _, aig in candidates}
    best: tuple[str, AIG, float] | None = None
    fallback: tuple[str, AIG, float] | None = None

    def better(entry, incumbent):
        if incumbent is None:
            return True
        acc, inc_acc = entry[2], incumbent[2]
        return acc > inc_acc or (
            acc == inc_acc and sizes[id(entry[1])] < sizes[id(incumbent[1])]
        )

    for (name, aig), pred in zip(candidates, preds, strict=True):
        entry = (name, aig, accuracy(data.y, pred))
        if sizes[id(aig)] <= max_nodes:
            if better(entry, best):
                best = entry
        elif better(entry, fallback):
            fallback = entry
    return best if best is not None else fallback
