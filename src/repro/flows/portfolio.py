"""The portfolio: a registered composite flow over the team flows.

The paper's Fig. 2 Pareto analysis uses the per-benchmark best
solution across teams ("virtual best").  ``virtual_best`` selects it
from a set of already-evaluated scores; the registered ``portfolio``
flow executes a chosen subset of member flows and keeps the winner by
validation accuracy (the only fair selector a participant could have
used).

As a :class:`~repro.flows.api.Flow` the portfolio honours the same
contract as every team flow — ``run(problem, effort, master_seed)`` —
so it is runnable from the CLI (``repro run --flow portfolio``), valid
in contest grids, and resolvable by spec string
(``portfolio:flows=team01+team10,jobs=4``).  Member flows run with a
*shared* :class:`~repro.flows.api.ArtifactCache`, so deterministic
artifacts (the merged train+valid dataset, the standard-function match
scan Teams 1 and 7 both perform) are computed once per problem.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.contest.evaluate import Score
from repro.contest.problem import LearningProblem, Solution
from repro.flows import common
from repro.flows.api import (
    ArtifactCache,
    Candidate,
    Flow,
    FlowContext,
    Stage,
)
from repro.flows.registry import REGISTRY, register

#: The ten team flows, in historical ``ALL_FLOWS`` order.
DEFAULT_MEMBERS = tuple(f"team{i:02d}" for i in range(1, 11))


def virtual_best(scores_by_team: dict[str, list[Score]]) -> list[Score]:
    """Per-benchmark best test-accuracy score across teams.

    Ties are broken by circuit size, like the contest ranking.
    """
    by_benchmark: dict[str, list[Score]] = {}
    for scores in scores_by_team.values():
        for s in scores:
            by_benchmark.setdefault(s.benchmark, []).append(s)
    best: list[Score] = []
    for name in sorted(by_benchmark):
        entries = by_benchmark[name]
        entries.sort(key=lambda s: (-s.test_accuracy, s.num_ands))
        best.append(entries[0])
    return best


def _members_stage(ctx: FlowContext) -> list[Candidate]:
    """Run the member flows and emit each winner's circuit.

    With ``jobs > 1`` the member flows execute concurrently on a
    process pool through the runner task layer; each flow is a pure
    function of (problem, seed), so the selected solution is identical
    to the serial run's.  The serial path passes this flow's artifact
    cache down, so members share deterministic artifacts.
    """
    names = ctx.state.get("flows")
    names = list(names) if names is not None else list(DEFAULT_MEMBERS)
    jobs = ctx.state.get("jobs") or 1
    if jobs > 1 and len(names) > 1:
        from concurrent.futures import ProcessPoolExecutor

        from repro.runner import run_flow_on_problem

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(run_flow_on_problem, ctx.problem, name,
                            ctx.effort, ctx.master_seed)
                for name in names
            ]
            # Collect in submission order: selection must see the same
            # candidate order as the serial loop.
            solutions = {
                name: future.result()
                for name, future in zip(names, futures, strict=True)
            }
    else:
        solutions = {
            name: REGISTRY.resolve(name)(
                ctx.problem, effort=ctx.effort,
                master_seed=ctx.master_seed, cache=ctx.cache,
            )
            for name in names
        }
    ctx.state["member_names"] = names
    ctx.state["solutions"] = solutions
    return [Candidate(name, solutions[name].aig) for name in names]


def _select(ctx: FlowContext) -> Solution:
    """Winner by validation accuracy; the chosen member's method is
    propagated (``portfolio:team01:rf9``-style provenance)."""
    best = common.pick_best(
        [(c.name, c.aig) for c in ctx.candidates], ctx.problem.valid
    )
    if best is None:
        # No flows requested (or no flow produced a candidate): fall
        # back to the majority constant rather than crashing.
        fallback = common.constant_solution(ctx.problem, "portfolio")
        fallback.metadata["selected_flow"] = None
        fallback.metadata["valid_accuracy"] = common.aig_accuracy(
            fallback.aig, ctx.problem.valid
        )
        return fallback
    name, aig, acc = best
    chosen = ctx.state["solutions"][name]
    return Solution(
        aig=aig,
        method=f"portfolio:{chosen.method}",
        metadata={"selected_flow": name, "valid_accuracy": acc},
    )


class PortfolioFlow(Flow):
    """Composite flow with two extra (defaulted) contract parameters:
    the member subset and the process-pool width."""

    def run(
        self,
        problem: LearningProblem,
        effort: str = "small",
        master_seed: int = 0,
        *,
        flows: Sequence[str] | None = None,
        jobs: int = 1,
        cache: ArtifactCache | None = None,
    ) -> Solution:
        return self.run_detailed(
            problem, effort=effort, master_seed=master_seed, cache=cache,
            state={"flows": flows, "jobs": jobs},
        ).solution

    __call__ = run


FLOW = register(PortfolioFlow(
    "portfolio",
    team="virtual best",
    techniques={"ensemble"},
    description="Runs member team flows (serially with a shared "
                "artifact cache, or on a process pool) and keeps the "
                "best by validation accuracy",
    # Members interpret the effort knob themselves.
    efforts={"small": {}, "full": {}},
    stages=(
        Stage("members", _members_stage, "run the member flows"),
    ),
    finalize=None,  # members already finalized their circuits
    select=_select,
    spec_params={
        "flows": lambda value: value.split("+"),
        "jobs": int,
    },
))


def run(
    problem: LearningProblem,
    effort: str = "small",
    master_seed: int = 0,
    flows: Sequence[str] | None = None,
    jobs: int = 1,
) -> Solution:
    """Deprecated shim — use ``repro.flows.get_flow("portfolio")``."""
    return FLOW.run(problem, effort=effort, master_seed=master_seed,
                    flows=flows, jobs=jobs)
