"""Virtual-best portfolio over the ten team flows.

The paper's Fig. 2 Pareto analysis uses the per-benchmark best
solution across teams ("virtual best").  ``virtual_best`` selects it
from a set of already-evaluated scores; ``run`` executes a chosen
subset of flows and keeps the winner by validation accuracy (the only
fair selector a participant could have used).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.contest.evaluate import Score
from repro.contest.problem import LearningProblem, Solution
from repro.flows import common


def virtual_best(scores_by_team: Dict[str, List[Score]]) -> List[Score]:
    """Per-benchmark best test-accuracy score across teams.

    Ties are broken by circuit size, like the contest ranking.
    """
    by_benchmark: Dict[str, List[Score]] = {}
    for scores in scores_by_team.values():
        for s in scores:
            by_benchmark.setdefault(s.benchmark, []).append(s)
    best: List[Score] = []
    for name in sorted(by_benchmark):
        entries = by_benchmark[name]
        entries.sort(key=lambda s: (-s.test_accuracy, s.num_ands))
        best.append(entries[0])
    return best


def run(
    problem: LearningProblem,
    effort: str = "small",
    master_seed: int = 0,
    flows: Optional[Sequence[str]] = None,
    jobs: int = 1,
) -> Solution:
    """Run several team flows, keep the best by validation accuracy.

    With ``jobs > 1`` the member flows execute concurrently on a
    process pool through the runner task layer; each flow is a pure
    function of (problem, seed), so the selected solution is identical
    to the serial run's.
    """
    from repro.flows import ALL_FLOWS

    names = list(flows) if flows is not None else list(ALL_FLOWS)
    if jobs > 1 and len(names) > 1:
        from concurrent.futures import ProcessPoolExecutor

        from repro.runner import run_flow_on_problem

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(run_flow_on_problem, problem, name,
                            effort, master_seed)
                for name in names
            ]
            # Collect in submission order: selection must see the same
            # candidate order as the serial loop.
            solutions = {
                name: future.result()
                for name, future in zip(names, futures)
            }
    else:
        solutions = {
            name: ALL_FLOWS[name](problem, effort=effort,
                                  master_seed=master_seed)
            for name in names
        }
    candidates = [(name, solutions[name].aig) for name in names]
    best = common.pick_best(candidates, problem.valid)
    if best is None:
        # No flows requested (or no flow produced a candidate): fall
        # back to the majority constant rather than crashing.
        fallback = common.constant_solution(problem, "portfolio")
        fallback.metadata["selected_flow"] = None
        fallback.metadata["valid_accuracy"] = common.aig_accuracy(
            fallback.aig, problem.valid
        )
        return fallback
    name, aig, acc = best
    chosen = solutions[name]
    return Solution(
        aig=aig,
        method=f"portfolio:{chosen.method}",
        metadata={"selected_flow": name, "valid_accuracy": acc},
    )
