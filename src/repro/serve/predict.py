"""Offline batch scoring: rows file in, predictions file out.

The file format is the obvious one: one sample per line, written as
``n_inputs`` characters of ``0``/``1`` (spaces and commas between
bits are tolerated on input; ``#`` starts a comment).  Output files
hold one line of ``n_outputs`` bits per input row, so a single-output
contest circuit produces one character per line.

This path shares ``ModelStore`` + ``CompiledCircuit`` with the HTTP
server, so `repro predict` is the same computation as POSTing the
rows to ``/predict/{model}`` — just without a server in the loop.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.serve.store import ModelStore

PathLike = str | Path


def read_rows_file(path: PathLike) -> np.ndarray:
    """Parse a rows file into an ``(n_rows, n_inputs)`` uint8 matrix."""
    rows = []
    width = None
    for lineno, raw in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = raw.split("#", 1)[0].strip().replace(",", " ")
        if not line:
            continue
        bits = line.replace(" ", "")
        if set(bits) - {"0", "1"}:
            raise ValueError(
                f"{path}:{lineno}: expected only 0/1 bits, got {line!r}"
            )
        if width is None:
            width = len(bits)
        elif len(bits) != width:
            raise ValueError(
                f"{path}:{lineno}: row has {len(bits)} bits, "
                f"earlier rows have {width}"
            )
        rows.append([int(b) for b in bits])
    if not rows:
        raise ValueError(f"{path} holds no input rows")
    return np.asarray(rows, dtype=np.uint8)


def format_outputs(outputs: np.ndarray) -> str:
    """Render ``(n_rows, n_outputs)`` predictions as bit lines."""
    lines = ["".join(str(int(b)) for b in row) for row in outputs]
    return "\n".join(lines) + "\n"


def predict_file(
    store_dir: PathLike,
    model: str,
    in_path: PathLike,
    out_path: PathLike,
    cache_size: int = 32,
    sim_backend: str | None = None,
) -> int:
    """Score a rows file against a stored model; returns row count.

    ``sim_backend`` picks the simulation executor (see
    :mod:`repro.sim.backend`); predictions are bit-identical across
    backends, so this only changes speed.
    """
    store = ModelStore(store_dir, cache_size=cache_size, sim_backend=sim_backend)
    circuit = store.load(model)
    rows = read_rows_file(in_path)
    outputs = circuit.predict(rows)
    Path(out_path).write_text(format_outputs(outputs), encoding="ascii")
    return int(outputs.shape[0])
