"""Serving metrics: counters, gauges and histograms, Prometheus-style.

A tiny dependency-free metrics registry for the serving layer.  Three
instrument kinds cover everything ``/metrics`` exposes:

:class:`Counter`
    Monotonic totals (requests, rejections, rows served).
:class:`Gauge`
    Point-in-time values, either set directly or backed by a callback
    read at render time (queue depths, in-flight rows, cache sizes).
:class:`Histogram`
    Cumulative fixed-bucket distributions (request latency, batch
    size).  Buckets follow the Prometheus convention: each ``le``
    bucket counts observations ``<= bound``, plus an implicit
    ``+Inf`` bucket, with ``_sum`` and ``_count`` series alongside.

Everything mutates on the serving event loop (one thread), so no
instrument takes a lock; rendering from another thread only ever sees
a consistent-enough snapshot for monitoring purposes.

The exposition format is the Prometheus text format (version 0.0.4) —
scrapable by a real Prometheus, trivially parsable by tests::

    # HELP repro_serve_rows_served_total Rows answered across all models.
    # TYPE repro_serve_rows_served_total counter
    repro_serve_rows_served_total 4096
"""

from __future__ import annotations

import bisect
import math
from collections.abc import Callable, Mapping, Sequence

LabelValue = int | float
GaugeCallback = Callable[[], LabelValue | Mapping[str, LabelValue]]

#: Default latency buckets (seconds): sub-millisecond to multi-second.
LATENCY_BUCKETS_S: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Default batch-size buckets (rows per coalesced engine pass).
BATCH_ROWS_BUCKETS: tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096,
)


def _format_value(value: LabelValue) -> str:
    """Prometheus-style number: integers stay integral, no exponents."""
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{str(v).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing total, optionally split by one label."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, label: str | None = None):
        self.name = name
        self.help_text = help_text
        self.label = label
        self._values: dict[str, float] = {}
        self._total: float = 0.0

    def inc(self, amount: float = 1, label_value: str | None = None) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._total += amount
        if label_value is not None:
            self._values[label_value] = self._values.get(label_value, 0.0) + amount

    @property
    def total(self) -> float:
        return self._total

    def value(self, label_value: str) -> float:
        return self._values.get(label_value, 0.0)

    def samples(self) -> list[tuple[dict[str, str], LabelValue]]:
        if self.label is None:
            return [({}, _as_number(self._total))]
        if not self._values:
            return [({}, _as_number(self._total))] if self._total else []
        return [
            ({self.label: key}, _as_number(val))
            for key, val in sorted(self._values.items())
        ]


class Gauge:
    """A point-in-time value; static via :meth:`set` or callback-backed.

    A callback may return a scalar, or a ``{label value: number}``
    mapping when the gauge was declared with a ``label`` (e.g. one
    queue depth per model).  Callbacks are invoked at render time, so
    gauges never go stale.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str,
        label: str | None = None,
        callback: GaugeCallback | None = None,
    ):
        self.name = name
        self.help_text = help_text
        self.label = label
        self._callback = callback
        self._value: LabelValue = 0

    def set(self, value: LabelValue) -> None:
        self._value = value

    def samples(self) -> list[tuple[dict[str, str], LabelValue]]:
        value: LabelValue | Mapping[str, LabelValue]
        value = self._callback() if self._callback is not None else self._value
        if isinstance(value, Mapping):
            if self.label is None:
                raise ValueError(
                    f"gauge {self.name} returned a mapping but has no label"
                )
            return [
                ({self.label: str(k)}, _as_number(v))
                for k, v in sorted(value.items())
            ]
        return [({}, _as_number(value))]


class Histogram:
    """Cumulative fixed-bucket histogram with ``_sum`` and ``_count``."""

    kind = "histogram"

    def __init__(
        self, name: str, help_text: str, buckets: Sequence[float]
    ):
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.help_text = help_text
        self.bounds: tuple[float, ...] = tuple(bounds)
        self.bucket_counts: list[int] = [0] * (len(bounds) + 1)  # +Inf last
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def quantile(self, q: float) -> float:
        """Approximate quantile from the cumulative buckets.

        Returns the upper bound of the bucket holding the q-th
        observation (the last finite bound when it lands in +Inf) —
        the usual coarse-but-honest histogram estimate, good enough
        for a p99 gate.
        """
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts, strict=False):
            cumulative += bucket
            if cumulative >= rank:
                return bound
        return self.bounds[-1]

    def samples(self) -> list[tuple[dict[str, str], LabelValue]]:
        out: list[tuple[dict[str, str], LabelValue]] = []
        cumulative = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts, strict=False):
            cumulative += bucket
            out.append(({"le": _format_value(bound)}, cumulative))
        out.append(({"le": "+Inf"}, self.count))
        return out


def _as_number(value: LabelValue) -> LabelValue:
    """Collapse float-valued integers to int for clean rendering."""
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """Named instruments + the text exposition ``/metrics`` serves."""

    def __init__(self, prefix: str = "repro_serve"):
        self.prefix = prefix
        self._instruments: "Dict[str, Instrument]" = {}

    def _register(self, instrument: Instrument) -> None:
        if instrument.name in self._instruments:
            raise ValueError(f"metric {instrument.name!r} already registered")
        self._instruments[instrument.name] = instrument

    def counter(
        self, name: str, help_text: str, label: str | None = None
    ) -> Counter:
        counter = Counter(f"{self.prefix}_{name}", help_text, label=label)
        self._register(counter)
        return counter

    def gauge(
        self,
        name: str,
        help_text: str,
        label: str | None = None,
        callback: GaugeCallback | None = None,
    ) -> Gauge:
        gauge = Gauge(
            f"{self.prefix}_{name}", help_text, label=label, callback=callback
        )
        self._register(gauge)
        return gauge

    def histogram(
        self, name: str, help_text: str, buckets: Sequence[float]
    ) -> Histogram:
        histogram = Histogram(f"{self.prefix}_{name}", help_text, buckets)
        self._register(histogram)
        return histogram

    def render(self) -> str:
        """The full registry in the Prometheus text format."""
        lines: list[str] = []
        for instrument in self._instruments.values():
            lines.append(f"# HELP {instrument.name} {instrument.help_text}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            if isinstance(instrument, Histogram):
                for labels, value in instrument.samples():
                    lines.append(
                        f"{instrument.name}_bucket{_format_labels(labels)} "
                        f"{_format_value(value)}"
                    )
                lines.append(
                    f"{instrument.name}_sum {_format_value(instrument.sum)}"
                )
                lines.append(f"{instrument.name}_count {instrument.count}")
            else:
                for labels, value in instrument.samples():
                    lines.append(
                        f"{instrument.name}{_format_labels(labels)} "
                        f"{_format_value(value)}"
                    )
        return "\n".join(lines) + "\n"


class ServeMetrics:
    """The serving layer's instrument bundle over one registry.

    Construction wires up every counter/histogram the hot path
    mutates; the callback gauges (queue depths, cache counters,
    uptime) are attached later by the app via :meth:`attach_gauge`,
    because they close over components built after the metrics.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        reg = registry if registry is not None else MetricsRegistry()
        self.registry = reg
        self.requests_total = reg.counter(
            "http_requests_total",
            "HTTP requests handled, by endpoint.",
            label="endpoint",
        )
        self.responses_total = reg.counter(
            "http_responses_total",
            "HTTP responses sent, by status code.",
            label="status",
        )
        self.predict_latency = reg.histogram(
            "predict_latency_seconds",
            "End-to-end /predict handler latency (queue wait + engine).",
            LATENCY_BUCKETS_S,
        )
        self.batch_rows = reg.histogram(
            "batch_rows",
            "Rows per coalesced engine pass (batch-size distribution).",
            BATCH_ROWS_BUCKETS,
        )
        self.batches_total = reg.counter(
            "batches_total", "Coalesced engine passes executed."
        )
        self.rows_served_total = reg.counter(
            "rows_served_total", "Rows answered across all models."
        )
        self.rejected_total = reg.counter(
            "rejected_total",
            "Requests rejected by backpressure, by reason "
            "(saturated = queue full at admission, deadline = aged "
            "out while queued).",
            label="reason",
        )
        self.execution_errors_total = reg.counter(
            "execution_errors_total",
            "Batches failed by an engine/compile error (each answers "
            "every coalesced caller with a 500).",
        )

    def attach_gauge(
        self,
        name: str,
        help_text: str,
        callback: GaugeCallback,
        label: str | None = None,
    ) -> Gauge:
        """Register a render-time callback gauge on the registry."""
        return self.registry.gauge(
            name, help_text, label=label, callback=callback
        )

    def render(self) -> str:
        return self.registry.render()


def parse_metrics_text(text: str) -> dict[str, float]:
    """Parse an exposition blob into ``{name{labels}: value}``.

    The inverse of :meth:`MetricsRegistry.render` for tests and the
    bench harness — not a general Prometheus parser, but exact for
    what this module emits.
    """
    out: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, raw = line.rpartition(" ")
        value = float("inf") if raw == "+Inf" else float(raw)
        out[key] = value
    return out
