"""Circuit bundles: one servable ``.aag`` circuit plus its metadata.

A :class:`CircuitBundle` is the unit the serving layer loads — the
AIGER text of a learned circuit together with the record the contest
runner stored for it (accuracy, size, provenance).  Compiling the
bundle yields a :class:`CompiledCircuit`: the circuit pushed through
the levelized simulation engine exactly once, after which every
predict call is a few whole-array numpy ops (see :mod:`repro.sim`).
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Sequence
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.aig.aig import AIG
from repro.aig.aiger import loads_aag
from repro.sim.batch import simulate_rows_grouped

PathLike = str | Path


def validate_rows(rows: Any, n_inputs: int, name: str) -> np.ndarray:
    """Coerce ``rows`` to a strict ``(n, n_inputs)`` uint8 0/1 matrix.

    Standalone so callers that know a model's interface (the
    microbatcher reads it off the catalogue metadata) can validate at
    enqueue time without holding — or compiling — the circuit itself.
    Raises ``ValueError`` on anything that is not a clean 0/1 matrix
    of the right width; see the inline comments for why each case is
    rejected rather than coerced.
    """
    raw = np.asarray(rows)
    # The uint8 cast would silently truncate 0.9 to 0; fractional
    # (or NaN/inf) input is a caller bug, not a prediction.
    if raw.dtype.kind == "f" and not np.all(np.equal(np.mod(raw, 1), 0)):
        raise ValueError(
            f"model {name!r} takes 0/1 rows, got fractional values"
        )
    try:
        mat = raw.astype(np.uint8)
    except (OverflowError, ValueError, TypeError):
        raise ValueError(f"model {name!r} takes 0/1 rows") from None
    if mat.ndim == 1:
        mat = mat[None, :]
    if mat.ndim != 2 or mat.shape[1] != n_inputs:
        raise ValueError(
            f"model {name!r} takes rows of "
            f"{n_inputs} bits, got shape {tuple(mat.shape)}"
        )
    # Strictly 0/1: the packed representation encodes bit s at
    # position s, so a stray 2 (or a negative wrapped to 255)
    # would carry into a *neighbouring sample's* bit once rows are
    # coalesced into one batch — garbage in one request must never
    # touch another's output.
    if mat.size and mat.max() > 1:
        raise ValueError(
            f"model {name!r} takes 0/1 rows, got value {int(mat.max())}"
        )
    return mat


@dataclass(frozen=True)
class ModelInfo:
    """Serving-relevant metadata of one learned circuit."""

    name: str  # benchmark name, e.g. "ex74" (the serving route)
    n_inputs: int
    n_outputs: int
    num_ands: int
    levels: int
    flow: str | None = None
    seed: int | None = None
    test_accuracy: float | None = None
    benchmark: int | str | None = None  # suite index or registry name
    key: str | None = None  # run-store task key, when from a store

    def to_json(self) -> dict[str, Any]:
        """JSON-safe dict (what ``/models`` serves)."""
        return asdict(self)


class CompiledCircuit:
    """A circuit pre-compiled for serving.

    Wraps the AIG's levelized compiled form
    (:meth:`repro.aig.aig.AIG.compiled`) with shape validation and the
    grouped-rows entry point the microbatcher uses.  Instances are
    immutable once built and safe to reuse across requests.

    ``backend`` selects the simulation executor; the *effective*
    backend (after env-var resolution and the numba-missing fallback)
    is recorded as :attr:`backend`, so the model store's LRU always
    knows which executor produced a cached entry.
    """

    def __init__(
        self, aig: AIG, info: ModelInfo, backend: str | None = None
    ):
        self.aig = aig
        self.info = info
        self.compiled = aig.compiled(backend)
        self.backend: str = self.compiled.backend

    @property
    def n_inputs(self) -> int:
        return self.aig.n_inputs

    @property
    def n_outputs(self) -> int:
        return self.aig.num_outputs

    def validate_rows(self, rows: np.ndarray) -> np.ndarray:
        return validate_rows(rows, self.n_inputs, self.info.name)

    def predict(self, rows: np.ndarray) -> np.ndarray:
        """Evaluate ``(n_rows, n_inputs)`` 0/1 rows.

        Returns ``(n_rows, n_outputs)`` uint8 — bit-identical to
        ``AIG.simulate`` on the same rows (they share the engine).
        """
        return self.compiled.run(self.validate_rows(rows))

    def predict_grouped(
        self, row_blocks: Sequence[np.ndarray]
    ) -> list[np.ndarray]:
        """Evaluate many row blocks in one engine pass (coalescing)."""
        blocks = [self.validate_rows(b) for b in row_blocks]
        return simulate_rows_grouped(self.compiled, blocks)


class CircuitBundle:
    """AIGER text + metadata, compiled lazily and at most once."""

    def __init__(self, aag_text: str, metadata: dict[str, Any] | None = None):
        self.aag_text = aag_text
        self.metadata: dict[str, Any] = dict(metadata or {})
        self._compiled: CompiledCircuit | None = None
        self._info: ModelInfo | None = None
        self._digest: str | None = None

    @property
    def digest(self) -> str:
        """Content identity of the served circuit (SHA-256 of the text).

        Two bundles with the same digest serve bit-identical circuits;
        a different digest under the same model name means the store
        now holds a *different* solution.  The model store's LRU and
        the worker pool's per-process caches both key on this, so a
        refreshed store can never keep serving a stale compile.
        """
        if self._digest is None:
            self._digest = hashlib.sha256(
                self.aag_text.encode("ascii")
            ).hexdigest()
        return self._digest

    @classmethod
    def from_files(
        cls, aag_path: PathLike, meta_path: PathLike | None = None
    ) -> "CircuitBundle":
        """Load from an ``.aag`` file plus an optional JSON sidecar.

        With no explicit ``meta_path``, a sibling ``<stem>.json`` is
        used when present; a bare ``.aag`` file serves fine without
        one (the name defaults to the file stem).
        """
        aag_path = Path(aag_path)
        metadata: dict[str, Any] = {}
        if meta_path is None:
            sidecar = aag_path.with_suffix(".json")
            if sidecar.exists():
                meta_path = sidecar
        if meta_path is not None:
            metadata = json.loads(Path(meta_path).read_text(encoding="utf-8"))
        metadata.setdefault("benchmark_name", aag_path.stem)
        return cls(aag_path.read_text(encoding="ascii"), metadata)

    def _build_info(
        self, n_inputs: int, n_outputs: int, num_ands: int, levels: int
    ) -> ModelInfo:
        meta = self.metadata
        benchmark = meta.get("benchmark")
        if isinstance(benchmark, str):
            try:  # digit strings are suite indices; spec names stay put
                benchmark = int(benchmark)
            except ValueError:
                pass
        return ModelInfo(
            name=str(meta.get("benchmark_name") or meta.get("name") or "circuit"),
            n_inputs=n_inputs,
            n_outputs=n_outputs,
            num_ands=int(meta.get("num_ands", num_ands)),
            levels=int(meta.get("levels", levels)),
            flow=meta.get("flow"),
            seed=meta.get("seed"),
            test_accuracy=meta.get("test_accuracy"),
            benchmark=benchmark,
            key=meta.get("key"),
        )

    def info_for(self, aig: AIG) -> ModelInfo:
        """Build the :class:`ModelInfo` for this bundle's circuit."""
        return self._build_info(
            aig.n_inputs, aig.num_outputs, aig.count_used_ands(), aig.depth()
        )

    def header_counts(self) -> "tuple[int, int, int]":
        """``(n_inputs, n_outputs, n_ands)`` straight off the header."""
        fields = self.aag_text.split("\n", 1)[0].split()
        return int(fields[2]), int(fields[4]), int(fields[5])

    def info(self) -> ModelInfo:
        """Catalogue metadata *without* keeping a compiled plan.

        Run-store records carry accuracy/size/levels and the ``.aag``
        header carries the interface, so listing a large store stays
        O(1) per model.  Only a bare bundle with no structural
        metadata pays one compile (for ``levels``) — and then only
        the small :class:`ModelInfo` is retained: compiled *plans*
        are owned exclusively by the model store's LRU, so listing a
        10k-circuit directory cannot pin 10k plans in memory.
        """
        if self._compiled is not None:
            return self._compiled.info
        if self._info is None:
            if "num_ands" in self.metadata and "levels" in self.metadata:
                n_inputs, n_outputs, n_ands = self.header_counts()
                self._info = self._build_info(n_inputs, n_outputs, n_ands, 0)
            else:
                self._info = self.compile().info
                self._compiled = None  # keep the info, release the plan
        return self._info

    def compile(self, backend: str | None = None) -> CompiledCircuit:
        """Parse + levelize-compile the circuit (cached afterwards).

        The memoized instance is keyed on the *effective* backend:
        asking for a different backend recompiles (sharing the parsed
        AIG's program through the AIG-side cache is not worth keeping
        the old executor alive — eviction semantics stay one-entry).
        """
        from repro.sim.backend import resolve_backend

        name = resolve_backend(backend)
        if self._compiled is None or self._compiled.backend != name:
            aig = loads_aag(self.aag_text)
            self._compiled = CompiledCircuit(
                aig, self.info_for(aig), backend=name
            )
        return self._compiled

    def drop_compiled(self) -> None:
        """Release the compiled form (LRU eviction hook)."""
        self._compiled = None
