"""Stdlib-asyncio HTTP front end for the serving layer.

A deliberately small HTTP/1.1 server (no third-party dependencies —
``asyncio.start_server`` plus hand-rolled request parsing) exposing:

``GET /healthz``
    Liveness + uptime + batching/cache/pool statistics.
``GET /models``
    The catalogue: one metadata object per servable model.
``GET /metrics``
    Prometheus text exposition: request counters by endpoint/status,
    latency and batch-size histograms, queue depths, backpressure
    rejections and store cache counters (see
    :mod:`repro.serve.metrics`).
``POST /predict/{model}``
    Body ``{"rows": [[0,1,...], ...]}`` (or ``{"row": [0,1,...]}``
    for a single sample); responds ``{"model": ..., "rows": n,
    "outputs": [[...], ...]}``.  Outputs are bit-identical to
    ``AIG.simulate`` on the same rows — the handler only queues rows
    into the shared :class:`~repro.serve.batching.MicroBatcher`, which
    coalesces concurrent requests into one engine pass per model per
    tick, executed inline (``workers=0``) or on a
    :class:`~repro.serve.pool.WorkerPool` process (``workers>0``).

Error statuses are *classified*: a malformed request is that
caller's 400; a saturated queue or an expired queue deadline is a 503
(with ``Retry-After`` when saturated); an engine failure mid-batch is
a 500 for every coalesced caller — never a 400, because it was never
their fault.

Connections are keep-alive (HTTP/1.1 semantics), so request loops
from one client don't pay a TCP handshake per row.  Bodies are capped
at ``MAX_BODY_BYTES``; malformed requests get JSON error objects with
conventional status codes (400/404/405/413).
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any

from repro.serve.batching import (
    DeadlineExceeded,
    ExecutionError,
    MicroBatcher,
    QueueSaturated,
)
from repro.serve.metrics import ServeMetrics
from repro.serve.pool import WorkerPool
from repro.serve.store import ModelStore

MAX_BODY_BYTES = 64 * 1024 * 1024
MAX_HEADER_BYTES = 64 * 1024  # total per request, all header lines

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A handler error carrying its HTTP status (+ extra headers)."""

    def __init__(
        self,
        status: int,
        message: str,
        headers: dict[str, str] | None = None,
    ):
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers: dict[str, str] = dict(headers or {})


class ServeApp:
    """Routes requests over one :class:`ModelStore` + microbatcher.

    ``workers=0`` (the default) keeps the historical single-process
    server: engine passes run inline on the event loop.  ``workers>0``
    builds a :class:`~repro.serve.pool.WorkerPool` that executes each
    coalesced batch in a worker process holding its own compiled-
    circuit LRU — the loop never blocks on the engine, so independent
    models' ticks (and all connection I/O) proceed during a pass.
    ``max_queued_rows``/``deadline_ms`` bound each model's queue (see
    :mod:`repro.serve.batching` for the 503 semantics).
    """

    def __init__(
        self,
        store: ModelStore | str,
        tick_s: float = 0.002,
        max_batch: int = 4096,
        cache_size: int = 32,
        sim_backend: str | None = None,
        workers: int = 0,
        max_queued_rows: int | None = None,
        deadline_ms: float | None = None,
    ):
        if workers < 0:
            raise ValueError("workers must be >= 0 (0 = in-process)")
        if not isinstance(store, ModelStore):
            store = ModelStore(
                store, cache_size=cache_size, sim_backend=sim_backend
            )
        self.store = store
        self.metrics = ServeMetrics()
        self.pool: WorkerPool | None = None
        if workers > 0:
            # Workers adopt the parent's *effective* backend — the
            # same initializer pattern the contest runner uses.
            self.pool = WorkerPool(
                workers, sim_backend=store.sim_backend, cache_size=cache_size
            )
        self.batcher = MicroBatcher(
            store,
            tick_s=tick_s,
            max_batch=max_batch,
            pool=self.pool,
            max_queued_rows=max_queued_rows,
            deadline_s=None if deadline_ms is None else deadline_ms / 1000.0,
            metrics=self.metrics,
        )
        self.started = time.monotonic()
        self.requests_handled = 0
        self._attach_gauges()

    def _attach_gauges(self) -> None:
        """Render-time gauges over live component state."""
        metrics = self.metrics
        store = self.store
        batcher = self.batcher
        metrics.attach_gauge(
            "uptime_seconds", "Seconds since the app was constructed.",
            lambda: time.monotonic() - self.started,
        )
        metrics.attach_gauge(
            "models", "Servable models in the catalogue.",
            lambda: store.stats()["models"],  # type: ignore[arg-type]
        )
        metrics.attach_gauge(
            "store_cache_entries", "Compiled circuits held in the LRU.",
            lambda: len(store.cached_names()),
        )
        metrics.attach_gauge(
            "store_cache_events",
            "Store LRU counters (hits/misses/evictions/stale_evictions).",
            lambda: {
                "hits": store.hits,
                "misses": store.misses,
                "evictions": store.evictions,
                "stale_evictions": store.stale_evictions,
            },
            label="event",
        )
        metrics.attach_gauge(
            "queue_rows", "Rows waiting in each model's queue.",
            batcher.queue_depths, label="model",
        )
        metrics.attach_gauge(
            "inflight_rows",
            "Rows dispatched to workers, not yet answered.",
            batcher.inflight_depths, label="model",
        )
        metrics.attach_gauge(
            "workers", "Worker processes (0 = in-process execution).",
            lambda: self.pool.workers if self.pool is not None else 0,
        )
        metrics.attach_gauge(
            "requests_handled", "Total HTTP requests answered.",
            lambda: self.requests_handled,
        )

    def close(self) -> None:
        """Release the worker pool (idempotent; safe with workers=0)."""
        if self.pool is not None:
            self.pool.shutdown()

    # -- endpoint bodies (JSON-object in, JSON-object out) -----------

    def healthz(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "uptime_s": round(time.monotonic() - self.started, 3),
            "sim_backend": self.store.sim_backend,
            "store": self.store.stats(),
            "batching": self.batcher.stats(),
            "pool": self.pool.stats() if self.pool is not None else None,
        }

    def models(self) -> dict[str, Any]:
        backends = self.store.compiled_backends()
        infos = []
        for info in self.store.infos():
            payload = info.to_json()
            payload["compiled"] = info.name in backends
            payload["backend"] = backends.get(info.name)
            infos.append(payload)
        return {"models": infos}

    async def predict(self, model: str, body: dict[str, Any]) -> dict[str, Any]:
        try:
            name = self.store.resolve(model)
        except KeyError as exc:
            raise HttpError(404, str(exc.args[0])) from None
        if "rows" in body:
            rows = body["rows"]
        elif "row" in body:
            rows = [body["row"]]
        else:
            raise HttpError(400, 'body must carry "rows" or "row"')
        start = time.monotonic()
        try:
            # Conversion + strict 0/1 validation happen at enqueue
            # (inside the batcher, before anything is queued), so a
            # ValueError here is *this request's* malformed rows — a
            # 400.  Flush-time failures arrive as the classified
            # exceptions below and must not be blamed on the caller.
            outputs = await self.batcher.predict(name, rows)
        except QueueSaturated as exc:
            raise HttpError(
                503, exc.message,
                headers={"Retry-After": str(max(1, round(exc.retry_after_s)))},
            ) from None
        except DeadlineExceeded as exc:
            raise HttpError(503, str(exc)) from None
        except ExecutionError as exc:
            raise HttpError(500, str(exc)) from None
        except (TypeError, ValueError, OverflowError) as exc:
            raise HttpError(400, f"rows are not a 0/1 matrix: {exc}") from None
        finally:
            self.metrics.predict_latency.observe(time.monotonic() - start)
        return {
            "model": name,
            "rows": int(outputs.shape[0]),
            "outputs": outputs.tolist(),
        }

    # -- request plumbing --------------------------------------------

    async def dispatch(
        self, method: str, path: str, body_bytes: bytes
    ) -> tuple[int, dict[str, Any] | str]:
        self.metrics.requests_total.inc(label_value=_endpoint_label(path))
        if path == "/healthz":
            if method != "GET":
                raise HttpError(405, "use GET /healthz")
            return 200, self.healthz()
        if path == "/models":
            if method != "GET":
                raise HttpError(405, "use GET /models")
            return 200, self.models()
        if path == "/metrics":
            if method != "GET":
                raise HttpError(405, "use GET /metrics")
            return 200, self.metrics.render()
        if path.startswith("/predict/"):
            if method != "POST":
                raise HttpError(405, "use POST /predict/{model}")
            model = path[len("/predict/") :]
            try:
                body = json.loads(body_bytes.decode("utf-8")) if body_bytes else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise HttpError(400, f"body is not valid JSON: {exc}") from None
            if not isinstance(body, dict):
                raise HttpError(400, "body must be a JSON object")
            return 200, await self.predict(model, body)
        raise HttpError(404, f"no route for {method} {path}")

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except HttpError as exc:
                    writer.write(
                        _encode_response(exc.status, {"error": exc.message}, False)
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, headers, body_bytes = request
                payload: dict[str, Any] | str
                extra_headers: dict[str, str] | None = None
                try:
                    status, payload = await self.dispatch(method, path, body_bytes)
                except HttpError as exc:
                    status, payload = exc.status, {"error": exc.message}
                    extra_headers = exc.headers or None
                except Exception as exc:  # pragma: no cover - safety net
                    status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
                self.requests_handled += 1
                self.metrics.responses_total.inc(label_value=str(status))
                # Header *values* are case-insensitive for this token
                # (RFC 9110: "Close" == "close"); _read_request already
                # lowercased it so curl's "Connection: Close" actually
                # closes instead of being mistaken for keep-alive.
                keep_alive = headers.get("connection", "keep-alive") != "close"
                writer.write(
                    _encode_response(status, payload, keep_alive, extra_headers)
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # server shutdown with the connection parked in readline
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass  # peer gone or server shutting the loop down


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """Parse one HTTP/1.x request; ``None`` on clean EOF."""
    try:
        line = await reader.readline()
    except (ConnectionError, ValueError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {line[:80]!r}")
    method, path, _version = parts
    headers: dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            raw = await reader.readline()
        except ValueError:  # StreamReader limit (64 KiB) exceeded
            raise HttpError(400, "header line too long") from None
        if not raw or raw in (b"\r\n", b"\n"):
            break
        header_bytes += len(raw)
        if header_bytes > MAX_HEADER_BYTES:
            raise HttpError(400, "request headers too large")
        name, sep, value = raw.decode("latin-1").partition(":")
        if sep:
            field = name.strip().lower()
            value = value.strip()
            # Token-valued headers this server actually interprets are
            # case-insensitive per RFC 9110; normalize them here so no
            # comparison downstream can get the casing wrong again
            # ("Connection: Close" must close, "Transfer-Encoding:
            # Chunked" must 400).  Other values keep their case.
            if field in ("connection", "transfer-encoding"):
                value = value.lower()
            headers[field] = value
    if "transfer-encoding" in headers:
        # No chunked decoding here; without this, the unread chunk
        # stream would desync the next keep-alive request.  The 400
        # path closes the connection, so no stray bytes are reparsed.
        raise HttpError(400, "Transfer-Encoding is not supported; "
                             "send Content-Length")
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise HttpError(400, "malformed Content-Length") from None
    if length < 0:
        raise HttpError(400, "malformed Content-Length")
    if length > MAX_BODY_BYTES:
        raise HttpError(413, f"body of {length} bytes exceeds {MAX_BODY_BYTES}")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), path, headers, body


def _endpoint_label(path: str) -> str:
    """Low-cardinality endpoint label for the request counter."""
    if path.startswith("/predict/"):
        return "/predict"
    if path in ("/healthz", "/models", "/metrics"):
        return path
    return "other"


def _encode_response(
    status: int,
    payload: dict[str, Any] | str,
    keep_alive: bool,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    if isinstance(payload, str):  # /metrics text exposition
        body = payload.encode("utf-8")
        content_type = "text/plain; version=0.0.4; charset=utf-8"
    else:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        content_type = "application/json"
    extras = "".join(
        f"{name}: {value}\r\n"
        for name, value in sorted((extra_headers or {}).items())
    )
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Status')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"{extras}"
        f"\r\n"
    )
    return head.encode("latin-1") + body


async def start_async_server(
    app: ServeApp, host: str = "127.0.0.1", port: int = 0
) -> asyncio.AbstractServer:
    """Bind the app; ``port=0`` picks a free port (see sockets)."""
    return await asyncio.start_server(app.handle_connection, host=host, port=port)


async def serve_forever(app: ServeApp, host: str, port: int) -> None:
    server = await start_async_server(app, host, port)
    addr = server.sockets[0].getsockname()
    tier = (
        f"{app.pool.workers} worker process(es)"
        if app.pool is not None else "in-process execution"
    )
    print(
        f"repro serve: {len(app.store.names())} model(s) on "
        f"http://{addr[0]}:{addr[1]}  (tick {app.batcher.tick_s * 1e3:g} ms, "
        f"max batch {app.batcher.max_batch}, {tier})"
    )
    try:
        async with server:
            await server.serve_forever()
    finally:
        app.close()


class ServerHandle:
    """A server running on a background thread (tests, benches, demo).

    Use as a context manager::

        with ServerHandle(ServeApp("runs/demo")) as handle:
            conn = http.client.HTTPConnection(handle.host, handle.port)
            ...
    """

    def __init__(self, app: ServeApp, host: str = "127.0.0.1"):
        self.app = app
        self.host = host
        self.port = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None

    def __enter__(self) -> ServerHandle:
        # Spawn pool workers from *this* thread, before the server
        # thread exists — forking under a live event-loop thread is
        # where fork-safety problems breed.
        if self.app.pool is not None:
            self.app.pool.warm_up(timeout=60)
        ready = threading.Event()

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            server = loop.run_until_complete(
                start_async_server(self.app, host=self.host, port=0)
            )
            self.port = server.sockets[0].getsockname()[1]
            ready.set()
            try:
                loop.run_forever()
            finally:
                server.close()
                loop.run_until_complete(server.wait_closed())
                # Open keep-alive connections are parked in readline;
                # cancel them so the loop closes without warnings.
                pending = asyncio.all_tasks(loop)
                for task in pending:
                    task.cancel()
                if pending:
                    loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
                loop.close()

        self._thread = threading.Thread(target=run, daemon=True)
        self._thread.start()
        if not ready.wait(timeout=30):  # pragma: no cover
            raise RuntimeError("server thread failed to start")
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._loop is not None:
            loop = self._loop

            async def _graceful_stop() -> None:
                # Answer anything still queued in the microbatcher and
                # give the awakened handlers a beat to write their
                # responses before the loop stops — requests parked
                # mid-tick must not be abandoned.
                self.app.batcher.flush_all()
                await asyncio.sleep(0.05)
                loop.stop()

            asyncio.run_coroutine_threadsafe(_graceful_stop(), loop)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.app.close()
