"""Process-pool execution tier for the serving layer.

The single-loop server has one structural limit: an engine pass is
CPU-bound numpy work, so while one model's batch simulates, every
other model's tick — and every connection's I/O — waits.  The
:class:`WorkerPool` moves those passes off the event loop into a pool
of worker processes, turning the loop into what it should be: pure
coordination (parse, validate, coalesce, split, respond).

Design points:

Workers own their circuits
    Compiled artifacts are immutable, so each worker keeps its own
    LRU of compiled circuits keyed by the bundle's **content digest**
    (never by model name — a run store can start serving a *different*
    circuit under the same name after a refresh, and a digest key can
    never serve the stale one).  Dispatches carry ``(digest,
    aag_text)``; on a cache hit the text is ignored, on a miss the
    worker rebuilds the circuit from the AIGER text.  A few KiB of
    redundant text per dispatch buys total freedom from worker
    affinity — any worker can serve any model at any time.

Parent's backend adopted
    Workers are initialized with the parent's *effective* simulation
    backend via the same initializer pattern the contest runner uses
    (:func:`repro.runner.task.initialize_worker`), so ``--sim-backend``
    and ``set_backend`` selections made in the server process hold in
    every worker.  Outputs are bit-identical to in-process evaluation:
    same AIGER text, same backend, same engine.

The pool is deliberately *not* asyncio-aware beyond
:meth:`WorkerPool.submit` returning an :class:`asyncio.Future` via
``loop.run_in_executor`` — the microbatcher stays the only component
that knows about queues and callers.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from typing import Any

import numpy as np

#: Per-worker compiled-circuit LRU (lives in the worker process).
_WORKER_CACHE: OrderedDict[str, Any] = OrderedDict()
_WORKER_CACHE_SIZE = 32


def _init_worker(sim_backend: str | None, cache_size: int) -> None:
    """Worker initializer: adopt the parent's backend, size the LRU."""
    from repro.runner.task import initialize_worker

    # Initializer-time global writes are the one sanctioned post-fork
    # mutation: they run once, before any task, identically in every
    # worker — the per-task purity REP303 protects is untouched.
    global _WORKER_CACHE_SIZE  # repro-lint: ignore[REP303]
    initialize_worker(sim_backend)
    _WORKER_CACHE_SIZE = max(1, int(cache_size))
    _WORKER_CACHE.clear()  # repro-lint: ignore[REP303]


def _worker_compiled(digest: str, aag_text: str) -> Any:
    """This worker's compiled circuit for ``digest`` (LRU-cached)."""
    # The LRU is the worker's *point*: a pure content-digest -> compiled
    # mapping.  Entries are immutable and keyed by digest, so cache
    # state can never change an output — only how fast it arrives.
    compiled = _WORKER_CACHE.get(digest)
    if compiled is not None:
        _WORKER_CACHE.move_to_end(digest)  # repro-lint: ignore[REP303]
        return compiled
    from repro.aig.aiger import loads_aag

    compiled = loads_aag(aag_text).compiled()
    _WORKER_CACHE[digest] = compiled  # repro-lint: ignore[REP303]
    while len(_WORKER_CACHE) > _WORKER_CACHE_SIZE:
        _WORKER_CACHE.popitem(last=False)  # repro-lint: ignore[REP303]
    return compiled


def _worker_predict(
    digest: str, aag_text: str, rows: np.ndarray
) -> np.ndarray:
    """Evaluate one coalesced batch in the worker (rows pre-validated)."""
    return _worker_compiled(digest, aag_text).run(rows)


def _worker_ping() -> bool:
    """No-op used to spawn/ping workers eagerly."""
    return True


class WorkerPool:
    """A pool of engine workers with per-worker compiled-circuit LRUs.

    Parameters
    ----------
    workers:
        Worker process count (``>= 1``; ``0`` means "no pool" and is
        rejected here — callers keep the in-process path instead).
    sim_backend:
        Effective simulation backend name to install in each worker
        (resolve it in the parent; ``None`` lets workers resolve their
        own, which only matches when selection came via environment).
    cache_size:
        Compiled circuits each worker keeps, LRU-evicted beyond that.
    """

    def __init__(
        self,
        workers: int,
        sim_backend: str | None = None,
        cache_size: int = 32,
    ):
        if workers < 1:
            raise ValueError("WorkerPool needs workers >= 1 (0 = no pool)")
        self.workers = int(workers)
        self.sim_backend = sim_backend
        self.cache_size = int(cache_size)
        self.dispatches = 0
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(sim_backend, cache_size),
        )

    def warm_up(self, timeout: float | None = None) -> None:
        """Spawn every worker now instead of at the first dispatch.

        Process creation (and the ~100 ms import cost per worker) is
        better paid at server start than inside the first request's
        latency budget.  Also serves as a liveness check: a broken
        worker environment fails here, loudly, not mid-traffic.
        """
        futures = [
            self._executor.submit(_worker_ping) for _ in range(self.workers)
        ]
        for future in futures:
            future.result(timeout=timeout)

    def submit(
        self,
        digest: str,
        aag_text: str,
        rows: np.ndarray,
        loop: asyncio.AbstractEventLoop | None = None,
    ) -> asyncio.Future[np.ndarray]:
        """Dispatch one coalesced batch; resolves on the event loop."""
        if loop is None:
            loop = asyncio.get_running_loop()
        self.dispatches += 1
        return loop.run_in_executor(
            self._executor, _worker_predict, digest, aag_text, rows
        )

    def predict_sync(
        self, digest: str, aag_text: str, rows: np.ndarray
    ) -> np.ndarray:
        """Blocking dispatch (offline predict, benches, tests)."""
        self.dispatches += 1
        return self._executor.submit(
            _worker_predict, digest, aag_text, rows
        ).result()

    def stats(self) -> dict[str, object]:
        return {
            "workers": self.workers,
            "dispatches": self.dispatches,
            "worker_cache_size": self.cache_size,
            "sim_backend": self.sim_backend,
        }

    def shutdown(self) -> None:
        """Stop the workers (idempotent)."""
        self._executor.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> WorkerPool:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
