"""Model store: pick, load and cache the best circuit per benchmark.

A :class:`ModelStore` turns a directory of learned circuits into a
serving catalogue.  Two layouts are understood:

Run-store mode
    A directory written by the contest runner (``records.jsonl`` +
    ``solutions/*.aag``, see :mod:`repro.runner.store`).  Among the
    records that kept their circuit, the *best solution per benchmark*
    is selected: legal before illegal, then highest test accuracy,
    then fewest AND nodes, then fewest levels, with the task key as
    the final deterministic tie-break.

Bundle-directory mode
    Any directory of ``*.aag`` files, each optionally paired with a
    ``<stem>.json`` metadata sidecar.  The model name is the metadata
    ``benchmark_name`` or, failing that, the file stem.

``load(name)`` compiles the chosen circuit through the levelized sim
engine on first use and keeps it in a bounded LRU, so a hot model
costs one dictionary hit per request while a long tail of cold models
cannot exhaust memory.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Any

from repro.runner.store import RECORDS_NAME, RunStore
from repro.serve.bundle import CircuitBundle, CompiledCircuit, ModelInfo

PathLike = str | Path


def _record_rank(record: dict[str, Any]) -> tuple[Any, ...]:
    """Sort key: better solutions first (see module docstring)."""
    return (
        not record.get("legal", True),
        -float(record.get("test_accuracy", 0.0)),
        int(record.get("num_ands", 0)),
        int(record.get("levels", 0)),
        str(record.get("key", "")),
    )


class ModelStore:
    """Best-solution catalogue over a run store or bundle directory.

    ``sim_backend`` selects the simulation executor used to compile
    circuits (see :mod:`repro.sim.backend`); ``None`` resolves the
    session default once, at construction, so a long-running server's
    backend never changes under it.  The effective name is recorded
    as :attr:`sim_backend` and every LRU entry carries the backend
    that produced it (:attr:`~repro.serve.bundle.CompiledCircuit.
    backend`).
    """

    def __init__(
        self,
        root: PathLike,
        cache_size: int = 32,
        sim_backend: str | None = None,
    ):
        from repro.sim.backend import resolve_backend

        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self.root = Path(root)
        self.cache_size = cache_size
        self.sim_backend = resolve_backend(sim_backend)
        self._bundles: dict[str, CircuitBundle] = {}
        self._cache: OrderedDict[str, CompiledCircuit] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stale_evictions = 0
        self.refresh()

    # -- catalogue ---------------------------------------------------

    def refresh(self) -> None:
        """(Re)scan the directory; keeps still-valid compiled models.

        An LRU entry survives a refresh only while it still serves the
        *same circuit*: surviving by name alone is not enough, because
        a run store that gained a better record for a benchmark now
        maps that name to different ``.aag`` content.  Entries whose
        bundle digest changed are invalidated (counted in
        ``stale_evictions``) so the next load compiles the new winner
        — a refresh must never leave a stale circuit serving.
        """
        if not self.root.is_dir():
            raise FileNotFoundError(f"model store {self.root} is not a directory")
        previous = self._bundles
        if (self.root / RECORDS_NAME).exists():
            self._bundles = self._scan_run_store()
        else:
            self._bundles = self._scan_bundle_dir()
        if not self._bundles:
            raise FileNotFoundError(
                f"{self.root} holds no servable circuits (contest runs "
                f"need --keep-solutions; bundle directories need *.aag "
                f"files)"
            )
        for name in list(self._cache):
            bundle = self._bundles.get(name)
            if bundle is None:
                del self._cache[name]
            elif name in previous and \
                    bundle.digest != previous[name].digest:
                del self._cache[name]
                self.stale_evictions += 1

    def _scan_run_store(self) -> dict[str, CircuitBundle]:
        store = RunStore(self.root)
        best: dict[str, dict[str, Any]] = {}
        for key, record in store.load_records().items():
            if not store.has_solution(key):  # stat only; read later
                continue
            name = str(record.get("benchmark_name", key))
            if name not in best or _record_rank(record) < _record_rank(best[name]):
                best[name] = record
        # Only the winners' circuits are actually read off disk.
        bundles: dict[str, CircuitBundle] = {}
        for name, record in best.items():
            aag = store.solution_text(str(record["key"]))
            if aag is not None:  # deleted between stat and read
                bundles[name] = CircuitBundle(aag, record)
        return bundles

    def _scan_bundle_dir(self) -> dict[str, CircuitBundle]:
        bundles: dict[str, CircuitBundle] = {}
        for path in sorted(self.root.glob("*.aag")):
            bundle = CircuitBundle.from_files(path)
            name = str(bundle.metadata.get("benchmark_name", path.stem))
            bundles[name] = bundle
        return bundles

    def names(self) -> list[str]:
        """Servable model names, sorted."""
        return sorted(self._bundles)

    def resolve(self, name: str) -> str:
        """Canonical model name for ``name``.

        Accepts an exact stored name (registry names like ``ex74`` or
        ``adder:width=48`` pass through untouched), a suite index like
        ``"74"`` (run-store mode), or a glob over the stored names —
        useful for registry spec strings whose parameters the caller
        half-remembers (``"adder:*width=48*"``) — provided it matches
        exactly one model.
        """
        if name in self._bundles:
            return name
        try:
            index = int(name)
        except ValueError:
            pass
        else:
            for cand, bundle in self._bundles.items():
                if bundle.metadata.get("benchmark") == index:
                    return cand
        if any(ch in name for ch in "*?["):
            from fnmatch import fnmatchcase

            matched = [c for c in self.names() if fnmatchcase(c, name)]
            if len(matched) == 1:
                return matched[0]
            if matched:
                raise KeyError(
                    f"model glob {name!r} is ambiguous: matches "
                    f"{', '.join(matched)}"
                )
        raise KeyError(
            f"unknown model {name!r} (serving: {', '.join(self.names())})"
        )

    def __contains__(self, name: str) -> bool:
        try:
            self.resolve(name)
        except KeyError:
            return False
        return True

    def info(self, name: str) -> ModelInfo:
        """Catalogue metadata for one model.

        Served from the stored record plus the ``.aag`` header, so it
        never compiles (and never disturbs the LRU) unless the bundle
        carries no structural metadata at all.
        """
        return self._bundles[self.resolve(name)].info()

    def bundle(self, name: str) -> CircuitBundle:
        """The raw bundle (AIGER text + digest) behind a model.

        What the worker pool ships to workers: the text to rebuild
        from, the digest to cache by.  Does not compile anything.
        """
        return self._bundles[self.resolve(name)]

    def infos(self) -> list[ModelInfo]:
        return [self.info(name) for name in self.names()]

    # -- compiled-plan LRU -------------------------------------------

    def cached_names(self) -> list[str]:
        """Models currently holding a compiled plan (LRU order)."""
        return list(self._cache)

    def compiled_backends(self) -> dict[str, str]:
        """``{model name: backend}`` for every compiled LRU entry."""
        return {name: c.backend for name, c in self._cache.items()}

    def load(self, name: str) -> CompiledCircuit:
        """The compiled circuit for ``name`` (LRU-cached)."""
        name = self.resolve(name)
        cached = self._cache.get(name)
        if cached is not None:
            self.hits += 1
            self._cache.move_to_end(name)
            return cached
        self.misses += 1
        circuit = self._bundles[name].compile(self.sim_backend)
        self._cache[name] = circuit
        while len(self._cache) > self.cache_size:
            evicted, _ = self._cache.popitem(last=False)
            self.evictions += 1
            # Drop the bundle's memoized compile too, or the LRU
            # would only ever bound the OrderedDict, not the memory.
            self._bundles[evicted].drop_compiled()
        return circuit

    def stats(self) -> dict[str, object]:
        return {
            "models": len(self._bundles),
            "compiled": len(self._cache),
            "cache_size": self.cache_size,
            "sim_backend": self.sim_backend,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stale_evictions": self.stale_evictions,
        }
