"""Compiled-circuit serving: learned AIGs as a prediction service.

The paper's end product is a circuit whose whole value is evaluation
on new inputs.  This subsystem turns a contest run's winners into a
served model catalogue:

Load (:mod:`repro.serve.bundle` / :mod:`repro.serve.store`)
    :class:`ModelStore` scans a runner store (``records.jsonl`` +
    ``solutions/*.aag``) — or any directory of ``.aag`` files with
    JSON sidecars — picks the best solution per benchmark from the
    stored records, and compiles each circuit through the levelized
    sim engine exactly once.  Compiled plans live in a bounded LRU.

Batch (:mod:`repro.serve.batching`)
    :class:`MicroBatcher` coalesces concurrent predict requests per
    model: a ~2 ms tick gathers a burst of single-row requests into
    one numpy-packed engine pass
    (:func:`repro.sim.batch.simulate_rows_grouped`), amortizing
    packing and per-level dispatch across every row in flight.
    Results are bit-identical to per-request evaluation.

Serve (:mod:`repro.serve.http` / :mod:`repro.serve.predict`)
    ``repro serve --store DIR --port N`` starts a stdlib-asyncio HTTP
    front end (``/predict/{model}``, ``/models``, ``/healthz``);
    ``repro predict`` runs the same computation offline,
    rows-file-in / predictions-file-out.

``benchmarks/bench_serve.py`` measures the design: coalesced
throughput vs a single-row request loop, and cold-vs-warm compile
cost through the LRU.
"""

from repro.serve.batching import MicroBatcher
from repro.serve.bundle import CircuitBundle, CompiledCircuit, ModelInfo
from repro.serve.http import ServeApp, ServerHandle, serve_forever
from repro.serve.predict import predict_file, read_rows_file
from repro.serve.store import ModelStore

__all__ = [
    "CircuitBundle",
    "CompiledCircuit",
    "MicroBatcher",
    "ModelInfo",
    "ModelStore",
    "ServeApp",
    "ServerHandle",
    "predict_file",
    "read_rows_file",
    "serve_forever",
]
