"""Compiled-circuit serving: learned AIGs as a prediction service.

The paper's end product is a circuit whose whole value is evaluation
on new inputs.  This subsystem turns a contest run's winners into a
served model catalogue:

Load (:mod:`repro.serve.bundle` / :mod:`repro.serve.store`)
    :class:`ModelStore` scans a runner store (``records.jsonl`` +
    ``solutions/*.aag``) — or any directory of ``.aag`` files with
    JSON sidecars — picks the best solution per benchmark from the
    stored records, and compiles each circuit through the levelized
    sim engine exactly once.  Compiled plans live in a bounded LRU.

Batch (:mod:`repro.serve.batching`)
    :class:`MicroBatcher` coalesces concurrent predict requests per
    model: a ~2 ms tick gathers a burst of single-row requests into
    one numpy-packed engine pass
    (:func:`repro.sim.batch.simulate_rows_grouped`), amortizing
    packing and per-level dispatch across every row in flight.
    Results are bit-identical to per-request evaluation.

Execute (:mod:`repro.serve.pool`)
    With ``--workers N`` the coalesced batches are dispatched to a
    :class:`WorkerPool` of N processes, each holding its own LRU of
    compiled circuits keyed by bundle content digest and simulating
    on the parent's backend — the event loop never blocks on a
    CPU-bound engine pass.  ``--workers 0`` keeps the in-process
    tier.  Per-model backpressure (``--max-queued-rows``,
    ``--deadline-ms``) answers overload with 503s instead of
    unbounded queues.

Observe (:mod:`repro.serve.metrics`)
    ``GET /metrics`` serves Prometheus-text counters, latency and
    batch-size histograms, queue depths and cache statistics.

Serve (:mod:`repro.serve.http` / :mod:`repro.serve.predict`)
    ``repro serve --store DIR --port N`` starts a stdlib-asyncio HTTP
    front end (``/predict/{model}``, ``/models``, ``/healthz``,
    ``/metrics``); ``repro predict`` runs the same computation
    offline, rows-file-in / predictions-file-out.

``benchmarks/bench_serve.py`` measures the design: coalesced
throughput vs a single-row request loop, cold-vs-warm compile cost
through the LRU, and (``--load``) saturation behavior and worker
scaling under thousands of concurrent keep-alive connections.
"""

from repro.serve.batching import (
    DeadlineExceeded,
    ExecutionError,
    MicroBatcher,
    QueueSaturated,
)
from repro.serve.bundle import CircuitBundle, CompiledCircuit, ModelInfo
from repro.serve.http import ServeApp, ServerHandle, serve_forever
from repro.serve.metrics import MetricsRegistry, ServeMetrics, parse_metrics_text
from repro.serve.pool import WorkerPool
from repro.serve.predict import predict_file, read_rows_file
from repro.serve.store import ModelStore

__all__ = [
    "CircuitBundle",
    "CompiledCircuit",
    "DeadlineExceeded",
    "ExecutionError",
    "MetricsRegistry",
    "MicroBatcher",
    "ModelInfo",
    "ModelStore",
    "QueueSaturated",
    "ServeApp",
    "ServeMetrics",
    "ServerHandle",
    "WorkerPool",
    "parse_metrics_text",
    "predict_file",
    "read_rows_file",
    "serve_forever",
]
