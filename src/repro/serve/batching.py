"""Microbatching: coalesce concurrent predict requests per circuit.

Single-row HTTP requests are the worst case for a vectorized engine —
every request would pay packing, per-level dispatch and Python
overhead for one row of work.  The :class:`MicroBatcher` closes that
gap: requests enqueue into a per-model queue and a short *tick* timer
(default 2 ms) is armed on the first arrival; when it fires — or as
soon as ``max_batch`` rows are waiting — the whole queue is flushed
as **one** grouped engine pass
(:meth:`~repro.serve.bundle.CompiledCircuit.predict_grouped`), and
each awaiting caller receives exactly its own slice of the result.

Everything runs on one asyncio event loop: queues need no locks, and
the flush itself is synchronous numpy work (microseconds at serving
batch sizes), so results are bit-identical to per-request evaluation
— coalescing changes *when* rows are simulated, never *what* the
engine computes.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Tuple

import numpy as np

from repro.serve.store import ModelStore
from repro.sim.batch import simulate_rows_grouped


class MicroBatcher:
    """Per-model request coalescing on one event loop.

    Parameters
    ----------
    store:
        The :class:`~repro.serve.store.ModelStore` to serve from.
    tick_s:
        How long the first request of a batch waits for company.
        ``0`` still coalesces bursts: the flush callback runs on the
        next loop iteration, after every already-scheduled enqueue.
    max_batch:
        Flush immediately once this many rows are queued for a model.
    """

    def __init__(
        self,
        store: ModelStore,
        tick_s: float = 0.002,
        max_batch: int = 4096,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.store = store
        self.tick_s = tick_s
        self.max_batch = max_batch
        self._queues: Dict[str, List[Tuple[np.ndarray, "asyncio.Future[np.ndarray]"]]] = {}
        self._queued_rows: Dict[str, int] = {}
        self._timers: Dict[str, asyncio.TimerHandle] = {}
        self.requests = 0
        self.batches = 0
        self.rows_served = 0
        self.max_coalesced = 0

    async def predict(self, name: str, rows: np.ndarray) -> np.ndarray:
        """Queue ``rows`` for ``name``; resolves at the next flush."""
        name = self.store.resolve(name)
        circuit = self.store.load(name)
        mat = circuit.validate_rows(rows)  # raise *before* enqueueing
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[np.ndarray]" = loop.create_future()
        queue = self._queues.setdefault(name, [])
        queue.append((mat, future))
        self._queued_rows[name] = self._queued_rows.get(name, 0) + mat.shape[0]
        self.requests += 1
        if self._queued_rows[name] >= self.max_batch:
            self._flush(name)
        elif name not in self._timers:
            self._timers[name] = loop.call_later(self.tick_s, self._flush, name)
        return await future

    def _flush(self, name: str) -> None:
        timer = self._timers.pop(name, None)
        if timer is not None:
            timer.cancel()
        queue = self._queues.pop(name, [])
        self._queued_rows.pop(name, None)
        if not queue:
            return
        blocks = [rows for rows, _ in queue]
        futures = [future for _, future in queue]
        try:
            # Blocks were validated at enqueue; go straight to the
            # engine instead of re-scanning them via predict_grouped.
            outs = simulate_rows_grouped(self.store.load(name).compiled, blocks)
        except Exception as exc:  # propagate to every waiting caller
            for future in futures:
                if not future.done():
                    future.set_exception(exc)
            return
        self.batches += 1
        self.rows_served += sum(b.shape[0] for b in blocks)
        self.max_coalesced = max(self.max_coalesced, len(queue))
        for future, out in zip(futures, outs):
            if not future.done():
                future.set_result(out)

    def flush_all(self) -> None:
        """Flush every pending queue now (shutdown hook)."""
        for name in list(self._queues):
            self._flush(name)

    def stats(self) -> Dict[str, Any]:
        return {
            "sim_backend": self.store.sim_backend,
            "requests": self.requests,
            "batches": self.batches,
            "rows_served": self.rows_served,
            "max_coalesced": self.max_coalesced,
            "tick_s": self.tick_s,
            "max_batch": self.max_batch,
        }
