"""Microbatching: coalesce concurrent predict requests per circuit.

Single-row HTTP requests are the worst case for a vectorized engine —
every request would pay packing, per-level dispatch and Python
overhead for one row of work.  The :class:`MicroBatcher` closes that
gap: requests enqueue into a per-model queue and a short *tick* timer
(default 2 ms) is armed on the first arrival; when it fires — or as
soon as ``max_batch`` rows are waiting — the whole queue is flushed
as **one** grouped engine pass, and each awaiting caller receives
exactly its own slice of the result.

Execution happens in one of two tiers:

In-process (``pool=None``)
    The flush runs the engine synchronously on the event loop
    (microseconds at serving batch sizes).  Simple, zero IPC — but a
    long pass blocks every other model's tick.
Worker pool (``pool=``:class:`~repro.serve.pool.WorkerPool`)
    The flush stacks the queue into one matrix and dispatches it to a
    worker process; the loop keeps serving while workers burn CPU.
    Results are distributed back on the loop when the dispatch lands.

Either way, coalescing changes *when* rows are simulated, never
*what* the engine computes — outputs are bit-identical to per-request
evaluation.

Failures are classified, not conflated (callers turn these into HTTP
statuses):

``ValueError`` at enqueue
    *This caller's* rows are malformed — raised from
    :meth:`predict` before anything is queued; nobody else sees it.
:class:`QueueSaturated` at enqueue
    The model's queue (queued + in-flight rows) is at
    ``max_queued_rows``; admitting more would grow latency without
    bound.  The caller should retry after :attr:`~QueueSaturated.
    retry_after_s`.
:class:`DeadlineExceeded` while queued
    The request sat in the queue past ``deadline_s``; it is answered
    (503) immediately — *before* the batch flushes — and its rows are
    excluded from the dispatch.
:class:`ExecutionError` at flush
    The engine or compile failed for the whole batch.  That is a
    server-side failure (500) hitting every coalesced caller — it
    must never be misreported as a caller's 400.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.serve.bundle import validate_rows
from repro.serve.metrics import ServeMetrics
from repro.serve.pool import WorkerPool
from repro.serve.store import ModelStore
from repro.sim.batch import simulate_rows_grouped


class QueueSaturated(Exception):
    """A model's queue is full; the request was rejected, not queued."""

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.message = message
        self.retry_after_s = retry_after_s


class DeadlineExceeded(Exception):
    """A queued request aged out before its batch was dispatched."""


class ExecutionError(Exception):
    """Engine/compile failure at flush time — a server fault, never
    attributable to any single caller's input."""


@dataclass
class _Pending:
    """One queued request: its validated rows and how to answer it."""

    mat: np.ndarray
    future: asyncio.Future[np.ndarray]
    timer: asyncio.TimerHandle | None = field(default=None)

    def settle_timer(self) -> None:
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None


class MicroBatcher:
    """Per-model request coalescing on one event loop.

    Parameters
    ----------
    store:
        The :class:`~repro.serve.store.ModelStore` to serve from.
    tick_s:
        How long the first request of a batch waits for company.
        ``0`` still coalesces bursts: the flush callback runs on the
        next loop iteration, after every already-scheduled enqueue.
    max_batch:
        Flush immediately once this many rows are queued for a model.
    pool:
        Optional :class:`~repro.serve.pool.WorkerPool`; flushes are
        dispatched to worker processes instead of running inline.
    max_queued_rows:
        Per-model admission bound on queued + in-flight rows; beyond
        it, :meth:`predict` raises :class:`QueueSaturated` instead of
        queueing (``None`` = unbounded, the historical behavior).
    deadline_s:
        Maximum time a request may wait in the queue before being
        answered with :class:`DeadlineExceeded` (``None`` = no
        deadline).
    metrics:
        Optional :class:`~repro.serve.metrics.ServeMetrics` to record
        batch sizes, rejections and execution errors into.
    """

    def __init__(
        self,
        store: ModelStore,
        tick_s: float = 0.002,
        max_batch: int = 4096,
        pool: WorkerPool | None = None,
        max_queued_rows: int | None = None,
        deadline_s: float | None = None,
        metrics: ServeMetrics | None = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_queued_rows is not None and max_queued_rows < 1:
            raise ValueError("max_queued_rows must be >= 1 (or None)")
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError("deadline_s must be > 0 (or None)")
        self.store = store
        self.tick_s = tick_s
        self.max_batch = max_batch
        self.pool = pool
        self.max_queued_rows = max_queued_rows
        self.deadline_s = deadline_s
        self.metrics = metrics
        self._queues: dict[str, list[_Pending]] = {}
        self._queued_rows: dict[str, int] = {}
        self._inflight_rows: dict[str, int] = {}
        self._timers: dict[str, asyncio.TimerHandle] = {}
        self.requests = 0
        self.batches = 0
        self.rows_served = 0
        self.max_coalesced = 0
        self.rejected_saturated = 0
        self.rejected_deadline = 0
        self.execution_errors = 0

    # -- admission ---------------------------------------------------

    def pending_rows(self, name: str) -> int:
        """Rows currently queued or dispatched-but-unanswered."""
        return (
            self._queued_rows.get(name, 0)
            + self._inflight_rows.get(name, 0)
        )

    def queue_depths(self) -> dict[str, int]:
        """``{model: queued rows}`` for every non-empty queue."""
        return {k: v for k, v in self._queued_rows.items() if v}

    def inflight_depths(self) -> dict[str, int]:
        """``{model: in-flight rows}`` for every live dispatch."""
        return {k: v for k, v in self._inflight_rows.items() if v}

    async def predict(self, name: str, rows: Any) -> np.ndarray:
        """Queue ``rows`` for ``name``; resolves at the next flush.

        Raises ``KeyError`` for unknown models and ``ValueError`` for
        malformed rows *before* anything is queued (per-request
        errors), :class:`QueueSaturated` when the model's queue is at
        capacity, :class:`DeadlineExceeded`/:class:`ExecutionError`
        asynchronously via the returned future.
        """
        name = self.store.resolve(name)
        # Validation needs only the model's interface, which the
        # catalogue serves without compiling — in pool mode the parent
        # never needs the compiled circuit at all.
        info = self.store.info(name)
        mat = validate_rows(rows, info.n_inputs, name)
        if self.max_queued_rows is not None and (
            self.pending_rows(name) + mat.shape[0] > self.max_queued_rows
        ):
            self.rejected_saturated += 1
            if self.metrics is not None:
                self.metrics.rejected_total.inc(label_value="saturated")
            raise QueueSaturated(
                f"model {name!r} is saturated "
                f"({self.pending_rows(name)} rows pending, "
                f"limit {self.max_queued_rows}); retry later",
                retry_after_s=max(self.tick_s, 0.001) * 16,
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future[np.ndarray] = loop.create_future()
        entry = _Pending(mat, future)
        if self.deadline_s is not None:
            entry.timer = loop.call_later(
                self.deadline_s, self._expire, name, entry
            )
        queue = self._queues.setdefault(name, [])
        queue.append(entry)
        self._queued_rows[name] = self._queued_rows.get(name, 0) + mat.shape[0]
        self.requests += 1
        if self._queued_rows[name] >= self.max_batch:
            self._flush(name)
        elif name not in self._timers:
            self._timers[name] = loop.call_later(self.tick_s, self._flush, name)
        return await future

    def _expire(self, name: str, entry: _Pending) -> None:
        """Deadline fired while the request was still queued: answer
        its caller *now* and release its rows from the queue budget
        (the flush will skip the already-settled future)."""
        entry.timer = None
        if entry.future.done():
            return
        self.rejected_deadline += 1
        if self.metrics is not None:
            self.metrics.rejected_total.inc(label_value="deadline")
        self._queued_rows[name] = max(
            0, self._queued_rows.get(name, 0) - entry.mat.shape[0]
        )
        entry.future.set_exception(DeadlineExceeded(
            f"request for model {name!r} exceeded its "
            f"{self.deadline_s}s queue deadline"
        ))

    # -- flush -------------------------------------------------------

    def _flush(self, name: str) -> None:
        timer = self._timers.pop(name, None)
        if timer is not None:
            timer.cancel()
        queue = self._queues.pop(name, [])
        self._queued_rows.pop(name, None)
        # Deadline-expired (or otherwise settled) entries were already
        # answered; their rows must not be simulated.
        live = [e for e in queue if not e.future.done()]
        for entry in live:
            entry.settle_timer()
        if not live:
            return
        blocks = [e.mat for e in live]
        total_rows = sum(b.shape[0] for b in blocks)
        if self.pool is None:
            self._flush_inline(name, live, blocks, total_rows)
        else:
            self._flush_to_pool(name, live, blocks, total_rows)

    def _flush_inline(
        self,
        name: str,
        live: list[_Pending],
        blocks: list[np.ndarray],
        total_rows: int,
    ) -> None:
        try:
            # Blocks were validated at enqueue; go straight to the
            # engine instead of re-scanning them via predict_grouped.
            outs = simulate_rows_grouped(self.store.load(name).compiled, blocks)
        except Exception as exc:
            self._fail_batch(live, name, exc)
            return
        self._record_batch(len(live), total_rows)
        for entry, out in zip(live, outs, strict=True):
            if not entry.future.done():
                entry.future.set_result(out)

    def _flush_to_pool(
        self,
        name: str,
        live: list[_Pending],
        blocks: list[np.ndarray],
        total_rows: int,
    ) -> None:
        if self.pool is None:  # callers route here only in pool mode
            raise RuntimeError("_flush_to_pool called without a pool")
        bundle = self.store.bundle(name)
        stacked = blocks[0] if len(blocks) == 1 else np.vstack(blocks)
        self._inflight_rows[name] = (
            self._inflight_rows.get(name, 0) + total_rows
        )
        try:
            dispatch = self.pool.submit(bundle.digest, bundle.aag_text, stacked)
        except Exception as exc:  # pool already shut down, etc.
            self._inflight_rows[name] -= total_rows
            self._fail_batch(live, name, exc)
            return

        def _deliver(done: asyncio.Future[np.ndarray]) -> None:
            self._inflight_rows[name] = max(
                0, self._inflight_rows.get(name, 0) - total_rows
            )
            exc = None if done.cancelled() else done.exception()
            if done.cancelled() or exc is not None:
                self._fail_batch(
                    live, name,
                    exc if exc is not None else RuntimeError("dispatch cancelled"),
                )
                return
            merged = done.result()
            self._record_batch(len(live), total_rows)
            offset = 0
            for entry in live:
                k = entry.mat.shape[0]
                if not entry.future.done():
                    entry.future.set_result(merged[offset : offset + k])
                offset += k

        dispatch.add_done_callback(_deliver)

    def _fail_batch(
        self, live: list[_Pending], name: str, exc: BaseException
    ) -> None:
        """Answer every waiting caller with a *server-side* error.

        The engine failing mid-flush is never any caller's fault —
        wrap it as :class:`ExecutionError` so the HTTP layer reports
        500, not a misleading per-request 400.
        """
        self.execution_errors += 1
        if self.metrics is not None:
            self.metrics.execution_errors_total.inc()
        wrapped = ExecutionError(
            f"engine pass for model {name!r} failed: "
            f"{type(exc).__name__}: {exc}"
        )
        wrapped.__cause__ = exc if isinstance(exc, Exception) else None
        for entry in live:
            if not entry.future.done():
                entry.future.set_exception(wrapped)

    def _record_batch(self, n_requests: int, n_rows: int) -> None:
        self.batches += 1
        self.rows_served += n_rows
        self.max_coalesced = max(self.max_coalesced, n_requests)
        if self.metrics is not None:
            self.metrics.batches_total.inc()
            self.metrics.rows_served_total.inc(n_rows)
            self.metrics.batch_rows.observe(n_rows)

    def flush_all(self) -> None:
        """Flush every pending queue now (shutdown hook)."""
        for name in list(self._queues):
            self._flush(name)

    def stats(self) -> dict[str, Any]:
        return {
            "sim_backend": self.store.sim_backend,
            "requests": self.requests,
            "batches": self.batches,
            "rows_served": self.rows_served,
            "max_coalesced": self.max_coalesced,
            "rejected_saturated": self.rejected_saturated,
            "rejected_deadline": self.rejected_deadline,
            "execution_errors": self.execution_errors,
            "tick_s": self.tick_s,
            "max_batch": self.max_batch,
            "max_queued_rows": self.max_queued_rows,
            "deadline_s": self.deadline_s,
            "workers": self.pool.workers if self.pool is not None else 0,
        }
