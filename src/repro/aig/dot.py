"""Graphviz DOT export for AIGs.

Debugging/teaching aid: inverted edges are drawn dashed, inputs as
boxes, outputs as double circles — the conventional AIG rendering.
"""

from __future__ import annotations

from pathlib import Path

from repro.aig.aig import AIG, lit_var

PathLike = str | Path


def aig_to_dot(aig: AIG, graph_name: str = "aig") -> str:
    """DOT source for the graph (only logic reachable from outputs)."""
    mask = aig.reachable_vars()
    lines = [f"digraph {graph_name} {{", "  rankdir=BT;"]
    if mask[0]:
        lines.append('  n0 [label="0", shape=box, style=dotted];')
    for i in range(aig.n_inputs):
        var = 1 + i
        if mask[var]:
            lines.append(f'  n{var} [label="x{i}", shape=box];')
    base = aig.n_inputs + 1
    for j in range(aig.num_ands):
        var = base + j
        if not mask[var]:
            continue
        lines.append(f'  n{var} [label="and", shape=circle];')
        for fanin in aig.fanins(var):
            style = ", style=dashed" if fanin & 1 else ""
            lines.append(
                f"  n{lit_var(fanin)} -> n{var} [dir=none{style}];"
            )
    for idx, lit in enumerate(aig.outputs):
        lines.append(
            f'  o{idx} [label="y{idx}", shape=doublecircle];'
        )
        style = ", style=dashed" if lit & 1 else ""
        lines.append(f"  n{lit_var(lit)} -> o{idx} [dir=none{style}];")
    lines.append("}")
    return "\n".join(lines) + "\n"


def write_dot(aig: AIG, path: PathLike,
              graph_name: str | None = None) -> None:
    """Write DOT to a file (graph name defaults to the file stem)."""
    path = Path(path)
    name = graph_name if graph_name is not None else path.stem
    path.write_text(aig_to_dot(aig, name), encoding="ascii")
