"""The seed build-measure-rollback passes, kept as the pinned baseline.

These are the pre-engine implementations of ``rewrite``, ``refactor``
and ``compress``: every rewrite candidate is tentatively *built* into
the output graph (per-candidate ISOP resynthesis included), measured,
rolled back, and the winner rebuilt.  ``benchmarks/bench_opt_engine.py``
races the NPN-library engine against them the same way the simulation
engine keeps ``reference_simulate_packed_all`` as its oracle — do not
"optimize" this module, its slowness is the baseline being measured.

(``_seed_lut`` preserves the seed's per-candidate double-ISOP,
build-both-polarities-and-roll-back behavior; ``cut_function`` and
``balance`` are the current iterative/linear versions, so the baseline
measures the seed *algorithm*, not its recursion crashes.)
"""

from __future__ import annotations

import numpy as np

from repro.aig.aig import AIG, CONST0, CONST1, lit_not
from repro.aig.build import sop_over_leaves
from repro.aig.cuts import cut_function, enumerate_cuts, mffc_size
from repro.aig.isop import isop
from repro.aig.opt.passes import _map_lit, balance
from repro.aig.opt.traverse import ffc_leaves


def _seed_lut(aig: AIG, table: int, leaves) -> int:
    """The seed ``build.lut``: per-call double ISOP, build both
    polarities behind a checkpoint, roll back, rebuild the winner."""
    k = len(leaves)
    full = (1 << (1 << k)) - 1
    table &= full
    if table == 0:
        return CONST0
    if table == full:
        return CONST1
    pos_cover, _ = isop(table, table, k)
    neg_cover, _ = isop(~table & full, ~table & full, k)
    state = aig.checkpoint()
    sop_over_leaves(aig, pos_cover, leaves)
    pos_cost = aig.num_ands - state[0]
    aig.rollback(state)
    neg = sop_over_leaves(aig, neg_cover, leaves)
    neg_cost = aig.num_ands - state[0]
    if neg_cost < pos_cost:
        return lit_not(neg)
    aig.rollback(state)
    return sop_over_leaves(aig, pos_cover, leaves)


def reference_rewrite(aig: AIG, k: int = 4, max_cuts: int = 8) -> AIG:
    """Seed cut rewriting: build, measure, roll back every candidate."""
    cuts = enumerate_cuts(aig, k=k, max_cuts=max_cuts)
    new = AIG(aig.n_inputs)
    mapping = np.zeros(aig.num_vars, dtype=np.int64)
    for i in range(aig.n_inputs):
        mapping[1 + i] = new.input_lit(i)
    base = aig.n_inputs + 1
    for j in range(aig.num_ands):
        var = base + j
        f0, f1 = aig.fanins(var)
        candidates = [("direct", None, None)]
        for cut in cuts[var]:
            if len(cut) < 2 or cut == (var,):
                continue
            table = cut_function(aig, var, cut)
            candidates.append(("cut", cut, table))
        best_cost = None
        best_kind = None
        for kind, cut, table in candidates:
            state = new.checkpoint()
            if kind == "direct":
                new.add_and(_map_lit(mapping, f0), _map_lit(mapping, f1))
            else:
                _seed_lut(new, table, [int(mapping[leaf]) for leaf in cut])
            cost = new.num_ands - state[0]
            new.rollback(state)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_kind = (kind, cut, table)
        kind, cut, table = best_kind
        if kind == "direct":
            mapping[var] = new.add_and(
                _map_lit(mapping, f0), _map_lit(mapping, f1)
            )
        else:
            mapping[var] = _seed_lut(new, table, [int(mapping[leaf]) for leaf in cut])
    for lit in aig.outputs:
        new.set_output(_map_lit(mapping, lit))
    return new.extract_cone()


def reference_refactor(aig: AIG, max_leaves: int = 10) -> AIG:
    """Seed MFFC resynthesis: build the cone, compare, roll back."""
    fanout = aig.fanout_counts()
    new = AIG(aig.n_inputs)
    mapping = np.zeros(aig.num_vars, dtype=np.int64)
    for i in range(aig.n_inputs):
        mapping[1 + i] = new.input_lit(i)
    base = aig.n_inputs + 1
    for j in range(aig.num_ands):
        var = base + j
        f0, f1 = aig.fanins(var)
        direct = lambda: new.add_and(  # noqa: E731 - tiny local thunk
            _map_lit(mapping, f0), _map_lit(mapping, f1)
        )
        leaves = ffc_leaves(aig, var, fanout, max_leaves)
        if leaves is None:
            mapping[var] = direct()
            continue
        table = cut_function(aig, var, leaves)
        old_cone = mffc_size(aig, var, fanout)
        state = new.checkpoint()
        cand = _seed_lut(new, table, [int(mapping[leaf]) for leaf in leaves])
        cost = new.num_ands - state[0]
        if cost <= old_cone:
            mapping[var] = cand
        else:
            new.rollback(state)
            mapping[var] = direct()
    for lit in aig.outputs:
        new.set_output(_map_lit(mapping, lit))
    return new.extract_cone()


def reference_compress(aig: AIG, max_rounds: int = 3) -> AIG:
    """Seed optimization script (no fraig pass existed yet)."""
    best = aig.extract_cone()
    for _ in range(max_rounds):
        size_before = best.num_ands
        for pass_fn in (
            balance, reference_rewrite, reference_refactor, reference_rewrite
        ):
            cand = pass_fn(best)
            if cand.num_ands < best.num_ands or (
                cand.num_ands == best.num_ands and cand.depth() < best.depth()
            ):
                best = cand
        if best.num_ands >= size_before:
            break
    return best
