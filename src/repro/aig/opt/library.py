"""Process-wide library of best-known AIG structures per NPN class.

ABC's ``rewrite`` owes its speed to a precomputed library of 4-input
functions: every cut function reduces, by NPN canonicalization, to one
of 222 classes, and each class carries a best-known implementation
that is *instantiated* — not resynthesized — at every rewrite site.
This module plays that role.

A class representative is synthesized once per process (ISOP in both
polarities and a Shannon MUX tree compete; the smallest strashed cone
wins) and stored as a :class:`Recipe`: a flat list of AND nodes over
local literals.  Instantiating a recipe replays those ANDs through any
sink that implements the ``add_and`` contract — a real
:class:`~repro.aig.aig.AIG` to build, or a
:class:`~repro.aig.opt.counting.VirtualBuilder` to price the candidate
without mutating anything.  That duality is what makes the rewriting
pass mutation-free: every candidate is priced virtually and only the
winner is ever built.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.aig.aig import AIG, CONST0, CONST1, lit_not
from repro.aig.isop import full_mask
from repro.aig.opt.npn import MAX_NPN_VARS, npn_canon


@dataclass(frozen=True)
class Recipe:
    """A canonical-class implementation over local literals.

    Local variable numbering: 0 is the constant, ``1 .. n_leaves`` are
    the leaves, AND node ``j`` is variable ``1 + n_leaves + j``.
    ``nodes[j]`` holds its fanin literals (``2 * var + compl``);
    ``out`` is the output literal.  ``size`` counts the AND nodes.
    """

    n_leaves: int
    nodes: tuple[tuple[int, int], ...]
    out: int
    size: int


def _encode(aig: AIG) -> Recipe:
    """Flatten a compact single-output AIG into a Recipe."""
    nodes = tuple(zip(aig._fanin0, aig._fanin1, strict=True))
    return Recipe(
        n_leaves=aig.n_inputs,
        nodes=nodes,
        out=aig.outputs[0],
        size=aig.num_ands,
    )


class NpnLibrary:
    """Canonical 4-input structures, built on demand and cached.

    One instance (see :func:`get_library`) is shared process-wide; the
    recipe cache is keyed on the canonical table, so each NPN class is
    synthesized at most once no matter how many circuits are rewritten.
    """

    def __init__(self, max_vars: int = MAX_NPN_VARS):
        self.max_vars = max_vars
        self._recipes: dict[tuple[int, int], Recipe] = {}
        # (k, table) -> (recipe, perm, phase, out_neg): canonicalization
        # and recipe lookup collapsed into one dict hit, since
        # instantiate() runs hundreds of thousands of times per pass.
        self._instances: dict[tuple[int, int], tuple] = {}

    # ------------------------------------------------------------------
    def recipe(self, ctable: int, k: int) -> Recipe:
        """Best-known implementation of a *canonical* table."""
        key = (k, ctable)
        found = self._recipes.get(key)
        if found is not None:
            return found
        recipe = self._synthesize(ctable, k)
        self._recipes[key] = recipe
        return recipe

    @staticmethod
    def _synthesize(ctable: int, k: int) -> Recipe:
        # Imported here: repro.aig.build depends on repro.aig.opt for
        # virtual cost counting, so the reverse import must be lazy.
        from repro.aig.build import from_truth_table

        best: AIG = None
        for method in ("sop", "mux"):
            cand = from_truth_table(ctable, k, method).extract_cone()
            if best is None or cand.num_ands < best.num_ands:
                best = cand
        return _encode(best)

    # ------------------------------------------------------------------
    def instantiate(self, sink, table: int, leaves: Sequence[int]) -> int:
        """Realize ``table`` over leaf literals through ``sink.add_and``.

        ``sink`` is an :class:`~repro.aig.aig.AIG` (builds the logic)
        or a :class:`~repro.aig.opt.counting.VirtualBuilder` (prices
        it).  Returns the output literal in either domain.
        """
        k = len(leaves)
        fm = full_mask(k)
        table &= fm
        found = self._instances.get((k, table))
        if found is None:
            if table == 0:
                return CONST0
            if table == fm:
                return CONST1
            ctable, perm, phase, out_neg = npn_canon(table, k)
            recipe = self.recipe(ctable, k)
            self._instances[(k, table)] = (recipe, perm, phase, out_neg)
        else:
            recipe, perm, phase, out_neg = found
        # Canonical input perm[i] is original leaf i xor phase bit i.
        vals: list[int] = [CONST0] * (1 + k)
        for i in range(k):
            vals[1 + perm[i]] = leaves[i] ^ ((phase >> i) & 1)
        for f0, f1 in recipe.nodes:
            a = vals[f0 >> 1] ^ (f0 & 1)
            b = vals[f1 >> 1] ^ (f1 & 1)
            vals.append(sink.add_and(a, b))
        result = vals[recipe.out >> 1] ^ (recipe.out & 1)
        return lit_not(result) if out_neg else result

    def __len__(self) -> int:
        return len(self._recipes)


_LIBRARY: NpnLibrary = None


def get_library() -> NpnLibrary:
    """The process-wide shared library instance."""
    global _LIBRARY
    if _LIBRARY is None:
        _LIBRARY = NpnLibrary()
    return _LIBRARY
