"""NPN canonicalization of small truth tables.

Two functions belong to the same NPN class when one can be obtained
from the other by Negating inputs, Permuting inputs and/or Negating
the output.  The 65536 functions of 4 variables collapse into 222 NPN
classes, which is what makes library-based rewriting practical: a
best-known implementation is synthesized once per *class* and every
cut function becomes a table lookup plus a leaf permutation.

The canonical representative of a class is the numerically smallest
table over all ``2 * 2**k * k!`` transforms.  :func:`npn_canon`
returns that table together with the transform that reaches it, in a
form :mod:`repro.aig.opt.library` can invert when instantiating the
canonical structure over concrete leaf literals.

Transform semantics (the one contract everything else relies on):

    ``npn_canon(f, k) == (c, perm, phase, out_neg)`` means

    ``f(x) == c(y) ^ out_neg``  where  ``y[perm[i]] = x[i] ^ phase_i``

so canonical input ``perm[i]`` is driven by original leaf ``i``,
complemented when bit ``i`` of ``phase`` is set.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import permutations

import numpy as np

MAX_NPN_VARS = 4

# (canonical table, perm, phase, out_neg) memoized per (k, table).
_canon_cache: dict[tuple[int, int], tuple[int, tuple[int, ...], int, bool]] = {}


@lru_cache(maxsize=None)
def _transform_tables(k: int):
    """Minterm source positions for every (perm, phase) input transform.

    Row ``t`` of the returned ``pos`` array maps minterm ``m`` of the
    transformed function ``g`` to the minterm of the original ``f``
    with ``g(y) = f(x)``, ``x_i = y[perm[i]] ^ phase_i``.  ``meta[t]``
    is the ``(perm, phase)`` pair of row ``t``.
    """
    n = 1 << k
    rows: list[list[int]] = []
    meta: list[tuple[tuple[int, ...], int]] = []
    for perm in permutations(range(k)):
        for phase in range(1 << k):
            row = []
            for m in range(n):
                src = 0
                for i in range(k):
                    if ((m >> perm[i]) & 1) ^ ((phase >> i) & 1):
                        src |= 1 << i
                row.append(src)
            rows.append(row)
            meta.append((perm, phase))
    weights = np.left_shift(np.int64(1), np.arange(n, dtype=np.int64))
    return np.asarray(rows, dtype=np.int64), meta, weights


def npn_canon(table: int, k: int) -> tuple[int, tuple[int, ...], int, bool]:
    """Canonical NPN representative of ``table`` plus the transform.

    See the module docstring for the exact transform semantics.  Only
    ``k <= 4`` is supported (768 transforms are enumerated per call;
    results are memoized process-wide, so repeated cut functions are
    dictionary hits).
    """
    if k > MAX_NPN_VARS:
        raise ValueError(f"NPN canonicalization limited to {MAX_NPN_VARS} vars")
    n = 1 << k
    table &= (1 << n) - 1
    key = (k, table)
    found = _canon_cache.get(key)
    if found is not None:
        return found
    pos, meta, weights = _transform_tables(k)
    bits = (table >> np.arange(n, dtype=np.int64)) & 1
    transformed = bits[pos] @ weights  # one table per (perm, phase)
    complemented = ((1 << n) - 1) ^ transformed
    t_best = int(np.argmin(transformed))
    c_best = int(np.argmin(complemented))
    # Prefer the non-complemented transform on ties so the canonical
    # choice is deterministic.
    if int(complemented[c_best]) < int(transformed[t_best]):
        perm, phase = meta[c_best]
        result = (int(complemented[c_best]), perm, phase, True)
    else:
        perm, phase = meta[t_best]
        result = (int(transformed[t_best]), perm, phase, False)
    _canon_cache[key] = result
    return result


def npn_apply(table: int, k: int, perm, phase: int, out_neg: bool) -> int:
    """Apply an NPN transform to ``table`` (reference implementation).

    Returns the table ``g`` with ``g(y) = f(x) ^ out_neg`` where
    ``x_i = y[perm[i]] ^ phase_i``.  Used by tests to cross-check
    :func:`npn_canon`; not on any hot path.
    """
    n = 1 << k
    out = 0
    for m in range(n):
        src = 0
        for i in range(k):
            if ((m >> perm[i]) & 1) ^ ((phase >> i) & 1):
                src |= 1 << i
        bit = (table >> src) & 1
        if bit ^ int(out_neg):
            out |= 1 << m
    return out
