"""NPN-library rewriting engine.

The optimization subsystem behind :mod:`repro.aig.optimize`:

- :mod:`~repro.aig.opt.npn` — NPN canonicalization of 4-input tables.
- :mod:`~repro.aig.opt.library` — per-class best-known structures,
  synthesized once per process and instantiated by table lookup.
- :mod:`~repro.aig.opt.counting` — mutation-free candidate pricing
  (strash-aware virtual builds, no checkpoint/rollback).
- :mod:`~repro.aig.opt.traverse` — iterative cone walks (no recursion,
  safe on chain-shaped graphs of any depth).
- :mod:`~repro.aig.opt.passes` — the passes: ``balance``, ``rewrite``,
  ``refactor``, ``fraig_lite`` and the ``compress`` script.
- :mod:`~repro.aig.opt.reference` — the seed build-measure-rollback
  passes, kept as the pinned baseline for ``bench_opt_engine.py``.

Submodules are imported lazily by their users to keep import edges
acyclic (``repro.aig.build`` prices SOP polarities through
``counting`` while ``library`` synthesizes recipes through ``build``).
"""
