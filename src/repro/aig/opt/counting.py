"""Mutation-free cost evaluation against a live AIG.

The seed optimization passes measured a rewrite candidate by
*building* it into the graph behind a checkpoint, reading the node
delta and rolling back — which thrashes the strash log, bumps the
structural ``_version`` on every probe (invalidating the cached
simulation engine) and rebuilds the winner a second time.

:class:`VirtualBuilder` replaces that cycle: it exposes the same
``add_and`` contract as :class:`repro.aig.aig.AIG` — identical
constant folding, fanin normalization and structural hashing — but
probes the target graph's strash *read-only* and allocates virtual
literals for nodes that do not exist yet.  ``n_new`` is then exactly
the number of AND nodes a real build would append, including sharing
both with the existing graph and within the candidate itself, and the
virtual literal sequence matches the literals a real build would
return (so counting and building stay in lockstep).
"""

from __future__ import annotations

from repro.aig.aig import AIG, CONST0, CONST1, GateOps, lit_not


class BudgetExceeded(Exception):
    """Raised by a budgeted :class:`VirtualBuilder` on the first node
    that makes the candidate too expensive to win — pricing a losing
    candidate stops at its first unshared node."""


class VirtualBuilder(GateOps):
    """Counts the AND nodes a construction would add to ``aig``.

    Literals returned by :meth:`add_and` are real literals of the
    target graph when the node already exists (strash hit or constant
    fold) and *virtual* literals — numbered from ``2 * aig.num_vars``
    upward, exactly where a real build would place them — otherwise.
    The target graph is never touched.

    With ``budget`` set, :class:`BudgetExceeded` is raised as soon as
    ``n_new`` would exceed it.
    """

    def __init__(self, aig: AIG, budget: int = None):
        self._real_strash = aig._strash
        self._local: dict[tuple[int, int], int] = {}
        self._next_var = aig.num_vars
        self.budget = budget
        self.n_new = 0

    def add_and(self, a: int, b: int) -> int:
        # Mirror of AIG.add_and; keep the two in lockstep.
        if a > b:
            a, b = b, a
        if a == CONST0:
            return CONST0
        if a == CONST1:
            return b
        if a == b:
            return a
        if a == lit_not(b):
            return CONST0
        key = (a, b)
        found = self._real_strash.get(key)
        if found is not None:
            return found
        found = self._local.get(key)
        if found is not None:
            return found
        if self.budget is not None and self.n_new >= self.budget:
            raise BudgetExceeded
        lit = 2 * self._next_var
        self._next_var += 1
        self._local[key] = lit
        self.n_new += 1
        return lit
