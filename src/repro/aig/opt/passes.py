"""The optimization passes, built on the NPN library engine.

All passes are greedy topological *rebuilds* into a fresh structurally
hashed graph, functionally equivalent to their input by construction:

``balance``
    Flattens single-fanout AND trees and rebuilds them with a
    Huffman-style pairing, minimizing depth (ABC's ``balance``).
``rewrite``
    DAG-aware 4-cut rewriting (ABC ``rewrite``): every node's cut
    functions are computed bottom-up during enumeration, reduced to
    their NPN class, and the class's best-known structure is *priced*
    against the output graph with mutation-free strash-aware counting.
    Only the winning candidate is built — no per-candidate ISOP, no
    checkpoint/rollback, no structural-version churn.
``refactor``
    Cone-level resynthesis of maximum fanout-free cones up to 10
    leaves, accepted when the (virtually priced) new cone is no larger
    than the old MFFC.
``fraig_lite``
    Simulation-guided equivalence-class detection (ABC ``fraig``
    role): random bit-parallel simulation through the levelized engine
    proposes equivalence candidates that structural hashing cannot
    see, and each is proven by exhaustive truth tables over a bounded
    common cut before the nodes are merged.  Unproven candidates are
    left alone, so the pass is exact.

``compress`` chains them until no improvement, mirroring ABC script
usage (``resyn2``/``compress2rs``), and never returns a graph larger
than its input.  Every cone walk is iterative (see
:mod:`repro.aig.opt.traverse`) — chain-shaped graphs of any depth are
safe.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.aig.aig import AIG
from repro.aig.cuts import enumerate_cuts_with_truths
from repro.aig.isop import full_mask
from repro.aig.opt.counting import BudgetExceeded, VirtualBuilder
from repro.aig.opt.library import NpnLibrary, get_library
from repro.aig.opt.traverse import bounded_cut, cut_truth, ffc_leaves, mffc_size
from repro.utils.rng import rng_for


def _map_lit(mapping: list[int], lit: int) -> int:
    return mapping[lit >> 1] ^ (lit & 1)


def _sync_levels(aig: AIG, lv: list[int]) -> None:
    """Extend the incremental level array to cover new nodes."""
    base = aig.n_inputs + 1
    while len(lv) < aig.num_vars:
        j = len(lv) - base
        f0, f1 = aig._fanin0[j], aig._fanin1[j]
        lv.append(max(lv[f0 >> 1], lv[f1 >> 1]) + 1)


# ---------------------------------------------------------------------
# balance
# ---------------------------------------------------------------------
def balance(aig: AIG) -> AIG:
    """Depth-oriented rebuild of AND trees (ABC ``balance``)."""
    fanout = aig.fanout_counts()
    internal = _tree_internal_mask(aig, fanout)
    new = AIG(aig.n_inputs)
    lv = [0] * (aig.n_inputs + 1)
    mapping = [0] * aig.num_vars
    for i in range(aig.n_inputs):
        mapping[1 + i] = new.input_lit(i)
    base = aig.n_inputs + 1
    for j in range(aig.num_ands):
        var = base + j
        if internal[var]:
            # Swallowed by the gather of its unique AND parent; its
            # mapping is never read.  Skipping these is what makes
            # balance linear instead of quadratic on chain/tree
            # graphs: each single-fanout tree is flattened once, at
            # its root, not once per member.
            continue
        leaves = _gather_and_leaves(aig, var, fanout)
        heap = [(lv[_map_lit(mapping, leaf) >> 1], _map_lit(mapping, leaf))
                for leaf in leaves]
        heapq.heapify(heap)
        while len(heap) > 1:
            la, a = heapq.heappop(heap)
            lb, b = heapq.heappop(heap)
            lit = new.add_and(a, b)
            _sync_levels(new, lv)
            heapq.heappush(heap, (lv[lit >> 1], lit))
        mapping[var] = heap[0][1]
    for lit in aig.outputs:
        new.set_output(_map_lit(mapping, lit))
    return new.extract_cone()


def _tree_internal_mask(aig: AIG, fanout: np.ndarray) -> np.ndarray:
    """Mask of AND nodes whose only reference is a plain AND fanin.

    Exactly the nodes :func:`_gather_and_leaves` expands into their
    parent's leaf set — complemented references, multi-fanout nodes
    and output-referenced nodes all stay tree roots.
    """
    internal = np.zeros(aig.num_vars, dtype=bool)
    for fanins in (aig._fanin0, aig._fanin1):
        f = np.asarray(fanins, dtype=np.int64)
        plain = f[(f & 1) == 0] >> 1
        internal[plain] = True
    internal &= fanout == 1
    internal[: aig.n_inputs + 1] = False
    return internal


def _gather_and_leaves(aig: AIG, var: int, fanout: np.ndarray) -> list[int]:
    """Leaves of the single-fanout AND tree rooted at ``var``.

    A fanin literal is expanded when it is a non-complemented AND node
    referenced only once; otherwise it is a leaf.
    """
    leaves: list[int] = []
    stack = list(aig.fanins(var))
    while stack:
        lit = stack.pop()
        v = lit >> 1
        if not (lit & 1) and aig.is_and_var(v) and fanout[v] == 1:
            stack.extend(aig.fanins(v))
        else:
            leaves.append(lit)
    return leaves


# ---------------------------------------------------------------------
# rewrite
# ---------------------------------------------------------------------
def rewrite(
    aig: AIG,
    k: int = 4,
    max_cuts: int = 8,
    library: NpnLibrary | None = None,
) -> AIG:
    """DAG-aware NPN-library cut rewriting (ABC ``rewrite`` analogue).

    Cuts up to ``lib.max_vars`` leaves (4 by default) are priced
    through the NPN library; wider cuts — the seed supported any
    ``k`` — fall back to mutation-free ISOP pricing, so the public
    ``k`` parameter keeps its old range.
    """
    from repro.aig.build import lut_choice, sop_over_leaves

    lib = library if library is not None else get_library()
    node_cuts = enumerate_cuts_with_truths(aig, k=k, max_cuts=max_cuts)
    new = AIG(aig.n_inputs)
    mapping = [0] * aig.num_vars
    for i in range(aig.n_inputs):
        mapping[1 + i] = new.input_lit(i)
    base = aig.n_inputs + 1
    for j in range(aig.num_ands):
        var = base + j
        f0, f1 = aig.fanins(var)
        ma, mb = _map_lit(mapping, f0), _map_lit(mapping, f1)
        probe = VirtualBuilder(new)
        direct_lit = probe.add_and(ma, mb)
        if probe.n_new == 0:
            # Constant fold or strash hit: nothing can beat zero cost,
            # and the returned literal is a real one.
            mapping[var] = direct_lit
            continue
        best_cost = probe.n_new  # the direct build costs one node
        best = None
        for cut, table in node_cuts[var]:
            if len(cut) < 2:
                continue
            leaf_lits = [mapping[leaf] for leaf in cut]
            if len(cut) <= lib.max_vars:
                # A candidate only wins with strictly fewer new
                # nodes, so price it with that budget and abandon it
                # at the first node that cannot be shared.
                counter = VirtualBuilder(new, budget=best_cost - 1)
                try:
                    lib.instantiate(counter, table, leaf_lits)
                except BudgetExceeded:
                    continue
                cost = counter.n_new
            else:
                choice = lut_choice(
                    new, table, leaf_lits, budget=best_cost - 1
                )
                if choice is None:
                    continue
                cost = choice[0]
            if cost < best_cost:
                best_cost = cost
                best = (cut, table)
        if best is None:
            mapping[var] = new.add_and(ma, mb)
        else:
            cut, table = best
            leaf_lits = [mapping[leaf] for leaf in cut]
            if len(cut) <= lib.max_vars:
                mapping[var] = lib.instantiate(new, table, leaf_lits)
            else:
                _, cover, negated = lut_choice(new, table, leaf_lits)
                lit = sop_over_leaves(new, cover, leaf_lits)
                mapping[var] = lit ^ 1 if negated else lit
    for lit in aig.outputs:
        new.set_output(_map_lit(mapping, lit))
    return new.extract_cone()


# ---------------------------------------------------------------------
# refactor
# ---------------------------------------------------------------------
def refactor(aig: AIG, max_leaves: int = 10) -> AIG:
    """MFFC cone resynthesis (ABC ``refactor`` analogue)."""
    from repro.aig.build import lut_choice, sop_over_leaves
    from repro.aig.aig import CONST0, CONST1, lit_not

    fanout = aig.fanout_counts()
    new = AIG(aig.n_inputs)
    mapping = [0] * aig.num_vars
    for i in range(aig.n_inputs):
        mapping[1 + i] = new.input_lit(i)
    base = aig.n_inputs + 1
    for j in range(aig.num_ands):
        var = base + j
        f0, f1 = aig.fanins(var)
        leaves = ffc_leaves(aig, var, fanout, max_leaves)
        if leaves is not None:
            table = cut_truth(aig, var, leaves)
            fm = full_mask(len(leaves))
            if table == 0 or table == fm:
                mapping[var] = CONST0 if table == 0 else CONST1
                continue
            old_cone = mffc_size(aig, var, fanout)
            mapped = [mapping[leaf] for leaf in leaves]
            choice = lut_choice(new, table, mapped, budget=old_cone)
            if choice is not None and choice[0] <= old_cone:
                lit = sop_over_leaves(new, choice[1], mapped)
                mapping[var] = lit_not(lit) if choice[2] else lit
                continue
        mapping[var] = new.add_and(
            _map_lit(mapping, f0), _map_lit(mapping, f1)
        )
    for lit in aig.outputs:
        new.set_output(_map_lit(mapping, lit))
    return new.extract_cone()


# ---------------------------------------------------------------------
# fraig-lite
# ---------------------------------------------------------------------
def fraig_lite(
    aig: AIG,
    n_words: int = 4,
    max_leaves: int = 12,
    max_visit: int = 48,
    rng: np.random.Generator | None = None,
    backend: str | None = None,
) -> AIG:
    """Merge simulation-equivalent nodes after a bounded exact proof.

    Random packed patterns are simulated once through the levelized
    engine (on the selected executor ``backend``); variables with
    identical (or complementary) signatures form candidate classes.
    A candidate is merged into its class representative only when
    exhaustive truth tables over a bounded common cut *prove* the
    equivalence, so the output is functionally identical to the input
    even though the signatures are random.
    """
    if aig.num_ands == 0:
        return aig.extract_cone()
    if rng is None:
        rng = rng_for("fraig-lite", aig.num_vars, aig.num_ands)
    packed = rng.integers(
        0, 1 << 64, size=(aig.n_inputs, n_words), dtype=np.uint64
    )
    values = aig.simulate_packed_all(packed, backend=backend)
    inverted = ~values
    # Canonical signature: complement rows whose first bit is set, so
    # a node and its negation land in the same class.
    reps = {}
    subst = {}
    for var in range(aig.num_vars):
        neg = bool(values[var, 0] & 1)
        key = (inverted[var] if neg else values[var]).tobytes()
        entry = reps.get(key)
        if entry is None:
            reps[key] = (var, neg)
            continue
        if not aig.is_and_var(var):
            continue  # never merge inputs into anything
        rep, rep_neg = entry
        cut = bounded_cut(
            aig, (rep, var), max_leaves=max_leaves, max_visit=max_visit
        )
        if cut is None:
            continue
        t_rep = cut_truth(aig, rep, cut)
        t_var = cut_truth(aig, var, cut)
        compl = neg ^ rep_neg
        expected = ~t_rep & full_mask(len(cut)) if compl else t_rep
        if t_var == expected:
            subst[var] = (rep, compl)
    if not subst:
        return aig.extract_cone()
    new = AIG(aig.n_inputs)
    mapping = [0] * aig.num_vars
    for i in range(aig.n_inputs):
        mapping[1 + i] = new.input_lit(i)
    base = aig.n_inputs + 1
    for j in range(aig.num_ands):
        var = base + j
        found = subst.get(var)
        if found is not None:
            rep, compl = found
            mapping[var] = mapping[rep] ^ compl
        else:
            f0, f1 = aig.fanins(var)
            mapping[var] = new.add_and(
                _map_lit(mapping, f0), _map_lit(mapping, f1)
            )
    for lit in aig.outputs:
        new.set_output(_map_lit(mapping, lit))
    return new.extract_cone()


# ---------------------------------------------------------------------
# compress
# ---------------------------------------------------------------------
def compress(aig: AIG, max_rounds: int = 3) -> AIG:
    """Iterated optimization script (``resyn2``/``compress2rs`` role).

    Guaranteed not to increase the used-node count.
    """
    best = aig.extract_cone()
    for _ in range(max_rounds):
        size_before = best.num_ands
        # No trailing rewrite (the seed script had one): the round
        # loop iterates to a fixpoint, so the next round's rewrite
        # subsumes it at half the enumeration cost.
        for pass_fn in (balance, rewrite, refactor, fraig_lite):
            cand = pass_fn(best)
            if cand.num_ands < best.num_ands or (
                cand.num_ands == best.num_ands and cand.depth() < best.depth()
            ):
                best = cand
        if best.num_ands >= size_before:
            break
    return best
