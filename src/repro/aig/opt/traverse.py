"""Iterative (stack-based) cone walks shared by all optimization passes.

The seed implementations of cut-function evaluation and MFFC sizing
were recursive, and their recursion depth is bounded only by the cone
depth — on chain-shaped graphs (deep ripple/parity chains, exactly
what the circuit builders emit for learned arithmetic) they blew the
Python recursion limit.  Every walk here uses an explicit stack, so
graph depth is never a correctness concern again; the pass layer,
:mod:`repro.aig.cuts` and the fraig-lite prover all route through
these helpers.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.aig.aig import AIG
from repro.aig.isop import full_mask, var_mask

Cut = tuple[int, ...]


def cut_truth(aig: AIG, root: int, leaves: Sequence[int]) -> int:
    """Truth table of variable ``root`` in terms of ``leaves``.

    ``leaves`` must be a cut of ``root``; reaching a primary input
    outside the cut raises ``ValueError``.  Iterative post-order
    evaluation — safe on cones of any depth.
    """
    k = len(leaves)
    fm = full_mask(k)
    values = {0: 0}
    for pos, leaf in enumerate(leaves):
        values[leaf] = var_mask(k, pos)
    if root in values:
        return values[root]
    stack = [root]
    while stack:
        var = stack[-1]
        if var in values:
            stack.pop()
            continue
        if not aig.is_and_var(var):
            raise ValueError(
                f"variable {var} reached outside the cut {tuple(leaves)}"
            )
        f0, f1 = aig.fanins(var)
        v0, v1 = f0 >> 1, f1 >> 1
        t0 = values.get(v0)
        t1 = values.get(v1)
        if t0 is None or t1 is None:
            if t0 is None:
                stack.append(v0)
            if t1 is None:
                stack.append(v1)
            continue
        stack.pop()
        a = ~t0 & fm if f0 & 1 else t0
        b = ~t1 & fm if f1 & 1 else t1
        values[var] = a & b
    return values[root]


def mffc_size(aig: AIG, var: int, fanout: Sequence[int]) -> int:
    """Size of the maximum fanout-free cone rooted at ``var``.

    ``fanout`` is the fanout count array of the graph.  The MFFC is
    the set of AND nodes that would become dead if ``var`` were
    removed.
    """
    if not aig.is_and_var(var):
        return 0
    counted = set()
    stack = [(var, True)]
    while stack:
        v, is_root = stack.pop()
        if v in counted or not aig.is_and_var(v):
            continue
        if not is_root and fanout[v] > 1:
            continue
        counted.add(v)
        f0, f1 = aig.fanins(v)
        stack.append((f0 >> 1, False))
        stack.append((f1 >> 1, False))
    return len(counted)


def ffc_leaves(
    aig: AIG, var: int, fanout: Sequence[int], max_leaves: int
) -> Cut | None:
    """Leaf variables of the fanout-free cone of ``var`` (or None).

    Expands single-fanout AND fanins; everything else is a leaf.
    Returns None when the cone has fewer than 2 or more than
    ``max_leaves`` leaves.
    """
    leaves = set()
    stack = [lit >> 1 for lit in aig.fanins(var)]
    while stack:
        v = stack.pop()
        if aig.is_and_var(v) and fanout[v] == 1:
            stack.extend(lit >> 1 for lit in aig.fanins(v))
        elif not aig.is_const_var(v):
            leaves.add(v)
        if len(leaves) > max_leaves:
            return None
    if len(leaves) < 2:
        return None
    return tuple(sorted(leaves))


def bounded_cut(
    aig: AIG,
    roots: Iterable[int],
    max_leaves: int = 12,
    max_visit: int = 48,
) -> Cut | None:
    """A common cut of ``roots`` found by bounded backward expansion.

    AND nodes are expanded until the visit budget runs out; the
    unexpanded frontier (primary inputs plus any AND nodes beyond the
    budget) is returned as the cut.  Any frontier of a backward walk
    is a valid cut, so :func:`cut_truth` over the result terminates
    for every root.  Returns None when the frontier exceeds
    ``max_leaves`` — callers treat that as "no bounded proof found".
    """
    expanded = set()
    leaves = set()
    stack = [r for r in roots]
    while stack:
        v = stack.pop()
        if v in expanded or v in leaves or aig.is_const_var(v):
            continue
        if aig.is_and_var(v) and len(expanded) < max_visit:
            expanded.add(v)
            f0, f1 = aig.fanins(v)
            stack.append(f0 >> 1)
            stack.append(f1 >> 1)
        else:
            leaves.add(v)
            if len(leaves) > max_leaves:
                return None
    return tuple(sorted(leaves))
