"""Core And-Inverter Graph data structure.

Literals follow the AIGER convention: variable 0 is the constant false,
variables ``1 .. n_inputs`` are the primary inputs, and AND nodes take
the following variable indices.  The literal of variable ``v`` is
``2 * v``; ``2 * v + 1`` is its complement.  Fanin variable indices are
always smaller than the node's own index, so the node list is already a
topological order.

The graph is structurally hashed: :meth:`AIG.add_and` folds constants,
normalizes fanin order and reuses an existing node when one computes
the same function of the same fanins.  Optimization passes rely on
:meth:`AIG.checkpoint` / :meth:`AIG.rollback` to tentatively build
candidate subgraphs and undo them when they do not improve size.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.utils.bitops import bits_to_int

CONST0 = 0
CONST1 = 1


def lit_var(lit: int) -> int:
    """Variable index of a literal."""
    return lit >> 1


def lit_is_compl(lit: int) -> bool:
    """True if the literal is complemented."""
    return bool(lit & 1)


def lit_not(lit: int) -> int:
    """Complement of a literal."""
    return lit ^ 1


def lit_make(var: int, compl: bool = False) -> int:
    """Literal for variable ``var``, optionally complemented."""
    return (var << 1) | int(compl)


def lit_regular(lit: int) -> int:
    """The positive-polarity literal of the same variable."""
    return lit & ~1


class GateOps:
    """Derived gates expressed through ``add_and``.

    Mixed into :class:`AIG` and into the mutation-free cost counter
    (:class:`repro.aig.opt.counting.VirtualBuilder`), so counting how
    many nodes a construction *would* add runs the exact same gate
    decompositions as building it.
    """

    def add_and(self, a: int, b: int) -> int:  # pragma: no cover
        raise NotImplementedError

    def add_or(self, a: int, b: int) -> int:
        """OR via De Morgan."""
        return lit_not(self.add_and(lit_not(a), lit_not(b)))

    def add_xor(self, a: int, b: int) -> int:
        """XOR as two ANDs plus an OR (3 AND nodes)."""
        return self.add_or(
            self.add_and(a, lit_not(b)), self.add_and(lit_not(a), b)
        )

    def add_mux(self, sel: int, t: int, e: int) -> int:
        """``sel ? t : e``."""
        return self.add_or(self.add_and(sel, t), self.add_and(lit_not(sel), e))

    def add_maj3(self, a: int, b: int, c: int) -> int:
        """Majority of three literals."""
        return self.add_or(
            self.add_and(a, b), self.add_or(self.add_and(a, c), self.add_and(b, c))
        )

    def add_and_multi(self, lits: Sequence[int]) -> int:
        """Balanced conjunction of many literals."""
        return self._reduce_balanced(list(lits), self.add_and, CONST1)

    def add_or_multi(self, lits: Sequence[int]) -> int:
        """Balanced disjunction of many literals."""
        return self._reduce_balanced(list(lits), self.add_or, CONST0)

    def add_xor_multi(self, lits: Sequence[int]) -> int:
        """Balanced parity of many literals."""
        return self._reduce_balanced(list(lits), self.add_xor, CONST0)

    @staticmethod
    def _reduce_balanced(lits, op, identity):
        if not lits:
            return identity
        while len(lits) > 1:
            nxt = []
            for i in range(0, len(lits) - 1, 2):
                nxt.append(op(lits[i], lits[i + 1]))
            if len(lits) % 2:
                nxt.append(lits[-1])
            lits = nxt
        return lits[0]


class AIG(GateOps):
    """A structurally hashed And-Inverter Graph.

    Parameters
    ----------
    n_inputs:
        Number of primary inputs.  Input ``i`` (0-based) has literal
        :meth:`input_lit`\\ ``(i)``.
    """

    def __init__(self, n_inputs: int):
        if n_inputs < 0:
            raise ValueError("n_inputs must be non-negative")
        self.n_inputs = n_inputs
        # Fanins of AND nodes; AND node j has variable index
        # n_inputs + 1 + j.
        self._fanin0: list[int] = []
        self._fanin1: list[int] = []
        self.outputs: list[int] = []
        self._strash = {}
        self._strash_log: list[tuple[int, int]] = []
        # Structural version, bumped on every mutation; keys the cached
        # compiled simulation engines (one per backend, sharing one
        # program — see :meth:`compiled`).
        self._version = 0
        self._compiled: tuple[int, tuple[int, ...], dict] | None = None

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_ands(self) -> int:
        """Number of AND nodes."""
        return len(self._fanin0)

    @property
    def num_vars(self) -> int:
        """Total variable count: constant + inputs + AND nodes."""
        return 1 + self.n_inputs + self.num_ands

    @property
    def num_outputs(self) -> int:
        return len(self.outputs)

    def input_lit(self, i: int) -> int:
        """Literal of primary input ``i`` (0-based)."""
        if not 0 <= i < self.n_inputs:
            raise IndexError(f"input index {i} out of range")
        return lit_make(1 + i)

    def input_lits(self) -> list[int]:
        """Literals of all primary inputs, in order."""
        return [lit_make(1 + i) for i in range(self.n_inputs)]

    def is_const_var(self, var: int) -> bool:
        return var == 0

    def is_input_var(self, var: int) -> bool:
        return 1 <= var <= self.n_inputs

    def is_and_var(self, var: int) -> bool:
        return var > self.n_inputs

    def fanins(self, var: int) -> tuple[int, int]:
        """Fanin literals of AND node variable ``var``."""
        idx = var - self.n_inputs - 1
        if idx < 0:
            raise ValueError(f"variable {var} is not an AND node")
        return self._fanin0[idx], self._fanin1[idx]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_and(self, a: int, b: int) -> int:
        """AND of two literals with constant folding and strashing."""
        if a > b:
            a, b = b, a
        # Constant and trivial cases.
        if a == CONST0:
            return CONST0
        if a == CONST1:
            return b
        if a == b:
            return a
        if a == lit_not(b):
            return CONST0
        key = (a, b)
        found = self._strash.get(key)
        if found is not None:
            return found
        var = self.num_vars
        self._fanin0.append(a)
        self._fanin1.append(b)
        lit = lit_make(var)
        self._strash[key] = lit
        self._strash_log.append(key)
        self._version += 1
        return lit

    def set_output(self, lit: int) -> int:
        """Append an output literal; returns its output index."""
        self.outputs.append(lit)
        self._version += 1
        return len(self.outputs) - 1

    # ------------------------------------------------------------------
    # Checkpoint / rollback for tentative construction
    # ------------------------------------------------------------------
    def checkpoint(self) -> tuple[int, int, int]:
        """Snapshot for :meth:`rollback` (node count, strash log, outputs)."""
        return (self.num_ands, len(self._strash_log), len(self.outputs))

    def rollback(self, state: tuple[int, int, int]) -> None:
        """Undo all nodes/outputs added after ``state`` was taken."""
        n_ands, n_log, n_outs = state
        for key in self._strash_log[n_log:]:
            self._strash.pop(key, None)
        del self._strash_log[n_log:]
        del self._fanin0[n_ands:]
        del self._fanin1[n_ands:]
        del self.outputs[n_outs:]
        self._version += 1

    # ------------------------------------------------------------------
    # Structural analysis
    # ------------------------------------------------------------------
    def levels(self) -> np.ndarray:
        """Level of every variable (constant and inputs are level 0)."""
        return self.compiled().var_levels.copy()

    def depth(self) -> int:
        """Number of logic levels on the longest output path."""
        if not self.outputs:
            return 0
        lv = self.compiled().var_levels
        return int(max(lv[lit_var(o)] for o in self.outputs))

    def fanout_counts(self) -> np.ndarray:
        """Number of fanout references per variable (incl. outputs)."""
        counts = np.zeros(self.num_vars, dtype=np.int64)
        for j in range(self.num_ands):
            counts[self._fanin0[j] >> 1] += 1
            counts[self._fanin1[j] >> 1] += 1
        for o in self.outputs:
            counts[lit_var(o)] += 1
        return counts

    def reachable_vars(self, lits: Iterable[int] | None = None) -> np.ndarray:
        """Boolean mask of variables in the transitive fanin of ``lits``.

        Defaults to the registered outputs.
        """
        if lits is None:
            lits = self.outputs
        mask = np.zeros(self.num_vars, dtype=bool)
        stack = [lit_var(lit) for lit in lits]
        while stack:
            var = stack.pop()
            if mask[var]:
                continue
            mask[var] = True
            if self.is_and_var(var):
                f0, f1 = self.fanins(var)
                stack.append(lit_var(f0))
                stack.append(lit_var(f1))
        return mask

    def count_used_ands(self, lits: Iterable[int] | None = None) -> int:
        """AND nodes in the transitive fanin of ``lits`` (default outputs)."""
        mask = self.reachable_vars(lits)
        return int(mask[self.n_inputs + 1 :].sum())

    def extract_cone(self, lits: Sequence[int] | None = None) -> "AIG":
        """Compact copy containing only logic reachable from ``lits``.

        Primary inputs are all preserved (same indices) so the new graph
        computes the same function of the same input vector.  ``lits``
        defaults to the registered outputs.
        """
        if lits is None:
            lits = list(self.outputs)
        new = AIG(self.n_inputs)
        mask = self.reachable_vars(lits)
        mapping = np.full(self.num_vars, -1, dtype=np.int64)
        mapping[0] = CONST0
        for i in range(self.n_inputs):
            mapping[1 + i] = new.input_lit(i)
        base = self.n_inputs + 1
        for j in range(self.num_ands):
            var = base + j
            if not mask[var]:
                continue
            f0, f1 = self._fanin0[j], self._fanin1[j]
            a = mapping[f0 >> 1] ^ (f0 & 1)
            b = mapping[f1 >> 1] ^ (f1 & 1)
            mapping[var] = new.add_and(a, b)
        for lit in lits:
            new.set_output(int(mapping[lit_var(lit)]) ^ (lit & 1))
        return new

    def copy(self) -> "AIG":
        """Deep copy."""
        new = AIG(self.n_inputs)
        new._fanin0 = list(self._fanin0)
        new._fanin1 = list(self._fanin1)
        new.outputs = list(self.outputs)
        new._strash = dict(self._strash)
        new._strash_log = list(self._strash_log)
        return new

    # ------------------------------------------------------------------
    # Simulation (delegates to the levelized engine in repro.sim)
    # ------------------------------------------------------------------
    def compiled(self, backend: str | None = None):
        """The levelized simulation engine for the current structure.

        Compiled lazily and cached until the next mutation
        (:meth:`add_and` appending a node, :meth:`set_output`,
        :meth:`rollback`), so repeated simulations of the same graph —
        the common case when scoring one candidate on several sample
        sets — pay the compile cost once.  ``outputs`` is a public
        list, so the cache is additionally keyed on its contents to
        stay correct under in-place rewiring.

        ``backend`` selects the executor backend (see
        :mod:`repro.sim.backend`; ``None`` follows the selection
        precedence).  The cache keys engines by ``(version, outputs,
        effective backend)`` but the backend-neutral
        :class:`~repro.sim.program.SimProgram` is compiled once per
        structure and shared by every backend's executor.
        """
        from repro.sim.backend import resolve_backend
        from repro.sim.engine import CompiledAIG

        name = resolve_backend(backend)
        outs = tuple(self.outputs)
        if (
            self._compiled is None
            or self._compiled[0] != self._version
            or self._compiled[1] != outs
        ):
            self._compiled = (self._version, outs, {})
        engines: dict = self._compiled[2]
        engine = engines.get(name)
        if engine is None:
            if engines:
                # Reuse the sibling backend's program (no recompile).
                program = next(iter(engines.values())).program
            else:
                program = self
            engine = CompiledAIG(program, name)
            engines[name] = engine
        return engine

    def simulate_packed_all(
        self, packed_inputs: np.ndarray, backend: str | None = None
    ) -> np.ndarray:
        """Bit-parallel simulation returning values of *every* variable.

        ``packed_inputs`` has shape ``(n_inputs, n_words)`` with 64
        samples per uint64 word (see :func:`repro.utils.pack_bits`).
        Returns the full value matrix, shape ``(num_vars, n_words)``,
        in positive polarity (row of variable ``v`` is ``v``'s value).
        """
        return self.compiled(backend).run_packed_all(packed_inputs)

    def simulate_packed(
        self, packed_inputs: np.ndarray, backend: str | None = None
    ) -> np.ndarray:
        """Bit-parallel simulation of the registered outputs.

        ``packed_inputs`` has shape ``(n_inputs, n_words)``; returns
        packed output values, shape ``(n_outputs, n_words)``.
        """
        return self.compiled(backend).run_packed(packed_inputs)

    def simulate(
        self, samples: np.ndarray, backend: str | None = None
    ) -> np.ndarray:
        """Evaluate on a ``(n_samples, n_inputs)`` 0/1 matrix.

        Returns a ``(n_samples, n_outputs)`` uint8 matrix.
        """
        return self.compiled(backend).run(samples)

    def truth_tables(self, n_vars: int | None = None) -> list[int]:
        """Exhaustive truth table of each output as a Python int.

        Bit ``m`` of the result is the output value on the input
        assignment whose bits are the binary digits of ``m`` (input 0 is
        the least significant digit).  Only sensible for small input
        counts (``n_inputs <= 20``).
        """
        n = self.n_inputs if n_vars is None else n_vars
        if n > 20:
            raise ValueError("truth tables limited to 20 inputs")
        n_rows = 1 << n
        grid = np.zeros((n_rows, self.n_inputs), dtype=np.uint8)
        for i in range(min(n, self.n_inputs)):
            period = 1 << (i + 1)
            pattern = np.zeros(period, dtype=np.uint8)
            pattern[1 << i :] = 1
            grid[:, i] = np.tile(pattern, n_rows // period)
        values = self.simulate(grid)
        return [bits_to_int(values[:, k]) for k in range(self.num_outputs)]

    def __repr__(self) -> str:
        return (
            f"AIG(inputs={self.n_inputs}, ands={self.num_ands}, "
            f"outputs={self.num_outputs})"
        )
