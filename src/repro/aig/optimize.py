"""ABC-style AIG size/depth optimization.

The contest flows post-process every learned circuit with ABC's
``resyn2``/``compress2rs`` scripts; this module plays that role.  Three
passes are provided, all implemented as greedy topological *rebuilds*
into a fresh structurally hashed graph:

``balance``
    Flattens single-fanout AND trees and rebuilds them with a
    Huffman-style pairing, minimizing depth (ABC's ``balance``).
``rewrite``
    DAG-aware 4-cut rewriting: each node is re-expressed as the
    cheapest among its direct form and the ISOP resynthesis of any of
    its k-cuts, with structural hashing making shared logic free.
``refactor``
    Cone-level resynthesis of maximum fanout-free cones up to 10
    leaves, accepted when the new cone is no larger than the old MFFC.

``compress`` chains them until no improvement, mirroring ABC script
usage, and never returns a graph larger than its input.
"""

from __future__ import annotations

import heapq
from typing import Dict, List

import numpy as np

from repro.aig.aig import AIG, lit_not, lit_var
from repro.aig.build import lut
from repro.aig.cuts import cut_function, enumerate_cuts, mffc_size


def _map_lit(mapping: np.ndarray, lit: int) -> int:
    return int(mapping[lit >> 1]) ^ (lit & 1)


def _sync_levels(aig: AIG, lv: List[int]) -> None:
    """Extend the incremental level array to cover new nodes."""
    base = aig.n_inputs + 1
    while len(lv) < aig.num_vars:
        j = len(lv) - base
        f0, f1 = aig._fanin0[j], aig._fanin1[j]
        lv.append(max(lv[f0 >> 1], lv[f1 >> 1]) + 1)


def balance(aig: AIG) -> AIG:
    """Depth-oriented rebuild of AND trees (ABC ``balance``)."""
    fanout = aig.fanout_counts()
    new = AIG(aig.n_inputs)
    lv = [0] * (aig.n_inputs + 1)
    mapping = np.zeros(aig.num_vars, dtype=np.int64)
    for i in range(aig.n_inputs):
        mapping[1 + i] = new.input_lit(i)
    base = aig.n_inputs + 1
    for j in range(aig.num_ands):
        var = base + j
        leaves = _gather_and_leaves(aig, var, fanout)
        heap = [(lv[_map_lit(mapping, l) >> 1], _map_lit(mapping, l)) for l in leaves]
        heapq.heapify(heap)
        while len(heap) > 1:
            la, a = heapq.heappop(heap)
            lb, b = heapq.heappop(heap)
            lit = new.add_and(a, b)
            _sync_levels(new, lv)
            heapq.heappush(heap, (lv[lit >> 1], lit))
        mapping[var] = heap[0][1]
    for lit in aig.outputs:
        new.set_output(_map_lit(mapping, lit))
    return new.extract_cone()


def _gather_and_leaves(aig: AIG, var: int, fanout: np.ndarray) -> List[int]:
    """Leaves of the single-fanout AND tree rooted at ``var``.

    A fanin literal is expanded when it is a non-complemented AND node
    referenced only once; otherwise it is a leaf.
    """
    leaves: List[int] = []
    stack = list(aig.fanins(var))
    while stack:
        lit = stack.pop()
        v = lit >> 1
        if not (lit & 1) and aig.is_and_var(v) and fanout[v] == 1:
            stack.extend(aig.fanins(v))
        else:
            leaves.append(lit)
    return leaves


def rewrite(aig: AIG, k: int = 4, max_cuts: int = 8) -> AIG:
    """DAG-aware cut rewriting (ABC ``rewrite`` analogue)."""
    cuts = enumerate_cuts(aig, k=k, max_cuts=max_cuts)
    new = AIG(aig.n_inputs)
    mapping = np.zeros(aig.num_vars, dtype=np.int64)
    for i in range(aig.n_inputs):
        mapping[1 + i] = new.input_lit(i)
    base = aig.n_inputs + 1
    for j in range(aig.num_ands):
        var = base + j
        f0, f1 = aig.fanins(var)
        candidates = [("direct", None, None)]
        for cut in cuts[var]:
            if len(cut) < 2 or cut == (var,):
                continue
            table = cut_function(aig, var, cut)
            candidates.append(("cut", cut, table))
        best_cost = None
        best_kind = None
        for kind, cut, table in candidates:
            state = new.checkpoint()
            if kind == "direct":
                new.add_and(_map_lit(mapping, f0), _map_lit(mapping, f1))
            else:
                lut(new, table, [int(mapping[l]) for l in cut])
            cost = new.num_ands - state[0]
            new.rollback(state)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_kind = (kind, cut, table)
        kind, cut, table = best_kind
        if kind == "direct":
            mapping[var] = new.add_and(
                _map_lit(mapping, f0), _map_lit(mapping, f1)
            )
        else:
            mapping[var] = lut(new, table, [int(mapping[l]) for l in cut])
    for lit in aig.outputs:
        new.set_output(_map_lit(mapping, lit))
    return new.extract_cone()


def refactor(aig: AIG, max_leaves: int = 10) -> AIG:
    """MFFC cone resynthesis (ABC ``refactor`` analogue)."""
    fanout = aig.fanout_counts()
    new = AIG(aig.n_inputs)
    mapping = np.zeros(aig.num_vars, dtype=np.int64)
    for i in range(aig.n_inputs):
        mapping[1 + i] = new.input_lit(i)
    base = aig.n_inputs + 1
    for j in range(aig.num_ands):
        var = base + j
        f0, f1 = aig.fanins(var)
        direct = lambda: new.add_and(  # noqa: E731 - tiny local thunk
            _map_lit(mapping, f0), _map_lit(mapping, f1)
        )
        leaves = _ffc_leaves(aig, var, fanout, max_leaves)
        if leaves is None:
            mapping[var] = direct()
            continue
        table = cut_function(aig, var, leaves)
        old_cone = mffc_size(aig, var, fanout)
        state = new.checkpoint()
        cand = lut(new, table, [int(mapping[l]) for l in leaves])
        cost = new.num_ands - state[0]
        if cost <= old_cone:
            mapping[var] = cand
        else:
            new.rollback(state)
            mapping[var] = direct()
    for lit in aig.outputs:
        new.set_output(_map_lit(mapping, lit))
    return new.extract_cone()


def _ffc_leaves(aig: AIG, var: int, fanout: np.ndarray, max_leaves: int):
    """Leaf variables of the fanout-free cone of ``var`` (or None)."""
    leaves = set()
    stack = [l >> 1 for l in aig.fanins(var)]
    while stack:
        v = stack.pop()
        if aig.is_and_var(v) and fanout[v] == 1:
            stack.extend(l >> 1 for l in aig.fanins(v))
        elif not aig.is_const_var(v):
            leaves.add(v)
        if len(leaves) > max_leaves:
            return None
    if len(leaves) < 2:
        return None
    return tuple(sorted(leaves))


def compress(aig: AIG, max_rounds: int = 3) -> AIG:
    """Iterated balance/rewrite/refactor script (``compress2rs`` role).

    Guaranteed not to increase the used-node count.
    """
    best = aig.extract_cone()
    for _ in range(max_rounds):
        size_before = best.num_ands
        for pass_fn in (balance, rewrite, refactor, rewrite):
            cand = pass_fn(best)
            if cand.num_ands < best.num_ands or (
                cand.num_ands == best.num_ands and cand.depth() < best.depth()
            ):
                best = cand
        if best.num_ands >= size_before:
            break
    return best
