"""ABC-style AIG size/depth optimization (facade).

The contest flows post-process every learned circuit with ABC's
``resyn2``/``compress2rs`` scripts; this module plays that role.  The
engine lives in :mod:`repro.aig.opt` — an NPN-canonical 4-input
library with mutation-free gain evaluation and iterative cone walks —
and this facade re-exports the passes under their historical names so
``from repro.aig.optimize import compress`` keeps working everywhere:

``balance``
    Depth-oriented rebuild of AND trees (ABC ``balance``).
``rewrite``
    DAG-aware 4-cut rewriting against the precomputed NPN library.
``refactor``
    MFFC cone resynthesis up to 10 leaves.
``fraig_lite``
    Simulation-guided, truth-table-proven equivalent-node merging.
``compress``
    The iterated script; never returns a graph larger than its input.

The seed build-measure-rollback implementations are preserved in
:mod:`repro.aig.opt.reference` as the benchmark baseline.
"""

from __future__ import annotations

from repro.aig.opt.passes import (  # noqa: F401 - re-exported API
    balance,
    compress,
    fraig_lite,
    refactor,
    rewrite,
)
from repro.aig.opt.traverse import ffc_leaves as _iterative_ffc_leaves

__all__ = ["balance", "compress", "fraig_lite", "refactor", "rewrite"]


def _ffc_leaves(aig, var, fanout, max_leaves):
    """Backwards-compatible alias for the iterative FFC-leaf walk."""
    return _iterative_ffc_leaves(aig, var, fanout, max_leaves)
