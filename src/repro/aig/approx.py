"""Simulation-guided AIG approximation (Team 1's size reducer).

When a learned circuit exceeds the 5000-node contest cap, Team 1
simulates it with thousands of random input patterns and repeatedly
replaces the node that is most often constant by that constant
(complemented references become the opposite constant).  Nodes near the
outputs are protected by a level threshold so the result does not
collapse to a constant.  The paper reports <= 5% accuracy loss while
removing 3000-5000 nodes.
"""

from __future__ import annotations

import numpy as np

from repro.aig.aig import AIG, CONST0, CONST1
from repro.utils.bitops import popcount64
from repro.utils.rng import rng_for


def substitute_constants(aig: AIG, overrides: dict[int, int]) -> AIG:
    """Rebuild with selected variables replaced by constant literals.

    ``overrides`` maps variable index -> constant literal (0 or 1).
    """
    new = AIG(aig.n_inputs)
    mapping = np.zeros(aig.num_vars, dtype=np.int64)
    for i in range(aig.n_inputs):
        mapping[1 + i] = new.input_lit(i)
    for var, const in overrides.items():
        if aig.is_input_var(var):
            raise ValueError("cannot replace a primary input by a constant")
        mapping[var] = const
    base = aig.n_inputs + 1
    for j in range(aig.num_ands):
        var = base + j
        if var in overrides:
            continue
        f0, f1 = aig.fanins(var)
        a = int(mapping[f0 >> 1]) ^ (f0 & 1)
        b = int(mapping[f1 >> 1]) ^ (f1 & 1)
        mapping[var] = new.add_and(a, b)
    for lit in aig.outputs:
        new.set_output(int(mapping[lit >> 1]) ^ (lit & 1))
    return new.extract_cone()


def approximate_to_size(
    aig: AIG,
    max_ands: int = 5000,
    n_patterns: int = 4096,
    level_margin: int = 3,
    rng: np.random.Generator | None = None,
    patterns: np.ndarray | None = None,
) -> AIG:
    """Shrink the graph below ``max_ands`` by constant substitution.

    Follows Team 1's recipe: simulate ``n_patterns`` random patterns,
    rank AND nodes by how skewed their value distribution is, replace
    the most skewed node(s) by their majority constant, garbage-collect
    and repeat.  Nodes within ``level_margin`` levels of the deepest
    output are excluded; if no candidate remains the margin is relaxed.

    ``patterns`` (a 0/1 sample matrix) replaces the uniform random
    stimuli.  When the circuit will only ever see inputs from a
    non-uniform distribution (the image-like contest benchmarks),
    ranking node skew under *that* distribution loses far less
    accuracy per removed node.
    """
    if rng is None:
        rng = rng_for("approx")
    aig = aig.extract_cone()
    if patterns is not None:
        from repro.utils.bitops import pack_bits

        patterns = np.asarray(patterns, dtype=np.uint8)
        fixed_packed = pack_bits(patterns)
        n_samples = patterns.shape[0]
        pad = n_samples % 64
    n_words = (n_patterns + 63) // 64
    while aig.num_ands > max_ands:
        if patterns is not None:
            values = aig.simulate_packed_all(fixed_packed)
            if pad:
                values[:, -1] &= np.uint64((1 << pad) - 1)
            ones = popcount64(values).sum(axis=1).astype(np.int64)
            total = n_samples
        else:
            packed = rng.integers(
                0, np.iinfo(np.uint64).max, size=(aig.n_inputs, n_words),
                dtype=np.uint64, endpoint=True,
            )
            values = aig.simulate_packed_all(packed)
            ones = popcount64(values).sum(axis=1).astype(np.int64)
            total = n_words * 64
        levels = aig.levels()
        depth = int(levels.max(initial=0))
        base = aig.n_inputs + 1
        margin = level_margin
        candidates = np.array([], dtype=np.int64)
        while candidates.size == 0 and margin >= 0:
            level_ok = levels[base:] <= depth - margin
            candidates = np.nonzero(level_ok)[0] + base
            margin -= 1
        if candidates.size == 0:
            break
        skew = np.maximum(ones[candidates], total - ones[candidates])
        # Replace a small batch per round, proportional to the excess
        # (Team 1 replaced one node at a time; small batches keep the
        # per-node skew ranking honest while staying fast).
        excess = aig.num_ands - max_ands
        batch = max(1, min(excess, candidates.size, excess // 500 + 1))
        order = np.argsort(-skew, kind="stable")[:batch]
        overrides = {}
        for idx in order:
            var = int(candidates[idx])
            majority_one = ones[var] * 2 >= total
            overrides[var] = CONST1 if majority_one else CONST0
        smaller = substitute_constants(aig, overrides)
        if smaller.num_ands == 0 and aig.num_ands > max(1, max_ands):
            # Catastrophic collapse to a constant: retry one node at a
            # time and keep the first substitution that preserves a
            # non-trivial circuit ("to avoid the result being constant
            # 0 or 1", as Team 1's guard intends).
            smaller = None
            for idx in np.argsort(-skew, kind="stable"):
                var = int(candidates[idx])
                majority_one = ones[var] * 2 >= total
                attempt = substitute_constants(
                    aig, {var: CONST1 if majority_one else CONST0}
                )
                if 0 < attempt.num_ands < aig.num_ands:
                    smaller = attempt
                    break
            if smaller is None:
                break
        if smaller.num_ands >= aig.num_ands:
            break
        aig = smaller
    return aig
