"""AIGER file format support (ASCII ``.aag`` and binary ``.aig``).

Implements the combinational subset of AIGER 1.9 [Biere et al.], which
is all the contest uses: no latches, no symbols required.  The binary
format delta-encodes each AND gate as two unsigned LEB128-style
varints, exactly as produced by ABC and the AIGER tools.
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.aig.aig import AIG

PathLike = str | Path


def dumps_aag(aig: AIG) -> str:
    """ASCII AIGER (.aag) text for an AIG (what :func:`write_aag`
    writes; the run store persists it without touching a temp file)."""
    maxvar = aig.num_vars - 1
    lines = [f"aag {maxvar} {aig.n_inputs} 0 {aig.num_outputs} {aig.num_ands}"]
    for i in range(aig.n_inputs):
        lines.append(str(aig.input_lit(i)))
    for lit in aig.outputs:
        lines.append(str(lit))
    base = aig.n_inputs + 1
    for j in range(aig.num_ands):
        f0, f1 = aig.fanins(base + j)
        lines.append(f"{2 * (base + j)} {f0} {f1}")
    return "\n".join(lines) + "\n"


def write_aag(aig: AIG, path: PathLike) -> None:
    """Write an ASCII AIGER (.aag) file."""
    Path(path).write_text(dumps_aag(aig), encoding="ascii")


def read_aag(path: PathLike) -> AIG:
    """Read an ASCII AIGER (.aag) file (combinational subset)."""
    return loads_aag(Path(path).read_text(encoding="ascii"))


def loads_aag(text: str) -> AIG:
    """Parse ASCII AIGER text (the inverse of :func:`dumps_aag`).

    The serving layer loads circuits straight out of a run store's
    ``solutions/`` files (or any bundle of ``.aag`` text) without
    round-tripping through a temp file.
    """
    lines = [ln for ln in text.splitlines() if ln and not ln.startswith("c")]
    header = lines[0].split()
    if header[0] != "aag":
        raise ValueError(f"not an ASCII AIGER file: header {header[0]!r}")
    _, maxvar, n_in, n_latch, n_out, n_and = header[:6]
    n_in, n_latch, n_out, n_and = map(int, (n_in, n_latch, n_out, n_and))
    if n_latch:
        raise ValueError("latches are not supported")
    pos = 1
    input_lits = [int(lines[pos + i]) for i in range(n_in)]
    pos += n_in
    output_lits = [int(lines[pos + i]) for i in range(n_out)]
    pos += n_out
    return _rebuild(n_in, input_lits, output_lits, [
        tuple(map(int, lines[pos + j].split())) for j in range(n_and)
    ])


def _rebuild(n_in, input_lits, output_lits, and_rows) -> AIG:
    """Reconstruct an AIG from parsed literal rows.

    AIGER files may use arbitrary variable numbering; we remap through
    a literal translation table while re-strashing.
    """
    aig = AIG(n_in)
    lit_map = {0: 0, 1: 1}
    for i, lit in enumerate(input_lits):
        lit_map[lit] = aig.input_lit(i)
        lit_map[lit ^ 1] = aig.input_lit(i) ^ 1
    for lhs, rhs0, rhs1 in and_rows:
        new = aig.add_and(lit_map[rhs0], lit_map[rhs1])
        lit_map[lhs] = new
        lit_map[lhs ^ 1] = new ^ 1
    for lit in output_lits:
        aig.set_output(lit_map[lit])
    return aig


def _encode_varint(value: int) -> bytes:
    out = bytearray()
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)
    return bytes(out)


def _decode_varint(stream: io.BufferedReader) -> int:
    value = 0
    shift = 0
    while True:
        byte = stream.read(1)
        if not byte:
            raise ValueError("truncated binary AIGER file")
        b = byte[0]
        value |= (b & 0x7F) << shift
        if not b & 0x80:
            return value
        shift += 7


def write_aiger(aig: AIG, path: PathLike) -> None:
    """Write a binary AIGER (.aig) file."""
    maxvar = aig.num_vars - 1
    header = f"aig {maxvar} {aig.n_inputs} 0 {aig.num_outputs} {aig.num_ands}\n"
    buf = bytearray(header.encode("ascii"))
    for lit in aig.outputs:
        buf += f"{lit}\n".encode("ascii")
    base = aig.n_inputs + 1
    for j in range(aig.num_ands):
        lhs = 2 * (base + j)
        f0, f1 = aig.fanins(base + j)
        rhs0, rhs1 = (f0, f1) if f0 >= f1 else (f1, f0)
        buf += _encode_varint(lhs - rhs0)
        buf += _encode_varint(rhs0 - rhs1)
    Path(path).write_bytes(bytes(buf))


def read_aiger(path: PathLike) -> AIG:
    """Read a binary AIGER (.aig) file (combinational subset)."""
    raw = Path(path).read_bytes()
    stream = io.BytesIO(raw)
    header = _read_line(stream).split()
    if header[0] != "aig":
        raise ValueError(f"not a binary AIGER file: header {header[0]!r}")
    maxvar, n_in, n_latch, n_out, n_and = map(int, header[1:6])
    if n_latch:
        raise ValueError("latches are not supported")
    output_lits = [int(_read_line(stream)) for _ in range(n_out)]
    input_lits = [2 * (1 + i) for i in range(n_in)]
    and_rows = []
    for j in range(n_and):
        lhs = 2 * (n_in + 1 + j)
        delta0 = _decode_varint(stream)
        delta1 = _decode_varint(stream)
        rhs0 = lhs - delta0
        rhs1 = rhs0 - delta1
        and_rows.append((lhs, rhs0, rhs1))
    return _rebuild(n_in, input_lits, output_lits, and_rows)


def _read_line(stream: io.BytesIO) -> str:
    chars = bytearray()
    while True:
        byte = stream.read(1)
        if not byte or byte == b"\n":
            return chars.decode("ascii")
        chars += byte
