"""Irredundant sum-of-products from truth tables (Minato–Morreale).

Truth tables over ``k`` variables are Python ints with ``2**k`` bits;
bit ``m`` is the function value on the assignment whose binary digits
are ``m`` (variable 0 = least significant digit).  The ISOP procedure
takes an interval ``[lower, upper]`` (onset must be covered, don't
cares = ``upper & ~lower``) and returns an irredundant cover.

Cubes are tuples of ``(var, value)`` pairs sorted by variable.
"""

from __future__ import annotations

from functools import lru_cache

Cube = tuple[tuple[int, int], ...]


@lru_cache(maxsize=None)
def full_mask(k: int) -> int:
    """All-ones truth table over k variables."""
    return (1 << (1 << k)) - 1


@lru_cache(maxsize=None)
def var_mask(k: int, i: int) -> int:
    """Truth table of variable ``i`` over ``k`` variables."""
    s = 1 << i
    block = ((1 << s) - 1) << s  # s zeros then s ones
    period = 2 * s
    reps = (1 << k) // period
    m = 0
    for r in range(reps):
        m |= block << (r * period)
    return m


def cofactor0(table: int, k: int, i: int) -> int:
    """Cofactor with variable ``i`` = 0, expanded back over k vars."""
    s = 1 << i
    half = table & ~var_mask(k, i)
    return half | (half << s)


def cofactor1(table: int, k: int, i: int) -> int:
    """Cofactor with variable ``i`` = 1, expanded back over k vars."""
    s = 1 << i
    half = table & var_mask(k, i)
    return half | (half >> s)


def support(table: int, k: int) -> list[int]:
    """Variables the function actually depends on."""
    return [
        i for i in range(k) if cofactor0(table, k, i) != cofactor1(table, k, i)
    ]


def cube_table(cube: Cube, k: int) -> int:
    """Truth table of a cube over k variables."""
    table = full_mask(k)
    for var, value in cube:
        m = var_mask(k, var)
        table &= m if value else ~m & full_mask(k)
    return table


def cover_table(cover: list[Cube], k: int) -> int:
    """Truth table of a cover (OR of cubes)."""
    table = 0
    for cube in cover:
        table |= cube_table(cube, k)
    return table


def isop(lower: int, upper: int, k: int) -> tuple[list[Cube], int]:
    """Minato–Morreale irredundant SOP for the interval [lower, upper].

    Returns ``(cover, table)`` where ``lower <= table <= upper``
    (bitwise implication) and ``cover`` is an irredundant cube list
    realizing ``table``.
    """
    if lower & ~upper & full_mask(k):
        raise ValueError("infeasible interval: lower not contained in upper")
    cover, table = _isop(lower, upper, k, k)
    return cover, table


def _isop(lower: int, upper: int, k: int, top: int) -> tuple[list[Cube], int]:
    if lower == 0:
        return [], 0
    if upper == full_mask(k):
        return [()], full_mask(k)
    # Split on the highest variable in the support of either bound.
    var = None
    for i in reversed(range(top)):
        if (
            cofactor0(lower, k, i) != cofactor1(lower, k, i)
            or cofactor0(upper, k, i) != cofactor1(upper, k, i)
        ):
            var = i
            break
    if var is None:
        # Constant interval containing 1 (upper != full handled above
        # only when some var is in support; here lower != 0 and no
        # support => lower == upper == full, already returned).
        return [()], full_mask(k)
    l0, l1 = cofactor0(lower, k, var), cofactor1(lower, k, var)
    u0, u1 = cofactor0(upper, k, var), cofactor1(upper, k, var)
    fm = full_mask(k)
    # Cubes that must contain literal !var / var.
    c0, f0 = _isop(l0 & ~u1 & fm, u0, k, var)
    c1, f1 = _isop(l1 & ~u0 & fm, u1, k, var)
    # Remaining minterms coverable without the split variable.
    l_rest = (l0 & ~f0 & fm) | (l1 & ~f1 & fm)
    cr, fr = _isop(l_rest, u0 & u1, k, var)
    # f0 applies where var=0, f1 where var=1, fr everywhere.
    nm = var_mask(k, var)
    table = (f0 & ~nm & fm) | (f1 & nm) | fr
    cover = (
        [_extend(c, var, 0) for c in c0]
        + [_extend(c, var, 1) for c in c1]
        + cr
    )
    return cover, table


def _extend(cube: Cube, var: int, value: int) -> Cube:
    return tuple(sorted(cube + ((var, value),)))
