"""And-Inverter Graph library.

The AIG is the contest's required output representation: a network of
2-input AND gates with optionally complemented edges, capped at 5000
nodes.  This package provides the data structure, bit-parallel
simulation, AIGER file I/O, circuit builders, ABC-style size
optimization and the simulation-guided approximation used by Team 1.
"""

from repro.aig.aig import (
    AIG,
    CONST0,
    CONST1,
    lit_is_compl,
    lit_make,
    lit_not,
    lit_regular,
    lit_var,
)
from repro.aig.aiger import (dumps_aag, read_aag, read_aiger, write_aag,
                             write_aiger)
from repro.aig.approx import approximate_to_size
from repro.aig.cec import check_equivalence
from repro.aig.optimize import (balance, compress, fraig_lite, refactor,
                                rewrite)

__all__ = [
    "AIG",
    "CONST0",
    "CONST1",
    "lit_is_compl",
    "lit_make",
    "lit_not",
    "lit_regular",
    "lit_var",
    "read_aag",
    "dumps_aag",
    "read_aiger",
    "write_aag",
    "write_aiger",
    "approximate_to_size",
    "balance",
    "check_equivalence",
    "compress",
    "fraig_lite",
    "refactor",
    "rewrite",
]
