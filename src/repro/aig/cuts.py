"""K-feasible cut enumeration and cut-function computation.

Used by the rewriting pass: every AND node gets a set of cuts (leaf
sets of bounded size); the function of the node in terms of each cut's
leaves is computed by evaluating the cone between leaves and root on
exhaustive leaf patterns.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.aig.aig import AIG
from repro.aig.isop import full_mask, var_mask

Cut = Tuple[int, ...]  # sorted variable indices


def enumerate_cuts(
    aig: AIG, k: int = 4, max_cuts: int = 8
) -> Dict[int, List[Cut]]:
    """Per-variable k-feasible cuts (including the trivial cut).

    Returns a dict mapping each variable index to a list of cuts; each
    cut is a sorted tuple of leaf variable indices.  The constant
    variable never appears as a leaf.
    """
    cuts: Dict[int, List[Cut]] = {0: [()]}
    for i in range(aig.n_inputs):
        cuts[1 + i] = [(1 + i,)]
    base = aig.n_inputs + 1
    for j in range(aig.num_ands):
        var = base + j
        f0, f1 = aig.fanins(var)
        v0, v1 = f0 >> 1, f1 >> 1
        merged = {(var,)}
        for c0 in cuts[v0]:
            for c1 in cuts[v1]:
                leaves = tuple(sorted(set(c0) | set(c1)))
                if len(leaves) <= k:
                    merged.add(leaves)
        # Drop dominated cuts (supersets of another cut).
        pruned = []
        as_sets = sorted(merged, key=len)
        for cand in as_sets:
            cs = set(cand)
            if any(set(p) <= cs and p != cand for p in pruned):
                continue
            pruned.append(cand)
        pruned.sort(key=lambda c: (len(c), c))
        cuts[var] = pruned[:max_cuts]
    return cuts


def cut_function(aig: AIG, root: int, leaves: Sequence[int]) -> int:
    """Truth table of variable ``root`` in terms of ``leaves``.

    ``leaves`` must be a cut of ``root`` (every path from the root to
    the inputs passes through a leaf); otherwise a ``ValueError`` is
    raised when an input variable outside the cut is reached.
    """
    k = len(leaves)
    values: Dict[int, int] = {0: 0}
    for pos, leaf in enumerate(leaves):
        values[leaf] = var_mask(k, pos)
    fm = full_mask(k)

    def eval_var(var: int) -> int:
        found = values.get(var)
        if found is not None:
            return found
        if not aig.is_and_var(var):
            raise ValueError(
                f"variable {var} reached outside the cut {leaves}"
            )
        f0, f1 = aig.fanins(var)
        a = eval_var(f0 >> 1)
        if f0 & 1:
            a = ~a & fm
        b = eval_var(f1 >> 1)
        if f1 & 1:
            b = ~b & fm
        result = a & b
        values[var] = result
        return result

    return eval_var(root)


def mffc_size(aig: AIG, var: int, fanout: Sequence[int]) -> int:
    """Size of the maximum fanout-free cone rooted at ``var``.

    ``fanout`` is the fanout count array of the graph.  The MFFC is the
    set of AND nodes that would become dead if ``var`` were removed.
    """
    if not aig.is_and_var(var):
        return 0
    counted = set()

    def walk(v: int, is_root: bool) -> None:
        if v in counted or not aig.is_and_var(v):
            return
        if not is_root and fanout[v] > 1:
            return
        counted.add(v)
        f0, f1 = aig.fanins(v)
        walk(f0 >> 1, False)
        walk(f1 >> 1, False)

    walk(var, True)
    return len(counted)
