"""K-feasible cut enumeration and cut-function computation.

Used by the rewriting pass: every AND node gets a set of cuts (leaf
sets of bounded size) and, when requested, the truth table of the node
in terms of each cut's leaves.  Truth tables are computed *bottom-up*
during enumeration — a merged cut's table is assembled from its two
fanin cut tables by leaf-set expansion — so no cone is ever walked,
which keeps the cost per cut constant even on chain-shaped graphs
where a 4-leaf cut can span thousands of nodes.

:func:`cut_function` (cone evaluation for arbitrary leaf sets, used by
the refactoring pass and by tests) delegates to the iterative walker
in :mod:`repro.aig.opt.traverse`; the seed's recursive version hit the
Python recursion limit on exactly those deep-cone cuts.
"""

from __future__ import annotations

from collections.abc import Sequence
from functools import lru_cache

from repro.aig.aig import AIG
from repro.aig.isop import full_mask
from repro.aig.opt import traverse

Cut = tuple[int, ...]  # sorted variable indices

TRIVIAL_TABLE = 0b10  # the identity function over one leaf


@lru_cache(maxsize=1 << 14)
def _expand_map(positions: Cut, k_sup: int) -> tuple[int, ...]:
    """Minterm projection for expanding a sub-cut table to a superset.

    ``positions[i]`` is the position of the sub-cut's leaf ``i`` in
    the super-cut; entry ``m`` of the result is the sub-cut minterm
    that super-cut minterm ``m`` projects to.
    """
    out = []
    for m in range(1 << k_sup):
        src = 0
        for i, p in enumerate(positions):
            if (m >> p) & 1:
                src |= 1 << i
        out.append(src)
    return tuple(out)


@lru_cache(maxsize=1 << 16)
def _expand_table(table: int, positions: Cut, k_sup: int) -> int:
    out = 0
    for m, src in enumerate(_expand_map(positions, k_sup)):
        if (table >> src) & 1:
            out |= 1 << m
    return out


def _expand(table: int, sub: Cut, sup: Cut) -> int:
    """Re-express ``table`` (over leaves ``sub``) over superset ``sup``."""
    if sub == sup:
        return table
    positions = tuple(sup.index(leaf) for leaf in sub)
    return _expand_table(table, positions, len(sup))


def _merge_node_cuts(
    cuts: dict[int, list[Cut]], aig: AIG, var: int, k: int, max_cuts: int
) -> tuple[list[Cut], dict[Cut, tuple[Cut, Cut]]]:
    """Pruned cut list for ``var`` plus each cut's source fanin pair."""
    f0, f1 = aig.fanins(var)
    v0, v1 = f0 >> 1, f1 >> 1
    merged: dict[Cut, tuple[Cut, Cut]] = {(var,): None}
    for c0 in cuts[v0]:
        s0 = set(c0)
        len0 = len(c0)
        for c1 in cuts[v1]:
            # Cheap reject: disjoint leaf ranges cannot shrink the
            # union below len0 + len(c1).
            if len0 + len(c1) > k and (c0[-1] < c1[0] or c1[-1] < c0[0]):
                continue
            leaves = tuple(sorted(s0.union(c1)))
            if len(leaves) <= k and leaves not in merged:
                merged[leaves] = (c0, c1)
    # Drop dominated cuts (supersets of another cut).
    pruned: list[Cut] = []
    pruned_sets: list[set] = []
    for cand in sorted(merged, key=len):
        cs = set(cand)
        # Candidates are distinct sorted tuples, so distinct sets;
        # subset here always means *proper* subset.
        if any(p <= cs for p in pruned_sets):
            continue
        pruned.append(cand)
        pruned_sets.append(cs)
    pruned.sort(key=lambda c: (len(c), c))
    return pruned[:max_cuts], merged


def enumerate_cuts(
    aig: AIG, k: int = 4, max_cuts: int = 8
) -> dict[int, list[Cut]]:
    """Per-variable k-feasible cuts (including the trivial cut).

    Returns a dict mapping each variable index to a list of cuts; each
    cut is a sorted tuple of leaf variable indices.  The constant
    variable never appears as a leaf.
    """
    cuts: dict[int, list[Cut]] = {0: [()]}
    for i in range(aig.n_inputs):
        cuts[1 + i] = [(1 + i,)]
    base = aig.n_inputs + 1
    for j in range(aig.num_ands):
        var = base + j
        cuts[var], _ = _merge_node_cuts(cuts, aig, var, k, max_cuts)
    return cuts


def enumerate_cuts_with_truths(
    aig: AIG, k: int = 4, max_cuts: int = 8
) -> dict[int, list[tuple[Cut, int]]]:
    """Cuts plus the node's truth table over each cut's leaves.

    Same enumeration as :func:`enumerate_cuts`, but every surviving
    cut carries the function of its root in terms of its leaves,
    assembled bottom-up from the fanin cut tables.  Entries are
    ``(cut, table)`` pairs; the table of the trivial cut ``(var,)`` is
    the identity ``0b10``.
    """
    cuts: dict[int, list[Cut]] = {0: [()]}
    tables: dict[int, dict[Cut, int]] = {0: {(): 0}}
    for i in range(aig.n_inputs):
        v = 1 + i
        cuts[v] = [(v,)]
        tables[v] = {(v,): TRIVIAL_TABLE}
    base = aig.n_inputs + 1
    out: dict[int, list[tuple[Cut, int]]] = {}
    for v in range(base):
        out[v] = [(c, tables[v][c]) for c in cuts.get(v, [])]
    for j in range(aig.num_ands):
        var = base + j
        f0, f1 = aig.fanins(var)
        v0, v1 = f0 >> 1, f1 >> 1
        kept, merged = _merge_node_cuts(cuts, aig, var, k, max_cuts)
        cuts[var] = kept
        node_tables: dict[Cut, int] = {(var,): TRIVIAL_TABLE}
        for cut in kept:
            if cut == (var,):
                continue
            c0, c1 = merged[cut]
            fm = full_mask(len(cut))
            a = _expand(tables[v0][c0], c0, cut)
            if f0 & 1:
                a = ~a & fm
            b = _expand(tables[v1][c1], c1, cut)
            if f1 & 1:
                b = ~b & fm
            node_tables[cut] = a & b
        tables[var] = node_tables
        out[var] = [(c, node_tables[c]) for c in kept]
    return out


def cut_function(aig: AIG, root: int, leaves: Sequence[int]) -> int:
    """Truth table of variable ``root`` in terms of ``leaves``.

    ``leaves`` must be a cut of ``root`` (every path from the root to
    the inputs passes through a leaf); otherwise a ``ValueError`` is
    raised when an input variable outside the cut is reached.
    Iterative — safe on cones of any depth.
    """
    return traverse.cut_truth(aig, root, leaves)


def mffc_size(aig: AIG, var: int, fanout: Sequence[int]) -> int:
    """Size of the maximum fanout-free cone rooted at ``var``.

    ``fanout`` is the fanout count array of the graph.  The MFFC is the
    set of AND nodes that would become dead if ``var`` were removed.
    Iterative — safe on cones of any depth.
    """
    return traverse.mffc_size(aig, var, fanout)
