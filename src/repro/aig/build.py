"""Circuit builders: word-level arithmetic and structured functions.

These are used in three places: the pre-defined standard function
matchers (Teams 1 and 7) emit exact adder/comparator/parity/symmetric
AIGs; the benchmark suite uses small instances as ground truth in
tests; and the synthesis bridges build MUX trees, LUTs and voter
networks from learned models.

All word operands are little-endian literal lists (index 0 = LSB).
"""

from __future__ import annotations

from collections.abc import Sequence
from functools import lru_cache

from repro.aig.aig import AIG, CONST0, CONST1, lit_not
from repro.aig.isop import isop


def full_adder(aig: AIG, a: int, b: int, cin: int) -> tuple[int, int]:
    """One-bit full adder; returns ``(sum, carry)``."""
    s = aig.add_xor(aig.add_xor(a, b), cin)
    c = aig.add_maj3(a, b, cin)
    return s, c


def ripple_adder(
    aig: AIG, a: Sequence[int], b: Sequence[int], cin: int = CONST0
) -> list[int]:
    """Ripple-carry adder; returns ``width + 1`` sum bits (last = carry)."""
    if len(a) != len(b):
        raise ValueError("operand widths differ")
    out = []
    carry = cin
    for ai, bi in zip(a, b, strict=True):
        s, carry = full_adder(aig, ai, bi, carry)
        out.append(s)
    out.append(carry)
    return out


def ripple_subtractor(
    aig: AIG, a: Sequence[int], b: Sequence[int]
) -> tuple[list[int], int]:
    """``a - b`` via two's complement; returns ``(diff bits, borrow)``.

    ``borrow`` is 1 when ``a < b`` (unsigned).
    """
    b_inv = [lit_not(x) for x in b]
    s = ripple_adder(aig, list(a), b_inv, cin=CONST1)
    return s[:-1], lit_not(s[-1])


def comparator_greater(aig: AIG, a: Sequence[int], b: Sequence[int]) -> int:
    """``a > b`` (unsigned) literal."""
    diff, borrow = ripple_subtractor(aig, b, a)
    del diff
    return borrow  # b < a


def comparator_less(aig: AIG, a: Sequence[int], b: Sequence[int]) -> int:
    """``a < b`` (unsigned) literal."""
    return comparator_greater(aig, b, a)


def equality(aig: AIG, a: Sequence[int], b: Sequence[int]) -> int:
    """``a == b`` literal."""
    xors = [aig.add_xor(x, y) for x, y in zip(a, b, strict=True)]
    return lit_not(aig.add_or_multi(xors))


def multiplier(aig: AIG, a: Sequence[int], b: Sequence[int]) -> list[int]:
    """Array multiplier; returns ``len(a) + len(b)`` product bits."""
    width = len(a) + len(b)
    acc = [CONST0] * width
    for j, bj in enumerate(b):
        partial = [CONST0] * j + [aig.add_and(ai, bj) for ai in a]
        partial += [CONST0] * (width - len(partial))
        acc = ripple_adder(aig, acc, partial)[:width]
    return acc


def parity(aig: AIG, lits: Sequence[int]) -> int:
    """XOR of all literals."""
    return aig.add_xor_multi(list(lits))


def parity_chain(n_inputs: int = 4, n_nodes: int = 5000) -> AIG:
    """Standalone chain-shaped parity accumulator.

    Folds one rotating input at a time through :func:`parity`, so the
    graph is a deep XOR chain instead of the balanced tree
    :func:`parity` builds on its own — depth grows linearly with
    ``n_nodes``.  This is the worst-case shape for cone walks (its
    4-feasible cuts span the whole chain) and is shared by the
    chain-regression tests and ``benchmarks/bench_opt_engine.py``.
    """
    aig = AIG(n_inputs)
    xs = aig.input_lits()
    acc = xs[0]
    i = 0
    while aig.num_ands < n_nodes:
        acc = parity(aig, [acc, xs[i % n_inputs]])
        i += 1
    aig.set_output(acc)
    return aig


def ripple_chain(word_width: int = 4, n_nodes: int = 5000) -> AIG:
    """Standalone deep ripple-carry accumulator.

    Repeatedly adds the same input word into a ``word_width``-bit
    accumulator with :func:`ripple_adder` (carry-out dropped), giving
    a carry chain thousands of levels deep over few inputs — the
    other chain-regression shape.
    """
    aig = AIG(2 * word_width)
    lits = aig.input_lits()
    acc, word = lits[:word_width], lits[word_width:]
    while aig.num_ands < n_nodes:
        acc = ripple_adder(aig, acc, word)[:word_width]
    for bit in acc:
        aig.set_output(bit)
    return aig


def ones_counter(aig: AIG, lits: Sequence[int]) -> list[int]:
    """Population count of the literals as a little-endian word.

    Built as a balanced adder tree over 1-bit words.
    """
    words: list[list[int]] = [[lit] for lit in lits]
    if not words:
        return [CONST0]
    while len(words) > 1:
        nxt = []
        for i in range(0, len(words) - 1, 2):
            a, b = words[i], words[i + 1]
            width = max(len(a), len(b))
            a = list(a) + [CONST0] * (width - len(a))
            b = list(b) + [CONST0] * (width - len(b))
            nxt.append(ripple_adder(aig, a, b))
        if len(words) % 2:
            nxt.append(words[-1])
        words = nxt
    return words[0]


def symmetric_function(aig: AIG, lits: Sequence[int], signature: str) -> int:
    """Symmetric function of ``n`` inputs from its value vector.

    ``signature`` has ``n + 1`` characters; character ``i`` is the
    output when exactly ``i`` inputs are 1 (as in ABC's ``symfun``).
    """
    n = len(lits)
    if len(signature) != n + 1:
        raise ValueError(
            f"signature length {len(signature)} != n+1 = {n + 1}"
        )
    count = ones_counter(aig, lits)
    terms = []
    for value, ch in enumerate(signature):
        if ch != "1":
            continue
        bits = [(value >> i) & 1 for i in range(len(count))]
        match = aig.add_and_multi(
            [c if bit else lit_not(c) for c, bit in zip(count, bits, strict=True)]
        )
        terms.append(match)
    return aig.add_or_multi(terms)


def majority_n(aig: AIG, lits: Sequence[int]) -> int:
    """Majority of an odd number of literals via a ones counter."""
    n = len(lits)
    if n % 2 == 0:
        raise ValueError("majority_n expects an odd number of inputs")
    count = ones_counter(aig, lits)
    threshold = n // 2 + 1
    # count >= threshold  <=>  count > threshold - 1.
    const_bits = [
        CONST1 if ((threshold - 1) >> i) & 1 else CONST0
        for i in range(len(count))
    ]
    return comparator_greater(aig, count, const_bits)


def maj5_tree(aig: AIG, lits: Sequence[int]) -> int:
    """Team 7's 3-layer network of 5-input majority gates.

    Approximates a wide majority vote (e.g. over 125 boosted-tree
    outputs) with a tree of MAJ-5 gates.  Input count must be 5, 25 or
    125; shorter lists are padded by repeating the last literal.
    """
    lits = list(lits)
    size = 5
    while size < len(lits):
        size *= 5
    if size > 125:
        raise ValueError("maj5_tree supports at most 125 inputs")
    lits += [lits[-1]] * (size - len(lits))
    while len(lits) > 1:
        lits = [
            majority_n(aig, lits[i : i + 5]) for i in range(0, len(lits), 5)
        ]
    return lits[0]


@lru_cache(maxsize=1 << 12)
def _lut_covers(table: int, k: int):
    """Irredundant covers of both polarities of a truth table."""
    full = (1 << (1 << k)) - 1
    pos_cover, _ = isop(table, table, k)
    neg_cover, _ = isop(~table & full, ~table & full, k)
    return pos_cover, neg_cover


def lut_choice(aig: AIG, table: int, leaves: Sequence[int],
               budget: int = None):
    """Price both SOP polarities of ``table`` against ``aig``.

    Returns ``(cost, cover, negated)`` for the cheaper polarity —
    where ``cost`` is the exact number of AND nodes
    ``sop_over_leaves(aig, cover, leaves)`` would add (strash-aware
    virtual counting; the graph is not touched) — or None when a
    ``budget`` is given and both polarities exceed it.  The positive
    polarity wins ties, matching the seed behavior.
    """
    from repro.aig.opt.counting import BudgetExceeded, VirtualBuilder

    k = len(leaves)
    full = (1 << (1 << k)) - 1
    table &= full
    pos_cover, neg_cover = _lut_covers(table, k)
    best = None
    for cover, negated in ((pos_cover, False), (neg_cover, True)):
        cap = budget if best is None else best[0] - 1
        counter = VirtualBuilder(aig, budget=cap)
        try:
            sop_over_leaves(counter, cover, leaves)
        except BudgetExceeded:
            continue
        if best is None or counter.n_new < best[0]:
            best = (counter.n_new, cover, negated)
    return best


def lut(aig: AIG, table: int, leaves: Sequence[int]) -> int:
    """Realize a k-input truth table over the given leaf literals.

    Uses the irredundant SOP of whichever polarity is cheaper.  Both
    polarities are *priced* without touching the graph (virtual
    strash-aware counting) and only the winner is built, exactly once
    — no checkpoint/rollback, no structural-version churn.
    """
    k = len(leaves)
    full = (1 << (1 << k)) - 1
    table &= full
    if table == 0:
        return CONST0
    if table == full:
        return CONST1
    _, cover, negated = lut_choice(aig, table, leaves)
    lit = sop_over_leaves(aig, cover, leaves)
    return lit_not(lit) if negated else lit


def sop_over_leaves(aig, cover, leaves: Sequence[int]) -> int:
    """Build an OR of cube-ANDs over leaf literals.

    ``aig`` is anything with the ``GateOps`` contract — a real
    :class:`AIG` or a cost-counting
    :class:`~repro.aig.opt.counting.VirtualBuilder`.
    """
    terms = []
    for cube in cover:
        lits = [
            leaves[var] if value else lit_not(leaves[var])
            for var, value in cube
        ]
        terms.append(aig.add_and_multi(lits))
    return aig.add_or_multi(terms)


def mux_tree_from_table(
    aig: AIG, table: int, leaves: Sequence[int]
) -> int:
    """Shannon-expansion MUX tree for a truth table over leaves.

    Memoizes on subtable values (a BDD in disguise), which scales far
    better than ISOP for wide tables; structural hashing shares
    isomorphic subtrees.
    """
    k = len(leaves)
    memo = {}

    def rec(sub: int, level: int) -> int:
        if level == 0:
            return CONST1 if sub & 1 else CONST0
        key = (sub, level)
        found = memo.get(key)
        if found is not None:
            return found
        half = 1 << (level - 1)
        lo_mask = (1 << half) - 1
        lo = sub & lo_mask
        hi = (sub >> half) & lo_mask
        if lo == hi:
            lit = rec(lo, level - 1)
        else:
            lit = aig.add_mux(
                leaves[level - 1], rec(hi, level - 1), rec(lo, level - 1)
            )
        memo[key] = lit
        return lit

    full = (1 << (1 << k)) - 1
    return rec(table & full, k)


def from_truth_table(table: int, n_inputs: int, method: str = "auto") -> AIG:
    """Standalone AIG computing the given truth table.

    ``method``: ``"sop"`` (ISOP two-level), ``"mux"`` (Shannon MUX
    tree), or ``"auto"`` (SOP for narrow functions, MUX otherwise).
    """
    if method == "auto":
        method = "sop" if n_inputs <= 10 else "mux"
    aig = AIG(n_inputs)
    if method == "sop":
        out = lut(aig, table, aig.input_lits())
    elif method == "mux":
        out = mux_tree_from_table(aig, table, aig.input_lits())
    else:
        raise ValueError(f"unknown method {method!r}")
    aig.set_output(out)
    return aig
