"""Combinational equivalence checking.

The optimization and synthesis passes promise function preservation;
this module provides the checking tool (ABC's ``cec`` role): fast
random-simulation refutation followed by an exact BDD-based proof.
Used in tests and available to library users who modify circuits.
"""

from __future__ import annotations

import numpy as np

from repro.aig.aig import AIG, lit_var
from repro.sim.batch import simulate_circuits
from repro.utils.rng import rng_for


def simulate_differs(
    a: AIG, b: AIG, n_patterns: int = 4096,
    rng: np.random.Generator | None = None,
    backend: str | None = None,
) -> np.ndarray | None:
    """Random-simulation counterexample search.

    Returns an input row where the graphs differ, or None if none was
    found (which is *not* a proof of equivalence).  ``backend``
    selects the simulation executor (see :mod:`repro.sim.backend`).
    """
    if a.n_inputs != b.n_inputs or a.num_outputs != b.num_outputs:
        raise ValueError("interface mismatch")
    if rng is None:
        rng = rng_for("cec")
    X = rng.integers(0, 2, size=(n_patterns, a.n_inputs)).astype(np.uint8)
    # Pack the pattern matrix once and run both circuits against the
    # shared packed words (repro.sim batched evaluation).
    out_a, out_b = simulate_circuits([a, b], X, backend=backend)
    diff = np.nonzero((out_a != out_b).any(axis=1))[0]
    if diff.size:
        return X[diff[0]]
    return None


def _output_bdd(aig: AIG, manager, output: int) -> int:
    from repro.bdd.bdd import FALSE

    cache = {0: FALSE}
    values = [manager.var_node(i) for i in range(aig.n_inputs)]

    def node_bdd(var: int) -> int:
        if var in cache:
            return cache[var]
        if aig.is_input_var(var):
            result = values[var - 1]
        else:
            f0, f1 = aig.fanins(var)
            b0 = node_bdd(lit_var(f0))
            if f0 & 1:
                b0 = manager.not_(b0)
            b1 = node_bdd(lit_var(f1))
            if f1 & 1:
                b1 = manager.not_(b1)
            result = manager.and_(b0, b1)
        cache[var] = result
        return result

    lit = aig.outputs[output]
    f = node_bdd(lit_var(lit))
    return manager.not_(f) if lit & 1 else f


def check_equivalence(
    a: AIG, b: AIG, n_patterns: int = 4096,
    rng: np.random.Generator | None = None,
    backend: str | None = None,
) -> tuple[bool, np.ndarray | None]:
    """Prove or refute equivalence.

    Returns ``(True, None)`` on a BDD proof of equivalence or
    ``(False, counterexample_row)`` otherwise.  Simulation runs first
    so most inequivalences are refuted cheaply (on the selected
    simulation ``backend``; the exact BDD phase is backend-free).
    """
    from repro.bdd.bdd import BDD

    cex = simulate_differs(
        a, b, n_patterns=n_patterns, rng=rng, backend=backend
    )
    if cex is not None:
        return False, cex
    manager = BDD(a.n_inputs)
    for k in range(a.num_outputs):
        fa = _output_bdd(a, manager, k)
        fb = _output_bdd(b, manager, k)
        if fa != fb:
            # Extract a counterexample path from the XOR.
            diff = manager.xor_(fa, fb)
            row = _any_sat(manager, diff, a.n_inputs)
            return False, row
    return True, None


def _any_sat(manager, node: int, n_inputs: int) -> np.ndarray:
    """A satisfying assignment of a non-FALSE BDD node."""
    from repro.bdd.bdd import FALSE

    row = np.zeros(n_inputs, dtype=np.uint8)
    while node >= 2:
        var = manager.var_of(node)
        if manager.high(node) != FALSE:
            row[var] = 1
            node = manager.high(node)
        else:
            row[var] = 0
            node = manager.low(node)
    return row
