"""Reduced Ordered Binary Decision Diagrams with don't-care
minimization (Team 1's post-contest exploration).

The appendix of the paper studies learning adders by building the BDD
of the sampled ON-set and minimizing it against the care set: replace
a node by a child when the other side is don't care (one-sided
matching, Coudert-Madre ``restrict``), merge children compatible on
the care set (two-sided matching), or merge with a complemented child
(complemented two-sided matching).
"""

from repro.bdd.bdd import BDD
from repro.bdd.dontcare import minimize_dontcare, restrict

__all__ = ["BDD", "minimize_dontcare", "restrict"]
