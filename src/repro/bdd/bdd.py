"""A small ROBDD manager.

Nodes are integers: 0 and 1 are the terminals; internal nodes live in
a unique table keyed by ``(var, low, high)``.  Variables are levels —
lower index is closer to the root — so callers choose an input order
by permuting columns before building.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

FALSE = 0
TRUE = 1


class BDD:
    """Manager owning the unique table and operation caches."""

    def __init__(self, n_vars: int):
        self.n_vars = n_vars
        # entries[i] = (var, low, high) for i >= 2.
        self._entries: list[tuple[int, int, int]] = []
        self._unique: dict[tuple[int, int, int], int] = {}
        self._apply_cache: dict[tuple[str, int, int], int] = {}
        self._not_cache: dict[int, int] = {}

    # ------------------------------------------------------------------
    def var_of(self, node: int) -> int:
        """Level of a node (terminals sit below every variable)."""
        if node < 2:
            return self.n_vars
        return self._entries[node - 2][0]

    def low(self, node: int) -> int:
        return self._entries[node - 2][1]

    def high(self, node: int) -> int:
        return self._entries[node - 2][2]

    def mk(self, var: int, low: int, high: int) -> int:
        """Get-or-create a node (with the reduction rule)."""
        if low == high:
            return low
        key = (var, low, high)
        found = self._unique.get(key)
        if found is not None:
            return found
        node = len(self._entries) + 2
        self._entries.append(key)
        self._unique[key] = node
        return node

    def var_node(self, var: int) -> int:
        """The function ``x_var``."""
        return self.mk(var, FALSE, TRUE)

    # ------------------------------------------------------------------
    def _cofactors(self, node: int, var: int) -> tuple[int, int]:
        if self.var_of(node) == var:
            return self.low(node), self.high(node)
        return node, node

    def apply(self, op: str, f: int, g: int) -> int:
        """Binary operation via the standard recursive apply."""
        if f > g:  # all supported ops are commutative
            f, g = g, f
        key = (op, f, g)
        found = self._apply_cache.get(key)
        if found is not None:
            return found
        result = self._apply_terminal(op, f, g)
        if result is None:
            var = min(self.var_of(f), self.var_of(g))
            f0, f1 = self._cofactors(f, var)
            g0, g1 = self._cofactors(g, var)
            result = self.mk(
                var, self.apply(op, f0, g0), self.apply(op, f1, g1)
            )
        self._apply_cache[key] = result
        return result

    @staticmethod
    def _apply_terminal(op: str, f: int, g: int) -> int | None:
        if op == "and":
            if f == FALSE or g == FALSE:
                return FALSE
            if f == TRUE:
                return g
            if g == TRUE:
                return f
            if f == g:
                return f
        elif op == "or":
            if f == TRUE or g == TRUE:
                return TRUE
            if f == FALSE:
                return g
            if g == FALSE:
                return f
            if f == g:
                return f
        elif op == "xor":
            if f == g:
                return FALSE
            if f == FALSE:
                return g
            if g == FALSE:
                return f
        else:
            raise ValueError(f"unknown op {op!r}")
        return None

    def and_(self, f: int, g: int) -> int:
        return self.apply("and", f, g)

    def or_(self, f: int, g: int) -> int:
        return self.apply("or", f, g)

    def xor_(self, f: int, g: int) -> int:
        return self.apply("xor", f, g)

    def not_(self, f: int) -> int:
        found = self._not_cache.get(f)
        if found is not None:
            return found
        if f < 2:
            result = 1 - f
        else:
            var, low, high = self._entries[f - 2]
            result = self.mk(var, self.not_(low), self.not_(high))
        self._not_cache[f] = result
        return result

    # ------------------------------------------------------------------
    def from_minterm(self, bits: Sequence[int]) -> int:
        """Cube of a full assignment (bit i = variable/level i)."""
        node = TRUE
        for var in reversed(range(self.n_vars)):
            if bits[var]:
                node = self.mk(var, FALSE, node)
            else:
                node = self.mk(var, node, FALSE)
        return node

    def from_samples(self, X: np.ndarray) -> int:
        """OR of the minterms of every row (balanced reduction)."""
        X = np.asarray(X, dtype=np.uint8)
        nodes = [self.from_minterm(row) for row in X]
        if not nodes:
            return FALSE
        while len(nodes) > 1:
            nxt = [
                self.or_(nodes[i], nodes[i + 1])
                for i in range(0, len(nodes) - 1, 2)
            ]
            if len(nodes) % 2:
                nxt.append(nodes[-1])
            nodes = nxt
        return nodes[0]

    # ------------------------------------------------------------------
    def evaluate_one(self, node: int, bits: Sequence[int]) -> int:
        while node >= 2:
            var, low, high = self._entries[node - 2]
            node = high if bits[var] else low
        return node

    def evaluate(self, node: int, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.uint8)
        return np.array(
            [self.evaluate_one(node, row) for row in X], dtype=np.uint8
        )

    def count_nodes(self, node: int) -> int:
        """Internal nodes reachable from ``node``."""
        seen = set()
        stack = [node]
        while stack:
            f = stack.pop()
            if f < 2 or f in seen:
                continue
            seen.add(f)
            stack.append(self.low(f))
            stack.append(self.high(f))
        return len(seen)

    def to_aig(self, node: int, aig=None):
        """Compile to a MUX-tree AIG (one MUX per BDD node)."""
        from repro.aig.aig import AIG

        if aig is None:
            aig = AIG(self.n_vars)
        memo: dict[int, int] = {FALSE: 0, TRUE: 1}

        def rec(f: int) -> int:
            found = memo.get(f)
            if found is not None:
                return found
            var, low, high = self._entries[f - 2]
            lit = aig.add_mux(aig.input_lit(var), rec(high), rec(low))
            memo[f] = lit
            return lit

        aig.set_output(rec(node))
        return aig
