"""BDD minimization with don't cares (Team 1's appendix methods).

Given an ON-set function ``f`` and a care set ``c`` (both BDDs in the
same manager), produce a small BDD ``g`` with ``g == f`` on ``c``:

* ``restrict`` — one-sided matching (Coudert-Madre): descend into the
  cared-for child when the other side's care set is empty.  The paper
  reports 98% test accuracy learning 2-word adder MSBs this way.
* ``minimize_dontcare`` — adds two-sided matching (merge children
  compatible on the common care set) and optionally complemented
  two-sided matching (replace the node by ``mk(var, g, !g)``), with a
  node-count bias that prefers straight matching when both apply,
  following the heuristics in the appendix.
"""

from __future__ import annotations

from repro.bdd.bdd import BDD, FALSE, TRUE


def restrict(bdd: BDD, f: int, c: int) -> int:
    """One-sided matching: Coudert-Madre restrict of ``f`` to care ``c``."""
    cache: dict[tuple[int, int], int] = {}

    def rec(f: int, c: int) -> int:
        if c == FALSE:
            return FALSE
        if f < 2 or c == TRUE:
            return f
        key = (f, c)
        found = cache.get(key)
        if found is not None:
            return found
        var = min(bdd.var_of(f), bdd.var_of(c))
        f0, f1 = bdd._cofactors(f, var)
        c0, c1 = bdd._cofactors(c, var)
        if c0 == FALSE:
            result = rec(f1, c1)
        elif c1 == FALSE:
            result = rec(f0, c0)
        else:
            result = bdd.mk(var, rec(f0, c0), rec(f1, c1))
        cache[key] = result
        return result

    return rec(f, c)


def minimize_dontcare(
    bdd: BDD,
    f: int,
    c: int,
    complemented: bool = False,
    complement_bias: int = 100,
) -> int:
    """Two-sided (and optionally complemented) sibling matching."""
    cache: dict[tuple[int, int], int] = {}

    def rec(f: int, c: int) -> int:
        if c == FALSE:
            return FALSE
        if f < 2 or c == TRUE:
            return f
        key = (f, c)
        found = cache.get(key)
        if found is not None:
            return found
        var = min(bdd.var_of(f), bdd.var_of(c))
        f0, f1 = bdd._cofactors(f, var)
        c0, c1 = bdd._cofactors(c, var)
        if c0 == FALSE:
            result = rec(f1, c1)
        elif c1 == FALSE:
            result = rec(f0, c0)
        else:
            result = _merge_or_split(f0, f1, c0, c1, var)
        cache[key] = result
        return result

    def _merge_or_split(f0, f1, c0, c1, var) -> int:
        common = bdd.and_(c0, c1)
        straight_ok = bdd.and_(bdd.xor_(f0, f1), common) == FALSE
        comp_ok = complemented and (
            bdd.and_(bdd.xor_(f0, bdd.not_(f1)), common) == FALSE
        )
        straight = None
        comp = None
        if straight_ok:
            patched = bdd.or_(bdd.and_(f0, c0), bdd.and_(f1, c1))
            straight = rec(patched, bdd.or_(c0, c1))
        if comp_ok:
            patched = bdd.or_(bdd.and_(f0, c0), bdd.and_(bdd.not_(f1), c1))
            g = rec(patched, bdd.or_(c0, c1))
            comp = bdd.mk(var, g, bdd.not_(g))
        if straight is not None and comp is not None:
            if (
                bdd.count_nodes(comp) + complement_bias
                < bdd.count_nodes(straight)
            ):
                return comp
            return straight
        if straight is not None:
            return straight
        if comp is not None:
            return comp
        return bdd.mk(var, rec(f0, c0), rec(f1, c1))

    return rec(f, c)
