"""Parallel, resumable contest execution with an on-disk result store.

The three layers:

``task``
    :class:`TaskSpec` — one (benchmark, flow, seed) execution — and
    :func:`run_task`, a *pure* worker function of the spec.  Purity is
    the subsystem's core invariant: serial, parallel and resumed runs
    produce byte-identical records per task.
``store``
    :class:`RunStore` — a run directory holding ``manifest.json``,
    append-only ``records.jsonl`` (canonical JSON, exact float
    round-trip) and optional ``solutions/*.aag`` circuits.
``runner``
    :func:`run_tasks` / :func:`run_contest_tasks` — fan the grid out
    over a ``ProcessPoolExecutor``, skip already-stored tasks, append
    results as they complete, and rebuild
    :class:`~repro.analysis.ContestRun` from the store.

Typical use (what ``repro.cli contest --jobs N --out-dir D`` does)::

    from repro.runner import contest_tasks, run_contest_tasks

    specs = contest_tasks([0, 30, 74], ["team01", "team10"],
                          n_train=400, n_valid=400, n_test=400)
    run = run_contest_tasks(specs, jobs=4, out_dir="runs/mini")
    print(run.table3())

Interrupt it, re-invoke it, extend the grid with more benchmarks or
trials — completed tasks are never recomputed.

Sharded execution splits one grid across independent processes or CI
jobs: ``shard_tasks(specs, k, N)`` deterministically owns a key-hashed
subset, each shard runs into its own directory, and ``merge_stores``
(or the in-memory ``load_contest_runs``) reassembles a store
byte-identical to the unsharded run's.
"""

from repro.runner.runner import (
    contest_tasks,
    load_contest_run,
    load_contest_runs,
    parse_shard,
    run_contest_tasks,
    run_tasks,
    shard_of,
    shard_tasks,
)
from repro.runner.store import (
    RunStore,
    benchmark_sort_key,
    canonical_line,
    merge_stores,
)
from repro.runner.task import (
    TaskSpec,
    dataset_fingerprint,
    flow_name_for,
    resolve_flow,
    run_flow_on_problem,
    run_task,
    score_from_record,
    score_to_record,
)

__all__ = [
    "TaskSpec",
    "RunStore",
    "benchmark_sort_key",
    "canonical_line",
    "contest_tasks",
    "dataset_fingerprint",
    "flow_name_for",
    "load_contest_run",
    "load_contest_runs",
    "merge_stores",
    "parse_shard",
    "resolve_flow",
    "run_contest_tasks",
    "run_flow_on_problem",
    "run_task",
    "run_tasks",
    "score_from_record",
    "score_to_record",
    "shard_of",
    "shard_tasks",
]
