"""On-disk result store for contest runs.

Layout of a run directory::

    out_dir/
      manifest.json   # run configuration (sizes, effort, schema)
      records.jsonl   # one canonical JSON record per completed task
      solutions/      # optional ASCII AIGER circuits, one per task

Records are appended as tasks complete (in completion order, which may
differ between serial and parallel runs); identity lives in each
record's ``key`` field, so readers index by key and the *content* per
key is byte-identical regardless of jobs count.  If a record for the
same key appears twice (e.g. a rerun with ``resume=False`` into the
same directory), the last occurrence wins.

Every line is serialized with ``sort_keys`` and fixed separators, so a
record's bytes are a pure function of its values — the property the
golden determinism tests pin down.  That same property makes sharded
runs mergeable: :func:`merge_stores` can combine the stores written by
independent ``--shard k/N`` processes into one directory whose records
are byte-identical, per key, to an unsharded run's.
"""

from __future__ import annotations

import hashlib
import json
import re
from collections.abc import Iterable
from pathlib import Path
from typing import Any

from repro.contest.evaluate import Score
from repro.runner.task import RECORD_SCHEMA, TaskSpec, score_from_record

PathLike = str | Path

MANIFEST_NAME = "manifest.json"
RECORDS_NAME = "records.jsonl"
SOLUTIONS_DIR = "solutions"

#: Manifest keys that must match between a store and a resuming run.
_CONFIG_KEYS = ("schema", "n_train", "n_valid", "n_test", "effort")

#: Grid keys that grow as a run is extended (union semantics).
_GRID_KEYS = ("benchmarks", "flows", "seeds")


def canonical_line(record: dict[str, object]) -> str:
    """The one true serialization of a record (no trailing newline)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def benchmark_sort_key(benchmark: object) -> tuple[bool, int, str]:
    """Total order over mixed benchmark identifiers.

    Records may carry integer suite indices (historical runs) or
    registry problem names (``"adder:width=48"``) in the same store;
    Python refuses ``int < str``, so ordering goes through this key:
    all indices first (numerically), then names (lexically).
    """
    if isinstance(benchmark, int) and not isinstance(benchmark, bool):
        return (False, benchmark, "")
    return (True, 0, str(benchmark))


def _solution_filename(key: str) -> str:
    """Filesystem-safe, collision-free name for a task's circuit.

    Sanitizing alone is lossy — ``b000:team_a:s0`` and
    ``b000:team:a:s0`` both collapse to ``b000_team_a_s0`` — so
    whenever sanitization had to alter the key, a short digest of the
    *exact* key is appended.  Distinct keys therefore always map to
    distinct filenames, while keys that are already safe keep their
    readable name unchanged.
    """
    safe = re.sub(r"[^A-Za-z0-9_.-]", "_", key)
    if safe != key:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:10]
        safe = f"{safe}-{digest}"
    return safe + ".aag"


def _legacy_solution_filename(key: str) -> str:
    """Pre-digest naming (lossy); still honoured on the read side so
    run directories written before the digest suffix keep serving."""
    return re.sub(r"[^A-Za-z0-9_.-]", "_", key) + ".aag"


class RunStore:
    """Append-only JSONL store under one run directory."""

    def __init__(self, root: PathLike):
        self.root = Path(root)

    @property
    def records_path(self) -> Path:
        return self.root / RECORDS_NAME

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    @property
    def solutions_dir(self) -> Path:
        return self.root / SOLUTIONS_DIR

    # -- manifest ----------------------------------------------------

    def read_manifest(self) -> dict[str, Any] | None:
        if not self.manifest_path.exists():
            return None
        return json.loads(self.manifest_path.read_text(encoding="utf-8"))

    def ensure_manifest(self, config: dict[str, Any]) -> None:
        """Create the manifest, or verify it matches ``config``.

        A run directory is bound to one sampling configuration; mixing
        sizes, effort levels or record schemas in one store would
        silently corrupt resumed runs, so a mismatch is an error.  The
        grid fields (benchmarks/flows/seeds), by contrast, legitimately
        *grow* when a run is extended, so they are unioned and the
        manifest rewritten to keep describing the whole store.
        """
        config = {"schema": RECORD_SCHEMA, **config}
        existing = self.read_manifest()
        if existing is None:
            merged = config
        else:
            for key in _CONFIG_KEYS:
                if key in config and existing.get(key) != config.get(key):
                    raise ValueError(
                        f"run directory {self.root} was created with "
                        f"{key}={existing.get(key)!r}, cannot resume with "
                        f"{key}={config.get(key)!r} (use a fresh --out-dir)"
                    )
            merged = {**existing, **config}
            for key in _GRID_KEYS:
                both = set(existing.get(key, ())) | set(config.get(key, ()))
                if both:
                    merged[key] = sorted(both)
        self.root.mkdir(parents=True, exist_ok=True)
        self.manifest_path.write_text(
            json.dumps(merged, sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )

    # -- records -----------------------------------------------------

    def load_records(self) -> dict[str, dict[str, Any]]:
        """All stored records, indexed by task key (last wins).

        A run killed mid-append (SIGKILL, OOM, disk full) leaves a
        truncated JSON fragment as the *last* line; that is expected
        damage — the fragment is dropped and its task simply re-runs
        on resume.  An unparsable line anywhere else means the file
        was edited or corrupted, and raises.
        """
        records: dict[str, dict[str, Any]] = {}
        if not self.records_path.exists():
            return records
        lines = self.records_path.read_text(encoding="utf-8").splitlines()
        stripped = [ln.strip() for ln in lines if ln.strip()]
        for pos, line in enumerate(stripped):
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if pos == len(stripped) - 1:
                    break  # torn tail from an interrupted append
                raise ValueError(
                    f"{self.records_path} line {pos + 1} is not valid "
                    f"JSON (mid-file corruption, not an interrupted "
                    f"append): {line[:60]!r}"
                ) from exc
            schema = record.get("schema", RECORD_SCHEMA)
            if schema != RECORD_SCHEMA:
                raise ValueError(
                    f"{self.records_path} holds a schema-{schema} "
                    f"record (key {record.get('key')!r}); this "
                    f"version reads schema {RECORD_SCHEMA} — rerun "
                    f"into a fresh directory"
                )
            records[record["key"]] = record
        return records

    def append(self, record: dict[str, Any],
               aag: str | None = None) -> None:
        """Persist one completed task (record line + optional .aag)."""
        self.root.mkdir(parents=True, exist_ok=True)
        # A previous append torn mid-line (crash during write) leaves
        # a fragment with no trailing newline.  Truncate it away so
        # interior lines are always complete records — the fragment's
        # task was never marked done, so it re-runs anyway.
        if self.records_path.exists() and \
                self.records_path.stat().st_size > 0:
            with self.records_path.open("rb+") as fh:
                fh.seek(-1, 2)
                if fh.read(1) != b"\n":
                    fh.seek(0)
                    data = fh.read()
                    fh.truncate(data.rfind(b"\n") + 1)
        with self.records_path.open("a", encoding="utf-8") as fh:
            fh.write(canonical_line(record) + "\n")
        if aag is not None:
            self.solutions_dir.mkdir(parents=True, exist_ok=True)
            path = self.solutions_dir / _solution_filename(record["key"])
            path.write_text(aag, encoding="ascii")

    def solution_path(self, key: str) -> Path:
        """Canonical (write-side) location of a task's circuit."""
        return self.solutions_dir / _solution_filename(key)

    def has_solution(self, key: str) -> bool:
        """Whether a circuit was kept for this task (either naming)."""
        return (
            self.solution_path(key).exists()
            or (self.solutions_dir / _legacy_solution_filename(key)).exists()
        )

    def solution_text(self, key: str) -> str | None:
        """Stored ``.aag`` text for a task, or ``None`` if not kept.

        Falls back to the legacy pre-digest filename so stores written
        by earlier versions stay readable (their names were unique in
        practice; the digest suffix only guards pathological keys).
        """
        for path in (
            self.solution_path(key),
            self.solutions_dir / _legacy_solution_filename(key),
        ):
            if path.exists():
                return path.read_text(encoding="ascii")
        return None

    # -- reconstruction ----------------------------------------------

    def scores_by_team(
        self, specs: list[TaskSpec] | None = None
    ) -> dict[str, list[Score]]:
        """Rebuild the ``ContestRun`` payload from stored records.

        With ``specs`` the scores follow the given task order exactly
        (missing tasks raise).  Without, all stored records are used,
        ordered by (team, benchmark index, seed) for determinism.
        """
        records = self.load_records()
        out: dict[str, list[Score]] = {}
        if specs is not None:
            missing = [s.key for s in specs if s.key not in records]
            if missing:
                raise KeyError(
                    f"run directory {self.root} is missing "
                    f"{len(missing)} task(s), e.g. {missing[0]!r}; "
                    f"rerun the contest with --resume to fill them in"
                )
            for spec in specs:
                out.setdefault(spec.team_name, []).append(
                    score_from_record(records[spec.key])
                )
            return out
        ordered = sorted(
            records.values(),
            key=lambda r: (str(r.get("team", r["flow"])),
                           benchmark_sort_key(r["benchmark"]), r["seed"]),
        )
        for record in ordered:
            team = str(record.get("team", record["flow"]))
            out.setdefault(team, []).append(score_from_record(record))
        return out


def merge_stores(
    sources: Iterable[PathLike], dest: PathLike
) -> RunStore:
    """Combine the stores of a sharded run into one run directory.

    The shards of one contest share a sampling configuration and hold
    disjoint task keys, so merging is mechanical: verify the manifests'
    config keys agree, union their grid keys, and write every record —
    sorted by task key, in canonical serialization — into ``dest``.
    Kept solution circuits are copied alongside.  A key stored by two
    sources must carry byte-identical records (task purity guarantees
    this for shards of one grid); differing duplicates abort the merge
    rather than silently picking a winner.
    """
    stores = [RunStore(src) for src in sources]
    if not stores:
        raise ValueError("merge_stores needs at least one source")

    merged_manifest: dict[str, Any] = {}
    for store in stores:
        manifest = store.read_manifest()
        if manifest is None:
            continue
        for key in _CONFIG_KEYS:
            if key not in manifest:
                continue
            if key in merged_manifest and \
                    merged_manifest[key] != manifest[key]:
                raise ValueError(
                    f"cannot merge {store.root}: {key}={manifest[key]!r} "
                    f"conflicts with {key}={merged_manifest[key]!r} from "
                    f"an earlier source"
                )
            merged_manifest[key] = manifest[key]
        for key in _GRID_KEYS:
            if key in manifest:
                both = set(merged_manifest.get(key, ())) \
                    | set(manifest[key])
                merged_manifest[key] = sorted(
                    both, key=benchmark_sort_key
                ) if key == "benchmarks" else sorted(both)

    records: dict[str, dict[str, Any]] = {}
    origins: dict[str, Path] = {}
    solutions: dict[str, str] = {}
    for store in stores:
        for key, record in store.load_records().items():
            if key in records and \
                    canonical_line(records[key]) != canonical_line(record):
                raise ValueError(
                    f"task {key!r} differs between {origins[key]} and "
                    f"{store.root}; refusing to merge conflicting records"
                )
            records[key] = record
            origins[key] = store.root
            text = store.solution_text(key)
            if text is not None:
                solutions[key] = text

    out = RunStore(dest)
    out.root.mkdir(parents=True, exist_ok=True)
    if merged_manifest:
        out.manifest_path.write_text(
            json.dumps(merged_manifest, sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
    with out.records_path.open("w", encoding="utf-8") as fh:
        for key in sorted(records):
            fh.write(canonical_line(records[key]) + "\n")
    for key, text in solutions.items():
        out.solutions_dir.mkdir(parents=True, exist_ok=True)
        out.solution_path(key).write_text(text, encoding="ascii")
    return out
