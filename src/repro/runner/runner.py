"""Parallel, resumable, shardable execution of contest task grids.

``run_tasks`` fans a list of :class:`TaskSpec` out over a
``ProcessPoolExecutor`` (``jobs=1`` stays fully in-process, no pool),
skips tasks whose records already sit in the store, and appends each
newly completed record as it lands — so an interrupted run loses at
most the tasks in flight, and re-invoking with the same arguments
resumes where it stopped.  Because workers are pure functions of the
spec (see :mod:`repro.runner.task`), serial, parallel and resumed runs
produce byte-identical records per task.

The same purity enables *sharding*: :func:`shard_tasks` partitions a
grid deterministically by task key, so N independent processes (or CI
jobs) can each run ``--shard k/N`` into their own store directory and
:func:`repro.runner.store.merge_stores` reassembles a store
byte-identical to the unsharded run's.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Sequence
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any

from repro.contest.evaluate import Score
from repro.runner.store import PathLike, RunStore, benchmark_sort_key
from repro.runner.task import TaskResult, TaskSpec, run_task


def contest_tasks(
    benchmarks: Sequence[Any],
    flow_names: Sequence[str] | dict[str, str],
    n_train: int,
    n_valid: int,
    n_test: int,
    effort: str = "small",
    master_seed: int = 0,
    trials: int = 1,
) -> list[TaskSpec]:
    """The full (flow x benchmark x trial) grid as task specs.

    ``benchmarks`` entries may be suite indices (ints — the historical
    interface, producing the historical ``b{idx:03d}`` task keys),
    registry problem names / family spec strings, or
    :class:`~repro.contest.registry.ProblemSpec` objects.  Specs that
    carry a paper index collapse to that index so their store keys (and
    hence resumability of old run directories) are unchanged; generated
    specs are keyed by canonical name.

    ``flow_names`` is either a list of worker-resolvable names or a
    ``{display name: resolvable name}`` mapping.  Trial ``t`` runs with
    master seed ``master_seed + t``, so multi-seed sweeps stay
    reproducible and each trial's records are independent store keys.
    The grid iterates benchmark-outer (like the historical serial
    loop), which lets the per-process problem cache serve every flow
    of a benchmark from one sampling.
    """
    from repro.contest.registry import ProblemSpec

    if isinstance(flow_names, dict):
        named = list(flow_names.items())
    else:
        named = [(name, name) for name in flow_names]
    resolved: list[int | str] = []
    for entry in benchmarks:
        if isinstance(entry, ProblemSpec):
            resolved.append(
                entry.index if entry.index is not None else entry.name
            )
        elif isinstance(entry, str):
            resolved.append(entry)
        else:
            resolved.append(int(entry))
    specs: list[TaskSpec] = []
    for bench in resolved:
        for t in range(trials):
            for team, flow in named:
                specs.append(
                    TaskSpec(
                        benchmark=bench,
                        flow=flow,
                        seed=master_seed + t,
                        n_train=n_train,
                        n_valid=n_valid,
                        n_test=n_test,
                        effort=effort,
                        team=team,
                    )
                )
    return specs


def parse_shard(text: str) -> tuple[int, int]:
    """Parse a ``"k/N"`` shard selector into ``(k, N)``.

    ``k`` counts from zero: valid selectors for a four-way split are
    ``0/4`` through ``3/4``.
    """
    head, sep, tail = text.partition("/")
    if not sep:
        raise ValueError(
            f"invalid shard {text!r}: expected 'k/N' (e.g. '0/4')"
        )
    try:
        index, total = int(head), int(tail)
    except ValueError:
        raise ValueError(
            f"invalid shard {text!r}: expected integers 'k/N'"
        ) from None
    if total < 1:
        raise ValueError(f"invalid shard {text!r}: N must be >= 1")
    if not 0 <= index < total:
        raise ValueError(
            f"invalid shard {text!r}: k must be in 0..{total - 1}"
        )
    return index, total


def shard_of(key: str, total: int) -> int:
    """The shard owning a task key: stable hash, independent of grid
    order, so adding benchmarks never reshuffles existing tasks."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % total


def shard_tasks(
    specs: Sequence[TaskSpec], index: int, total: int
) -> list[TaskSpec]:
    """The subset of a grid owned by shard ``index`` of ``total``.

    Partitioning hashes each task's *key*, so every shard computes its
    subset independently from the full grid — no coordination, no
    ordering sensitivity — and the union over ``0..total-1`` is exactly
    the grid.  ``total=1`` returns the grid unchanged.
    """
    if total == 1:
        return list(specs)
    if not 0 <= index < total:
        raise ValueError(f"shard index {index} out of range 0..{total - 1}")
    return [s for s in specs if shard_of(s.key, total) == index]


def _execute(
    pending: Sequence[TaskSpec],
    jobs: int,
    keep_solutions: bool,
) -> Iterable[TaskResult]:
    """Yield results as they complete (serial: in spec order)."""
    if jobs <= 1:
        for spec in pending:
            yield run_task(spec, keep_solutions)
        return
    # Workers must simulate on the backend the parent resolved —
    # env-var selection inherits through the environment, but
    # set_backend()/--sim-backend live in the parent process only.
    from repro.sim.backend import get_backend

    from repro.runner.task import initialize_worker

    with ProcessPoolExecutor(
        max_workers=jobs,
        initializer=initialize_worker,
        initargs=(get_backend(),),
    ) as pool:
        futures = {
            pool.submit(run_task, spec, keep_solutions)
            for spec in pending
        }
        while futures:
            done, futures = wait(futures, return_when=FIRST_COMPLETED)
            for future in done:
                yield future.result()


def run_tasks(
    specs: Sequence[TaskSpec],
    jobs: int = 1,
    store: RunStore | None = None,
    resume: bool = True,
    keep_solutions: bool = False,
    verbose: bool = False,
) -> dict[str, dict[str, Any]]:
    """Execute a task grid, returning ``{task key: record}``.

    With a ``store``, completed records are read first (when
    ``resume``) and every fresh result is appended as it lands, so the
    store is valid after an interruption at any point.
    """
    specs = list(specs)
    done: dict[str, dict[str, Any]] = {}
    if store is not None and resume:
        stored = store.load_records()
        done = {s.key: stored[s.key] for s in specs if s.key in stored}
    pending = [s for s in specs if s.key not in done]
    if verbose and done:
        print(f"resume: {len(done)} of {len(specs)} tasks already stored")
    for result in _execute(pending, jobs, keep_solutions):
        done[result.spec.key] = result.record
        if store is not None:
            store.append(result.record, aag=result.aag)
        if verbose:
            r = result.record
            print(
                f"{r['benchmark_name']} {r['team']} s{r['seed']}: "
                f"acc={r['test_accuracy']:.3f} ands={r['num_ands']} "
                f"[{r['method']}]"
            )
    return done


def run_contest_tasks(
    specs: Sequence[TaskSpec],
    jobs: int = 1,
    out_dir: PathLike | None = None,
    resume: bool = True,
    keep_solutions: bool = False,
    verbose: bool = False,
):
    """Run a grid and reconstruct a :class:`~repro.analysis.ContestRun`.

    The run directory (when given) becomes the source of truth: scores
    are rebuilt from stored records, so a completed directory can be
    re-reported later without executing anything (``repro.cli report``).
    """
    from repro.analysis import ContestRun
    from repro.runner.task import score_from_record

    specs = list(specs)
    store = None
    if out_dir is not None:
        store = RunStore(out_dir)
        if specs:
            first = specs[0]
            store.ensure_manifest(
                {
                    "n_train": first.n_train,
                    "n_valid": first.n_valid,
                    "n_test": first.n_test,
                    "effort": first.effort,
                    "benchmarks": sorted({s.benchmark for s in specs},
                                         key=benchmark_sort_key),
                    "flows": sorted({s.flow for s in specs}),
                    "seeds": sorted({s.seed for s in specs}),
                }
            )
    records = run_tasks(
        specs,
        jobs=jobs,
        store=store,
        resume=resume,
        keep_solutions=keep_solutions,
        verbose=verbose,
    )
    scores_by_team: dict[str, list[Score]] = {}
    for spec in specs:
        scores_by_team.setdefault(spec.team_name, []).append(
            score_from_record(records[spec.key])
        )
    return ContestRun(scores_by_team)


def load_contest_run(out_dir: PathLike):
    """Rebuild a :class:`~repro.analysis.ContestRun` from a directory,
    without executing any task."""
    return load_contest_runs([out_dir])


def load_contest_runs(out_dirs: Sequence[PathLike]):
    """Rebuild one :class:`~repro.analysis.ContestRun` from one or
    more run directories (e.g. the stores of a sharded run).

    The directories are merged in memory — records indexed by task
    key, conflicting duplicate keys rejected — exactly as
    :func:`~repro.runner.store.merge_stores` would merge them on disk,
    then reconstructed in the usual (team, benchmark, seed) order.
    """
    from repro.analysis import ContestRun
    from repro.runner.store import canonical_line
    from repro.runner.task import score_from_record

    records: dict[str, dict[str, Any]] = {}
    origins: dict[str, PathLike] = {}
    found_any = False
    for out_dir in out_dirs:
        store = RunStore(out_dir)
        loaded = store.load_records()
        if loaded:
            found_any = True
        for key, record in loaded.items():
            if key in records and \
                    canonical_line(records[key]) != canonical_line(record):
                raise ValueError(
                    f"task {key!r} differs between {origins[key]} and "
                    f"{store.root}; these directories are not shards of "
                    f"one run"
                )
            records[key] = record
            origins[key] = store.root
    if not found_any:
        listed = ", ".join(str(d) for d in out_dirs)
        raise FileNotFoundError(
            f"no records found under {listed} (expected "
            f"{RunStore(out_dirs[0]).records_path.name})"
        )
    ordered = sorted(
        records.values(),
        key=lambda r: (str(r.get("team", r["flow"])),
                       benchmark_sort_key(r["benchmark"]), r["seed"]),
    )
    scores: dict[str, list[Score]] = {}
    for record in ordered:
        team = str(record.get("team", record["flow"]))
        scores.setdefault(team, []).append(score_from_record(record))
    return ContestRun(scores)
