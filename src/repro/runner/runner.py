"""Parallel, resumable execution of contest task grids.

``run_tasks`` fans a list of :class:`TaskSpec` out over a
``ProcessPoolExecutor`` (``jobs=1`` stays fully in-process, no pool),
skips tasks whose records already sit in the store, and appends each
newly completed record as it lands — so an interrupted run loses at
most the tasks in flight, and re-invoking with the same arguments
resumes where it stopped.  Because workers are pure functions of the
spec (see :mod:`repro.runner.task`), serial, parallel and resumed runs
produce byte-identical records per task.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.runner.store import PathLike, RunStore
from repro.runner.task import TaskResult, TaskSpec, run_task


def contest_tasks(
    benchmark_indices: Sequence[int],
    flow_names: Union[Sequence[str], Dict[str, str]],
    n_train: int,
    n_valid: int,
    n_test: int,
    effort: str = "small",
    master_seed: int = 0,
    trials: int = 1,
) -> List[TaskSpec]:
    """The full (flow x benchmark x trial) grid as task specs.

    ``flow_names`` is either a list of worker-resolvable names or a
    ``{display name: resolvable name}`` mapping.  Trial ``t`` runs with
    master seed ``master_seed + t``, so multi-seed sweeps stay
    reproducible and each trial's records are independent store keys.
    The grid iterates benchmark-outer (like the historical serial
    loop), which lets the per-process problem cache serve every flow
    of a benchmark from one sampling.
    """
    if isinstance(flow_names, dict):
        named = list(flow_names.items())
    else:
        named = [(name, name) for name in flow_names]
    specs: List[TaskSpec] = []
    for idx in benchmark_indices:
        for t in range(trials):
            for team, flow in named:
                specs.append(
                    TaskSpec(
                        benchmark=int(idx),
                        flow=flow,
                        seed=master_seed + t,
                        n_train=n_train,
                        n_valid=n_valid,
                        n_test=n_test,
                        effort=effort,
                        team=team,
                    )
                )
    return specs


def _execute(
    pending: Sequence[TaskSpec],
    jobs: int,
    keep_solutions: bool,
) -> Iterable[TaskResult]:
    """Yield results as they complete (serial: in spec order)."""
    if jobs <= 1:
        for spec in pending:
            yield run_task(spec, keep_solutions)
        return
    # Workers must simulate on the backend the parent resolved —
    # env-var selection inherits through the environment, but
    # set_backend()/--sim-backend live in the parent process only.
    from repro.sim.backend import get_backend

    from repro.runner.task import initialize_worker

    with ProcessPoolExecutor(
        max_workers=jobs,
        initializer=initialize_worker,
        initargs=(get_backend(),),
    ) as pool:
        futures = {
            pool.submit(run_task, spec, keep_solutions)
            for spec in pending
        }
        while futures:
            done, futures = wait(futures, return_when=FIRST_COMPLETED)
            for future in done:
                yield future.result()


def run_tasks(
    specs: Sequence[TaskSpec],
    jobs: int = 1,
    store: Optional[RunStore] = None,
    resume: bool = True,
    keep_solutions: bool = False,
    verbose: bool = False,
) -> Dict[str, Dict[str, object]]:
    """Execute a task grid, returning ``{task key: record}``.

    With a ``store``, completed records are read first (when
    ``resume``) and every fresh result is appended as it lands, so the
    store is valid after an interruption at any point.
    """
    specs = list(specs)
    done: Dict[str, Dict[str, object]] = {}
    if store is not None and resume:
        stored = store.load_records()
        done = {s.key: stored[s.key] for s in specs if s.key in stored}
    pending = [s for s in specs if s.key not in done]
    if verbose and done:
        print(f"resume: {len(done)} of {len(specs)} tasks already stored")
    for result in _execute(pending, jobs, keep_solutions):
        done[result.spec.key] = result.record
        if store is not None:
            store.append(result.record, aag=result.aag)
        if verbose:
            r = result.record
            print(
                f"{r['benchmark_name']} {r['team']} s{r['seed']}: "
                f"acc={r['test_accuracy']:.3f} ands={r['num_ands']} "
                f"[{r['method']}]"
            )
    return done


def run_contest_tasks(
    specs: Sequence[TaskSpec],
    jobs: int = 1,
    out_dir: Optional[PathLike] = None,
    resume: bool = True,
    keep_solutions: bool = False,
    verbose: bool = False,
):
    """Run a grid and reconstruct a :class:`~repro.analysis.ContestRun`.

    The run directory (when given) becomes the source of truth: scores
    are rebuilt from stored records, so a completed directory can be
    re-reported later without executing anything (``repro.cli report``).
    """
    from repro.analysis import ContestRun
    from repro.runner.task import score_from_record

    specs = list(specs)
    store = None
    if out_dir is not None:
        store = RunStore(out_dir)
        if specs:
            first = specs[0]
            store.ensure_manifest(
                {
                    "n_train": first.n_train,
                    "n_valid": first.n_valid,
                    "n_test": first.n_test,
                    "effort": first.effort,
                    "benchmarks": sorted({s.benchmark for s in specs}),
                    "flows": sorted({s.flow for s in specs}),
                    "seeds": sorted({s.seed for s in specs}),
                }
            )
    records = run_tasks(
        specs,
        jobs=jobs,
        store=store,
        resume=resume,
        keep_solutions=keep_solutions,
        verbose=verbose,
    )
    scores_by_team: Dict[str, List] = {}
    for spec in specs:
        scores_by_team.setdefault(spec.team_name, []).append(
            score_from_record(records[spec.key])
        )
    return ContestRun(scores_by_team)


def load_contest_run(out_dir: PathLike):
    """Rebuild a :class:`~repro.analysis.ContestRun` from a directory,
    without executing any task."""
    from repro.analysis import ContestRun

    store = RunStore(out_dir)
    scores = store.scores_by_team()
    if not scores:
        raise FileNotFoundError(
            f"no records found under {store.root} (expected "
            f"{store.records_path.name})"
        )
    return ContestRun(scores)
