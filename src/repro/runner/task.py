"""The unit of contest work: one (benchmark, flow, seed) task.

A :class:`TaskSpec` names everything a worker needs to recompute its
result from scratch — the benchmark (a suite *index* or a registry
*problem name* like ``"ex74"`` / ``"adder:width=48"``), the flow
*name*, the master seed and the sample sizes — so the worker function
:func:`run_task` is a pure function of the spec.  That purity is what
makes the parallel runner deterministic (any process, any order, same
record), makes resume sound (a stored record fully substitutes for a
re-execution), makes sharded runs mergeable byte-identically, and
makes the golden determinism tests possible.

Flows are referenced by name, never by callable: a registry name or
spec string (``"team01"``, ``"team01:effort=full"``,
``"portfolio:flows=team01+team10"`` — see
:mod:`repro.flows.registry`) or a ``"module:qualname"`` dotted path
(the escape hatch benches and downstream users need for custom flows
that are not registered).
"""

from __future__ import annotations

import hashlib
import importlib
from collections.abc import Callable
from dataclasses import dataclass
from functools import lru_cache
from typing import Any

import numpy as np

from repro.contest.evaluate import Score, evaluate_solution
from repro.contest.problem import LearningProblem, Solution

#: Bump when the record layout changes incompatibly.
RECORD_SCHEMA = 1


def initialize_worker(sim_backend: str | None = None) -> None:
    """Process-pool initializer: adopt the parent's session settings.

    Workers spawned by :mod:`repro.runner.runner` respect the
    ``REPRO_SIM_BACKEND`` environment variable automatically (it is
    resolved at call time and inherited through the process
    environment), but a backend chosen *programmatically* in the
    parent — ``repro.sim.set_backend`` or a ``--sim-backend`` CLI
    flag — lives only in that process.  The runner forwards the
    parent's effective backend here so every worker simulates on the
    same executor the parent would have used.  Records stay
    byte-identical across backends (the differential tests enforce
    bit-equality), so this is a performance setting, never a
    correctness one.
    """
    if sim_backend is not None:
        from repro.sim.backend import set_backend

        set_backend(sim_backend)


@dataclass(frozen=True)
class TaskSpec:
    """One contest execution: flow x benchmark x seed at fixed sizes.

    ``benchmark`` is either a suite index (the historical interface —
    keys and records are unchanged, so old stores keep resuming) or a
    registry problem name / family spec string resolved through
    :data:`repro.contest.registry.DEFAULT_REGISTRY`.
    """

    benchmark: int | str  # suite index or registry problem name
    flow: str  # registry name/spec string or "module:qualname" path
    seed: int  # master seed for sampling and the flow's RNG streams
    n_train: int
    n_valid: int
    n_test: int
    effort: str = "small"
    team: str | None = None  # display name; defaults to ``flow``

    @property
    def key(self) -> str:
        """Stable identity of the task within one run directory."""
        if isinstance(self.benchmark, str):
            return f"{self.benchmark}:{self.flow}:s{self.seed}"
        return f"b{self.benchmark:03d}:{self.flow}:s{self.seed}"

    @property
    def team_name(self) -> str:
        return self.team if self.team is not None else self.flow


def resolve_flow(name: str) -> Callable:
    """Turn a flow name into its contract callable.

    Resolution order: the flow registry (plain names return the
    registered :class:`~repro.flows.api.Flow`; spec strings with
    overrides return a :class:`~repro.flows.registry.FlowSpec`), then
    ``module:qualname`` import paths for unregistered callables.
    """
    from repro.flows.registry import REGISTRY

    head = name.partition(":")[0]
    if head in REGISTRY:
        return REGISTRY.resolve(name)
    if ":" in name and "=" not in name:
        module_name, _, qualname = name.partition(":")
        obj: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
        return obj
    from repro.utils.suggest import did_you_mean

    raise KeyError(
        f"unknown flow {name!r}: not a registered flow/spec "
        f"(registered: {REGISTRY.names()}) and not a "
        f"'module:qualname' path{did_you_mean(head, REGISTRY.names())}"
    )


def flow_name_for(name: str, flow: Callable) -> str:
    """The worker-resolvable name of ``flow``, preferring ``name``.

    ``run_contest`` accepts ``{display name: callable}`` dictionaries;
    workers only ship names, so the callable must be re-resolvable.
    Registered Flow objects resolve to their registry name, resolved
    ``FlowSpec`` objects to their spec string, and module-level
    callables to a ``module:qualname`` path.
    """
    from repro.flows.registry import REGISTRY, FlowSpec

    if name in REGISTRY and REGISTRY.get(name) is flow:
        return name
    if isinstance(flow, FlowSpec):
        return flow.spec
    registered = getattr(flow, "name", None)
    if registered in REGISTRY and REGISTRY.get(registered) is flow:
        return registered
    dotted = f"{getattr(flow, '__module__', '?')}:" \
             f"{getattr(flow, '__qualname__', '?')}"
    try:
        if resolve_flow(dotted) is flow:
            return dotted
    except (ImportError, AttributeError, KeyError):
        pass
    raise ValueError(
        f"flow {name!r} ({flow!r}) is not resolvable by name; parallel "
        f"and stored runs need flows reachable via the registry or a "
        f"module-level 'module:qualname' path"
    )


@lru_cache(maxsize=4)
def _cached_problem(
    benchmark: int | str,
    n_train: int,
    n_valid: int,
    n_test: int,
    seed: int,
) -> LearningProblem:
    """Per-process problem cache.

    Sampling is deterministic in these five arguments, so caching
    cannot break task purity — it only stops a serial contest (whose
    task grid iterates benchmark-outer) from re-sampling the same
    datasets once per flow.  Flows receive the shared instance; they
    already must not mutate problem data (the serial contest reused
    one instance across flows long before the runner existed).
    """
    from repro.contest import DEFAULT_REGISTRY

    if isinstance(benchmark, str):
        spec = DEFAULT_REGISTRY.get(benchmark)
    else:
        spec = DEFAULT_REGISTRY.by_index(benchmark)
    return DEFAULT_REGISTRY.problem(
        spec, n_train=n_train, n_valid=n_valid,
        n_test=n_test, master_seed=seed,
    )


def make_task_problem(spec: TaskSpec) -> LearningProblem:
    """Sample the task's problem (same recipe in every process)."""
    return _cached_problem(
        spec.benchmark, spec.n_train, spec.n_valid, spec.n_test, spec.seed
    )


def dataset_fingerprint(
    benchmark: int | str,
    n_train: int,
    n_valid: int,
    n_test: int,
    master_seed: int = 0,
) -> str:
    """SHA-256 over a problem's sampled bytes (split-order sensitive).

    Identical fingerprints across processes prove the parallel runner's
    workers see exactly the data a serial run would have seen.
    """
    spec = TaskSpec(
        benchmark=benchmark, flow="-", seed=master_seed,
        n_train=n_train, n_valid=n_valid, n_test=n_test,
    )
    problem = make_task_problem(spec)
    digest = hashlib.sha256()
    for ds in (problem.train, problem.valid, problem.test):
        digest.update(np.ascontiguousarray(ds.X).tobytes())
        digest.update(np.ascontiguousarray(ds.y).tobytes())
    return digest.hexdigest()


def _json_safe(value):
    """Conservatively coerce metadata values into JSON-stable types."""
    if isinstance(value, (bool, int, str)) or value is None:
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, np.generic):
        return _json_safe(value.item())
    if isinstance(value, np.ndarray):
        return [_json_safe(v) for v in value.tolist()]
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return repr(value)


def score_to_record(score: Score) -> dict[str, Any]:
    """Serialize a Score losslessly (floats keep their exact value).

    ``seed`` is emitted only when set: freshly evaluated scores carry
    ``None`` and the task spec's seed (already in the full record)
    must not be clobbered.
    """
    record = {
        "benchmark_name": score.benchmark,
        "method": score.method,
        "test_accuracy": float(score.test_accuracy),
        "valid_accuracy": float(score.valid_accuracy),
        "train_accuracy": float(score.train_accuracy),
        "num_ands": int(score.num_ands),
        "levels": int(score.levels),
        "legal": bool(score.legal),
    }
    if score.seed is not None:
        record["seed"] = int(score.seed)
    return record


def score_from_record(record: dict[str, Any]) -> Score:
    """Inverse of :func:`score_to_record` (exact round-trip).

    The record's task-level ``seed`` is attached to the Score, so
    reconstructed multi-trial runs stay seed-aligned (``win_rates``
    compares like trials even when a store is partially complete).
    """
    return Score(
        benchmark=record["benchmark_name"],
        method=record["method"],
        test_accuracy=record["test_accuracy"],
        valid_accuracy=record["valid_accuracy"],
        train_accuracy=record["train_accuracy"],
        num_ands=record["num_ands"],
        levels=record["levels"],
        legal=record["legal"],
        seed=record.get("seed"),
    )


@dataclass
class TaskResult:
    """What a worker sends back: the record plus the optional circuit."""

    spec: TaskSpec
    record: dict[str, Any]
    aag: str | None = None


def run_task(spec: TaskSpec, keep_solution: bool = False) -> TaskResult:
    """Execute one task from scratch.  Pure: output depends only on
    ``spec`` (and ``keep_solution``), never on process or ordering."""
    from repro.aig.aiger import dumps_aag

    problem = make_task_problem(spec)
    flow = resolve_flow(spec.flow)
    solution = flow(problem, effort=spec.effort, master_seed=spec.seed)
    score = evaluate_solution(problem, solution)
    record = {
        "schema": RECORD_SCHEMA,
        "key": spec.key,
        "benchmark": spec.benchmark,
        "flow": spec.flow,
        "team": spec.team_name,
        "seed": spec.seed,
        "n_train": spec.n_train,
        "n_valid": spec.n_valid,
        "n_test": spec.n_test,
        "effort": spec.effort,
        "solution_metadata": _json_safe(solution.metadata),
    }
    record.update(score_to_record(score))
    return TaskResult(
        spec=spec,
        record=record,
        aag=dumps_aag(solution.aig) if keep_solution else None,
    )


def run_flow_on_problem(
    problem: LearningProblem,
    flow: str,
    effort: str = "small",
    master_seed: int = 0,
) -> Solution:
    """Process-pool-friendly flow invocation on an in-memory problem.

    Used by the portfolio's parallel mode, where the problem is already
    sampled in the parent and shipped (pickled) to workers.
    """
    return resolve_flow(flow)(problem, effort=effort, master_seed=master_seed)
