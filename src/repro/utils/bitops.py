"""Packed bit-vector helpers.

The AIG simulator evaluates one node for 64 samples at a time by
storing sample values in ``numpy.uint64`` words.  These helpers convert
between sample matrices (``uint8`` with one row per sample) and the
packed word representation (one row per variable, one column per word
of 64 samples).
"""

from __future__ import annotations

import numpy as np

WORD_BITS = 64

# 16-bit popcount lookup used by :func:`popcount64`.
_POP16 = np.array(
    [bin(i).count("1") for i in range(1 << 16)], dtype=np.uint8
)


def pack_bits(matrix: np.ndarray) -> np.ndarray:
    """Pack a ``(n_samples, n_vars)`` 0/1 matrix into uint64 words.

    Returns an array of shape ``(n_vars, n_words)`` where bit ``s % 64``
    of word ``s // 64`` of row ``v`` is the value of variable ``v`` in
    sample ``s``.  Trailing bits in the last word are zero.
    """
    matrix = np.asarray(matrix, dtype=np.uint8)
    if matrix.ndim != 2:
        raise ValueError(f"expected 2-D sample matrix, got shape {matrix.shape}")
    n_samples, n_vars = matrix.shape
    n_words = (n_samples + WORD_BITS - 1) // WORD_BITS
    padded = np.zeros((n_words * WORD_BITS, n_vars), dtype=np.uint8)
    padded[:n_samples] = matrix
    # Reshape to (n_words, 64, n_vars); bit j of a word is sample j.
    cube = padded.reshape(n_words, WORD_BITS, n_vars).astype(np.uint64)
    weights = (np.uint64(1) << np.arange(WORD_BITS, dtype=np.uint64))[None, :, None]
    packed = (cube * weights).sum(axis=1, dtype=np.uint64)
    return np.ascontiguousarray(packed.T)


def unpack_bits(packed: np.ndarray, n_samples: int) -> np.ndarray:
    """Inverse of :func:`pack_bits` -> ``(n_samples, n_vars)`` uint8."""
    packed = np.asarray(packed, dtype=np.uint64)
    if packed.ndim == 1:
        packed = packed[None, :]
    n_vars, n_words = packed.shape
    shifts = np.arange(WORD_BITS, dtype=np.uint64)
    # (n_vars, n_words, 64) -> bits
    bits = (packed[:, :, None] >> shifts[None, None, :]) & np.uint64(1)
    bits = bits.reshape(n_vars, n_words * WORD_BITS).astype(np.uint8)
    return np.ascontiguousarray(bits[:, :n_samples].T)


def popcount64(words: np.ndarray) -> np.ndarray:
    """Per-word population count of a uint64 array."""
    words = np.asarray(words, dtype=np.uint64)
    mask = np.uint64(0xFFFF)
    acc = _POP16[(words & mask).astype(np.uint32)].astype(np.uint32)
    acc += _POP16[((words >> np.uint64(16)) & mask).astype(np.uint32)]
    acc += _POP16[((words >> np.uint64(32)) & mask).astype(np.uint32)]
    acc += _POP16[((words >> np.uint64(48)) & mask).astype(np.uint32)]
    return acc


def bits_to_int(bits: np.ndarray) -> int:
    """Interpret a 0/1 vector as an unsigned integer, bit 0 first (LSB).

    Shared by :meth:`repro.aig.aig.AIG.truth_tables` and the two-level
    code: the vector is byte-packed in one numpy call and decoded with
    ``int.from_bytes`` instead of a per-set-bit Python loop.
    """
    bits = np.asarray(bits, dtype=np.uint8).ravel()
    if not bits.size:
        return 0
    packed = np.packbits(bits != 0, bitorder="little")
    return int.from_bytes(packed.tobytes(), byteorder="little")


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Little-endian bit vector of ``value`` with ``width`` bits."""
    if value < 0:
        raise ValueError("int_to_bits expects a non-negative value")
    return np.array([(value >> i) & 1 for i in range(width)], dtype=np.uint8)


def rows_to_ints(matrix: np.ndarray) -> list[int]:
    """Convert each row of a 0/1 matrix to a Python int (LSB = column 0).

    Used by the arithmetic benchmark generators, which compute e.g.
    256-bit divisions with exact Python integers.
    """
    matrix = np.asarray(matrix, dtype=np.uint8)
    n_vars = matrix.shape[1]
    # Work in 52-bit chunks to stay within exact float range is unsafe;
    # use bytes instead: pad columns to a multiple of 8 and view as bytes.
    n_bytes = (n_vars + 7) // 8
    padded = np.zeros((matrix.shape[0], n_bytes * 8), dtype=np.uint8)
    padded[:, :n_vars] = matrix
    weights = np.array([1, 2, 4, 8, 16, 32, 64, 128], dtype=np.uint8)
    as_bytes = (padded.reshape(matrix.shape[0], n_bytes, 8) * weights).sum(
        axis=2, dtype=np.uint8
    )
    return [
        int.from_bytes(row.tobytes(), byteorder="little") for row in as_bytes
    ]
