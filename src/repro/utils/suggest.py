"""Near-match suggestions for unknown-name error messages.

Every registry in the library (problems, flows, spec-override keys)
rejects unknown names; this module is the one place that turns a
rejection into an actionable message — a ``difflib``-ranked "did you
mean" suffix — so typo diagnostics look and rank the same everywhere.
Deterministic: pure string similarity, no RNG.
"""

from __future__ import annotations

import difflib
from collections.abc import Iterable

__all__ = ["did_you_mean", "near_matches"]


def near_matches(
    name: str,
    pool: Iterable[str],
    n: int = 5,
    cutoff: float = 0.5,
) -> list[str]:
    """The closest candidates to ``name``, best first (may be empty)."""
    return difflib.get_close_matches(name, list(pool), n=n, cutoff=cutoff)


def did_you_mean(
    name: str,
    pool: Iterable[str],
    n: int = 5,
    cutoff: float = 0.5,
) -> str:
    """A ``"; did you mean rewrite, refactor?"`` suffix, or ``""``
    when nothing in ``pool`` is close enough to suggest."""
    near = near_matches(name, pool, n=n, cutoff=cutoff)
    return f"; did you mean {', '.join(near)}?" if near else ""
