"""Deterministic RNG streams.

Every stochastic component (benchmark sampling, forests, MLP init, CGP
mutation, ...) draws from a named stream derived from a master seed so
runs are reproducible and independent components do not perturb each
other's randomness.
"""

from __future__ import annotations

import hashlib

import numpy as np

MASTER_SEED = 0x1415_2020  # IWLS 2020


def derive_seed(*parts: object) -> int:
    """Derive a 63-bit seed from a tuple of hashable parts."""
    text = "|".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & ((1 << 63) - 1)


def rng_for(
    *parts: object, master_seed: int = MASTER_SEED
) -> np.random.Generator:
    """A ``numpy.random.Generator`` seeded from a named stream."""
    return np.random.default_rng(derive_seed(master_seed, *parts))
