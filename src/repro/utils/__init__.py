"""Low-level utilities shared by the rest of the library.

Contains packed bit-vector helpers used by the bit-parallel AIG
simulator and deterministic RNG stream helpers so that every benchmark
and every team flow is exactly reproducible.
"""

from repro.utils.bitops import (
    WORD_BITS,
    bits_to_int,
    int_to_bits,
    pack_bits,
    popcount64,
    unpack_bits,
)
from repro.utils.rng import derive_seed, rng_for
from repro.utils.suggest import did_you_mean, near_matches

__all__ = [
    "WORD_BITS",
    "bits_to_int",
    "did_you_mean",
    "int_to_bits",
    "near_matches",
    "pack_bits",
    "popcount64",
    "unpack_bits",
    "derive_seed",
    "rng_for",
]
