"""Espresso-style heuristic two-level minimization.

The contest setting is an *incompletely specified* function given by
explicit ON-set and OFF-set minterm lists (the training samples); every
other input pattern is a don't care.  This module implements the
classic espresso loop specialized to that setting:

``EXPAND``
    Each ON-cube is expanded literal by literal; a literal may be
    dropped as long as the enlarged cube still excludes every OFF-set
    minterm.  The result is a prime implicant relative to the OFF-set.
``IRREDUNDANT``
    Greedy removal of cubes whose covered ON-minterms are covered by
    the remaining cubes.
``REDUCE``
    Each cube is shrunk to the smallest cube containing the ON-minterms
    only it covers, enabling a different expansion next round.

Team 1 runs espresso "with an option to finish optimization after the
first irredundant operation"; pass ``first_irredundant=True`` for that
behaviour.

The kernels are vectorized over the OFF-set with numpy so the
contest-scale instances (6400 minterms over up to ~780 inputs) run in
seconds: for each cube we track, per OFF-row, the number of bound
positions where the row disagrees with the cube; a literal may be
expanded away iff no OFF-row's disagreements would drop to zero.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.twolevel.cover import Cover
from repro.twolevel.cube import Cube
from repro.utils.bitops import int_to_bits

MintermsOrMatrix = Sequence[int] | np.ndarray


def _as_matrix(minterms: MintermsOrMatrix, n_inputs: int) -> np.ndarray:
    if isinstance(minterms, np.ndarray) and minterms.ndim == 2:
        return np.asarray(minterms, dtype=np.uint8)
    rows = [int_to_bits(int(m), n_inputs) for m in minterms]
    if not rows:
        return np.zeros((0, n_inputs), dtype=np.uint8)
    return np.vstack(rows)


def _expand_all(
    cubes_mask: np.ndarray,
    cubes_val: np.ndarray,
    off: np.ndarray,
    on: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """EXPAND every cube against the OFF-set matrix.

    ``cubes_mask``/``cubes_val`` are (n_cubes, n_inputs) uint8 matrices;
    returns the expanded pair.  Literals are tried cheapest-first
    (fewest OFF-rows one disagreement away).

    When ``on`` is given (and row-aligned with the cubes, as in the
    first EXPAND where every cube is one ON-minterm), cubes whose
    minterm is already covered by an earlier expansion are skipped —
    the standard espresso coverage shortcut that keeps the pass close
    to linear in the number of primes rather than minterms.
    """
    n_cubes, n_inputs = cubes_mask.shape
    out_mask = cubes_mask.copy()
    out_val = cubes_val.copy()
    aligned = on is not None and on.shape[0] == n_cubes
    covered = np.zeros(n_cubes, dtype=bool) if aligned else None
    kept_rows: list[int] = []
    for ci in range(n_cubes):
        if aligned and covered[ci]:
            continue
        kept_rows.append(ci)
        val = out_val[ci]
        if off.shape[0] == 0:
            out_mask[ci] = 0
            out_val[ci] = 0
            if aligned:
                covered[:] = True
            continue
        # diffs[r, j]: OFF-row r disagrees with the cube at bound pos j.
        bound = np.nonzero(out_mask[ci])[0]
        diffs = off[:, bound] != val[bound]
        diff_count = diffs.sum(axis=1)
        # Literal order: fewest blocking rows (rows with exactly one
        # disagreement, at that literal) first.
        blocking = diffs[diff_count == 1].sum(axis=0)
        order = np.argsort(blocking, kind="stable")
        removed = np.zeros(len(bound), dtype=bool)
        for j in order:
            single = diff_count == 1
            if diffs[single, j].any():
                continue  # removal would admit an OFF-row
            removed[j] = True
            diff_count = diff_count - diffs[:, j]
            diffs[:, j] = False
        keep = bound[~removed]
        new_mask = np.zeros(n_inputs, dtype=np.uint8)
        new_mask[keep] = 1
        out_mask[ci] = new_mask
        out_val[ci] = val * new_mask
        if aligned:
            if keep.size:
                hits = (on[:, keep] == out_val[ci][keep]).all(axis=1)
            else:
                hits = np.ones(n_cubes, dtype=bool)
            covered |= hits
    if aligned:
        rows = np.array(kept_rows, dtype=np.int64)
        return out_mask[rows], out_val[rows]
    return out_mask, out_val


def _coverage(
    cubes_mask: np.ndarray, cubes_val: np.ndarray, on: np.ndarray
) -> np.ndarray:
    """Boolean (n_cubes, n_on): cube i covers ON-row r."""
    n_cubes = cubes_mask.shape[0]
    out = np.zeros((n_cubes, on.shape[0]), dtype=bool)
    for ci in range(n_cubes):
        bound = np.nonzero(cubes_mask[ci])[0]
        if bound.size == 0:
            out[ci] = True
            continue
        out[ci] = (on[:, bound] == cubes_val[ci][bound]).all(axis=1)
    return out


def _drop_contained(
    cubes_mask: np.ndarray, cubes_val: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Remove duplicate and single-cube-contained cubes."""
    n = cubes_mask.shape[0]
    order = np.argsort(cubes_mask.sum(axis=1), kind="stable")
    kept: list[int] = []
    for i in order:
        contained = False
        for j in kept:
            # cube j contains cube i iff j's bound cols are a subset of
            # i's and values agree there.
            mj = cubes_mask[j].astype(bool)
            if (cubes_mask[i][mj] == 1).all() and (
                cubes_val[i][mj] == cubes_val[j][mj]
            ).all():
                contained = True
                break
        if not contained:
            kept.append(i)
    kept_arr = np.array(sorted(kept), dtype=np.int64)
    del n
    return cubes_mask[kept_arr], cubes_val[kept_arr]


def _irredundant_idx(coverage: np.ndarray) -> np.ndarray:
    """Indices of a greedy irredundant subcover."""
    n_cubes = coverage.shape[0]
    alive = np.ones(n_cubes, dtype=bool)
    counts = coverage.sum(axis=0).astype(np.int64)
    order = np.argsort(coverage.sum(axis=1), kind="stable")
    for i in order:
        pts = coverage[i]
        removable = not pts.any() or (counts[pts] >= 2).all()
        if removable:
            alive[i] = False
            counts = counts - pts
    return np.nonzero(alive)[0]


def _reduce_all(
    cubes_mask: np.ndarray,
    cubes_val: np.ndarray,
    coverage: np.ndarray,
    on: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """REDUCE: shrink each cube onto the ON-rows only it covers."""
    counts = coverage.sum(axis=0)
    out_mask = cubes_mask.copy()
    out_val = cubes_val.copy()
    for ci in range(cubes_mask.shape[0]):
        essential = coverage[ci] & (counts == 1)
        if not essential.any():
            continue
        rows = on[essential]
        same = (rows == rows[0]).all(axis=0)
        out_mask[ci] = same.astype(np.uint8)
        out_val[ci] = rows[0] * same
    return out_mask, out_val


def _to_cover(cubes_mask, cubes_val, n_inputs) -> Cover:
    cubes = []
    for mask_row, val_row in zip(cubes_mask, cubes_val, strict=True):
        mask = 0
        value = 0
        for i in np.nonzero(mask_row)[0]:
            mask |= 1 << int(i)
            if val_row[i]:
                value |= 1 << int(i)
        cubes.append(Cube(mask, value))
    return Cover(n_inputs, cubes)


def espresso(
    onset: MintermsOrMatrix,
    offset: MintermsOrMatrix,
    n_inputs: int,
    max_rounds: int = 3,
    first_irredundant: bool = False,
) -> Cover:
    """Minimize an incompletely specified single-output function.

    ``onset`` / ``offset`` are minterm lists (Python ints) or 0/1
    sample matrices; everything not listed is a don't care.  Returns a
    cover containing every ON-minterm and no OFF-minterm.
    """
    on = _as_matrix(onset, n_inputs)
    off = _as_matrix(offset, n_inputs)
    if on.shape[0] == 0:
        return Cover(n_inputs, [])
    # Deduplicate and sanity-check disjointness.
    on = np.unique(on, axis=0)
    off = np.unique(off, axis=0)
    if off.shape[0]:
        both = np.vstack([on, off])
        if np.unique(both, axis=0).shape[0] != both.shape[0]:
            raise ValueError(
                "onset and offset overlap; resolve duplicates first"
            )
    cubes_mask = np.ones_like(on)
    cubes_val = on.copy()
    cubes_mask, cubes_val = _expand_all(cubes_mask, cubes_val, off, on=on)
    cubes_mask, cubes_val = _drop_contained(cubes_mask, cubes_val)
    cov = _coverage(cubes_mask, cubes_val, on)
    keep = _irredundant_idx(cov)
    cubes_mask, cubes_val = cubes_mask[keep], cubes_val[keep]
    if first_irredundant:
        return _to_cover(cubes_mask, cubes_val, n_inputs)
    best = (cubes_mask, cubes_val)
    for _ in range(max_rounds):
        cov = _coverage(cubes_mask, cubes_val, on)
        cubes_mask, cubes_val = _reduce_all(cubes_mask, cubes_val, cov, on)
        cubes_mask, cubes_val = _expand_all(cubes_mask, cubes_val, off)
        cubes_mask, cubes_val = _drop_contained(cubes_mask, cubes_val)
        cov = _coverage(cubes_mask, cubes_val, on)
        keep = _irredundant_idx(cov)
        cubes_mask, cubes_val = cubes_mask[keep], cubes_val[keep]
        better = cubes_mask.shape[0] < best[0].shape[0] or (
            cubes_mask.shape[0] == best[0].shape[0]
            and cubes_mask.sum() < best[0].sum()
        )
        if better:
            best = (cubes_mask, cubes_val)
        else:
            break
    return _to_cover(best[0], best[1], n_inputs)


def espresso_from_samples(
    X: np.ndarray,
    y: np.ndarray,
    first_irredundant: bool = False,
    max_rounds: int = 3,
) -> Cover:
    """Espresso over labelled samples (majority-resolves duplicates)."""
    from repro.twolevel.cover import cover_from_samples

    onset, offset, n_inputs = cover_from_samples(X, y)
    return espresso(
        onset,
        offset,
        n_inputs,
        max_rounds=max_rounds,
        first_irredundant=first_irredundant,
    )
