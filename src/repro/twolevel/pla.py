"""Espresso-dialect PLA files.

The contest ships each benchmark as three PLA files (train / validation
/ test) listing care minterms with their output value; everything else
is don't care (``.type fr`` semantics).  This module reads and writes
that dialect and converts to/from sample matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.twolevel.cover import Cover
from repro.twolevel.cube import Cube

PathLike = str | Path


@dataclass
class PLA:
    """Parsed PLA: input cubes with one output column each."""

    n_inputs: int
    n_outputs: int = 1
    input_labels: list[str] | None = None
    output_labels: list[str] | None = None
    rows: list[tuple[Cube, str]] = field(default_factory=list)

    def add_row(self, cube: Cube, outputs: str) -> None:
        if len(outputs) != self.n_outputs:
            raise ValueError("output column count mismatch")
        self.rows.append((cube, outputs))

    def to_samples(self) -> tuple[np.ndarray, np.ndarray]:
        """Expand to ``(X, y)`` sample matrices.

        Requires every row to be a full minterm (the contest data is),
        and a single output.
        """
        if self.n_outputs != 1:
            raise ValueError("to_samples requires a single-output PLA")
        full_mask = (1 << self.n_inputs) - 1
        X = np.zeros((len(self.rows), self.n_inputs), dtype=np.uint8)
        y = np.zeros(len(self.rows), dtype=np.uint8)
        for r, (cube, out) in enumerate(self.rows):
            if cube.mask != full_mask:
                raise ValueError("PLA row is not a complete minterm")
            for i in range(self.n_inputs):
                X[r, i] = (cube.value >> i) & 1
            y[r] = 1 if out == "1" else 0
        return X, y

    def onset_cover(self, output: int = 0) -> Cover:
        """Cover of rows whose given output column is 1."""
        return Cover(
            self.n_inputs,
            [cube for cube, out in self.rows if out[output] == "1"],
        )

    @staticmethod
    def from_samples(X: np.ndarray, y: np.ndarray) -> "PLA":
        """Single-output PLA listing each sample as a care minterm."""
        X = np.asarray(X, dtype=np.uint8)
        y = np.asarray(y).ravel()
        pla = PLA(n_inputs=X.shape[1], n_outputs=1)
        for row, label in zip(X, y, strict=True):
            value = 0
            for i, bit in enumerate(row):
                if bit:
                    value |= 1 << i
            cube = Cube((1 << X.shape[1]) - 1, value)
            pla.add_row(cube, "1" if label else "0")
        return pla

    @staticmethod
    def from_cover(cover: Cover) -> "PLA":
        """Single-output PLA with one row per cube, all outputs 1."""
        pla = PLA(n_inputs=cover.n_inputs, n_outputs=1)
        for cube in cover:
            pla.add_row(cube, "1")
        return pla


def write_pla(pla: PLA, path: PathLike, file_type: str = "fr") -> None:
    """Write a PLA file in the espresso dialect."""
    lines = [f".i {pla.n_inputs}", f".o {pla.n_outputs}"]
    if pla.input_labels:
        lines.append(".ilb " + " ".join(pla.input_labels))
    if pla.output_labels:
        lines.append(".ob " + " ".join(pla.output_labels))
    if file_type:
        lines.append(f".type {file_type}")
    lines.append(f".p {len(pla.rows)}")
    for cube, outputs in pla.rows:
        lines.append(f"{cube.to_string(pla.n_inputs)} {outputs}")
    lines.append(".e")
    Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")


def read_pla(path: PathLike) -> PLA:
    """Read a PLA file (subset of the espresso dialect)."""
    n_inputs = None
    n_outputs = 1
    input_labels = None
    output_labels = None
    rows: list[tuple[Cube, str]] = []
    for raw in Path(path).read_text(encoding="ascii").splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            fields = line.split()
            keyword = fields[0]
            if keyword == ".i":
                n_inputs = int(fields[1])
            elif keyword == ".o":
                n_outputs = int(fields[1])
            elif keyword == ".ilb":
                input_labels = fields[1:]
            elif keyword == ".ob":
                output_labels = fields[1:]
            elif keyword in (".p", ".type", ".e", ".end"):
                continue
            else:
                continue  # ignore unknown directives
        else:
            fields = line.split()
            if len(fields) == 1:
                in_part = fields[0][:-n_outputs]
                out_part = fields[0][-n_outputs:]
            else:
                in_part = "".join(fields[:-1])
                out_part = fields[-1]
            rows.append((Cube.from_string(in_part), out_part))
    if n_inputs is None:
        raise ValueError("PLA file missing .i directive")
    pla = PLA(n_inputs, n_outputs, input_labels, output_labels)
    for cube, out in rows:
        pla.add_row(cube, out)
    return pla
