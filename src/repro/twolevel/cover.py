"""Covers (sums of cubes) and sample-set helpers.

The two-level representation under the ESPRESSO-style minimizer and
the tree/rule synthesis paths: a :class:`Cover` is an ordered list of
:class:`~repro.twolevel.cube.Cube` literal masks over a fixed input
width, with vectorized sample evaluation.  Cube order is preserved
everywhere, so minimization results are deterministic and downstream
AIG construction is byte-stable.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.twolevel.cube import Cube
from repro.utils.bitops import rows_to_ints


class Cover:
    """A sum of cubes over ``n_inputs`` binary inputs."""

    def __init__(self, n_inputs: int, cubes: Iterable[Cube] = ()):
        self.n_inputs = n_inputs
        self.cubes: list[Cube] = list(cubes)

    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self):
        return iter(self.cubes)

    def num_literals(self) -> int:
        """Total literal count across cubes."""
        return sum(c.num_literals() for c in self.cubes)

    def evaluate_minterm(self, minterm: int) -> int:
        return int(any(c.contains_minterm(minterm) for c in self.cubes))

    def evaluate(self, samples: np.ndarray) -> np.ndarray:
        """Evaluate on a ``(n_samples, n_inputs)`` 0/1 matrix.

        Vectorized per cube: a sample matches a cube when it agrees
        with the cube's value on every bound column.
        """
        samples = np.asarray(samples, dtype=np.uint8)
        if samples.ndim == 1:
            samples = samples[None, :]
        out = np.zeros(samples.shape[0], dtype=bool)
        for cube in self.cubes:
            cols = [var for var, _ in cube.literals()]
            if not cols:
                out[:] = True
                break
            vals = np.array(
                [val for _, val in cube.literals()], dtype=np.uint8
            )
            undecided = ~out
            if not undecided.any():
                break
            match = (samples[np.ix_(undecided, cols)] == vals).all(axis=1)
            out[undecided] = match
        return out.astype(np.uint8)

    def contains_cube(self, cube: Cube) -> bool:
        """True if some single cube of the cover contains ``cube``.

        This is single-cube containment, not the (NP-hard) general
        containment check; it is what EXPAND/IRREDUNDANT need.
        """
        return any(c.contains_cube(cube) for c in self.cubes)

    def remove_contained(self) -> "Cover":
        """Drop cubes single-cube-contained in another cube."""
        kept: list[Cube] = []
        # Larger cubes first so containment checks see the big ones.
        order = sorted(self.cubes, key=lambda c: c.num_literals())
        for cube in order:
            if not any(other.contains_cube(cube) for other in kept):
                kept.append(cube)
        return Cover(self.n_inputs, kept)

    def to_strings(self) -> list[str]:
        return [c.to_string(self.n_inputs) for c in self.cubes]

    def __repr__(self) -> str:
        return f"Cover(n_inputs={self.n_inputs}, cubes={len(self.cubes)})"


def cover_from_samples(
    samples: np.ndarray, labels: np.ndarray
) -> tuple[list[int], list[int], int]:
    """Split samples into deduplicated ON-set and OFF-set minterm lists.

    Contradictory duplicates (same input pattern, both labels observed)
    are resolved by majority, ties going to the OFF-set.  Returns
    ``(onset, offset, n_inputs)`` with minterms as Python ints.
    """
    samples = np.asarray(samples, dtype=np.uint8)
    labels = np.asarray(labels).ravel()
    n_inputs = samples.shape[1]
    votes = {}
    for minterm, y in zip(rows_to_ints(samples), labels, strict=True):
        pos, neg = votes.get(minterm, (0, 0))
        if y:
            votes[minterm] = (pos + 1, neg)
        else:
            votes[minterm] = (pos, neg + 1)
    onset = [m for m, (pos, neg) in votes.items() if pos > neg]
    offset = [m for m, (pos, neg) in votes.items() if pos <= neg]
    return onset, offset, n_inputs
