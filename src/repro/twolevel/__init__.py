"""Two-level (SOP) logic: cubes, covers, PLA files and minimization.

The contest distributes training/validation/test data as PLA files and
several teams go through SOP form (ESPRESSO, decision-tree paths, rule
lists) before producing an AIG.  This package provides the cube/cover
algebra, the espresso-style heuristic minimizer for incompletely
specified functions, and an exact Quine-McCluskey minimizer used as a
reference in tests and ablations.
"""

from repro.twolevel.cover import Cover, cover_from_samples
from repro.twolevel.cube import Cube
from repro.twolevel.espresso import espresso
from repro.twolevel.pla import PLA, read_pla, write_pla
from repro.twolevel.quine import quine_mccluskey

__all__ = [
    "Cube",
    "Cover",
    "cover_from_samples",
    "espresso",
    "PLA",
    "read_pla",
    "write_pla",
    "quine_mccluskey",
]
