"""Exact two-level minimization (Quine-McCluskey + exact covering).

Used as a reference implementation in tests and in the espresso
ablation bench: for small input counts it returns a minimum-cube cover,
which bounds how far the heuristic is from optimal.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.twolevel.cover import Cover
from repro.twolevel.cube import Cube


def prime_implicants(
    onset: Sequence[int], dcset: Sequence[int], n_inputs: int
) -> list[Cube]:
    """All prime implicants of ``onset`` given don't cares ``dcset``."""
    care = set(onset)
    terms = {Cube.from_minterm(m, n_inputs) for m in set(onset) | set(dcset)}
    primes: list[Cube] = []
    while terms:
        merged_away = set()
        next_terms = set()
        term_list = sorted(terms, key=lambda c: (c.mask, c.value))
        by_mask = {}
        for t in term_list:
            by_mask.setdefault(t.mask, []).append(t)
        for mask, group in by_mask.items():
            values = {t.value for t in group}
            for t in group:
                for var, _ in t.literals():
                    other_value = t.value ^ (1 << var)
                    if other_value in values:
                        merged = t.without_literal(var)
                        next_terms.add(merged)
                        merged_away.add(t)
                        merged_away.add(Cube(mask, other_value))
        for t in terms:
            if t not in merged_away:
                primes.append(t)
        terms = next_terms
    # Keep primes that cover at least one care minterm.
    return [
        p for p in primes if any(p.contains_minterm(m) for m in care)
    ]


def _greedy_cover(
    universe: frozenset[int], sets: list[frozenset[int]]
) -> list[int]:
    """Greedy set cover (used to seed and to cap the exact search)."""
    remaining = set(universe)
    chosen: list[int] = []
    while remaining:
        gain, pick = max(
            (
                (len(s & remaining), i)
                for i, s in enumerate(sets)
            ),
            default=(0, -1),
        )
        if gain == 0:
            break
        chosen.append(pick)
        remaining -= sets[pick]
    return chosen


def _min_cover(
    universe: frozenset[int],
    sets: list[frozenset[int]],
    max_steps: int = 200_000,
) -> list[int]:
    """Minimum set cover by branch and bound.

    The search is exact unless the ``max_steps`` node budget is
    exhausted, in which case the best cover found so far (at worst the
    greedy one) is returned — keeping worst-case runtime bounded on
    adversarial instances while staying optimal on typical ones.
    """
    best: list[list[int]] = [_greedy_cover(universe, sets)]
    steps = [0]

    def search(remaining: frozenset[int], chosen: list[int]) -> None:
        if steps[0] > max_steps:
            return
        steps[0] += 1
        if len(chosen) + 1 >= len(best[0]) and remaining:
            return
        if not remaining:
            if len(chosen) < len(best[0]):
                best[0] = list(chosen)
            return
        # Branch on the hardest element (fewest covering sets).
        elem = min(
            remaining,
            key=lambda e: sum(1 for s in sets if e in s),
        )
        options = [i for i, s in enumerate(sets) if elem in s]
        options.sort(key=lambda i: -len(sets[i] & remaining))
        for i in options:
            search(remaining - sets[i], chosen + [i])

    search(universe, [])
    return best[0]


def quine_mccluskey(
    onset: Sequence[int],
    dcset: Sequence[int],
    n_inputs: int,
) -> Cover:
    """Exact minimum-cube SOP for a (possibly incompletely specified)
    single-output function given as minterm lists."""
    onset = sorted(set(onset))
    if not onset:
        return Cover(n_inputs, [])
    primes = prime_implicants(onset, dcset, n_inputs)
    universe = frozenset(range(len(onset)))
    covers = [
        frozenset(i for i, m in enumerate(onset) if p.contains_minterm(m))
        for p in primes
    ]
    chosen = _min_cover(universe, covers)
    return Cover(n_inputs, [primes[i] for i in chosen])
