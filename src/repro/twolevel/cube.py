"""Cube algebra over binary input spaces.

A cube is a conjunction of literals.  It is stored as two integer
bitmasks: ``mask`` selects the bound input positions and ``value``
holds their required values (bits outside ``mask`` are zero).  A
minterm ``m`` (an integer whose bit ``i`` is input ``i``) is contained
in the cube iff ``(m & mask) == value``.  Python's arbitrary-precision
ints make this exact for any input count (the contest has up to ~784
inputs on the CIFAR benchmarks).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass


@dataclass(frozen=True)
class Cube:
    """An input cube (product term)."""

    mask: int
    value: int

    def __post_init__(self):
        if self.value & ~self.mask:
            raise ValueError("cube value has bits outside its mask")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def full() -> "Cube":
        """The universal cube (no literals)."""
        return Cube(0, 0)

    @staticmethod
    def from_minterm(minterm: int, n_inputs: int) -> "Cube":
        """Cube with every input bound, matching exactly one minterm."""
        mask = (1 << n_inputs) - 1
        return Cube(mask, minterm & mask)

    @staticmethod
    def from_string(text: str) -> "Cube":
        """Parse a PLA-style string of ``0``, ``1``, ``-`` (input 0 first)."""
        mask = 0
        value = 0
        for i, ch in enumerate(text.strip()):
            if ch == "0":
                mask |= 1 << i
            elif ch == "1":
                mask |= 1 << i
                value |= 1 << i
            elif ch not in "-~2":
                raise ValueError(f"bad cube character {ch!r}")
        return Cube(mask, value)

    @staticmethod
    def from_literals(literals) -> "Cube":
        """Build from ``(var, value)`` pairs."""
        mask = 0
        value = 0
        for var, val in literals:
            mask |= 1 << var
            if val:
                value |= 1 << var
        return Cube(mask, value)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def num_literals(self) -> int:
        return bin(self.mask).count("1")

    def contains_minterm(self, minterm: int) -> bool:
        return (minterm & self.mask) == self.value

    def contains_cube(self, other: "Cube") -> bool:
        """True if every minterm of ``other`` is in ``self``."""
        if self.mask & ~other.mask:
            return False
        return (self.value ^ other.value) & self.mask == 0

    def intersects(self, other: "Cube") -> bool:
        """True if the cubes share at least one minterm."""
        common = self.mask & other.mask
        return (self.value ^ other.value) & common == 0

    def literals(self) -> Iterator[tuple[int, int]]:
        """Yield ``(var, value)`` pairs of the bound positions."""
        mask = self.mask
        while mask:
            low = mask & -mask
            var = low.bit_length() - 1
            yield var, (self.value >> var) & 1
            mask ^= low

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def without_literal(self, var: int) -> "Cube":
        """Copy with input ``var`` freed (expanded)."""
        bit = 1 << var
        return Cube(self.mask & ~bit, self.value & ~bit)

    def with_literal(self, var: int, value: int) -> "Cube":
        """Copy with input ``var`` bound to ``value``."""
        bit = 1 << var
        return Cube(self.mask | bit, (self.value & ~bit) | (bit if value else 0))

    def to_string(self, n_inputs: int) -> str:
        """PLA-style string representation."""
        chars = []
        for i in range(n_inputs):
            bit = 1 << i
            if not self.mask & bit:
                chars.append("-")
            elif self.value & bit:
                chars.append("1")
            else:
                chars.append("0")
        return "".join(chars)
