"""Command-line interface.

    python -m repro.cli run --benchmark 30 --flow team01
    python -m repro.cli contest --benchmarks 0 30 74 --flows team01 team10
    python -m repro.cli list

Mirrors how a contest participant would drive the library: pick
benchmarks, run flows, read the leaderboard.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.analysis import format_table3, run_contest
from repro.contest import build_suite, evaluate_solution, make_problem
from repro.flows import ALL_FLOWS


def _cmd_list(args) -> None:
    suite = build_suite()
    for spec in suite:
        print(f"{spec.name}  [{spec.category:13s}] "
              f"{spec.n_inputs:4d} inputs  {spec.description}")
    del args


def _cmd_run(args) -> None:
    suite = build_suite()
    problem = make_problem(
        suite[args.benchmark], n_train=args.samples,
        n_valid=args.samples, n_test=args.samples,
        master_seed=args.seed,
    )
    flow = ALL_FLOWS[args.flow]
    solution = flow(problem, effort=args.effort, master_seed=args.seed)
    score = evaluate_solution(problem, solution)
    print(f"benchmark: {problem.name} ({problem.category})")
    print(f"method:    {solution.method}")
    print(f"test acc:  {score.test_accuracy:.4f}")
    print(f"ANDs:      {score.num_ands} (legal={score.legal})")
    print(f"levels:    {score.levels}")
    print(f"overfit:   {100 * score.overfit:.2f}%")
    if args.out:
        from repro.aig import write_aag

        write_aag(solution.aig, args.out)
        print(f"wrote {args.out}")


def _cmd_contest(args) -> None:
    flows = {name: ALL_FLOWS[name] for name in args.flows}
    run = run_contest(
        args.benchmarks, flows, n_train=args.samples,
        n_valid=args.samples, n_test=args.samples,
        effort=args.effort, master_seed=args.seed, verbose=True,
    )
    print()
    print(format_table3(run.table3()))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the 100 benchmarks")

    run_p = sub.add_parser("run", help="run one flow on one benchmark")
    run_p.add_argument("--benchmark", type=int, required=True)
    run_p.add_argument("--flow", choices=sorted(ALL_FLOWS), required=True)
    run_p.add_argument("--samples", type=int, default=1000)
    run_p.add_argument("--effort", choices=("small", "full"),
                       default="small")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--out", default=None,
                       help="write the solution AIG (.aag) here")

    contest_p = sub.add_parser("contest", help="run a mini contest")
    contest_p.add_argument("--benchmarks", type=int, nargs="+",
                           required=True)
    contest_p.add_argument("--flows", nargs="+",
                           choices=sorted(ALL_FLOWS),
                           default=sorted(ALL_FLOWS))
    contest_p.add_argument("--samples", type=int, default=400)
    contest_p.add_argument("--effort", choices=("small", "full"),
                           default="small")
    contest_p.add_argument("--seed", type=int, default=0)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> None:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        _cmd_list(args)
    elif args.command == "run":
        _cmd_run(args)
    elif args.command == "contest":
        _cmd_contest(args)


if __name__ == "__main__":
    main()
