"""Command-line interface.

    python -m repro.cli run --benchmark 30 --flow team01
    python -m repro.cli run --benchmark adder:width=48 --flow team10
    python -m repro.cli contest --benchmarks 0 30 74 --flows team01 team10 \
        --jobs 4 --out-dir runs/mini --trials 3
    python -m repro.cli contest --benchmarks "adder*,ex8?" --flows team10
    python -m repro.cli contest --benchmarks @suite.txt --shard 0/4 \
        --out-dir runs/shard0
    python -m repro.cli merge --from runs/shard0 runs/shard1 \
        --out-dir runs/merged
    python -m repro.cli report --out-dir runs/shard0 runs/shard1
    python -m repro.cli serve --store runs/mini --port 8080
    python -m repro.cli predict --store runs/mini --model ex74 \
        --input rows.txt --output preds.txt
    python -m repro.cli bench-sim --benchmark 74
    python -m repro.cli flows
    python -m repro.cli list "adder*" --families

Mirrors how a contest participant would drive the library: pick
benchmarks, run flows, read the leaderboard.  Flows are resolved
through the registry (:mod:`repro.flows.registry`), so ``--flow`` /
``--flows`` accept any registered name — including the ``portfolio``
composite — or spec strings with overrides (``team01:effort=full``).
Benchmarks resolve through the *problem* registry
(:mod:`repro.contest.registry`): suite indices, registered names
(``ex74``), family spec strings (``adder:width=48``), globs over
names / families / categories (``"adder*,ex8?"``) and ``@file`` suite
manifests (one selector per line) are all valid wherever a benchmark
is named.  ``flows`` prints the flow registry; ``list`` prints the
matching problems (``--families`` for the generator families).
``contest`` fans the task grid out over ``--jobs`` worker processes
and (with ``--out-dir``) persists every completed task, skipping
already-stored ones on re-invocation; ``--shard k/N`` runs only a
deterministic key-hashed subset so N machines can split one grid into
independent store directories, reassembled by ``merge`` (byte-identical
to an unsharded run) or reported directly by passing several
directories to ``report``.  ``serve`` loads the best stored solution
per benchmark (a contest run with ``--keep-solutions``, or any
directory of ``.aag`` files) and answers batched ``/predict/{model}``
HTTP requests; ``predict`` runs the same models offline on a rows
file (see :mod:`repro.serve`).  ``contest``, ``serve`` and
``predict`` accept ``--sim-backend`` to pick the simulation executor
(numpy, fused or numba — see :mod:`repro.sim.backend`); ``bench-sim``
times every backend on one learned circuit and checks bit-agreement.
"""

from __future__ import annotations

import argparse
from collections.abc import Sequence

from repro.analysis import format_table3, run_contest
from repro.contest import DEFAULT_REGISTRY, evaluate_solution


def _selected_specs(parser, patterns) -> list[object]:
    """Resolve benchmark selectors through the problem registry.

    Unknown names carry the registry's near-match suggestions into the
    argparse error (e.g. ``unknown benchmark 'ex9a' ... did you mean
    'ex90', 'ex91'?``).
    """
    try:
        specs = DEFAULT_REGISTRY.select(patterns)
    except (KeyError, IndexError, ValueError) as exc:
        parser.error(str(exc.args[0]) if exc.args else str(exc))
    if not specs:
        parser.error(
            f"benchmark selector {list(patterns)!r} matched nothing"
        )
    return specs


def _resolved_flow(parser, spec: str):
    """Resolve a flow name/spec through the registry, CLI-style."""
    from repro.runner import resolve_flow

    try:
        return resolve_flow(spec)
    except (KeyError, ValueError) as exc:
        parser.error(str(exc))


def _cmd_list(parser, args) -> None:
    if args.families:
        for name in DEFAULT_REGISTRY.family_names():
            family = DEFAULT_REGISTRY.families[name]
            params = ", ".join(
                f"{p}=<required>" if d is None else f"{p}={d!r}"
                for p, d in family.param_summary()
            )
            print(f"{name:<12} [{family.category:13s}] "
                  f"{family.description}")
            print(f"{'':<12} params: {params or '-'}")
        return
    specs = _selected_specs(parser, args.patterns or ["*"])
    for spec in specs:
        print(f"{spec.name}  [{spec.category:13s}] "
              f"{spec.n_inputs:4d} inputs  {spec.description}")


def _cmd_flows(parser, args) -> None:
    """Print the flow registry (or check/resolve one spec string)."""
    from repro.flows import REGISTRY

    if args.check is not None:
        resolved = _resolved_flow(parser, args.check)
        flow = getattr(resolved, "flow", resolved)
        overrides = getattr(resolved, "overrides", {})
        print(f"{args.check} -> flow {flow.name!r}"
              + (f" with overrides {overrides}" if overrides else ""))
        return
    for name in REGISTRY.names():
        flow = REGISTRY.get(name)
        print(f"{name:<10} [{flow.team}]  {flow.description}")
        print(f"{'':<10} stages: {', '.join(flow.stage_names)}")
        print(f"{'':<10} efforts: {', '.join(sorted(flow.efforts))}  "
              f"techniques: {', '.join(sorted(flow.techniques)) or '-'}")


def _cmd_run(parser, args) -> None:
    specs = _selected_specs(parser, [args.benchmark])
    if len(specs) != 1:
        parser.error(
            f"--benchmark {args.benchmark!r} selects {len(specs)} "
            f"problems; 'run' takes exactly one (use 'contest' for sets)"
        )
    flow = _resolved_flow(parser, args.flow)
    problem = DEFAULT_REGISTRY.problem(
        specs[0], n_train=args.samples,
        n_valid=args.samples, n_test=args.samples,
        master_seed=args.seed,
    )
    solution = flow(problem, effort=args.effort, master_seed=args.seed)
    score = evaluate_solution(problem, solution)
    print(f"benchmark: {problem.name} ({problem.category})")
    print(f"method:    {solution.method}")
    print(f"test acc:  {score.test_accuracy:.4f}")
    print(f"ANDs:      {score.num_ands} (legal={score.legal})")
    print(f"levels:    {score.levels}")
    print(f"overfit:   {100 * score.overfit:.2f}%")
    if args.out:
        from repro.aig import write_aag

        write_aag(solution.aig, args.out)
        print(f"wrote {args.out}")


def _apply_sim_backend(parser, name: str | None) -> None:
    """Install ``--sim-backend`` as the session default (parent process;
    the runner's pool initializer forwards it to workers)."""
    if name is None:
        return
    from repro.sim.backend import set_backend

    try:
        set_backend(name)
    except ValueError as exc:
        parser.error(str(exc))


def _add_sim_backend_arg(sub_parser) -> None:
    sub_parser.add_argument(
        "--sim-backend", default=None, metavar="NAME",
        help="simulation executor: numpy, fused or numba (default: "
             "REPRO_SIM_BACKEND or fused; numba silently falls back "
             "to fused when not installed)")


def _cmd_contest(parser, args) -> None:
    benchmarks = _selected_specs(parser, args.benchmarks)
    _apply_sim_backend(parser, args.sim_backend)
    for spec in args.flows:
        _resolved_flow(parser, spec)
    if args.shard is not None:
        from repro.runner import parse_shard

        try:
            parse_shard(args.shard)
        except ValueError as exc:
            parser.error(str(exc))
    run = run_contest(
        benchmarks, list(args.flows), n_train=args.samples,
        n_valid=args.samples, n_test=args.samples,
        effort=args.effort, master_seed=args.seed, verbose=True,
        jobs=args.jobs, trials=args.trials, out_dir=args.out_dir,
        resume=args.resume, keep_solutions=args.keep_solutions,
        shard=args.shard,
    )
    print()
    print(format_table3(run.table3()))
    if args.out_dir:
        print(f"\nrun directory: {args.out_dir} "
              f"(re-report with: repro report --out-dir {args.out_dir})")


def _format_win_rates(wins) -> str:
    lines = [f"{'team':>8} {'best':>5} {'top1pct':>8}"]
    for team in sorted(wins, key=lambda t: (-wins[t]["best"], t)):
        w = wins[team]
        lines.append(f"{team:>8} {w['best']:5d} {w['top1pct']:8d}")
    return "\n".join(lines)


def _cmd_report(parser, args) -> None:
    from repro.runner import load_contest_runs

    try:
        run = load_contest_runs(args.out_dir)
    except (FileNotFoundError, ValueError) as exc:
        parser.error(str(exc))
    n_scores = sum(len(v) for v in run.scores_by_team.values())
    shown = ", ".join(args.out_dir)
    label = "run directory" if len(args.out_dir) == 1 \
        else f"merged from {len(args.out_dir)} run directories"
    print(f"{label}: {shown}")
    print(f"{len(run.scores_by_team)} teams, {n_scores} stored scores\n")
    print(format_table3(run.table3()))
    print()
    print(_format_win_rates(run.win_rates()))


def _cmd_merge(parser, args) -> None:
    from repro.runner import RunStore, merge_stores

    for src in args.sources:
        if not RunStore(src).records_path.exists():
            parser.error(f"no records found under {src}")
    try:
        store = merge_stores(args.sources, args.out_dir)
    except ValueError as exc:
        parser.error(str(exc))
    n = len(store.load_records())
    print(f"merged {len(args.sources)} run directories -> {store.root} "
          f"({n} records)")
    print(f"report with: repro report --out-dir {store.root}")


def _cmd_serve(parser, args) -> None:
    import asyncio

    from repro.serve import ServeApp, serve_forever

    try:
        app = ServeApp(
            args.store, tick_s=args.tick_ms / 1000.0,
            max_batch=args.max_batch, cache_size=args.cache_size,
            sim_backend=args.sim_backend, workers=args.workers,
            max_queued_rows=args.max_queued_rows,
            deadline_ms=args.deadline_ms,
        )
    except (FileNotFoundError, ValueError) as exc:
        parser.error(str(exc))
    print(f"repro serve: simulation backend {app.store.sim_backend!r}")
    if app.pool is not None:
        # Fork the workers before asyncio spins up any helper threads.
        app.pool.warm_up(timeout=60.0)
        print(f"repro serve: {app.pool.workers} worker process(es) warm")
    try:
        asyncio.run(serve_forever(app, args.host, args.port))
    except KeyboardInterrupt:
        print("\nrepro serve: stopped")
    finally:
        app.close()


def _cmd_predict(parser, args) -> None:
    from repro.serve import predict_file

    try:
        n_rows = predict_file(
            args.store, args.model, args.input, args.output,
            cache_size=args.cache_size, sim_backend=args.sim_backend,
        )
    except (FileNotFoundError, KeyError, ValueError) as exc:
        parser.error(str(exc.args[0]) if exc.args else str(exc))
    print(f"wrote {n_rows} prediction(s) to {args.output}")


def _cmd_bench_sim(parser, args) -> None:
    """Time every simulation backend on one learned suite circuit."""
    import time

    import numpy as np

    from repro.sim import CompiledAIG, SimProgram, available_backends, backend_names

    specs = _selected_specs(parser, [args.benchmark])
    if len(specs) != 1:
        parser.error(
            f"--benchmark {args.benchmark!r} selects {len(specs)} "
            f"problems; 'bench-sim' takes exactly one"
        )
    flow = _resolved_flow(parser, args.flow)
    problem = DEFAULT_REGISTRY.problem(
        specs[0], n_train=args.samples,
        n_valid=args.samples, n_test=args.samples,
        master_seed=args.seed,
    )
    solution = flow(problem, effort="small", master_seed=args.seed)
    aig = solution.aig
    program = SimProgram(aig)
    print(f"benchmark: {problem.name}  circuit: {program.num_ands} ANDs, "
          f"depth {program.depth}, {program.n_inputs} inputs")
    n_words = max(1, args.sim_samples // 64)
    rng = np.random.default_rng(args.seed)
    packed = rng.integers(
        0, 2**63, size=(program.n_inputs, n_words), dtype=np.int64
    ).astype(np.uint64)
    print(f"timing {n_words * 64} samples x {args.repeats} repeats "
          f"per backend\n")
    usable = set(available_backends())
    reference = None
    base_warm = None
    print(f"{'backend':<8} {'cold(ms)':>9} {'warm(ms)':>9} "
          f"{'speedup':>8}  agreement")
    for name in backend_names():
        if name not in usable:
            print(f"{name:<8} {'-':>9} {'-':>9} {'-':>8}  "
                  f"unavailable (requests fall back)")
            continue
        t0 = time.perf_counter()
        compiled = CompiledAIG(program, backend=name)
        out = compiled.run_packed_all(packed)
        cold_ms = (time.perf_counter() - t0) * 1e3
        warm_s = min(
            _timed(compiled.run_packed_all, packed)
            for _ in range(args.repeats)
        )
        warm_ms = warm_s * 1e3
        if reference is None:
            reference, base_warm = out, warm_ms
            agree = "reference"
        else:
            agree = (
                "bit-identical" if np.array_equal(out, reference)
                else "MISMATCH"
            )
        speedup = base_warm / warm_ms if warm_ms > 0 else float("inf")
        print(f"{name:<8} {cold_ms:>9.2f} {warm_ms:>9.3f} "
              f"{speedup:>7.2f}x  {agree}")


def _timed(fn, *fn_args) -> float:
    import time

    t0 = time.perf_counter()
    fn(*fn_args)
    return time.perf_counter() - t0


def _cmd_sched(parser, args) -> None:
    """Learned-scheduling data plumbing: harvest stores, train."""
    from pathlib import Path

    if args.sched_command == "harvest":
        from repro.sched import harvest_run_dirs, tuples_to_jsonl

        tuples = harvest_run_dirs(
            args.store, horizon=args.horizon,
            max_circuits=args.max_circuits,
        )
        Path(args.out).write_text(
            tuples_to_jsonl(tuples), encoding="utf-8"
        )
        print(f"harvested {len(tuples)} tuples from "
              f"{len(args.store)} store(s) -> {args.out}")
    elif args.sched_command == "train":
        from repro.sched import load_tuples, save_policy, train_policy

        tuples = []
        for path in args.tuples:
            tuples.extend(load_tuples(path))
        policy = train_policy(tuples, l2=args.l2)
        save_policy(policy, args.out)
        print(f"trained on {len(tuples)} tuples -> {args.out}")


def _cmd_lint(parser, args) -> None:
    """Run the repo-specific determinism/safety lints."""
    from repro.devtools.lint import main as lint_main

    argv = list(args.paths)
    if args.list_rules:
        argv.append("--list-rules")
    argv.extend(["--format", args.format])
    code = lint_main(argv)
    if code:
        raise SystemExit(code)


def _default_contest_flows() -> list:
    from repro.flows import TEAM_FLOW_NAMES

    return sorted(TEAM_FLOW_NAMES)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    list_p = sub.add_parser(
        "list", help="list benchmarks from the problem registry")
    list_p.add_argument(
        "patterns", nargs="*", metavar="PATTERN",
        help="selectors: names, indices, globs (adder*, 'ex8?'), "
             "family specs (adder:width=48), @manifest files "
             "(default: every registered benchmark)")
    list_p.add_argument(
        "--families", action="store_true",
        help="list the generator families and their parameters instead")

    flows_p = sub.add_parser(
        "flows", help="list the registered flows (teams, stages, "
                      "techniques, efforts)")
    flows_p.add_argument(
        "--check", default=None, metavar="SPEC",
        help="resolve a flow spec (e.g. 'team01:effort=full') and "
             "print the result instead of listing")

    run_p = sub.add_parser("run", help="run one flow on one benchmark")
    run_p.add_argument(
        "--benchmark", required=True,
        help="suite index, registered name (ex74) or family spec "
             "string (adder:width=48)")
    run_p.add_argument(
        "--flow", required=True,
        help="registry name or spec string (see 'repro flows'); e.g. "
             "team01, portfolio, team01:effort=full, "
             "portfolio:flows=team01+team10")
    run_p.add_argument("--samples", type=int, default=1000)
    run_p.add_argument("--effort", choices=("small", "full"),
                       default="small")
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--out", default=None,
                       help="write the solution AIG (.aag) here")

    contest_p = sub.add_parser("contest", help="run a mini contest")
    contest_p.add_argument(
        "--benchmarks", nargs="+", required=True, metavar="SELECTOR",
        help="indices, names, family specs (adder:width=48), globs "
             "('adder*,ex8?' — quote them) or @manifest files")
    contest_p.add_argument(
        "--flows", nargs="+", default=_default_contest_flows(),
        metavar="FLOW",
        help="registry names or spec strings (default: the ten team "
             "flows); 'portfolio' and overrides like team01:effort=full "
             "are valid")
    contest_p.add_argument("--samples", type=int, default=400)
    contest_p.add_argument("--effort", choices=("small", "full"),
                           default="small")
    contest_p.add_argument("--seed", type=int, default=0)
    contest_p.add_argument("--jobs", type=int, default=1,
                           help="worker processes (1 = in-process)")
    contest_p.add_argument("--trials", type=int, default=1,
                           help="seeds per task: seed, seed+1, ...")
    contest_p.add_argument("--out-dir", default=None,
                           help="persist records here (and resume)")
    contest_p.add_argument("--no-resume", dest="resume",
                           action="store_false",
                           help="recompute even already-stored tasks")
    contest_p.add_argument("--keep-solutions", action="store_true",
                           help="also store each solution as .aag")
    contest_p.add_argument(
        "--shard", default=None, metavar="K/N",
        help="run only shard K of an N-way deterministic split of the "
             "grid (run each shard into its own --out-dir, then "
             "'repro merge')")
    _add_sim_backend_arg(contest_p)

    report_p = sub.add_parser(
        "report", help="rebuild tables from stored runs (no execution)")
    report_p.add_argument(
        "--out-dir", required=True, nargs="+", metavar="DIR",
        help="run director(ies) written by 'contest'; several "
             "directories (e.g. shard stores) are merged in memory")

    merge_p = sub.add_parser(
        "merge", help="combine sharded run directories into one store")
    merge_p.add_argument(
        "--from", dest="sources", required=True, nargs="+", metavar="DIR",
        help="source run directories (the shards)")
    merge_p.add_argument(
        "--out-dir", required=True,
        help="destination run directory (byte-identical records to an "
             "unsharded run)")

    serve_p = sub.add_parser(
        "serve", help="serve stored solutions over HTTP "
                      "(microbatched /predict/{model})")
    serve_p.add_argument("--store", required=True,
                         help="contest run directory (--keep-solutions) "
                              "or any directory of .aag files")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8080)
    serve_p.add_argument("--tick-ms", type=float, default=2.0,
                         help="microbatch window in milliseconds")
    serve_p.add_argument("--max-batch", type=int, default=4096,
                         help="flush a model's queue at this many rows")
    serve_p.add_argument("--cache-size", type=int, default=32,
                         help="compiled circuits kept in the LRU")
    serve_p.add_argument("--workers", type=int, default=0,
                         help="worker processes executing batches "
                              "(0 = in the serving process)")
    serve_p.add_argument("--max-queued-rows", type=int, default=None,
                         help="per-model queued+inflight row cap; past "
                              "it /predict answers 503 (default: "
                              "unbounded)")
    serve_p.add_argument("--deadline-ms", type=float, default=None,
                         help="fail requests still queued after this "
                              "long with 503 (default: no deadline)")
    _add_sim_backend_arg(serve_p)

    predict_p = sub.add_parser(
        "predict", help="offline batch scoring: rows file in, "
                        "predictions file out")
    predict_p.add_argument("--store", required=True,
                           help="run directory or .aag bundle directory")
    predict_p.add_argument("--model", required=True,
                           help="benchmark name (ex74) or suite index")
    predict_p.add_argument("--input", required=True,
                           help="rows file: one 0/1 sample per line")
    predict_p.add_argument("--output", required=True,
                           help="where to write one 0/1 line per row")
    predict_p.add_argument("--cache-size", type=int, default=32)
    _add_sim_backend_arg(predict_p)

    bench_p = sub.add_parser(
        "bench-sim", help="compare simulation backends on one learned "
                          "suite circuit (timing + agreement)")
    bench_p.add_argument("--benchmark", default="74",
                         help="suite index, name or family spec to "
                              "learn a probe circuit on")
    bench_p.add_argument("--flow", default="team01",
                         help="flow that learns the probe circuit")
    bench_p.add_argument("--samples", type=int, default=256,
                         help="training samples for the probe circuit")
    bench_p.add_argument("--sim-samples", type=int, default=4096,
                         help="random samples to time each backend on")
    bench_p.add_argument("--repeats", type=int, default=5,
                         help="warm-run repeats (minimum is reported)")
    bench_p.add_argument("--seed", type=int, default=0)

    sched_p = sub.add_parser(
        "sched", help="learned pass scheduling: harvest training "
                      "tuples from run stores, train a policy")
    sched_sub = sched_p.add_subparsers(dest="sched_command",
                                       required=True)
    harvest_p = sched_sub.add_parser(
        "harvest", help="replay stored solutions (--keep-solutions "
                        "runs) into (features, pass, QoR-delta) "
                        "tuples — no flow re-execution")
    harvest_p.add_argument(
        "--store", required=True, nargs="+", metavar="DIR",
        help="contest run director(ies) with kept .aag solutions")
    harvest_p.add_argument(
        "--out", required=True,
        help="destination tuples file (canonical JSONL)")
    harvest_p.add_argument(
        "--horizon", type=int, default=4,
        help="greedy-teacher steps per circuit (default 4)")
    harvest_p.add_argument(
        "--max-circuits", type=int, default=None,
        help="per-store circuit cap (default: all)")
    train_p = sched_sub.add_parser(
        "train", help="ridge-train a greedy policy from harvested "
                      "tuples")
    train_p.add_argument(
        "--tuples", required=True, nargs="+", metavar="FILE",
        help="tuples files written by 'repro sched harvest'")
    train_p.add_argument(
        "--out", required=True,
        help="destination policy JSON (use "
             "src/repro/sched/default_policy.json to refresh the "
             "packaged policy)")
    train_p.add_argument(
        "--l2", type=float, default=1.0,
        help="ridge regularization strength (default 1.0)")

    lint_p = sub.add_parser(
        "lint", help="repo-specific determinism/safety static "
                     "analysis (see repro lint --list-rules)")
    lint_p.add_argument(
        "paths", nargs="*", default=["src/repro", "benchmarks"],
        help="files or directories (default: src/repro benchmarks)")
    lint_p.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="report format (json for machines)")
    lint_p.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    return parser


def main(argv: Sequence[str] | None = None) -> None:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        _cmd_list(parser, args)
    elif args.command == "flows":
        _cmd_flows(parser, args)
    elif args.command == "run":
        _cmd_run(parser, args)
    elif args.command == "contest":
        _cmd_contest(parser, args)
    elif args.command == "report":
        _cmd_report(parser, args)
    elif args.command == "merge":
        _cmd_merge(parser, args)
    elif args.command == "serve":
        _cmd_serve(parser, args)
    elif args.command == "predict":
        _cmd_predict(parser, args)
    elif args.command == "bench-sim":
        _cmd_bench_sim(parser, args)
    elif args.command == "sched":
        _cmd_sched(parser, args)
    elif args.command == "lint":
        _cmd_lint(parser, args)


if __name__ == "__main__":
    main()
