"""Batched evaluation: one circuit x many datasets, many circuits x one.

Both directions amortize the expensive part — bit-packing the sample
matrix and setting up the simulation — across everything that shares
it.  See :mod:`repro.sim` for the overall lifecycle.

Every batched API takes an optional ``backend`` argument naming the
executor backend to simulate on (``None`` follows the selection
precedence in :mod:`repro.sim.backend`), so the contest evaluator,
``pick_best`` and the serving microbatcher all inherit a backend
switch without code changes of their own.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.utils.bitops import pack_bits, unpack_bits


def simulate_datasets(
    aig,
    sample_matrices: Sequence[np.ndarray],
    backend: str | None = None,
) -> list[np.ndarray]:
    """Simulate one circuit on several sample matrices in one pass.

    The matrices (each ``(n_i, n_inputs)`` 0/1) are stacked, packed and
    simulated as a single batch, then split back, so the engine runs
    once instead of ``len(sample_matrices)`` times.  Returns one
    ``(n_i, n_outputs)`` uint8 matrix per input matrix.
    """
    mats = [np.asarray(m, dtype=np.uint8) for m in sample_matrices]
    if not mats:
        return []
    compiled = aig.compiled(backend)
    if len(mats) == 1:
        return [compiled.run(mats[0])]
    stacked = np.vstack(mats)
    merged = compiled.run(stacked)
    out: list[np.ndarray] = []
    offset = 0
    for m in mats:
        out.append(merged[offset : offset + m.shape[0]])
        offset += m.shape[0]
    return out


def simulate_rows_grouped(
    compiled,
    row_blocks: Sequence[np.ndarray],
    backend: str | None = None,
) -> list[np.ndarray]:
    """One compiled circuit, many small row blocks, one engine pass.

    This is the microbatching primitive behind :mod:`repro.serve`: the
    blocks (each ``(k_i, n_inputs)`` 0/1, or a single ``(n_inputs,)``
    row) are stacked, bit-packed *once* and pushed through
    :meth:`~repro.sim.engine.CompiledAIG.run` as a single batch, then
    split back so every caller gets exactly its own
    ``(k_i, n_outputs)`` uint8 slice.  Coalescing N single-row
    requests this way replaces N engine invocations (and N packing
    passes) with one.

    ``compiled`` already carries a backend; pass ``backend`` to
    re-bind the shared program to another executor (no recompile).
    """
    if backend is not None:
        compiled = compiled.with_backend(backend)
    blocks = []
    for block in row_blocks:
        mat = np.asarray(block, dtype=np.uint8)
        if mat.ndim == 1:
            mat = mat[None, :]
        blocks.append(mat)
    if not blocks:
        return []
    stacked = blocks[0] if len(blocks) == 1 else np.vstack(blocks)
    merged = compiled.run(stacked)
    out: list[np.ndarray] = []
    offset = 0
    for mat in blocks:
        out.append(merged[offset : offset + mat.shape[0]])
        offset += mat.shape[0]
    return out


def simulate_circuits(
    aigs: Sequence,
    samples: np.ndarray,
    backend: str | None = None,
) -> list[np.ndarray]:
    """Simulate many circuits on one sample matrix, packing it once.

    All circuits must have the same input count as ``samples`` has
    columns.  Returns one ``(n_samples, n_outputs_i)`` uint8 matrix per
    circuit.
    """
    samples = np.asarray(samples, dtype=np.uint8)
    if samples.ndim == 1:
        samples = samples[None, :]
    aigs = list(aigs)
    if not aigs:
        return []
    packed = pack_bits(samples)
    n_samples = samples.shape[0]
    return [
        unpack_bits(aig.compiled(backend).run_packed(packed), n_samples)
        for aig in aigs
    ]


def output_predictions(
    aigs: Sequence,
    samples: np.ndarray,
    backend: str | None = None,
) -> list[np.ndarray]:
    """First-output predictions of many single-output candidates.

    Convenience wrapper for the contest setting (one output per
    circuit): returns one ``(n_samples,)`` uint8 vector per circuit.
    """
    return [
        out[:, 0] for out in simulate_circuits(aigs, samples, backend)
    ]
