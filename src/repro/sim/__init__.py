"""Levelized, vectorized AIG simulation engine.

The seed simulator (`AIG.simulate_packed_all`) walks the AND nodes one
at a time in a Python loop — fine for toy circuits, but the dominant
cost when scoring thousands of candidate circuits across the paper's
100-benchmark suite.  This subsystem replaces that loop with a
*compile once, evaluate many* pipeline:

Compile (:func:`compile_aig` -> :class:`CompiledAIG`)
    The AIG is levelized (:meth:`AIG.levels` semantics, computed with a
    vectorized Jacobi sweep) and its variables renumbered into a *slot*
    layout where every logic level occupies a contiguous row range.
    For each level the compiler stores one fused fanin gather vector
    (all fanin-0 slots, then all fanin-1 slots) with the nodes ordered
    so that complemented fanins form contiguous runs.  Output literals
    become a slot gather vector plus a complement mask.  Compilation is
    itself vectorized — no per-node Python loop — so compiling is cheap
    enough to do on the fly, and the compiled form is cached on the
    ``AIG`` keyed by a structural version (see :meth:`AIG.compiled`).

Evaluate (:meth:`CompiledAIG.run_packed_all` and friends)
    One packed value matrix ``(num_vars, n_words)`` is filled level by
    level.  Each level is a handful of whole-array ops: a fused
    ``np.take`` of both fanin row sets, scalar XORs over the
    complemented runs, and an AND written directly into the level's
    contiguous slot range — so the Python interpreter executes
    ``O(depth)`` statements instead of ``O(num_ands)``.  Results are
    bit-exact with the seed loop (preserved as
    :func:`reference_simulate_packed_all` for property tests and
    benchmarks).

Batch (:mod:`repro.sim.batch`)
    Two fan-out patterns the contest harness needs constantly:
    *one circuit, many datasets* (:func:`simulate_datasets` packs the
    concatenated sample matrices once and splits the result — e.g.
    train/valid/test scoring in a single pass) and *many circuits, one
    dataset* (:func:`simulate_circuits` /
    :func:`output_predictions` pack the dataset once and evaluate every
    compiled candidate against the shared packed words — e.g.
    ``pick_best`` over a candidate portfolio).  A third pattern, *one
    compiled circuit, many tiny row blocks*
    (:func:`simulate_rows_grouped`), is the coalescing primitive the
    serving layer (:mod:`repro.serve`) builds its microbatcher on.

`AIG.simulate`, `AIG.simulate_packed`, `AIG.simulate_packed_all` and
`AIG.truth_tables` all delegate here; existing callers keep their
signatures and get the fast path for free.
"""

from repro.sim.batch import (
    output_predictions,
    simulate_circuits,
    simulate_datasets,
    simulate_rows_grouped,
)
from repro.sim.engine import (
    CompiledAIG,
    compile_aig,
    reference_simulate_packed_all,
)

__all__ = [
    "CompiledAIG",
    "compile_aig",
    "reference_simulate_packed_all",
    "simulate_datasets",
    "simulate_circuits",
    "simulate_rows_grouped",
    "output_predictions",
]
