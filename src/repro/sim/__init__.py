"""Levelized, vectorized AIG simulation with pluggable backends.

The seed simulator (`AIG.simulate_packed_all`) walks the AND nodes one
at a time in a Python loop — fine for toy circuits, but the dominant
cost when scoring thousands of candidate circuits across the paper's
100-benchmark suite.  This subsystem replaces that loop with a
*compile once, evaluate many* pipeline split into three layers:

Program IR (:class:`~repro.sim.program.SimProgram`)
    The AIG is levelized (:meth:`AIG.levels` semantics, computed with a
    vectorized Jacobi sweep with an adaptive scalar cutover for
    chain-like graphs) and its variables renumbered into a *slot*
    layout where every logic level occupies a contiguous row range.
    The program stores both a per-level view (fused fanin gather
    vectors with complemented fanins grouped into contiguous runs)
    and a flat per-node view, is immutable and picklable, and is
    cached on the ``AIG`` keyed by a structural version (see
    :meth:`AIG.compiled`).

Executor backends (:mod:`repro.sim.backend`, :mod:`repro.sim.executors`)
    One program, three interchangeable executors — ``numpy`` (the
    per-level whole-array reference), ``fused`` (same schedule on a
    preallocated, reused arena: zero allocation per warm run) and
    ``numba`` (the whole program lowered into a single nopython
    kernel; optional, silently falling back to ``fused`` when numba
    is missing).  Selection precedence: call argument >
    :func:`set_backend` > the ``REPRO_SIM_BACKEND`` env var > the
    ``fused`` default.  All backends are bit-identical by contract.

Evaluate (:meth:`CompiledAIG.run_packed_all` and friends)
    A :class:`CompiledAIG` binds one program to one executor and keeps
    the historical API.  Results are bit-exact with the seed loop
    (preserved as :func:`reference_simulate_packed_all` for property
    tests and benchmarks) on every backend.

Batch (:mod:`repro.sim.batch`)
    Two fan-out patterns the contest harness needs constantly:
    *one circuit, many datasets* (:func:`simulate_datasets` packs the
    concatenated sample matrices once and splits the result — e.g.
    train/valid/test scoring in a single pass) and *many circuits, one
    dataset* (:func:`simulate_circuits` /
    :func:`output_predictions` pack the dataset once and evaluate every
    compiled candidate against the shared packed words — e.g.
    ``pick_best`` over a candidate portfolio).  A third pattern, *one
    compiled circuit, many tiny row blocks*
    (:func:`simulate_rows_grouped`), is the coalescing primitive the
    serving layer (:mod:`repro.serve`) builds its microbatcher on.
    All four route through the selected executor backend.

`AIG.simulate`, `AIG.simulate_packed`, `AIG.simulate_packed_all` and
`AIG.truth_tables` all delegate here; existing callers keep their
signatures and get the fast path for free.
"""

from repro.sim.backend import (
    DEFAULT_BACKEND,
    ENV_VAR,
    available_backends,
    backend_names,
    get_backend,
    resolve_backend,
    set_backend,
)
from repro.sim.batch import (
    output_predictions,
    simulate_circuits,
    simulate_datasets,
    simulate_rows_grouped,
)
from repro.sim.engine import (
    CompiledAIG,
    compile_aig,
    reference_simulate_packed_all,
)
from repro.sim.executors import BackendUnavailable, Executor
from repro.sim.program import SimProgram

__all__ = [
    "CompiledAIG",
    "SimProgram",
    "Executor",
    "BackendUnavailable",
    "compile_aig",
    "reference_simulate_packed_all",
    "simulate_datasets",
    "simulate_circuits",
    "simulate_rows_grouped",
    "output_predictions",
    "available_backends",
    "backend_names",
    "get_backend",
    "set_backend",
    "resolve_backend",
    "DEFAULT_BACKEND",
    "ENV_VAR",
]
