"""Levelized compilation of an AIG into flat simulation arrays.

See :mod:`repro.sim` for the compile/evaluate lifecycle.  The compiled
form is immutable and independent of the source :class:`AIG`, so it can
be kept around and reused even while the graph keeps growing (the AIG
itself caches one compiled instance per structural version, see
:meth:`repro.aig.aig.AIG.compiled`).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.utils.bitops import pack_bits, unpack_bits

ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def _levelize(n_inputs: int, v0: np.ndarray, v1: np.ndarray) -> np.ndarray:
    """Level of every variable, computed one *level* at a time.

    ``v0``/``v1`` are the fanin variable indices of the AND nodes.
    Instead of the seed's per-node loop this runs a Jacobi relaxation:
    each whole-array round propagates levels one step deeper, so the
    Python loop runs ``depth + 1`` times, not ``num_ands`` times.
    """
    num_ands = v0.shape[0]
    num_vars = 1 + n_inputs + num_ands
    lv = np.zeros(num_vars, dtype=np.int32)
    if not num_ands:
        return lv
    base = 1 + n_inputs
    # Jacobi needs one round per logic level; ML-synthesized circuits
    # are shallow, so cap the rounds and fall back to the exact
    # sequential sweep for pathologically deep (chain-like) graphs,
    # where O(depth * n) vector rounds would lose to O(n) scalar work.
    max_rounds = min(num_ands + 1, 64)
    for _ in range(max_rounds):
        nxt = np.maximum(lv[v0], lv[v1])
        nxt += 1
        if np.array_equal(lv[base:], nxt):
            return lv
        lv[base:] = nxt
    levels = lv.tolist()
    for j, (a, b) in enumerate(zip(v0.tolist(), v1.tolist())):
        la, lb = levels[a], levels[b]
        levels[base + j] = (la if la > lb else lb) + 1
    return np.asarray(levels, dtype=np.int32)


class CompiledAIG:
    """An AIG flattened into per-level gather/mask arrays.

    Attributes
    ----------
    n_inputs, num_vars, num_outputs:
        Interface of the source graph.
    level_ops:
        One tuple ``(lo, hi, idx01, c0_start, c1_lo, c1_hi)`` per
        logic level ``>= 1``: the contiguous *slot* range updated on
        that level, the fused fanin gather vector (all fanin-0 slots
        then all fanin-1 slots) and the boundaries of the complemented
        runs (see ``__init__`` for the grouping invariant).

    Internally values live in a *slot* layout — variables renumbered
    so every level occupies a contiguous row range — which turns the
    per-level scatter into a slice store fused with the AND.
    ``run_packed_all`` permutes back to variable order on the way out;
    ``run_packed`` gathers the outputs straight from their slots.
    """

    def __init__(self, aig):
        self.n_inputs = aig.n_inputs
        self.num_vars = aig.num_vars
        self.num_outputs = aig.num_outputs
        f0 = np.asarray(aig._fanin0, dtype=np.int64)
        f1 = np.asarray(aig._fanin1, dtype=np.int64)
        v0, v1 = f0 >> 1, f1 >> 1
        c0, c1 = (f0 & 1).astype(bool), (f1 & 1).astype(bool)
        lv = _levelize(self.n_inputs, v0, v1)
        # Level of every variable (constant and inputs are 0); kept so
        # cached engines also answer AIG.levels()/depth() for free.
        self.var_levels = lv
        self.depth = int(lv.max()) if lv.size else 0
        node_lv = lv[1 + self.n_inputs :]
        # Within each level, order nodes by complement pattern
        # (c0, c1) as 00, 01, 11, 10.  That makes both complemented
        # runs contiguous — fanin-1 complements occupy [c1_lo, c1_hi)
        # and fanin-0 complements the tail [c0_start, k) — so
        # evaluation applies them with cheap scalar-XOR slice ops
        # instead of a per-node broadcast mask.
        group_rank = np.array([0, 3, 1, 2], dtype=np.int8)  # index c0+2*c1
        rank = group_rank[(c0 + 2 * c1).astype(np.int8)]
        order = np.argsort(node_lv * 4 + rank, kind="stable")
        bounds = np.searchsorted(node_lv[order], np.arange(1, self.depth + 2))
        base = 1 + self.n_inputs
        num_ands = v0.shape[0]
        # Slot layout: constant and inputs keep their indices, AND node
        # at global level-order position p lands in slot base + p.
        self._slot = np.arange(self.num_vars, dtype=np.int64)
        self._slot[base + order] = base + np.arange(num_ands, dtype=np.int64)
        v0s, v1s = self._slot[v0], self._slot[v1]
        self.level_ops: List[Tuple[int, int, np.ndarray, int, int, int]] = []
        self._max_width = 0
        start = 0
        for stop in bounds:
            sel = order[start:stop]
            if sel.size:
                k = sel.size
                idx01 = np.concatenate((v0s[sel], v1s[sel]))
                counts = np.bincount(rank[sel], minlength=4)
                c1_lo = int(counts[0])
                c1_hi = int(counts[0] + counts[1] + counts[2])
                c0_start = int(counts[0] + counts[1])
                self.level_ops.append(
                    (base + start, base + stop, idx01, c0_start, c1_lo, c1_hi)
                )
                self._max_width = max(self._max_width, k)
            start = stop
        outs = np.asarray(aig.outputs, dtype=np.int64)
        self.out_var = outs >> 1
        self._out_slot = self._slot[self.out_var]
        self.out_mask = np.where(
            outs & 1, ALL_ONES, np.uint64(0)
        ).astype(np.uint64)

    @property
    def level_widths(self) -> List[int]:
        """Number of AND nodes on each logic level ``>= 1``."""
        return [hi - lo for lo, hi, *_ in self.level_ops]

    # ------------------------------------------------------------------
    # Packed evaluation
    # ------------------------------------------------------------------
    def _run_slots(self, packed_inputs: np.ndarray) -> np.ndarray:
        """Evaluate into the internal slot layout (see class docstring)."""
        packed_inputs = np.asarray(packed_inputs, dtype=np.uint64)
        if packed_inputs.ndim == 1:
            packed_inputs = packed_inputs[:, None]
        if packed_inputs.shape[0] != self.n_inputs:
            raise ValueError(
                f"expected {self.n_inputs} input rows, "
                f"got {packed_inputs.shape[0]}"
            )
        n_words = packed_inputs.shape[1]
        # Every slot row is written below (const row here, input rows
        # next, node ranges level by level), so no zero-fill needed.
        values = np.empty((self.num_vars, n_words), dtype=np.uint64)
        values[0] = 0
        values[1 : 1 + self.n_inputs] = packed_inputs
        # One scratch buffer sized for the widest level.  Both fanin
        # rows of a level are fetched with a single fused gather,
        # complements are scalar XORs over the contiguous runs set up
        # by the compiler, and the AND writes straight into the
        # level's contiguous slot range — a handful of whole-array ops
        # per level regardless of width.
        scratch = np.empty((2 * self._max_width, n_words), dtype=np.uint64)
        for lo, hi, idx01, c0_start, c1_lo, c1_hi in self.level_ops:
            k = hi - lo
            buf = scratch[: 2 * k]
            np.take(values, idx01, axis=0, out=buf)
            if c0_start < k:
                part = buf[c0_start:k]
                np.bitwise_xor(part, ALL_ONES, out=part)
            if c1_lo < c1_hi:
                part = buf[k + c1_lo : k + c1_hi]
                np.bitwise_xor(part, ALL_ONES, out=part)
            np.bitwise_and(buf[:k], buf[k:], out=values[lo:hi])
        return values

    def run_packed_all(self, packed_inputs: np.ndarray) -> np.ndarray:
        """Values of *every* variable, shape ``(num_vars, n_words)``.

        Bit-exact drop-in for the seed ``AIG.simulate_packed_all``.
        """
        values = self._run_slots(packed_inputs)
        # Permute back from slot layout to variable order.
        return values.take(self._slot, axis=0)

    def run_packed(self, packed_inputs: np.ndarray) -> np.ndarray:
        """Packed output values, shape ``(num_outputs, n_words)``."""
        values = self._run_slots(packed_inputs)
        if not self.num_outputs:
            return np.zeros((0, values.shape[1]), dtype=np.uint64)
        out = values.take(self._out_slot, axis=0)
        np.bitwise_xor(out, self.out_mask[:, None], out=out)
        return out

    # ------------------------------------------------------------------
    # Sample-matrix convenience
    # ------------------------------------------------------------------
    def run(self, samples: np.ndarray) -> np.ndarray:
        """Evaluate a ``(n_samples, n_inputs)`` 0/1 matrix.

        Returns ``(n_samples, n_outputs)`` uint8, like ``AIG.simulate``.
        """
        samples = np.asarray(samples, dtype=np.uint8)
        if samples.ndim == 1:
            samples = samples[None, :]
        out = self.run_packed(pack_bits(samples))
        return unpack_bits(out, samples.shape[0])


def compile_aig(aig) -> CompiledAIG:
    """Compile ``aig`` into its levelized form."""
    return CompiledAIG(aig)


def reference_simulate_packed_all(aig, packed_inputs: np.ndarray) -> np.ndarray:
    """The seed per-node simulation loop, kept verbatim as the oracle.

    Property tests and ``benchmarks/bench_sim_engine.py`` compare the
    levelized engine against this implementation bit for bit.
    """
    packed_inputs = np.asarray(packed_inputs, dtype=np.uint64)
    if packed_inputs.shape[0] != aig.n_inputs:
        raise ValueError(
            f"expected {aig.n_inputs} input rows, got {packed_inputs.shape[0]}"
        )
    n_words = packed_inputs.shape[1] if packed_inputs.ndim == 2 else 1
    values = np.zeros((aig.num_vars, n_words), dtype=np.uint64)
    values[1 : 1 + aig.n_inputs] = packed_inputs
    f0 = aig._fanin0
    f1 = aig._fanin1
    base = aig.n_inputs + 1
    for j in range(aig.num_ands):
        a, b = f0[j], f1[j]
        va = values[a >> 1]
        if a & 1:
            va = va ^ ALL_ONES
        vb = values[b >> 1]
        if b & 1:
            vb = vb ^ ALL_ONES
        values[base + j] = va & vb
    return values
