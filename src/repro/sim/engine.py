"""Compiled simulation engines: program IR bound to an executor.

See :mod:`repro.sim` for the compile/evaluate lifecycle.  Compilation
is split in two layers since the backend refactor:

* :class:`~repro.sim.program.SimProgram` — the backend-neutral
  levelized program (gather vectors, complement runs, output spec).
  Immutable, picklable, independent of the source :class:`AIG`.
* :class:`CompiledAIG` — one program bound to one executor backend
  (``numpy``/``fused``/``numba``, see :mod:`repro.sim.backend`).  This
  is the object consumers hold; it keeps the historical ``run*`` API
  bit-for-bit.  Engines sharing a program share the compile work —
  :meth:`with_backend` rebinds without recompiling, and the AIG-side
  cache (:meth:`repro.aig.aig.AIG.compiled`) keys executors by
  ``(structural version, outputs, backend)`` while compiling the
  program once per version.
"""

from __future__ import annotations

import numpy as np

from repro.sim.program import ALL_ONES, SimProgram, _levelize  # noqa: F401
from repro.utils.bitops import pack_bits, unpack_bits


class CompiledAIG:
    """A :class:`SimProgram` bound to one executor backend.

    ``source`` is an :class:`~repro.aig.aig.AIG` (compiled here) or an
    already-built :class:`SimProgram` (shared, no recompile).
    ``backend`` resolves through :func:`repro.sim.backend.
    resolve_backend`; the *effective* backend name — after env-var
    lookup and the numba-missing fallback — is recorded as
    :attr:`backend`.
    """

    def __init__(
        self,
        source: SimProgram | object,
        backend: str | None = None,
    ):
        from repro.sim.backend import executor_for

        if isinstance(source, SimProgram):
            self.program = source
        else:
            self.program = SimProgram(source)
        self._executor = executor_for(self.program, backend)
        self.backend: str = self._executor.name

    def with_backend(self, backend: str | None) -> "CompiledAIG":
        """This engine, or a sibling on another backend (shared IR)."""
        from repro.sim.backend import resolve_backend

        if resolve_backend(backend) == self.backend:
            return self
        return CompiledAIG(self.program, backend)

    # -- program delegation (the historical public attributes) ---------
    @property
    def n_inputs(self) -> int:
        return self.program.n_inputs

    @property
    def num_vars(self) -> int:
        return self.program.num_vars

    @property
    def num_outputs(self) -> int:
        return self.program.num_outputs

    @property
    def var_levels(self) -> np.ndarray:
        return self.program.var_levels

    @property
    def depth(self) -> int:
        return self.program.depth

    @property
    def level_widths(self) -> list[int]:
        """Number of AND nodes on each logic level ``>= 1``."""
        return self.program.level_widths

    @property
    def level_ops(self):
        return self.program.level_ops

    @property
    def out_var(self) -> np.ndarray:
        return self.program.out_var

    @property
    def out_mask(self) -> np.ndarray:
        return self.program.out_mask

    # ------------------------------------------------------------------
    # Packed evaluation
    # ------------------------------------------------------------------
    def _run_slots(self, packed_inputs: np.ndarray) -> np.ndarray:
        """Evaluate into the slot layout (borrowed buffer — copy out)."""
        packed = self.program.validate_packed(packed_inputs)
        return self._executor.run_slots(packed)

    def run_packed_all(self, packed_inputs: np.ndarray) -> np.ndarray:
        """Values of *every* variable, shape ``(num_vars, n_words)``.

        Bit-exact drop-in for the seed ``AIG.simulate_packed_all``.
        """
        values = self._run_slots(packed_inputs)
        # Permute back from slot layout to variable order (also copies
        # out of the executor's reused arena).
        return values.take(self.program.slot, axis=0)

    def run_packed(self, packed_inputs: np.ndarray) -> np.ndarray:
        """Packed output values, shape ``(num_outputs, n_words)``."""
        values = self._run_slots(packed_inputs)
        if not self.num_outputs:
            return np.zeros((0, values.shape[1]), dtype=np.uint64)
        out = values.take(self.program.out_slot, axis=0)
        np.bitwise_xor(out, self.program.out_mask[:, None], out=out)
        return out

    # ------------------------------------------------------------------
    # Sample-matrix convenience
    # ------------------------------------------------------------------
    def run(self, samples: np.ndarray) -> np.ndarray:
        """Evaluate a ``(n_samples, n_inputs)`` 0/1 matrix.

        Returns ``(n_samples, n_outputs)`` uint8, like ``AIG.simulate``.
        """
        samples = np.asarray(samples, dtype=np.uint8)
        if samples.ndim == 1:
            samples = samples[None, :]
        out = self.run_packed(pack_bits(samples))
        return unpack_bits(out, samples.shape[0])


def compile_aig(aig, backend: str | None = None) -> CompiledAIG:
    """Compile ``aig`` into its levelized form on ``backend``."""
    return CompiledAIG(aig, backend)


def reference_simulate_packed_all(aig, packed_inputs: np.ndarray) -> np.ndarray:
    """The seed per-node simulation loop, kept verbatim as the oracle.

    Property tests and ``benchmarks/bench_sim_engine.py`` compare the
    levelized engine against this implementation bit for bit.
    """
    packed_inputs = np.asarray(packed_inputs, dtype=np.uint64)
    if packed_inputs.shape[0] != aig.n_inputs:
        raise ValueError(
            f"expected {aig.n_inputs} input rows, got {packed_inputs.shape[0]}"
        )
    n_words = packed_inputs.shape[1] if packed_inputs.ndim == 2 else 1
    values = np.zeros((aig.num_vars, n_words), dtype=np.uint64)
    values[1 : 1 + aig.n_inputs] = packed_inputs
    f0 = aig._fanin0
    f1 = aig._fanin1
    base = aig.n_inputs + 1
    for j in range(aig.num_ands):
        a, b = f0[j], f1[j]
        va = values[a >> 1]
        if a & 1:
            va = va ^ ALL_ONES
        vb = values[b >> 1]
        if b & 1:
            vb = vb ^ ALL_ONES
        values[base + j] = va & vb
    return values
