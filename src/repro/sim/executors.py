"""Executor backends for :class:`~repro.sim.program.SimProgram`.

An executor turns one program plus a packed input matrix into the
packed value matrix in *slot* layout (see the program docstring).  All
backends are bit-identical by contract — the cross-backend
differential tests enforce it — and differ only in how they schedule
the same gather/complement/AND arithmetic:

``numpy`` (:class:`NumpyExecutor`)
    The reference: per-level whole-array ops with buffers allocated
    per call.  Always available, no state, safe to share.

``fused`` (:class:`FusedExecutor`)
    The same per-level schedule, but the slot arena and the gather
    scratch are preallocated once per (program, word-count) and every
    level executes as in-place ops on the reused buffers — a warm run
    allocates nothing.  The complement runs were already folded into
    contiguous slices by the compiler; this backend additionally keeps
    them in cache-hot scratch.  One executor instance serves one
    program at a time (the arena is reused across calls), which is
    exactly the lifecycle of :meth:`repro.aig.aig.AIG.compiled` and
    the serving LRU.

``numba`` (:class:`NumbaExecutor`)
    Lowers the *whole* levelized program into a single nopython
    kernel over the per-node view: one sequential pass in topological
    slot order, two gathers + two XORs + one AND per node per word,
    no Python dispatch per level and no intermediate gather arrays.
    Optional: constructing it raises :class:`BackendUnavailable` when
    numba is not importable, and the registry silently falls back to
    ``fused`` (see :mod:`repro.sim.backend`).

Executors return the internal arena (a *borrowed* array, overwritten
by the next call); :class:`repro.sim.engine.CompiledAIG` copies on the
way out of every public entry point.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.sim.program import ALL_ONES, SimProgram


class BackendUnavailable(RuntimeError):
    """The requested backend's runtime dependency is missing."""


class Executor(Protocol):
    """What a simulation backend must provide."""

    name: str
    program: SimProgram

    def run_slots(self, packed_inputs: np.ndarray) -> np.ndarray:
        """Evaluate validated ``(n_inputs, n_words)`` packed words into
        the slot-layout value matrix ``(num_vars, n_words)``.  The
        returned array may be a reused internal buffer."""
        ...


def _run_levels(
    program: SimProgram,
    values: np.ndarray,
    scratch: np.ndarray,
    packed_inputs: np.ndarray,
) -> np.ndarray:
    """The shared per-level schedule (numpy and fused backends).

    Every slot row is written (const row, input rows, then node
    ranges level by level), so the arena needs no zero-fill.  Each
    level is a handful of whole-array ops: a fused ``np.take`` of
    both fanin row sets, scalar XORs over the contiguous complement
    runs set up by the compiler, and an AND written straight into the
    level's contiguous slot range.
    """
    values[0] = 0
    values[1 : 1 + program.n_inputs] = packed_inputs
    for lo, hi, idx01, c0_start, c1_lo, c1_hi in program.level_ops:
        k = hi - lo
        buf = scratch[: 2 * k]
        np.take(values, idx01, axis=0, out=buf)
        if c0_start < k:
            part = buf[c0_start:k]
            np.bitwise_xor(part, ALL_ONES, out=part)
        if c1_lo < c1_hi:
            part = buf[k + c1_lo : k + c1_hi]
            np.bitwise_xor(part, ALL_ONES, out=part)
        np.bitwise_and(buf[:k], buf[k:], out=values[lo:hi])
    return values


class NumpyExecutor:
    """Reference whole-array executor; allocates per call."""

    name = "numpy"

    def __init__(self, program: SimProgram):
        self.program = program

    def run_slots(self, packed_inputs: np.ndarray) -> np.ndarray:
        p = self.program
        n_words = packed_inputs.shape[1]
        values = np.empty((p.num_vars, n_words), dtype=np.uint64)
        scratch = np.empty((2 * p.max_width, n_words), dtype=np.uint64)
        return _run_levels(p, values, scratch, packed_inputs)


class _ArenaMixin:
    """Slot arena reused across calls, rebuilt when n_words changes."""

    program: SimProgram
    _values: np.ndarray | None
    _scratch: np.ndarray | None

    def _arena(self, n_words: int) -> tuple[np.ndarray, np.ndarray]:
        values, scratch = self._values, self._scratch
        if values is None or scratch is None or values.shape[1] != n_words:
            values = np.empty(
                (self.program.num_vars, n_words), dtype=np.uint64
            )
            scratch = np.empty(
                (2 * self.program.max_width, n_words), dtype=np.uint64
            )
            self._values, self._scratch = values, scratch
        return values, scratch


class FusedExecutor(_ArenaMixin):
    """Whole-array executor over a preallocated, reused arena."""

    name = "fused"

    def __init__(self, program: SimProgram):
        self.program = program
        self._values = None
        self._scratch = None

    def run_slots(self, packed_inputs: np.ndarray) -> np.ndarray:
        values, scratch = self._arena(packed_inputs.shape[1])
        return _run_levels(self.program, values, scratch, packed_inputs)


# ---------------------------------------------------------------------
# numba backend (optional dependency)
# ---------------------------------------------------------------------
_NUMBA_KERNEL = None


def numba_available() -> bool:
    """True when the numba JIT can be imported (checked once)."""
    try:
        _numba_kernel()
    except BackendUnavailable:
        return False
    return True


def _numba_kernel():
    """Compile (lazily, once per process) the whole-program kernel."""
    global _NUMBA_KERNEL
    if _NUMBA_KERNEL is None:
        try:
            import numba
        except ImportError as exc:
            raise BackendUnavailable(
                "the 'numba' simulation backend needs the optional "
                "numba package"
            ) from exc

        @numba.njit(nogil=True, cache=False)
        def kernel(values, g0, g1, x0, x1, base):  # pragma: no cover
            # Covered only on the optional-deps CI leg: one pass over
            # the per-node program view in topological slot order.
            n_words = values.shape[1]
            for i in range(g0.shape[0]):
                a = g0[i]
                b = g1[i]
                xa = x0[i]
                xb = x1[i]
                o = base + i
                for w in range(n_words):
                    values[o, w] = (values[a, w] ^ xa) & (values[b, w] ^ xb)

        _NUMBA_KERNEL = kernel
    return _NUMBA_KERNEL


class NumbaExecutor(_ArenaMixin):
    """Whole-program JIT executor (optional numba dependency)."""

    name = "numba"

    def __init__(self, program: SimProgram):
        self.program = program
        self._values = None
        self._scratch = None
        self._kernel = _numba_kernel()  # raises BackendUnavailable

    def run_slots(self, packed_inputs: np.ndarray) -> np.ndarray:
        p = self.program
        values, _ = self._arena(packed_inputs.shape[1])
        values[0] = 0
        values[1 : 1 + p.n_inputs] = packed_inputs
        if p.node_g0.size:
            self._kernel(
                values, p.node_g0, p.node_g1, p.node_x0, p.node_x1,
                p.base_var,
            )
        return values
