"""Backend-neutral simulation program IR.

A :class:`SimProgram` is an AIG lowered into flat levelized arrays —
the *what* of bit-parallel simulation, with no opinion about *how* the
arrays are executed.  Executors (:mod:`repro.sim.executors`) consume
the same program through two equivalent views:

Per-level view (``level_ops``)
    One ``(lo, hi, idx01, c0_start, c1_lo, c1_hi)`` tuple per logic
    level: the contiguous *slot* range updated on that level, the
    fused fanin gather vector (all fanin-0 slots then all fanin-1
    slots) and the boundaries of the complemented runs.  This is what
    the whole-array numpy/fused executors iterate.

Per-node view (``node_g0``/``node_g1``/``node_x0``/``node_x1``)
    The same program flattened to one entry per AND node in slot
    order: fanin slot indices plus per-node complement XOR masks
    (``0`` or all-ones).  Slot order is topological, so a single
    sequential pass is valid — this is what a compiled whole-program
    kernel (the numba backend) lowers to one nopython loop.

Programs are immutable once built, independent of the source
:class:`~repro.aig.aig.AIG`, and picklable — the serving layer and the
process-pool runner can ship them across workers.  The AIG caches one
program per structural version (see :meth:`repro.aig.aig.AIG.compiled`)
and shares it between every backend's executor.
"""

from __future__ import annotations

import numpy as np

ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: Bump when the compiled layout changes incompatibly (cache keys and
#: pickled programs must never be interpreted by mismatched executors).
PROGRAM_SCHEMA = 1


def _levelize(
    n_inputs: int,
    v0: np.ndarray,
    v1: np.ndarray,
    _stats: dict | None = None,
) -> np.ndarray:
    """Level of every variable, computed one *level* at a time.

    ``v0``/``v1`` are the fanin variable indices of the AND nodes.
    Instead of the seed's per-node loop this runs a Jacobi relaxation:
    each whole-array round propagates levels one step deeper, so the
    Python loop runs ``depth + 1`` times, not ``num_ands`` times.

    Jacobi is a bad fit for chain-like graphs, where ``O(depth * n)``
    vector rounds lose to the ``O(n)`` scalar sweep.  Rather than a
    hard-coded round cap (which used to kick depth-65 circuits off the
    fast path one round early), the cutover is derived from measured
    progress: a round that settles ``s`` nodes while ``c`` still churn
    predicts ``c / s`` more rounds, and once that forecast exceeds the
    vector/scalar break-even (~64 rounds) the remaining work is done
    scalar.  Balanced circuits settle whole levels per round and never
    trip it; a chain settles one node per round and bails immediately.

    ``_stats``, when given a dict, records ``{"rounds", "fallback"}``
    for the cutover regression tests.
    """
    num_ands = v0.shape[0]
    num_vars = 1 + n_inputs + num_ands
    lv = np.zeros(num_vars, dtype=np.int32)
    if not num_ands:
        if _stats is not None:
            _stats.update(rounds=0, fallback=False)
        return lv
    base = 1 + n_inputs
    # The first round moves every node off level 0, so it carries no
    # progress signal; the forecast starts once two rounds can be
    # compared.
    prev_changed: int | None = None
    rounds = 0
    fallback = True
    while True:
        nxt = np.maximum(lv[v0], lv[v1])
        nxt += 1
        changed = int(np.count_nonzero(nxt != lv[base:]))
        if changed == 0:
            fallback = False
            break
        lv[base:] = nxt
        rounds += 1
        if prev_changed is not None:
            settled = max(prev_changed - changed, 1)
            if changed > 64 * settled:
                break
        prev_changed = changed
    if _stats is not None:
        _stats.update(rounds=rounds, fallback=fallback)
    if not fallback:
        return lv
    levels = lv.tolist()
    for j, (a, b) in enumerate(zip(v0.tolist(), v1.tolist(), strict=True)):
        la, lb = levels[a], levels[b]
        levels[base + j] = (la if la > lb else lb) + 1
    return np.asarray(levels, dtype=np.int32)


class SimProgram:
    """An AIG flattened into executable gather/mask arrays.

    Attributes
    ----------
    n_inputs, num_vars, num_outputs:
        Interface of the source graph.
    var_levels, depth:
        Logic level of every variable (constant and inputs are 0) and
        the maximum level; kept so cached engines also answer
        ``AIG.levels()``/``depth()`` for free.
    level_ops, max_width:
        The per-level view (see module docstring) and the widest
        level's node count (sizes executor scratch buffers).
    node_g0, node_g1, node_x0, node_x1, base_var:
        The per-node view: fanin slot indices and complement XOR
        masks, one entry per AND node in slot order; AND node at slot
        position ``p`` lives in slot ``base_var + p``.
    slot, out_slot, out_mask:
        Variable-to-slot permutation, output slot gather vector and
        output complement mask.

    Internally values live in a *slot* layout — variables renumbered
    so every level occupies a contiguous row range — which turns the
    per-level scatter into a slice store fused with the AND.
    Executors evaluate in slot space; :class:`repro.sim.engine.
    CompiledAIG` permutes back to variable order on the way out.
    """

    schema: int
    n_inputs: int
    num_vars: int
    num_outputs: int
    var_levels: np.ndarray
    depth: int
    base_var: int
    slot: np.ndarray
    node_g0: np.ndarray
    node_g1: np.ndarray
    node_x0: np.ndarray
    node_x1: np.ndarray
    max_width: int
    out_var: np.ndarray
    out_slot: np.ndarray
    out_mask: np.ndarray

    def __init__(self, aig):
        self.schema = PROGRAM_SCHEMA
        self.n_inputs = aig.n_inputs
        self.num_vars = aig.num_vars
        self.num_outputs = aig.num_outputs
        f0 = np.asarray(aig._fanin0, dtype=np.int64)
        f1 = np.asarray(aig._fanin1, dtype=np.int64)
        v0, v1 = f0 >> 1, f1 >> 1
        c0, c1 = (f0 & 1).astype(bool), (f1 & 1).astype(bool)
        lv = _levelize(self.n_inputs, v0, v1)
        self.var_levels = lv
        self.depth = int(lv.max()) if lv.size else 0
        node_lv = lv[1 + self.n_inputs :]
        # Within each level, order nodes by complement pattern
        # (c0, c1) as 00, 01, 11, 10.  That makes both complemented
        # runs contiguous — fanin-1 complements occupy [c1_lo, c1_hi)
        # and fanin-0 complements the tail [c0_start, k) — so
        # evaluation applies them with cheap scalar-XOR slice ops
        # instead of a per-node broadcast mask.
        group_rank = np.array([0, 3, 1, 2], dtype=np.int8)  # index c0+2*c1
        rank = group_rank[(c0 + 2 * c1).astype(np.int8)]
        order = np.argsort(node_lv * 4 + rank, kind="stable")
        bounds = np.searchsorted(node_lv[order], np.arange(1, self.depth + 2))
        base = 1 + self.n_inputs
        self.base_var = base
        num_ands = v0.shape[0]
        # Slot layout: constant and inputs keep their indices, AND node
        # at global level-order position p lands in slot base + p.
        self.slot = np.arange(self.num_vars, dtype=np.int64)
        self.slot[base + order] = base + np.arange(num_ands, dtype=np.int64)
        v0s, v1s = self.slot[v0], self.slot[v1]
        # Per-node view in slot order (the whole-program kernels).
        self.node_g0 = np.ascontiguousarray(v0s[order])
        self.node_g1 = np.ascontiguousarray(v1s[order])
        zero = np.uint64(0)
        self.node_x0 = np.where(c0[order], ALL_ONES, zero).astype(np.uint64)
        self.node_x1 = np.where(c1[order], ALL_ONES, zero).astype(np.uint64)
        # Per-level view (the whole-array executors).
        self.level_ops: list[tuple[int, int, np.ndarray, int, int, int]] = []
        self.max_width = 0
        start = 0
        for stop in bounds:
            sel = order[start:stop]
            if sel.size:
                k = sel.size
                idx01 = np.concatenate((v0s[sel], v1s[sel]))
                counts = np.bincount(rank[sel], minlength=4)
                c1_lo = int(counts[0])
                c1_hi = int(counts[0] + counts[1] + counts[2])
                c0_start = int(counts[0] + counts[1])
                self.level_ops.append(
                    (base + start, base + stop, idx01, c0_start, c1_lo, c1_hi)
                )
                self.max_width = max(self.max_width, k)
            start = stop
        outs = np.asarray(aig.outputs, dtype=np.int64)
        self.out_var = outs >> 1
        self.out_slot = self.slot[self.out_var]
        self.out_mask = np.where(outs & 1, ALL_ONES, zero).astype(np.uint64)

    @property
    def num_ands(self) -> int:
        return self.num_vars - 1 - self.n_inputs

    @property
    def level_widths(self) -> list[int]:
        """Number of AND nodes on each logic level ``>= 1``."""
        return [hi - lo for lo, hi, *_ in self.level_ops]

    def validate_packed(self, packed_inputs: np.ndarray) -> np.ndarray:
        """Normalize a packed input matrix to ``(n_inputs, n_words)``."""
        packed_inputs = np.asarray(packed_inputs, dtype=np.uint64)
        if packed_inputs.ndim == 1:
            packed_inputs = packed_inputs[:, None]
        if packed_inputs.shape[0] != self.n_inputs:
            raise ValueError(
                f"expected {self.n_inputs} input rows, "
                f"got {packed_inputs.shape[0]}"
            )
        return packed_inputs
