"""Simulation backend selection: one config surface for every consumer.

Every sim entry point — ``AIG.simulate*``, the four batched APIs, the
contest evaluator, fraig-lite, the serving layer — resolves its
executor through this module, so one knob retargets the whole stack.

Selection precedence (first hit wins):

1. An explicit ``backend=`` argument on the call (or the component
   that owns the compiled circuit, e.g. ``ModelStore(sim_backend=...)``).
2. A process-wide :func:`set_backend` (what ``--sim-backend`` CLI
   flags use; the contest runner forwards it into worker processes).
3. The ``REPRO_SIM_BACKEND`` environment variable, read at resolve
   time so spawned workers and subprocesses inherit it for free.
4. The default, ``fused``.

Requesting ``numba`` when the optional numba package is missing is
*not* an error anywhere on this path: the registry silently falls back
to ``fused`` (the registered fallback), so an env var set on a fleet
where only some hosts have numba degrades gracefully.  Unknown names,
by contrast, always raise — a typo must not silently change what runs.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from dataclasses import dataclass

from repro.sim.executors import (
    BackendUnavailable,
    Executor,
    FusedExecutor,
    NumbaExecutor,
    NumpyExecutor,
    numba_available,
)
from repro.sim.program import SimProgram

DEFAULT_BACKEND = "fused"
ENV_VAR = "REPRO_SIM_BACKEND"


@dataclass(frozen=True)
class BackendSpec:
    """One registered backend: how to build it and when it exists."""

    name: str
    factory: Callable[[SimProgram], Executor]
    is_available: Callable[[], bool]
    fallback: str | None = None  # used silently when unavailable
    description: str = ""


_REGISTRY: dict[str, BackendSpec] = {}
_forced: str | None = None


def register_backend(spec: BackendSpec) -> None:
    """Register (or replace) a backend under ``spec.name``."""
    _REGISTRY[spec.name] = spec


register_backend(BackendSpec(
    name="numpy",
    factory=NumpyExecutor,
    is_available=lambda: True,
    description="per-level whole-array reference (always available)",
))
register_backend(BackendSpec(
    name="fused",
    factory=FusedExecutor,
    is_available=lambda: True,
    description="per-level in-place ops on a preallocated arena",
))
register_backend(BackendSpec(
    name="numba",
    factory=NumbaExecutor,
    is_available=numba_available,
    fallback="fused",
    description="whole-program nopython kernel (optional numba dep)",
))


def backend_names() -> tuple[str, ...]:
    """All registered backend names, available or not."""
    return tuple(_REGISTRY)


def available_backends() -> tuple[str, ...]:
    """Backends usable in this process, in registration order."""
    return tuple(
        name for name, spec in _REGISTRY.items() if spec.is_available()
    )


def _checked(name: str) -> str:
    name = name.strip().lower()
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown simulation backend {name!r} "
            f"(registered: {', '.join(_REGISTRY)})"
        )
    return name


def set_backend(name: str | None) -> None:
    """Set the process-wide backend (``None`` clears the override)."""
    global _forced
    _forced = None if name is None else _checked(name)


def resolve_backend(name: str | None = None) -> str:
    """The effective backend for a request (see module docstring).

    Applies the documented precedence, validates the name, and walks
    the silent-fallback chain of unavailable optional backends.
    """
    if name is None:
        if _forced is not None:
            name = _forced
        else:
            name = os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    name = _checked(name)
    seen = set()
    while not _REGISTRY[name].is_available():
        seen.add(name)
        fallback = _REGISTRY[name].fallback
        if fallback is None or fallback in seen:
            raise BackendUnavailable(
                f"simulation backend {name!r} is unavailable and has "
                f"no fallback"
            )
        name = _checked(fallback)
    return name


def get_backend() -> str:
    """The backend a ``backend=None`` call would use right now."""
    return resolve_backend(None)


def executor_for(
    program: SimProgram, backend: str | None = None
) -> Executor:
    """Build the selected backend's executor for ``program``."""
    return _REGISTRY[resolve_backend(backend)].factory(program)
