"""Structural Verilog export (Teams 6 and 10's intermediate format).

Team 10 annotates its decision tree "as a Verilog netlist, where each
DT node is replaced with a multiplexer" and Team 6 emits Verilog from
the LUT-network SOP before handing off to ABC.  We provide the same
capability: AIGs and decision trees become synthesizable structural
Verilog modules, plus a tiny evaluator used in tests to check the
emitted netlist against the source model.
"""

from __future__ import annotations

import re

from repro.aig.aig import AIG, lit_var
from repro.ml.decision_tree import DecisionTree


def aig_to_verilog(aig: AIG, module_name: str = "top") -> str:
    """Structural Verilog for an AIG (one assign per AND node)."""
    lines = [f"module {module_name} ("]
    ports = [f"  input  x{i}," for i in range(aig.n_inputs)]
    ports += [f"  output y{k}," for k in range(aig.num_outputs)]
    if ports:
        ports[-1] = ports[-1].rstrip(",")
    lines += ports
    lines.append(");")

    def ref(lit: int) -> str:
        var = lit_var(lit)
        if var == 0:
            name = "1'b0"
        elif aig.is_input_var(var):
            name = f"x{var - 1}"
        else:
            name = f"n{var}"
        if lit & 1:
            return f"1'b1" if name == "1'b0" else f"~{name}"
        return name

    base = aig.n_inputs + 1
    for j in range(aig.num_ands):
        var = base + j
        f0, f1 = aig.fanins(var)
        lines.append(f"  wire n{var};")
        lines.append(f"  assign n{var} = {ref(f0)} & {ref(f1)};")
    for k, lit in enumerate(aig.outputs):
        lines.append(f"  assign y{k} = {ref(lit)};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def tree_to_verilog(tree: DecisionTree, module_name: str = "dt") -> str:
    """Team 10's conversion: one 2:1 mux per internal tree node."""
    if tree.n_inputs is None:
        raise RuntimeError("tree is not fitted")
    lines = [f"module {module_name} ("]
    lines += [f"  input  x{i}," for i in range(tree.n_inputs)]
    lines.append("  output y")
    lines.append(");")
    exprs: dict[int, str] = {}

    def rec(node_id: int) -> str:
        if node_id in exprs:
            return exprs[node_id]
        node = tree.nodes[node_id]
        if node.is_leaf:
            expr = "1'b1" if node.value else "1'b0"
        else:
            wire = f"m{node_id}"
            t = rec(node.right)
            e = rec(node.left)
            lines.append(f"  wire {wire};")
            lines.append(
                f"  assign {wire} = x{node.feature} ? {t} : {e};"
            )
            expr = wire
        exprs[node_id] = expr
        return expr

    out = rec(0)
    lines.append(f"  assign y = {out};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


class VerilogEvaluator:
    """Interpreter for the restricted Verilog this module emits.

    Supports ``assign w = a & b;``, ``assign w = s ? a : b;``, unary
    ``~`` and the constants ``1'b0`` / ``1'b1`` — enough to check the
    emitted netlists bit-for-bit against their source models in tests.
    """

    _ASSIGN = re.compile(r"assign\s+(\w+)\s*=\s*(.+);")

    def __init__(self, source: str):
        self.inputs: list[str] = re.findall(r"input\s+(\w+)", source)
        self.outputs: list[str] = re.findall(r"output\s+(\w+)", source)
        self.assigns = []
        for target, expr in self._ASSIGN.findall(source):
            self.assigns.append((target, expr.strip()))

    def _term(self, token: str, env: dict[str, int]) -> int:
        token = token.strip()
        if token == "1'b0":
            return 0
        if token == "1'b1":
            return 1
        if token.startswith("~"):
            return 1 - self._term(token[1:], env)
        return env[token]

    def evaluate(self, input_values: dict[str, int]) -> dict[str, int]:
        env = dict(input_values)
        for target, expr in self.assigns:
            if "?" in expr:
                cond, rest = expr.split("?", 1)
                then, other = rest.split(":", 1)
                value = (
                    self._term(then, env)
                    if self._term(cond, env)
                    else self._term(other, env)
                )
            elif "&" in expr:
                left, right = expr.split("&", 1)
                value = self._term(left, env) & self._term(right, env)
            else:
                value = self._term(expr, env)
            env[target] = value
        return {name: env[name] for name in self.outputs}
