"""LUT network -> flat SOP cover (Team 6's sympy step).

Team 6 "convert[s] the network into an SOP form using [the] sympy
package ... from reverse topological order starting from the outputs
back to the inputs".  We implement the same flattening symbolically on
our own cover algebra: every LUT cell keeps a cover for each polarity
of its function over *primary inputs*, built by composing its local
ISOP with the fanin covers (AND of cubes = cube intersection when
compatible).  Cube counts are capped so pathological networks fail
loudly instead of exploding.
"""

from __future__ import annotations

from repro.aig.isop import full_mask, isop
from repro.ml.lutnet import LUTNetwork
from repro.twolevel.cover import Cover
from repro.twolevel.cube import Cube


class SopExplosion(RuntimeError):
    """Raised when flattening exceeds the cube budget."""


def _cube_and(a: Cube, b: Cube) -> Cube | None:
    """Intersection of two cubes, or None if they conflict."""
    if (a.value ^ b.value) & (a.mask & b.mask):
        return None
    return Cube(a.mask | b.mask, a.value | b.value)


def _compose(
    local_cover,
    fanin_pos: list[list[Cube]],
    fanin_neg: list[list[Cube]],
    max_cubes: int,
) -> list[Cube]:
    """Substitute fanin covers into a local cover over LUT inputs."""
    out: list[Cube] = []
    for cube in local_cover:
        partial: list[Cube] = [Cube.full()]
        for var, value in cube:
            source = fanin_pos[var] if value else fanin_neg[var]
            new_partial: list[Cube] = []
            for p in partial:
                for q in source:
                    merged = _cube_and(p, q)
                    if merged is not None:
                        new_partial.append(merged)
                if len(new_partial) > max_cubes:
                    raise SopExplosion(
                        f"cube budget {max_cubes} exceeded"
                    )
            partial = new_partial
            if not partial:
                break
        out.extend(partial)
        if len(out) > max_cubes:
            raise SopExplosion(f"cube budget {max_cubes} exceeded")
    return out


def lutnet_to_cover(
    net: LUTNetwork, max_cubes: int = 20000
) -> Cover:
    """Flatten a fitted LUT network into a single-output SOP cover.

    Raises :class:`SopExplosion` when intermediate covers exceed
    ``max_cubes`` (flat two-level forms of deep networks can be
    exponentially large — the reason Team 6's flow was limited to
    modest network shapes).
    """
    if net.n_inputs is None:
        raise RuntimeError("LUT network is not fitted")
    k = net.lut_size
    fm = full_mask(k)
    # Per layer: positive and negative covers per cell, over primary
    # inputs.  Layer 0's "previous" cells are the inputs themselves.
    pos: list[list[Cube]] = [
        [Cube.from_literals([(i, 1)])] for i in range(net.n_inputs)
    ]
    neg: list[list[Cube]] = [
        [Cube.from_literals([(i, 0)])] for i in range(net.n_inputs)
    ]
    for conns, tables in zip(net.connections, net.tables, strict=True):
        new_pos: list[list[Cube]] = []
        new_neg: list[list[Cube]] = []
        for j in range(conns.shape[0]):
            table = 0
            for pattern, bit in enumerate(tables[j]):
                if bit:
                    table |= 1 << pattern
            fanin_pos = [pos[i] for i in conns[j]]
            fanin_neg = [neg[i] for i in conns[j]]
            cover_pos, _ = isop(table, table, k)
            cover_neg, _ = isop(~table & fm, ~table & fm, k)
            flat_pos = _compose(cover_pos, fanin_pos, fanin_neg,
                                max_cubes)
            flat_neg = _compose(cover_neg, fanin_pos, fanin_neg,
                                max_cubes)
            new_pos.append(
                Cover(net.n_inputs, flat_pos).remove_contained().cubes
            )
            new_neg.append(
                Cover(net.n_inputs, flat_neg).remove_contained().cubes
            )
        pos, neg = new_pos, new_neg
    return Cover(net.n_inputs, pos[0])
