"""PART rule list -> priority network AIG (the paper's Fig. 10).

Rules are evaluated in order, first match wins; the circuit chains
2:1 multiplexers from the last rule (default) back to the first.
"""

from __future__ import annotations

from repro.aig.aig import AIG, CONST0, CONST1, lit_not
from repro.ml.rules import RuleList


def rules_to_aig(rule_list: RuleList) -> AIG:
    aig = AIG(rule_list.n_inputs)
    inputs = aig.input_lits()
    out = CONST1 if rule_list.default else CONST0
    for rule in reversed(rule_list.rules):
        match = aig.add_and_multi(
            [
                inputs[feature] if value else lit_not(inputs[feature])
                for feature, value in rule.literals
            ]
        )
        label = CONST1 if rule.label else CONST0
        out = aig.add_mux(match, label, out)
    aig.set_output(out)
    return aig
