"""Pre-defined standard function matching (Teams 1 and 7).

The contest's hardest benchmarks (wide adder/comparator bits, parity,
symmetric functions) are nearly impossible to *learn* but easy to
*recognize*: the input words are wired LSB-to-MSB, so hypothesizing a
known function and checking it against every training sample either
confirms it exactly or rejects it.  On a match the exact circuit is
constructed directly and generalizes perfectly.

Matchers provided (checked in this order):

* symmetric functions (including parity) — label depends only on the
  input popcount;
* k-bit adder output bits (``n = 2k`` inputs, two LSB-first words),
  any output bit, most usefully the MSB / 2nd MSB;
* unsigned comparators (``a > b``, ``a >= b``, ``a < b``, ``a <= b``,
  equality);
* k-bit multiplier output bits (checked for completeness; the paper
  notes the resulting AIGs are only feasible for small k);
* word-level XOR / AND / OR (bitwise reductions).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.aig.aig import AIG, lit_not
from repro.aig.build import (
    comparator_greater,
    comparator_less,
    equality,
    multiplier,
    parity,
    ripple_adder,
    symmetric_function,
)
from repro.utils.bitops import rows_to_ints


@dataclass
class Match:
    """A recognized standard function and its exact circuit."""

    name: str
    aig: AIG


def _words(X: np.ndarray) -> tuple[list[int], list[int]] | None:
    """Split even-width inputs into two LSB-first word value lists."""
    n = X.shape[1]
    if n % 2:
        return None
    k = n // 2
    a = rows_to_ints(X[:, :k])
    b = rows_to_ints(X[:, k:])
    return a, b


def match_symmetric(X: np.ndarray, y: np.ndarray) -> Match | None:
    """Label must be a function of the popcount, with every observed
    count consistent.  Unseen counts are filled with 0."""
    counts = X.sum(axis=1).astype(np.int64)
    n = X.shape[1]
    signature = ["-"] * (n + 1)
    for c, label in zip(counts, y, strict=True):
        current = signature[c]
        if current == "-":
            signature[c] = "1" if label else "0"
        elif current != ("1" if label else "0"):
            return None
    # Require enough coverage that the match is meaningful.
    if sum(1 for ch in signature if ch != "-") < min(n + 1, 3):
        return None
    sig = "".join(ch if ch != "-" else "0" for ch in signature)
    aig = AIG(n)
    aig.set_output(symmetric_function(aig, aig.input_lits(), sig))
    return Match(f"symmetric[{sig}]", aig)


def _check_predicate(
    values: np.ndarray, y: np.ndarray
) -> bool:
    return bool(np.array_equal(values.astype(np.uint8), y))


def match_adder_bit(X: np.ndarray, y: np.ndarray) -> Match | None:
    words = _words(X)
    if words is None:
        return None
    a, b = words
    k = X.shape[1] // 2
    sums = np.array([av + bv for av, bv in zip(a, b, strict=True)], dtype=object)
    for bit in range(k, -1, -1):
        predicted = np.array([(s >> bit) & 1 for s in sums], dtype=np.uint8)
        if _check_predicate(predicted, y):
            aig = AIG(2 * k)
            lits = aig.input_lits()
            s = ripple_adder(aig, lits[:k], lits[k:])
            aig.set_output(s[bit])
            return Match(f"adder[{k}]bit{bit}", aig)
    return None


def match_comparator(X: np.ndarray, y: np.ndarray) -> Match | None:
    words = _words(X)
    if words is None:
        return None
    a, b = words
    k = X.shape[1] // 2
    av = np.array(a, dtype=object)
    bv = np.array(b, dtype=object)
    predicates: list[tuple[str, np.ndarray]] = [
        ("gt", np.array([x > z for x, z in zip(a, b, strict=True)], dtype=np.uint8)),
        ("ge", np.array([x >= z for x, z in zip(a, b, strict=True)], dtype=np.uint8)),
        ("lt", np.array([x < z for x, z in zip(a, b, strict=True)], dtype=np.uint8)),
        ("le", np.array([x <= z for x, z in zip(a, b, strict=True)], dtype=np.uint8)),
        ("eq", np.array([x == z for x, z in zip(a, b, strict=True)], dtype=np.uint8)),
    ]
    del av, bv
    for name, predicted in predicates:
        if not _check_predicate(predicted, y):
            continue
        aig = AIG(2 * k)
        lits = aig.input_lits()
        wa, wb = lits[:k], lits[k:]
        if name == "gt":
            out = comparator_greater(aig, wa, wb)
        elif name == "ge":
            out = lit_not(comparator_less(aig, wa, wb))
        elif name == "lt":
            out = comparator_less(aig, wa, wb)
        elif name == "le":
            out = lit_not(comparator_greater(aig, wa, wb))
        else:
            out = equality(aig, wa, wb)
        aig.set_output(out)
        return Match(f"comparator[{k}]{name}", aig)
    return None


def match_multiplier_bit(
    X: np.ndarray, y: np.ndarray, max_width: int = 16
) -> Match | None:
    """Multiplier output bits; circuit only built for small widths."""
    words = _words(X)
    if words is None:
        return None
    a, b = words
    k = X.shape[1] // 2
    if k > max_width:
        return None
    products = [av * bv for av, bv in zip(a, b, strict=True)]
    for bit in range(2 * k - 1, -1, -1):
        predicted = np.array([(p >> bit) & 1 for p in products], dtype=np.uint8)
        if _check_predicate(predicted, y):
            aig = AIG(2 * k)
            lits = aig.input_lits()
            prod = multiplier(aig, lits[:k], lits[k:])
            aig.set_output(prod[bit])
            return Match(f"multiplier[{k}]bit{bit}", aig)
    return None


def match_wordwise(X: np.ndarray, y: np.ndarray) -> Match | None:
    """Bitwise-reduction patterns: XOR/OR/AND over all inputs of one of
    the two halves, or of the whole vector."""
    n = X.shape[1]
    candidates: list[tuple[str, np.ndarray, list[int]]] = []
    whole = list(range(n))
    candidates.append(("xor_all", X.sum(axis=1) % 2, whole))
    candidates.append(("or_all", (X.sum(axis=1) > 0).astype(np.uint8), whole))
    candidates.append(
        ("and_all", (X.sum(axis=1) == n).astype(np.uint8), whole)
    )
    for name, predicted, cols in candidates:
        if not _check_predicate(predicted.astype(np.uint8), y):
            continue
        aig = AIG(n)
        lits = [aig.input_lit(c) for c in cols]
        if name == "xor_all":
            out = parity(aig, lits)
        elif name == "or_all":
            out = aig.add_or_multi(lits)
        else:
            out = aig.add_and_multi(lits)
        aig.set_output(out)
        return Match(name, aig)
    return None


_MATCHERS: list[Callable[[np.ndarray, np.ndarray], Match | None]] = [
    match_wordwise,
    match_symmetric,
    match_adder_bit,
    match_comparator,
    match_multiplier_bit,
]


def match_standard_function(
    X: np.ndarray, y: np.ndarray, max_nodes: int = 5000
) -> Match | None:
    """Try every matcher; return the first exact match whose circuit
    fits the node budget."""
    X = np.asarray(X, dtype=np.uint8)
    y = np.asarray(y, dtype=np.uint8).ravel()
    if X.shape[0] == 0:
        return None
    for matcher in _MATCHERS:
        found = matcher(X, y)
        if found is not None and found.aig.num_ands <= max_nodes:
            return found
    return None
