"""Bridges from learned models to And-Inverter Graphs.

Each team's flow ends by compiling its model into the contest's AIG
format: decision trees become MUX trees (Teams 8/10) or path covers
(Teams 2/5/7), rule lists become priority networks (Team 2), forests
get a majority voter (Teams 5/8), boosted trees a MAJ-5 tree (Team 7),
pruned MLP neurons and LUT-network cells become LUTs (Teams 3/6).
"""

from repro.synth.from_boosted import boosted_to_aig
from repro.synth.from_forest import forest_to_aig
from repro.synth.from_lutnet import lutnet_to_aig
from repro.synth.from_mlp import mlp_to_aig
from repro.synth.from_rules import rules_to_aig
from repro.synth.from_sop import cover_to_aig
from repro.synth.from_tree import fringe_dt_to_aig, tree_to_aig
from repro.synth.matching import match_standard_function
from repro.synth.popcount_tree import PopcountTreeClassifier
from repro.synth.verilog import aig_to_verilog, tree_to_verilog

__all__ = [
    "cover_to_aig",
    "tree_to_aig",
    "fringe_dt_to_aig",
    "forest_to_aig",
    "rules_to_aig",
    "boosted_to_aig",
    "mlp_to_aig",
    "lutnet_to_aig",
    "match_standard_function",
    "PopcountTreeClassifier",
    "aig_to_verilog",
    "tree_to_verilog",
]
