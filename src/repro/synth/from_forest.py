"""Random forest -> voter AIG (per-tree MUX trees + wide majority)."""

from __future__ import annotations

from repro.aig.aig import AIG
from repro.aig.build import majority_n
from repro.ml.forest import RandomForest
from repro.synth.from_tree import tree_output_lit


def forest_to_aig(forest: RandomForest) -> AIG:
    """Compile each tree, then vote with a ones-counter majority."""
    if forest.n_inputs is None:
        raise RuntimeError("forest is not fitted")
    aig = AIG(forest.n_inputs)
    inputs = aig.input_lits()
    votes = []
    for tree, cols in zip(forest.trees, forest.feature_subsets, strict=True):
        feature_lits = [inputs[c] for c in cols]
        votes.append(tree_output_lit(tree, aig, feature_lits))
    aig.set_output(majority_n(aig, votes))
    return aig
