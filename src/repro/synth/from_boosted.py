"""Boosted trees -> quantized-vote AIG (Team 7's pipeline).

Each regression tree's leaves are quantized to one bit (weight > 0);
the ensemble output is the majority of these bits, realized with a
3-layer MAJ-5 tree when the ensemble has at most 125 trees (the
paper's Fig. 25 approximation) or an exact ones-counter majority
otherwise.
"""

from __future__ import annotations

from repro.aig.aig import AIG, CONST0, CONST1
from repro.aig.build import maj5_tree, majority_n
from repro.ml.boosting import GradientBoostedTrees, _RegressionTree


def _reg_tree_lit(aig: AIG, tree: _RegressionTree, inputs: list[int]) -> int:
    memo: dict[int, int] = {}

    def rec(node_id: int) -> int:
        found = memo.get(node_id)
        if found is not None:
            return found
        node = tree.nodes[node_id]
        if node.is_leaf:
            lit = CONST1 if node.weight > 0 else CONST0
        else:
            lit = aig.add_mux(
                inputs[node.feature], rec(node.right), rec(node.left)
            )
        memo[node_id] = lit
        return lit

    return rec(0)


def boosted_to_aig(
    model: GradientBoostedTrees, exact_majority: bool = False
) -> AIG:
    """Compile the quantized ensemble vote.

    ``exact_majority=True`` uses an exact ones-counter vote instead of
    the approximate MAJ-5 tree.
    """
    if model.n_inputs is None:
        raise RuntimeError("model is not fitted")
    aig = AIG(model.n_inputs)
    inputs = aig.input_lits()
    bits = [_reg_tree_lit(aig, tree, inputs) for tree in model.trees]
    if not bits:
        aig.set_output(CONST1 if model.base_margin > 0 else CONST0)
        return aig
    if len(bits) == 1:
        aig.set_output(bits[0])
        return aig
    if len(bits) % 2 == 0:
        bits.append(bits[-1])  # break ties toward the last tree
    if exact_majority or len(bits) > 125:
        out = majority_n(aig, bits)
    else:
        out = maj5_tree(aig, bits)
    aig.set_output(out)
    return aig
