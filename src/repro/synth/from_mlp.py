"""Pruned MLP -> LUT network -> AIG (Team 3's neuron-to-LUT step).

Each neuron of a connection-pruned MLP has a small surviving fanin
set; enumerating all fanin assignments and thresholding the activation
at 0.5 turns the neuron into a truth table (the paper's Fig. 15),
which is realized as a LUT over the literals of its fanin neurons.
"""

from __future__ import annotations

import numpy as np

from repro.aig.aig import AIG
from repro.aig.build import lut
from repro.ml.mlp import MLP, _act

MAX_FANIN_FOR_SYNTH = 16


def _neuron_table(weights: np.ndarray, bias: float, activation: str) -> int:
    """Truth table of one neuron over its fanin bits (threshold 0.5)."""
    k = weights.shape[0]
    if k > MAX_FANIN_FOR_SYNTH:
        raise ValueError(
            f"neuron fanin {k} too large to enumerate; prune the network "
            f"to <= {MAX_FANIN_FOR_SYNTH} first"
        )
    table = 0
    for pattern in range(1 << k):
        bits = np.array([(pattern >> i) & 1 for i in range(k)], dtype=float)
        z = float(weights @ bits + bias)
        if _act(activation, np.array(z)) >= 0.5:
            table |= 1 << pattern
    return table


def mlp_to_aig(model: MLP) -> AIG:
    """Compile a fitted (and pruned) MLP into an AIG."""
    if not model.layers or model.n_inputs is None:
        raise RuntimeError("MLP is not fitted")
    aig = AIG(model.n_inputs)
    prev_lits: list[int] = aig.input_lits()
    for layer in model.layers:
        masked = layer.W * layer.mask
        new_lits: list[int] = []
        for j in range(masked.shape[1]):
            alive = np.nonzero(layer.mask[:, j])[0]
            table = _neuron_table(
                masked[alive, j], float(layer.b[j]), layer.activation
            )
            leaves = [prev_lits[i] for i in alive]
            if not leaves:
                # Dead neuron: constant from the bias alone.
                value = _act(layer.activation, np.array(float(layer.b[j])))
                new_lits.append(1 if value >= 0.5 else 0)
                continue
            new_lits.append(lut(aig, table, leaves))
        prev_lits = new_lits
    aig.set_output(prev_lits[0])
    return aig
