"""SOP cover -> AIG.

Lowers a two-level :class:`~repro.twolevel.cover.Cover` into the AIG
the contest scores: each cube becomes an AND tree over its literals,
cubes are OR-ed via De Morgan.  Purely structural and deterministic —
cube and literal order fix the node order, so the same cover always
produces the same graph.
"""

from __future__ import annotations

from repro.aig.aig import AIG
from repro.aig.build import sop_over_leaves
from repro.twolevel.cover import Cover


def cover_to_aig(cover: Cover) -> AIG:
    """AND/OR network computing the cover (inputs in cube bit order)."""
    aig = AIG(cover.n_inputs)
    cubes = [tuple(cube.literals()) for cube in cover]
    out = sop_over_leaves(aig, cubes, aig.input_lits())
    aig.set_output(out)
    return aig
