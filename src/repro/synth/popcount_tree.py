"""Noisy-symmetric learning via a popcount side circuit (Team 7).

"[A symmetric function] can be implemented by adding a side circuit
that counts N1, i.e., the number of ones in the input bits, and a
decision tree that learns the relationship between N1 and the original
output."  Unlike the exact symmetric matcher, this works when the data
is *approximately* symmetric (noisy labels): the tree learns a
threshold structure over the popcount bits and tolerates
inconsistencies.
"""

from __future__ import annotations

import numpy as np

from repro.aig.aig import AIG
from repro.aig.build import ones_counter
from repro.ml.decision_tree import DecisionTree
from repro.synth.from_tree import tree_output_lit


class PopcountTreeClassifier:
    """Decision tree over the binary digits of the input popcount."""

    def __init__(self, max_depth: int | None = 6):
        self.max_depth = max_depth
        self.tree: DecisionTree | None = None
        self.n_inputs: int | None = None
        self._count_bits: int | None = None

    def _features(self, X: np.ndarray) -> np.ndarray:
        counts = np.asarray(X, dtype=np.uint8).sum(axis=1).astype(np.int64)
        bits = np.zeros((X.shape[0], self._count_bits), dtype=np.uint8)
        for i in range(self._count_bits):
            bits[:, i] = (counts >> i) & 1
        return bits

    def fit(self, X: np.ndarray, y: np.ndarray) -> "PopcountTreeClassifier":
        X = np.asarray(X, dtype=np.uint8)
        self.n_inputs = X.shape[1]
        self._count_bits = max(1, int(np.ceil(np.log2(X.shape[1] + 1))))
        self.tree = DecisionTree(max_depth=self.max_depth)
        self.tree.fit(self._features(X), np.asarray(y, dtype=np.uint8))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.tree is None:
            raise RuntimeError("classifier is not fitted")
        return self.tree.predict(self._features(X))

    def to_aig(self) -> AIG:
        """Ones-counter side circuit feeding the tree's MUX network."""
        if self.tree is None or self.n_inputs is None:
            raise RuntimeError("classifier is not fitted")
        aig = AIG(self.n_inputs)
        count = ones_counter(aig, aig.input_lits())
        count = count[: self._count_bits]
        while len(count) < self._count_bits:
            count.append(0)
        aig.set_output(tree_output_lit(self.tree, aig, count))
        return aig
