"""Decision tree -> MUX-tree AIG (Teams 8 and 10's conversion).

Every internal node becomes a 2:1 multiplexer selected by its feature;
leaves become constants.  Shared subtrees are shared automatically by
structural hashing.
"""

from __future__ import annotations

from repro.aig.aig import AIG, CONST0, CONST1
from repro.ml.decision_tree import DecisionTree
from repro.ml.fringe import FringeDT


def _tree_lit(
    aig: AIG, tree: DecisionTree, node_id: int, feature_lits: list[int],
    memo: dict[int, int],
) -> int:
    found = memo.get(node_id)
    if found is not None:
        return found
    node = tree.nodes[node_id]
    if node.is_leaf:
        lit = CONST1 if node.value else CONST0
    else:
        t = _tree_lit(aig, tree, node.right, feature_lits, memo)
        e = _tree_lit(aig, tree, node.left, feature_lits, memo)
        lit = aig.add_mux(feature_lits[node.feature], t, e)
    memo[node_id] = lit
    return lit


def tree_to_aig(
    tree: DecisionTree,
    aig: AIG | None = None,
    feature_lits: list[int] | None = None,
) -> AIG:
    """Compile a fitted tree.

    With no arguments a fresh AIG over the tree's raw inputs is
    created; passing ``aig`` + ``feature_lits`` grafts the tree onto an
    existing graph (used by the forest and fringe bridges).
    """
    standalone = aig is None
    if standalone:
        aig = AIG(tree.n_inputs)
        feature_lits = aig.input_lits()
    lit = _tree_lit(aig, tree, 0, feature_lits, {})
    aig.set_output(lit)
    return aig


def tree_output_lit(
    tree: DecisionTree, aig: AIG, feature_lits: list[int]
) -> int:
    """Graft a tree onto ``aig``; returns its output literal."""
    return _tree_lit(aig, tree, 0, feature_lits, {})


def fringe_dt_to_aig(model: FringeDT) -> AIG:
    """Compile a fringe DT: composite features first, then the tree."""
    if model.tree is None or model.n_raw_inputs is None:
        raise RuntimeError("FringeDT is not fitted")
    aig = AIG(model.n_raw_inputs)
    feature_lits = list(aig.input_lits())
    for feat in model.features:
        a = feature_lits[feat.var_a]
        b = feature_lits[feat.var_b]
        feature_lits.append(_fringe_lit(aig, feat.op, a, b))
    lit = _tree_lit(aig, model.tree, 0, feature_lits, {})
    aig.set_output(lit)
    return aig


def _fringe_lit(aig: AIG, op: str, a: int, b: int) -> int:
    from repro.aig.aig import lit_not

    if op == "and":
        return aig.add_and(a, b)
    if op == "and_na":
        return aig.add_and(lit_not(a), b)
    if op == "and_nb":
        return aig.add_and(a, lit_not(b))
    if op == "nor":
        return aig.add_and(lit_not(a), lit_not(b))
    if op == "or":
        return aig.add_or(a, b)
    if op == "or_na":
        return aig.add_or(lit_not(a), b)
    if op == "or_nb":
        return aig.add_or(a, lit_not(b))
    if op == "nand":
        return lit_not(aig.add_and(a, b))
    if op == "xor":
        return aig.add_xor(a, b)
    if op == "xnor":
        return lit_not(aig.add_xor(a, b))
    if op == "not_a":
        return lit_not(a)
    if op == "not_b":
        return lit_not(b)
    raise ValueError(f"unknown fringe op {op!r}")
