"""Memorization LUT network -> AIG (Teams 1 and 6).

Lowers a trained :class:`~repro.ml.lutnet.LUTNetwork` layer by layer:
every cell's truth table is realized over its fanin literals via
:func:`repro.aig.build.lut` (cheaper-polarity irredundant SOP,
structural hashing in the target graph).  Deterministic: layer, unit
and fanin order fix the construction order.
"""

from __future__ import annotations

from repro.aig.aig import AIG
from repro.aig.build import lut
from repro.ml.lutnet import LUTNetwork


def lutnet_to_aig(model: LUTNetwork) -> AIG:
    """Realize every LUT cell over its fanin literals, layer by layer."""
    if model.n_inputs is None:
        raise RuntimeError("LUT network is not fitted")
    aig = AIG(model.n_inputs)
    prev: list[int] = aig.input_lits()
    for conns, tables in zip(model.connections, model.tables, strict=True):
        new: list[int] = []
        for j in range(conns.shape[0]):
            table = 0
            for pattern, bit in enumerate(tables[j]):
                if bit:
                    table |= 1 << pattern
            leaves = [prev[i] for i in conns[j]]
            new.append(lut(aig, table, leaves))
        prev = new
    aig.set_output(prev[0])
    return aig
