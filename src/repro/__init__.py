"""Reproduction of "Logic Synthesis Meets Machine Learning: Trading
Exactness for Generalization" (IWLS 2020 contest, DATE 2021).

Top-level convenience re-exports; see the subpackages for the full
API:

- :mod:`repro.aig` — And-Inverter Graphs, simulation, AIGER, optimization
- :mod:`repro.twolevel` — cubes, covers, PLA files, espresso, QM
- :mod:`repro.bdd` — ROBDDs with don't-care minimization
- :mod:`repro.ml` — from-scratch learners (trees, forests, boosting,
  rules, MLPs, LUT networks, feature selection, Shapley values)
- :mod:`repro.cgp` — Cartesian genetic programming
- :mod:`repro.synth` — model-to-AIG bridges and function matching
- :mod:`repro.contest` — the 100-benchmark suite and scoring harness
- :mod:`repro.flows` — the ten team flows and the portfolio
- :mod:`repro.analysis` — Table III / Fig. 2-4 regeneration
"""

from repro.aig import AIG
from repro.contest import (
    LearningProblem,
    Solution,
    build_suite,
    evaluate_solution,
    make_problem,
)
from repro.ml.dataset import Dataset

__version__ = "1.0.0"

__all__ = [
    "AIG",
    "Dataset",
    "LearningProblem",
    "Solution",
    "build_suite",
    "evaluate_solution",
    "make_problem",
    "__version__",
]
