"""Cheap structural features over AIGs for learned pass scheduling.

One fixed-length float vector per graph (:data:`FEATURE_NAMES` is the
schema), combining:

- size/shape statistics (node, level, input, output counts, width),
- fanout statistics (mean, max, spread, single-fanout fraction — the
  signal ``balance`` exploits),
- complemented-edge fraction,
- a cut-size histogram over the same 4-input cut enumeration
  ``rewrite`` prices (how much of the graph is coverable by library
  cuts),
- an NPN-class distribution summary: each node's widest cut function
  is NPN-canonicalized and bucketed by canonical minterm density, plus
  the entropy of that distribution,
- bit-parallel simulation signatures (node/output bias) through the
  levelized engine.

Everything is a pure function of the graph structure: the simulation
patterns are drawn from a :func:`repro.utils.rng.rng_for` stream named
by the graph's shape, and the sim backends are bit-identical by
contract (the differential tests pin numpy/fused/numba agreement), so
the vector is byte-deterministic across processes, job counts and
executor backends.

Vectors are cached per AIG instance keyed on ``(structural version,
outputs)`` — the same keying the compile cache in
:meth:`repro.aig.aig.AIG.compiled` uses — so a scheduling loop that
probes features between passes never recomputes them for an unchanged
graph.
"""

from __future__ import annotations

import math

import numpy as np

from repro.aig.aig import AIG
from repro.aig.cuts import enumerate_cuts_with_truths
from repro.aig.opt.npn import npn_canon
from repro.utils.rng import rng_for

#: Density buckets for the NPN-class distribution: canonical minterm
#: fraction of each node's widest cut function, binned into fifths.
_NPN_BUCKETS = 5

#: 64-bit words of random stimulus per simulation signature.
_SIM_WORDS = 2

FEATURE_NAMES: tuple[str, ...] = (
    "log_ands",
    "log_depth",
    "log_inputs",
    "log_outputs",
    "width",                # ANDs per level
    "fanout_mean",
    "fanout_max_log",
    "fanout_sigma",
    "frac_single_fanout",
    "frac_compl_edges",
    "cut2_frac",
    "cut3_frac",
    "cut4_frac",
    *(f"npn_density_b{i}" for i in range(_NPN_BUCKETS)),
    "npn_entropy",
    "sim_bias_mean",
    "sim_bias_sigma",
    "out_bias",
)

#: Length of the vector :func:`extract_features` returns.
N_FEATURES = len(FEATURE_NAMES)


def _fanout_features(aig: AIG) -> tuple[float, float, float, float, float]:
    counts = aig.fanout_counts()[aig.n_inputs + 1 :]
    if counts.size == 0:
        return 0.0, 0.0, 0.0, 0.0, 0.0
    compl = 0
    for fanins in (aig._fanin0, aig._fanin1):
        arr = np.asarray(fanins, dtype=np.int64)
        compl += int((arr & 1).sum())
    total_edges = 2 * aig.num_ands
    return (
        float(counts.mean()),
        math.log1p(float(counts.max())),
        float(counts.std()),
        float((counts == 1).mean()),
        compl / total_edges if total_edges else 0.0,
    )


def _cut_features(aig: AIG) -> tuple[float, ...]:
    """Cut-size histogram + NPN density distribution + entropy."""
    if aig.num_ands == 0:
        return (0.0, 0.0, 0.0) + (0.0,) * _NPN_BUCKETS + (0.0,)
    node_cuts = enumerate_cuts_with_truths(aig, k=4, max_cuts=8)
    size_hist = np.zeros(3, dtype=np.float64)  # cut sizes 2, 3, 4
    buckets = np.zeros(_NPN_BUCKETS, dtype=np.float64)
    n_cuts = 0
    base = aig.n_inputs + 1
    for var in range(base, aig.num_vars):
        widest: tuple[tuple[int, ...], int] | None = None
        for cut, table in node_cuts.get(var, ()):
            if len(cut) < 2:
                continue
            size_hist[len(cut) - 2] += 1
            n_cuts += 1
            if widest is None or len(cut) > len(widest[0]):
                widest = (cut, table)
        if widest is None:
            continue
        cut, table = widest
        k = len(cut)
        canon = npn_canon(table, k)[0]
        density = bin(canon).count("1") / (1 << k)
        # density is in [0, 1]; the canonical rep of a class is the
        # numerically smallest table, biasing density below 1/2 —
        # which is exactly the class signal we want to expose.
        idx = min(int(density * _NPN_BUCKETS), _NPN_BUCKETS - 1)
        buckets[idx] += 1
    if n_cuts:
        size_hist /= n_cuts
    total = buckets.sum()
    if total:
        buckets /= total
        nz = buckets[buckets > 0]
        entropy = float(-(nz * np.log(nz)).sum())
    else:
        entropy = 0.0
    return (*size_hist.tolist(), *buckets.tolist(), entropy)


def _sim_features(aig: AIG, backend: str | None) -> tuple[float, float, float]:
    """Random-stimulus bias signatures through the levelized engine."""
    if aig.n_inputs == 0 or aig.num_ands == 0:
        return 0.0, 0.0, 0.0
    rng = rng_for("sched-features", aig.n_inputs, aig.num_ands)
    packed = rng.integers(
        0, 1 << 64, size=(aig.n_inputs, _SIM_WORDS), dtype=np.uint64
    )
    values = aig.simulate_packed_all(packed, backend=backend)
    n_bits = 64 * _SIM_WORDS
    ones = np.unpackbits(
        np.ascontiguousarray(values).view(np.uint8), axis=1
    ).sum(axis=1)
    bias = ones.astype(np.float64) / n_bits
    and_bias = bias[aig.n_inputs + 1 :]
    out_bias = [
        1.0 - bias[o >> 1] if (o & 1) else bias[o >> 1]
        for o in aig.outputs
    ]
    return (
        float(and_bias.mean()),
        float(and_bias.std()),
        float(np.mean(out_bias)) if out_bias else 0.0,
    )


def extract_features(
    aig: AIG, backend: str | None = None
) -> np.ndarray:
    """The feature vector of ``aig`` (shape ``(N_FEATURES,)``, float64).

    Pure numpy + the levelized sim engine; deterministic for a given
    structure, identical on every sim backend.  Cached on the instance
    under the same ``(version, outputs)`` key the compile cache uses,
    so repeated probes of an unchanged graph are dictionary hits.
    """
    key = (aig._version, tuple(aig.outputs))
    cached = getattr(aig, "_sched_features", None)
    if cached is not None and cached[0] == key:
        return cached[1]
    if aig.num_ands:
        depth = aig.depth()
    else:
        depth = 0
    vec = np.array(
        [
            math.log1p(aig.num_ands),
            math.log1p(depth),
            math.log1p(aig.n_inputs),
            math.log1p(aig.num_outputs),
            aig.num_ands / depth if depth else 0.0,
            *_fanout_features(aig),
            *_cut_features(aig),
            *_sim_features(aig, backend),
        ],
        dtype=np.float64,
    )
    if vec.shape != (N_FEATURES,):  # pragma: no cover - schema guard
        raise AssertionError(
            f"feature vector has {vec.shape[0]} entries, schema names "
            f"{N_FEATURES}"
        )
    aig._sched_features = (key, vec)
    return vec
