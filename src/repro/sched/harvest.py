"""Harvest learned-scheduling training data from contest run stores.

A contest run with ``--keep-solutions`` leaves behind exactly what
pass-scheduling needs to learn from: real learned circuits, one per
``(benchmark, flow, seed)`` task, stored as ``.aag`` text alongside
canonical records.  The harvester replays those circuits — **without
re-executing any flow** — by applying each optimization pass to each
circuit and recording ``(features, pass, QoR delta)`` tuples, then
rolling the circuit forward along the best pass (the greedy teacher)
for a few horizon steps so the data covers mid-schedule graph shapes,
not just flow outputs.

Determinism contract: stored records and solutions are byte-identical
regardless of the ``--jobs`` count that produced the store (the
runner's golden property), harvesting iterates task keys in sorted
order, every pass is deterministic (``fraig_lite`` derives its RNG
from the graph shape), and tuples serialize with sorted keys and fixed
separators — so :func:`tuples_to_jsonl` output is a pure function of
the store's contents.  ``bench_sched.py`` pins this byte-for-byte
across jobs counts.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from pathlib import Path
from typing import Any

from functools import partial

from repro.aig.aig import AIG
from repro.aig.aiger import loads_aag
from repro.aig.optimize import balance, fraig_lite, refactor, rewrite
from repro.runner.store import PathLike, RunStore
from repro.sched.features import extract_features

#: The schedulable pass palette, in canonical (tie-break) order.  The
#: first four are exactly ``compress``'s round; the ``*_deep``
#: variants are moves ``compress`` never makes — bigger refactor cones
#: and a stronger fraig proof — whose cost/benefit trade-off is
#: precisely what the learned policy arbitrates.
PASS_NAMES: tuple[str, ...] = (
    "balance",
    "rewrite",
    "refactor",
    "fraig_lite",
    "refactor_deep",
    "fraig_deep",
)

#: name -> deterministic pass callable (``fraig_lite`` self-seeds its
#: RNG from the graph shape when none is passed).
PASSES = {
    "balance": balance,
    "rewrite": rewrite,
    "refactor": refactor,
    "fraig_lite": fraig_lite,
    "refactor_deep": partial(refactor, max_leaves=14),
    "fraig_deep": partial(
        fraig_lite, n_words=8, max_leaves=16, max_visit=128
    ),
}


def apply_pass(name: str, aig: AIG) -> AIG:
    """Apply one palette pass by name (defaults only, deterministic)."""
    try:
        fn = PASSES[name]
    except KeyError:
        raise KeyError(
            f"unknown pass {name!r} (palette: {list(PASS_NAMES)})"
        ) from None
    return fn(aig)


def harvest_circuit(
    aig: AIG,
    key: str,
    horizon: int = 3,
) -> list[dict[str, Any]]:
    """Tuples from one circuit: probe every pass at each horizon step.

    At each step every palette pass is applied to the current graph
    and its size/depth deltas recorded; the graph then advances along
    the best pass by ``(size, depth)`` — the greedy teacher whose
    choices the offline policy regresses toward.  Stops early when no
    pass improves the graph.
    """
    aig = aig.extract_cone()
    tuples: list[dict[str, Any]] = []
    for step in range(horizon):
        if aig.num_ands == 0:
            break
        phi = extract_features(aig)
        size, depth = aig.num_ands, aig.depth()
        results: dict[str, AIG] = {}
        for name in PASS_NAMES:
            out = apply_pass(name, aig)
            results[name] = out
            tuples.append({
                "key": key,
                "step": step,
                "pass": name,
                "features": [float(x) for x in phi],
                "size_before": size,
                "size_after": out.num_ands,
                "depth_before": depth,
                "depth_after": out.depth(),
            })
        best = min(
            PASS_NAMES,
            key=lambda n: (results[n].num_ands, results[n].depth()),
        )
        nxt = results[best]
        if (nxt.num_ands, nxt.depth()) >= (size, depth):
            break
        aig = nxt
    return tuples


def harvest_store(
    root: PathLike,
    horizon: int = 3,
    max_circuits: int | None = None,
) -> list[dict[str, Any]]:
    """Training tuples from one run directory's kept solutions.

    Task keys are visited in sorted order; records without a stored
    ``.aag`` are skipped (harvesting never re-runs a flow to get one).
    """
    store = RunStore(root)
    records = store.load_records()
    tuples: list[dict[str, Any]] = []
    n_circuits = 0
    for key in sorted(records):
        text = store.solution_text(key)
        if text is None:
            continue
        if max_circuits is not None and n_circuits >= max_circuits:
            break
        n_circuits += 1
        tuples.extend(harvest_circuit(loads_aag(text), key, horizon))
    return tuples


def harvest_run_dirs(
    roots: Iterable[PathLike],
    horizon: int = 3,
    max_circuits: int | None = None,
) -> list[dict[str, Any]]:
    """Harvest several run directories (e.g. nightly shard stores)."""
    tuples: list[dict[str, Any]] = []
    for root in roots:
        tuples.extend(harvest_store(root, horizon, max_circuits))
    return tuples


def tuples_to_jsonl(tuples: Iterable[dict[str, Any]]) -> str:
    """Canonical JSONL serialization (the byte-determinism surface)."""
    return "".join(
        json.dumps(t, sort_keys=True, separators=(",", ":")) + "\n"
        for t in tuples
    )


def load_tuples(path: PathLike) -> list[dict[str, Any]]:
    """Read tuples written by :func:`tuples_to_jsonl`."""
    out: list[dict[str, Any]] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out
