"""Learned pass scheduling over the optimization engine.

The opt engine (:mod:`repro.aig.opt`) exposes ``compress`` — one fixed
pass recipe every flow runs regardless of circuit shape.  This package
makes the schedule *learned*, in the DRiLLS/LOSTIN direction:

:mod:`repro.sched.features`
    A cheap structural feature extractor over AIGs (node/level counts,
    fanout statistics, cut-size histogram, NPN-class distribution,
    simulation signatures) — pure numpy, version-keyed caching like
    the compile cache.

:mod:`repro.sched.harvest`
    A training-data harvester that replays runner stores
    (:class:`~repro.runner.store.RunStore` records plus kept ``.aag``
    solutions) into ``(features, pass, QoR-delta)`` tuples without
    re-executing any flow.  Harvest output is byte-deterministic: the
    same store contents produce the same canonical JSONL regardless of
    the ``--jobs`` count that wrote the store.

:mod:`repro.sched.policy`
    Linear value models over the features: offline ridge training
    (:func:`~repro.sched.policy.train_policy`), a pure-greedy
    scheduler, and an epsilon-greedy contextual bandit that keeps
    learning online.  All randomness flows through
    :func:`repro.utils.rng.rng_for` streams so contest records stay
    byte-reproducible.

:mod:`repro.sched.scheduler`
    The schedule loop: extract features, let the policy pick the next
    pass (``balance`` / ``rewrite`` / ``refactor`` / ``fraig_lite``),
    apply, repeat under a budget.  Never returns a graph larger than
    its input; every pass is exact, so the result is functionally
    identical to the input.

:mod:`repro.sched.flow`
    Registration as contest flows — ``learned`` (bandit) and
    ``learned-greedy`` — so learned scheduling competes in the contest
    grid, sharded runs, the nightly sweep and serving like any team.
"""

from repro.sched.features import FEATURE_NAMES, extract_features
from repro.sched.harvest import (
    PASS_NAMES,
    harvest_circuit,
    harvest_run_dirs,
    harvest_store,
    load_tuples,
    tuples_to_jsonl,
)
from repro.sched.policy import (
    EpsilonGreedyBandit,
    GreedyPolicy,
    LinearPolicy,
    default_policy,
    load_policy,
    save_policy,
    train_policy,
)
from repro.sched.scheduler import schedule_opt

__all__ = [
    "EpsilonGreedyBandit",
    "FEATURE_NAMES",
    "GreedyPolicy",
    "LinearPolicy",
    "PASS_NAMES",
    "default_policy",
    "extract_features",
    "harvest_circuit",
    "harvest_run_dirs",
    "harvest_store",
    "load_policy",
    "load_tuples",
    "save_policy",
    "schedule_opt",
    "train_policy",
    "tuples_to_jsonl",
]
