"""The learned schedule loop: features -> policy -> pass -> repeat.

:func:`schedule_opt` puts a learned policy in ``compress``'s seat.
Both are hill-climbers over the same palette with the same adoption
rule — a pass result is kept only if it improves ``(size, depth)`` —
but where ``compress`` sweeps the palette in one fixed order for at
most three rounds, the scheduler asks the policy which pass to try
next and keeps going until the pass budget runs out or no pass can
improve the graph (a single-pass fixpoint, the same termination class
``compress`` approximates).

Passes that failed to improve the *current* graph are masked until
some pass improves it again — a deterministic policy would otherwise
re-pick its argmax forever on an unchanged graph.  The policy still
observes the reward of every probe (the bandit learns online from
failures too).

Guarantees:

- **Never larger.** Only improving results are adopted, so the
  returned graph's ``(size, depth)`` is at most the input cone's.
- **Exact.** Every palette pass preserves equivalence, so the result
  computes the same function as the input.
- **Deterministic.** Pass implementations are deterministic and the
  only randomness is the caller-supplied seeded generator used for
  bandit exploration — same ``(graph, policy, budget, rng stream)``
  means the same schedule, byte for byte.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.aig.aig import AIG
from repro.sched.features import extract_features
from repro.sched.harvest import PASS_NAMES, apply_pass


class Policy(Protocol):
    """What :func:`schedule_opt` needs from a scheduling policy."""

    def choose(
        self,
        features: np.ndarray,
        rng: np.random.Generator | None,
        exclude: frozenset[str] = frozenset(),
    ) -> str | None: ...

    def update(
        self, name: str, features: np.ndarray, reward: float
    ) -> None: ...


def _qor(aig: AIG) -> tuple[int, int]:
    return (aig.num_ands, aig.depth() if aig.num_ands else 0)


def schedule_opt(
    aig: AIG,
    policy: Policy,
    budget: int = 20,
    rng: np.random.Generator | None = None,
    backend: str | None = None,
) -> tuple[AIG, list[str]]:
    """Optimize ``aig`` by letting ``policy`` schedule up to ``budget``
    pass applications; returns ``(graph, applied pass sequence)``.

    ``rng`` feeds bandit exploration only; greedy policies never touch
    it, so it may be ``None`` for them.  The history records every
    pass *tried* (adopted or not) — its length is the true work done.
    """
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    current = aig.extract_cone()
    qor = _qor(current)
    history: list[str] = []
    tried: set[str] = set()
    while len(history) < budget and current.num_ands:
        if len(tried) == len(PASS_NAMES):
            break  # single-pass fixpoint: nothing can improve
        phi = extract_features(current, backend=backend)
        name = policy.choose(phi, rng, exclude=frozenset(tried))
        if name is None:
            break
        nxt = apply_pass(name, current)
        reward = (current.num_ands - nxt.num_ands) / max(
            current.num_ands, 1
        )
        policy.update(name, phi, reward)
        history.append(name)
        nxt_qor = _qor(nxt)
        if nxt_qor < qor:
            current, qor = nxt, nxt_qor
            tried = set()
        else:
            tried.add(name)
    return current, history
