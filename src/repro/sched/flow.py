"""Learned-scheduling contest flows: ``learned`` and ``learned-greedy``.

Both flows share one candidate recipe — decision trees at a few leaf
granularities, trained on train+valid merged and synthesized through
the SOP path (deterministic, so the trees are artifact-cached and
shared with the fixed-schedule twin) — and differ only in how the
resulting circuits are optimized:

``learned``
    The epsilon-greedy contextual bandit: warm-started from the
    packaged offline policy, exploring with a flow-seeded RNG stream
    and learning online across the run's candidates.  Spec overrides:
    ``learned:budget=20,epsilon=0.1``.

``learned-greedy``
    Pure exploitation of the packaged policy — no exploration, no
    online updates.  Spec override: ``learned-greedy:budget=20``.

The schedule stage mirrors ``finalize_aig`` exactly (cone-extract,
skip the learned loop above ``optimize_limit`` nodes in favour of a
single ``balance``, approximate down to the contest node cap and
re-schedule) so the learned flows obey the same legality rules as
every team flow.  :func:`fixed_twin` builds the unregistered
control flow — identical candidates, classic ``compress`` finalize —
that ``bench_sched.py`` races the learned flows against.

Determinism: tree training is exact, the packaged policy is a
committed artifact, and bandit exploration draws only from the flow's
:func:`~repro.flows.common.flow_rng` stream — so contest records stay
byte-reproducible for a given ``(problem, seed)``.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.aig.aig import AIG
from repro.aig.approx import approximate_to_size
from repro.aig.optimize import balance
from repro.contest.problem import MAX_AND_NODES, LearningProblem, Solution
from repro.flows.api import (
    ArtifactCache,
    Candidate,
    FinalizeSpec,
    Flow,
    FlowContext,
    FlowResult,
    Stage,
)
from repro.flows.registry import register
from repro.ml.decision_tree import DecisionTree
from repro.sched.policy import EpsilonGreedyBandit, default_policy
from repro.sched.scheduler import schedule_opt
from repro.synth.from_sop import cover_to_aig

#: Above this many AND nodes the learned loop is skipped for a single
#: ``balance`` — the same threshold ``FinalizeSpec`` applies.
OPTIMIZE_LIMIT = FinalizeSpec().optimize_limit


def _tree_candidates_stage(ctx: FlowContext) -> list[Candidate]:
    """Decision trees at the effort grid's leaf granularities.

    Training is deterministic, so each tree is artifact-cached by its
    data digest + hyper-parameters and shared across every flow in the
    grid that asks for the same tree (including the fixed twin)."""
    merged = ctx.merged_train_valid()
    X, y = merged.X, merged.y
    digest = ArtifactCache.dataset_digest(X, y)
    out: list[Candidate] = []
    for leaf in ctx.params["leaf_sizes"]:
        aig = ctx.artifact(
            "sched-tree",
            (digest, leaf, ctx.params["prune_cf"]),
            lambda leaf=leaf: cover_to_aig(
                DecisionTree(min_samples_leaf=leaf)
                .fit(X, y)
                .prune(ctx.params["prune_cf"])
                .to_cover()
            ),
        )
        out.append(Candidate(f"tree-m{leaf}", aig, {"leaf": leaf}))
    return out


def _resolve_budget(ctx: FlowContext) -> int:
    override = ctx.state.get("budget")
    budget = ctx.params["budget"] if override is None else override
    return int(budget)


def _schedule_one(
    aig: AIG, policy, budget: int, rng
) -> tuple[AIG, list[str]]:
    """``finalize_aig`` with the learned loop in ``compress``'s seat."""
    aig = aig.extract_cone()
    if aig.num_ands <= OPTIMIZE_LIMIT:
        aig, history = schedule_opt(aig, policy, budget=budget, rng=rng)
    else:
        aig, history = balance(aig), ["balance"]
    if aig.num_ands > MAX_AND_NODES:
        aig = approximate_to_size(aig, max_ands=MAX_AND_NODES, rng=rng)
        if aig.num_ands <= OPTIMIZE_LIMIT:
            aig, extra = schedule_opt(aig, policy, budget=budget, rng=rng)
            history += ["approx", *extra]
    return aig, history


def _make_schedule_stage(bandit: bool):
    def _schedule_stage(ctx: FlowContext) -> None:
        budget = _resolve_budget(ctx)
        if bandit:
            epsilon = ctx.state.get("epsilon")
            if epsilon is None:
                epsilon = ctx.params["epsilon"]
            policy = EpsilonGreedyBandit(
                prior=default_policy(), epsilon=float(epsilon)
            )
            rng = ctx.derive_rng("sched")
        else:
            policy = default_policy()
            rng = None
        scheduled: list[Candidate] = []
        for cand in ctx.candidates:
            aig, history = _schedule_one(cand.aig, policy, budget, rng)
            scheduled.append(
                Candidate(
                    cand.name,
                    aig,
                    {**cand.provenance, "passes": history,
                     "budget": budget},
                    cand.stage,
                )
            )
        ctx.candidates[:] = scheduled

    return _schedule_stage


class SchedFlow(Flow):
    """A Flow whose contract accepts scheduling knobs.

    ``budget`` (both flows) and ``epsilon`` (bandit only) arrive as
    spec-string overrides (``learned:budget=20``) or direct kwargs;
    they land in the run's ``state`` where the schedule stage reads
    them, falling back to the effort grid."""

    def run(
        self,
        problem: LearningProblem,
        effort: str = "small",
        master_seed: int = 0,
        *,
        cache: ArtifactCache | None = None,
        budget: int | None = None,
        epsilon: float | None = None,
    ) -> Solution:
        return self.run_sched(
            problem, effort=effort, master_seed=master_seed,
            cache=cache, budget=budget, epsilon=epsilon,
        ).solution

    __call__ = run

    def run_sched(
        self,
        problem: LearningProblem,
        effort: str = "small",
        master_seed: int = 0,
        *,
        cache: ArtifactCache | None = None,
        budget: int | None = None,
        epsilon: float | None = None,
        state: Mapping[str, object] | None = None,
    ) -> FlowResult:
        merged = dict(state or {})
        if budget is not None:
            merged["budget"] = budget
        if epsilon is not None:
            merged["epsilon"] = epsilon
        return self.run_detailed(
            problem, effort=effort, master_seed=master_seed,
            cache=cache, state=merged,
        )


_EFFORTS = {
    "small": {
        "leaf_sizes": (1, 3),
        "prune_cf": 0.25,
        "budget": 8,
        "epsilon": 0.15,
    },
    "full": {
        "leaf_sizes": (1, 2, 4, 8),
        "prune_cf": 0.25,
        "budget": 20,
        "epsilon": 0.15,
    },
}


BANDIT_FLOW = register(SchedFlow(
    "learned",
    team="sched",
    techniques={"decision tree", "learned scheduling", "bandit"},
    description="Decision-tree candidates optimized by an "
                "epsilon-greedy contextual bandit over the pass "
                "palette",
    efforts=_EFFORTS,
    stages=(
        Stage("candidates", _tree_candidates_stage,
              "decision trees at several leaf granularities"),
        Stage("schedule", _make_schedule_stage(bandit=True),
              "bandit-scheduled optimization"),
    ),
    finalize=None,
    spec_params={"budget": int, "epsilon": float},
))

GREEDY_FLOW = register(SchedFlow(
    "learned-greedy",
    team="sched",
    techniques={"decision tree", "learned scheduling"},
    description="Decision-tree candidates optimized by the packaged "
                "greedy policy",
    efforts=_EFFORTS,
    stages=(
        Stage("candidates", _tree_candidates_stage,
              "decision trees at several leaf granularities"),
        Stage("schedule", _make_schedule_stage(bandit=False),
              "greedy-policy-scheduled optimization"),
    ),
    finalize=None,
    spec_params={"budget": int},
))


def fixed_twin() -> Flow:
    """The unregistered control: identical candidates, classic
    ``compress`` finalize — what ``bench_sched.py`` compares the
    learned flows against at (provably) equal accuracy: every palette
    pass is exact, so twin candidates compute identical functions and
    only sizes differ."""
    return Flow(
        "fixed-compress",
        team="sched",
        techniques={"decision tree"},
        description="Twin of the learned flows with the fixed "
                    "compress schedule",
        efforts=_EFFORTS,
        stages=(
            Stage("candidates", _tree_candidates_stage,
                  "decision trees at several leaf granularities"),
        ),
        finalize=FinalizeSpec(),
    )
