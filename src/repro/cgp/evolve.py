"""(1+lambda) evolution strategy for CGP (Team 9).

Implements the loop from the paper: four mutated offspring per
generation, neutral drift (offspring with equal fitness replace the
parent), preferential selection of phenotypically *larger* individuals
on ties [Milano & Nolfi], a 1/5th-rule adaptive mutation rate
[Doerr & Doerr], and optional mini-batch fitness evaluation that
reshuffles every ``batch_generations`` generations.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.aig.aig import AIG
from repro.cgp.genome import AIG_FUNCTIONS, CGPGenome
from repro.utils.bitops import pack_bits, popcount64


@dataclass
class EvolutionLog:
    """Best-fitness trace, one entry per generation."""

    fitness: list[float] = field(default_factory=list)
    mutation_rate: list[float] = field(default_factory=list)


class CGPEvolver:
    """Evolve a CGP genome to fit training samples."""

    def __init__(
        self,
        n_nodes: int = 500,
        lam: int = 4,
        mutation_rate: float = 0.05,
        function_set: Sequence[str] = AIG_FUNCTIONS,
        batch_size: int | None = None,
        batch_generations: int = 1000,
        rng: np.random.Generator | None = None,
    ):
        self.n_nodes = n_nodes
        self.lam = lam
        self.mutation_rate = mutation_rate
        self.function_set = tuple(function_set)
        self.batch_size = batch_size
        self.batch_generations = batch_generations
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.log = EvolutionLog()

    # ------------------------------------------------------------------
    def _fitness(self, genome: CGPGenome, packed, y_packed, n_samples) -> float:
        out = genome.evaluate_packed(packed)
        wrong = out ^ y_packed
        # Mask padding bits in the last word.
        pad = n_samples % 64
        if pad:
            wrong[-1] &= np.uint64((1 << pad) - 1)
        errors = int(popcount64(wrong).sum())
        return 1.0 - errors / n_samples

    def run(
        self,
        X: np.ndarray,
        y: np.ndarray,
        generations: int = 2000,
        seed_genome: CGPGenome | None = None,
    ) -> tuple[CGPGenome, float]:
        """Evolve and return ``(best_genome, training_accuracy)``."""
        X = np.asarray(X, dtype=np.uint8)
        y = np.asarray(y, dtype=np.uint8).ravel()
        n = X.shape[0]
        packed_full = pack_bits(X)
        y_packed_full = pack_bits(y[:, None])[0]
        if seed_genome is not None:
            parent = seed_genome
        else:
            parent = CGPGenome.random(
                X.shape[1], self.n_nodes, self.rng, self.function_set
            )
        rate = self.mutation_rate
        batch = None
        packed, y_packed, n_eval = packed_full, y_packed_full, n
        parent_fit = self._fitness(parent, packed, y_packed, n_eval)
        for gen in range(generations):
            if self.batch_size is not None and self.batch_size < n:
                if batch is None or gen % self.batch_generations == 0:
                    idx = self.rng.choice(n, size=self.batch_size,
                                          replace=False)
                    batch = idx
                    packed = pack_bits(X[idx])
                    y_packed = pack_bits(y[idx][:, None])[0]
                    n_eval = self.batch_size
                    parent_fit = self._fitness(
                        parent, packed, y_packed, n_eval
                    )
            improved = False
            best_child = None
            best_fit = -1.0
            for _ in range(self.lam):
                child = parent.mutate(rate, self.rng)
                fit = self._fitness(child, packed, y_packed, n_eval)
                if fit > best_fit or (
                    fit == best_fit
                    and best_child is not None
                    and child.phenotype_size() > best_child.phenotype_size()
                ):
                    best_fit = fit
                    best_child = child
            if best_fit > parent_fit:
                improved = True
            # Neutral drift: accept >=, preferring larger phenotypes on
            # exact ties with the parent.
            if best_fit > parent_fit or (
                best_fit == parent_fit
                and best_child.phenotype_size() >= parent.phenotype_size()
            ):
                parent = best_child
                parent_fit = best_fit
            # 1/5th success rule; the floor keeps at least ~one gene
            # mutating per offspring so the search never freezes.
            min_rate = 1.0 / (3 * parent.n_nodes + 1)
            if improved:
                rate = min(rate * 1.5, 0.5)
            else:
                rate = max(rate * 1.5 ** (-0.25), min_rate)
            self.log.fitness.append(parent_fit)
            self.log.mutation_rate.append(rate)
        final_fit = self._fitness(parent, packed_full, y_packed_full, n)
        return parent, final_fit


def evolve_from_aig(
    aig: AIG,
    X: np.ndarray,
    y: np.ndarray,
    generations: int = 2000,
    n_nodes: int | None = None,
    rng: np.random.Generator | None = None,
    **kwargs,
) -> tuple[CGPGenome, float]:
    """Bootstrapped evolution: seed the population from an AIG."""
    if rng is None:
        rng = np.random.default_rng(0)
    seed = CGPGenome.from_aig(aig, n_nodes=n_nodes, rng=rng)
    evolver = CGPEvolver(
        n_nodes=seed.n_nodes, rng=rng, **kwargs
    )
    return evolver.run(X, y, generations=generations, seed_genome=seed)
