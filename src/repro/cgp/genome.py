"""CGP genome: a single row of two-input function nodes.

Each node ``i`` is a 3-tuple ``(func, in0, in1)`` where the inputs may
reference any primary input or any earlier node (feed-forward,
single-line layout as in Team 9's write-up).  One extra output gene
selects which node (or input) drives the primary output.

Two function sets mirror Team 9's AIG / XAIG choice: the AIG set is
ANDs with all fanin-inversion combinations plus OR/NAND/NOT; XAIG adds
XOR and XNOR.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.aig.aig import AIG, lit_not

_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def _f_and(a, b):
    return a & b


def _f_and_na(a, b):
    return (a ^ _ONES) & b


def _f_and_nb(a, b):
    return a & (b ^ _ONES)


def _f_nor(a, b):
    return (a ^ _ONES) & (b ^ _ONES)


def _f_or(a, b):
    return a | b


def _f_nand(a, b):
    return (a & b) ^ _ONES


def _f_not(a, b):
    del b
    return a ^ _ONES


def _f_buf(a, b):
    del b
    return a


def _f_xor(a, b):
    return a ^ b


def _f_xnor(a, b):
    return (a ^ b) ^ _ONES


AIG_FUNCTIONS: tuple[str, ...] = (
    "and", "and_na", "and_nb", "nor", "or", "nand", "not", "buf",
)
XAIG_FUNCTIONS: tuple[str, ...] = AIG_FUNCTIONS + ("xor", "xnor")

_IMPL: dict[str, Callable] = {
    "and": _f_and,
    "and_na": _f_and_na,
    "and_nb": _f_and_nb,
    "nor": _f_nor,
    "or": _f_or,
    "nand": _f_nand,
    "not": _f_not,
    "buf": _f_buf,
    "xor": _f_xor,
    "xnor": _f_xnor,
}


class CGPGenome:
    """Integer-encoded single-row CGP individual."""

    def __init__(
        self,
        n_inputs: int,
        n_nodes: int,
        function_set: Sequence[str] = AIG_FUNCTIONS,
        funcs: np.ndarray | None = None,
        in0: np.ndarray | None = None,
        in1: np.ndarray | None = None,
        output: int = 0,
    ):
        self.n_inputs = n_inputs
        self.n_nodes = n_nodes
        self.function_set = tuple(function_set)
        self.funcs = funcs if funcs is not None else np.zeros(n_nodes, np.int64)
        self.in0 = in0 if in0 is not None else np.zeros(n_nodes, np.int64)
        self.in1 = in1 if in1 is not None else np.zeros(n_nodes, np.int64)
        self.output = output

    # ------------------------------------------------------------------
    @staticmethod
    def random(
        n_inputs: int,
        n_nodes: int,
        rng: np.random.Generator,
        function_set: Sequence[str] = AIG_FUNCTIONS,
    ) -> "CGPGenome":
        g = CGPGenome(n_inputs, n_nodes, function_set)
        g.funcs = rng.integers(0, len(function_set), size=n_nodes)
        limits = n_inputs + np.arange(n_nodes)
        g.in0 = rng.integers(0, limits)
        g.in1 = rng.integers(0, limits)
        g.output = int(rng.integers(0, n_inputs + n_nodes))
        return g

    def copy(self) -> "CGPGenome":
        return CGPGenome(
            self.n_inputs,
            self.n_nodes,
            self.function_set,
            self.funcs.copy(),
            self.in0.copy(),
            self.in1.copy(),
            self.output,
        )

    # ------------------------------------------------------------------
    def active_nodes(self) -> list[int]:
        """Node indices in the phenotype, in evaluation order."""
        active = set()
        stack = [self.output - self.n_inputs]
        while stack:
            node = stack.pop()
            if node < 0 or node in active:
                continue
            active.add(node)
            for ref in (self.in0[node], self.in1[node]):
                stack.append(int(ref) - self.n_inputs)
        return sorted(active)

    def phenotype_size(self) -> int:
        return len(self.active_nodes())

    def evaluate_packed(self, packed_inputs: np.ndarray) -> np.ndarray:
        """Bit-parallel evaluation; returns packed output row."""
        n_words = packed_inputs.shape[1]
        values: dict[int, np.ndarray] = {
            i: packed_inputs[i] for i in range(self.n_inputs)
        }
        for node in self.active_nodes():
            fn = _IMPL[self.function_set[self.funcs[node]]]
            a = values[int(self.in0[node])]
            b = values[int(self.in1[node])]
            values[self.n_inputs + node] = fn(a, b)
        out = values.get(self.output)
        if out is None:  # output points at an inactive index: constant 0
            out = np.zeros(n_words, dtype=np.uint64)
        return out

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        from repro.utils.bitops import pack_bits, unpack_bits

        X = np.asarray(X, dtype=np.uint8)
        packed = pack_bits(X)
        out = self.evaluate_packed(packed)
        return unpack_bits(out[None, :], X.shape[0])[:, 0]

    # ------------------------------------------------------------------
    def mutate(self, rate: float, rng: np.random.Generator) -> "CGPGenome":
        """Point mutation: every gene flips with probability ``rate``.

        At least one gene always flips (standard CGP practice — a
        zero-change offspring wastes an evaluation), except at rate 0,
        which is an explicit identity for tests.
        """
        child = self.copy()
        n = self.n_nodes
        flip_f = rng.random(n) < rate
        child.funcs[flip_f] = rng.integers(
            0, len(self.function_set), size=int(flip_f.sum())
        )
        limits = self.n_inputs + np.arange(n)
        flip_0 = rng.random(n) < rate
        child.in0[flip_0] = rng.integers(0, limits[flip_0])
        flip_1 = rng.random(n) < rate
        child.in1[flip_1] = rng.integers(0, limits[flip_1])
        if rng.random() < rate:
            child.output = int(rng.integers(0, self.n_inputs + n))
        nothing_flipped = (
            not flip_f.any() and not flip_0.any() and not flip_1.any()
        )
        if rate > 0 and nothing_flipped:
            node = int(rng.integers(0, n))
            which = rng.integers(0, 3)
            if which == 0:
                child.funcs[node] = rng.integers(0, len(self.function_set))
            elif which == 1:
                child.in0[node] = rng.integers(0, limits[node])
            else:
                child.in1[node] = rng.integers(0, limits[node])
        return child

    # ------------------------------------------------------------------
    def to_aig(self) -> AIG:
        """Compile the phenotype into an AIG."""
        aig = AIG(self.n_inputs)
        lits: dict[int, int] = {
            i: aig.input_lit(i) for i in range(self.n_inputs)
        }
        for node in self.active_nodes():
            name = self.function_set[self.funcs[node]]
            a = lits[int(self.in0[node])]
            b = lits[int(self.in1[node])]
            if name == "and":
                lit = aig.add_and(a, b)
            elif name == "and_na":
                lit = aig.add_and(lit_not(a), b)
            elif name == "and_nb":
                lit = aig.add_and(a, lit_not(b))
            elif name == "nor":
                lit = aig.add_and(lit_not(a), lit_not(b))
            elif name == "or":
                lit = aig.add_or(a, b)
            elif name == "nand":
                lit = lit_not(aig.add_and(a, b))
            elif name == "not":
                lit = lit_not(a)
            elif name == "buf":
                lit = a
            elif name == "xor":
                lit = aig.add_xor(a, b)
            elif name == "xnor":
                lit = lit_not(aig.add_xor(a, b))
            else:
                raise ValueError(f"unknown function {name!r}")
            lits[self.n_inputs + node] = lit
        out = lits.get(self.output, 0)
        aig.set_output(out)
        return aig

    @staticmethod
    def from_aig(
        aig: AIG,
        n_nodes: int | None = None,
        rng: np.random.Generator | None = None,
        function_set: Sequence[str] = AIG_FUNCTIONS,
    ) -> "CGPGenome":
        """Bootstrap a genome from an AIG (Team 9's initialization).

        The AIG's used AND nodes occupy the genome prefix; remaining
        node slots (``n_nodes`` defaults to twice the AIG size, per the
        write-up) are randomized and non-functional.
        """
        compact = aig.extract_cone([aig.outputs[0]])
        needed = compact.num_ands + 2  # room for output NOT / constants
        if n_nodes is None:
            n_nodes = max(2 * compact.num_ands, needed, 8)
        if n_nodes < needed:
            raise ValueError(f"need at least {needed} genome nodes")
        if rng is None:
            rng = np.random.default_rng(0)
        g = CGPGenome.random(compact.n_inputs, n_nodes, rng, function_set)
        fs = list(function_set)
        base = compact.n_inputs + 1
        # AIG var -> CGP data index.
        index_of = {0: 0}  # constant: approximated below
        for i in range(compact.n_inputs):
            index_of[1 + i] = i
        for j in range(compact.num_ands):
            f0, f1 = compact.fanins(base + j)
            c0, c1 = f0 & 1, f1 & 1
            name = {
                (0, 0): "and", (1, 0): "and_na",
                (0, 1): "and_nb", (1, 1): "nor",
            }[(c0, c1)]
            g.funcs[j] = fs.index(name)
            g.in0[j] = index_of[f0 >> 1]
            g.in1[j] = index_of[f1 >> 1]
            index_of[base + j] = compact.n_inputs + j
        out_lit = compact.outputs[0]
        if out_lit >> 1 == 0:
            # Constant output: const-0 as (x & ~x), negated for const-1.
            slot = compact.num_ands
            g.funcs[slot] = fs.index("and_na")
            g.in0[slot] = 0
            g.in1[slot] = 0
            out_idx = compact.n_inputs + slot
            if out_lit & 1:
                g.funcs[slot + 1] = fs.index("not")
                g.in0[slot + 1] = out_idx
                g.in1[slot + 1] = 0
                out_idx = compact.n_inputs + slot + 1
            g.output = out_idx
            return g
        out_idx = index_of[out_lit >> 1]
        if out_lit & 1:
            slot = compact.num_ands
            g.funcs[slot] = fs.index("not")
            g.in0[slot] = out_idx
            g.in1[slot] = 0
            out_idx = compact.n_inputs + slot
        g.output = out_idx
        return g
