"""Cartesian Genetic Programming (Team 9's bootstrapped flow).

Single-row CGP with a (1+lambda) evolution strategy, the 1/5th-rule
adaptive mutation rate, preferential selection of phenotypically
larger individuals on fitness ties, optional mini-batch fitness, and
population bootstrapping from an existing AIG (e.g. one produced by a
decision tree or espresso).
"""

from repro.cgp.evolve import CGPEvolver, evolve_from_aig
from repro.cgp.genome import AIG_FUNCTIONS, XAIG_FUNCTIONS, CGPGenome

__all__ = [
    "AIG_FUNCTIONS",
    "XAIG_FUNCTIONS",
    "CGPGenome",
    "CGPEvolver",
    "evolve_from_aig",
]
