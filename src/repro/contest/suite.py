"""The 100-benchmark suite of Table I.

======  ==========================================================
ex      contents
======  ==========================================================
00-09   2 MSBs of k-bit adders, k in {16, 32, 64, 128, 256}
10-19   quotient/remainder MSBs of k-bit dividers, same k
20-29   MSB and middle bit of k-bit multipliers, k in {8..128}
30-39   k-bit comparators, k in {10, 20, ..., 100}
40-49   LSB and middle bit of k-bit square-rooters, k in {16..256}
50-59   PicoJava-like balanced random control cones, 16-200 inputs
60-69   i10-like balanced random mixed cones, 16-200 inputs
70-74   cordic (2 outputs), too_large-like, t481-like, 16-parity
75-79   16-input symmetric functions (signatures from the paper)
80-89   MNIST-like group comparisons (Table II)
90-99   CIFAR-like group comparisons (Table II)
======  ==========================================================

Benchmarks 50-99 use documented synthetic substitutions (DESIGN.md
section 3).  Sampling follows the contest: 6400 train + 6400
validation + 6400 test rows, drawn without replacement where the input
space allows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.contest import functions as fns
from repro.contest.imagelike import (
    cifar_like_model,
    group_comparison_sampler,
    mnist_like_model,
)
from repro.contest.problem import LearningProblem
from repro.contest.randomlogic import random_cone_function
from repro.ml.dataset import Dataset
from repro.utils.rng import rng_for

ADDER_WIDTHS = (16, 32, 64, 128, 256)
DIVIDER_WIDTHS = (16, 32, 64, 128, 256)
MULTIPLIER_WIDTHS = (8, 16, 32, 64, 128)
COMPARATOR_WIDTHS = tuple(range(10, 101, 10))
SQRT_WIDTHS = (16, 32, 64, 128, 256)
CONE_INPUTS = (16, 32, 57, 83, 108, 134, 159, 185, 200, 24)


@dataclass
class BenchmarkSpec:
    """One contest benchmark: a named sampling procedure."""

    index: int
    category: str
    description: str
    n_inputs: int
    # Either a deterministic label function over uniform inputs...
    label_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None
    # ...or a full generative sampler (image-like benchmarks).
    sampler: Optional[Callable] = field(default=None, repr=False)

    @property
    def name(self) -> str:
        return f"ex{self.index:02d}"

    def sample(
        self, n: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` labelled samples."""
        if self.sampler is not None:
            return self.sampler(n, rng)
        X = _unique_uniform_rows(self.n_inputs, n, rng)
        return X, self.label_fn(X)


def _unique_uniform_rows(
    n_inputs: int, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform random distinct input rows.

    For wide inputs collisions are essentially impossible and we skip
    the dedup; for narrow inputs we sample integers without
    replacement from the full space when it is small enough.
    """
    space = 2.0**n_inputs
    if n_inputs <= 40:
        if space <= 4 * n:
            chosen = rng.choice(int(space), size=min(n, int(space)),
                                replace=False)
        else:
            seen = set()
            while len(seen) < n:
                draw = rng.integers(0, int(space), size=n)
                for v in draw:
                    seen.add(int(v))
                    if len(seen) == n:
                        break
            chosen = np.fromiter(seen, dtype=np.int64, count=n)
        # Python set iteration leaks value order for small ints, which
        # would skew the train/valid/test split; shuffle explicitly.
        chosen = chosen[rng.permutation(len(chosen))]
        X = np.zeros((len(chosen), n_inputs), dtype=np.uint8)
        for i in range(n_inputs):
            X[:, i] = (chosen >> i) & 1
        return X
    return rng.integers(0, 2, size=(n, n_inputs)).astype(np.uint8)


def _lazy(builder):
    """Defer label-function construction until first sampling."""

    class _LazyFn:
        def __init__(self):
            self._fn = None

        def __call__(self, X):
            if self._fn is None:
                self._fn = builder()
            return self._fn(X)

    return _LazyFn()


@lru_cache(maxsize=1)
def build_suite() -> Tuple[BenchmarkSpec, ...]:
    """All 100 benchmark specs, index-aligned with the paper."""
    specs: List[BenchmarkSpec] = []

    # ex00-09: two MSBs of adders.
    for i, k in enumerate(ADDER_WIDTHS):
        for j, bit in enumerate((k, k - 1)):  # MSB (carry), 2nd MSB
            specs.append(
                BenchmarkSpec(
                    index=2 * i + j,
                    category="adder",
                    description=f"bit {bit} of {k}-bit adder",
                    n_inputs=2 * k,
                    label_fn=fns.adder_bit(k, bit),
                )
            )

    # ex10-19: divider quotient/remainder MSBs.
    for i, k in enumerate(DIVIDER_WIDTHS):
        for j, part in enumerate(("quotient", "remainder")):
            specs.append(
                BenchmarkSpec(
                    index=10 + 2 * i + j,
                    category="divider",
                    description=f"{part} MSB of {k}-bit divider",
                    n_inputs=2 * k,
                    label_fn=fns.divider_bit(k, part),
                )
            )

    # ex20-29: multiplier MSB and middle bit.
    for i, k in enumerate(MULTIPLIER_WIDTHS):
        for j, bit in enumerate((2 * k - 1, k - 1)):
            specs.append(
                BenchmarkSpec(
                    index=20 + 2 * i + j,
                    category="multiplier",
                    description=f"bit {bit} of {k}-bit multiplier",
                    n_inputs=2 * k,
                    label_fn=fns.multiplier_bit(k, bit),
                )
            )

    # ex30-39: comparators.
    for i, k in enumerate(COMPARATOR_WIDTHS):
        specs.append(
            BenchmarkSpec(
                index=30 + i,
                category="comparator",
                description=f"{k}-bit comparator (a > b)",
                n_inputs=2 * k,
                label_fn=fns.comparator(k),
            )
        )

    # ex40-49: square-rooter LSB / middle bit.
    for i, k in enumerate(SQRT_WIDTHS):
        for j, which in enumerate(("lsb", "mid")):
            specs.append(
                BenchmarkSpec(
                    index=40 + 2 * i + j,
                    category="sqrt",
                    description=f"{which} bit of {k}-bit square-rooter",
                    n_inputs=k,
                    label_fn=fns.sqrt_bit(k, which),
                )
            )

    # ex50-59: PicoJava-like control cones (substitution).
    for i, n in enumerate(CONE_INPUTS):
        specs.append(
            BenchmarkSpec(
                index=50 + i,
                category="picojava-like",
                description=f"balanced random control cone, {n} inputs",
                n_inputs=n,
                label_fn=_lazy(
                    lambda n=n, i=i: random_cone_function(n, "control", i)
                ),
            )
        )

    # ex60-69: i10-like mixed cones (substitution).
    for i, n in enumerate(CONE_INPUTS):
        specs.append(
            BenchmarkSpec(
                index=60 + i,
                category="i10-like",
                description=f"balanced random mixed cone, {n} inputs",
                n_inputs=n,
                label_fn=_lazy(
                    lambda n=n, i=i: random_cone_function(n, "mixed", i)
                ),
            )
        )

    # ex70-74: MCNC singles.
    mcnc: List[Tuple[str, Callable]] = [
        ("cordic output 0 (sin threshold)", fns.cordic_sign(output="sin_ge")),
        ("cordic output 1 (cos threshold)", fns.cordic_sign(output="cos_ge")),
        ("too_large-like wide SOP", fns.wide_sop_like(seed=2)),
        ("t481-like structured function", fns.t481_like()),
        ("16-input parity", fns.parity(16)),
    ]
    for i, (desc, fn) in enumerate(mcnc):
        specs.append(
            BenchmarkSpec(
                index=70 + i,
                category="mcnc-like",
                description=desc,
                n_inputs=fn.n_inputs,
                label_fn=fn,
            )
        )

    # ex75-79: symmetric functions.
    for i, sig in enumerate(fns.SYMMETRIC_SIGNATURES):
        specs.append(
            BenchmarkSpec(
                index=75 + i,
                category="symmetric",
                description=f"16-input symmetric {sig}",
                n_inputs=16,
                label_fn=fns.symmetric16(sig),
            )
        )

    # ex80-89 / ex90-99: image-like group comparisons.
    mnist = mnist_like_model()
    cifar = cifar_like_model()
    for i in range(10):
        specs.append(
            BenchmarkSpec(
                index=80 + i,
                category="mnist-like",
                description=f"MNIST-like groups {i}",
                n_inputs=mnist.n_pixels,
                sampler=group_comparison_sampler(mnist, i),
            )
        )
    for i in range(10):
        specs.append(
            BenchmarkSpec(
                index=90 + i,
                category="cifar-like",
                description=f"CIFAR-like groups {i}",
                n_inputs=cifar.n_pixels,
                sampler=group_comparison_sampler(cifar, i),
            )
        )

    specs.sort(key=lambda s: s.index)
    assert [s.index for s in specs] == list(range(100))
    return tuple(specs)


def default_small_indices() -> List[int]:
    """Two representative benchmarks per category (20 total).

    Used by the small-scale bench harness; pairs a small (learnable or
    matchable) instance with a wide (hard-tail) instance where the
    category has both, so reduced runs preserve the paper's difficulty
    spread.
    """
    return [0, 1, 10, 11, 20, 27, 30, 31, 40, 47,
            50, 59, 60, 69, 74, 75, 80, 81, 90, 91]


def make_problem(
    spec: BenchmarkSpec,
    n_train: int = 6400,
    n_valid: int = 6400,
    n_test: int = 6400,
    master_seed: int = 0,
) -> LearningProblem:
    """Sample a train/validation/test triple for one benchmark.

    For deterministic label functions the three sets are disjoint in
    input space (split from one without-replacement draw); generative
    benchmarks use independent draws, like the contest's image data.
    """
    rng = rng_for("problem", spec.index, master_seed)
    total = n_train + n_valid + n_test
    if spec.sampler is not None:
        X, y = spec.sample(total, rng)
    else:
        X = _unique_uniform_rows(spec.n_inputs, total, rng)
        y = spec.label_fn(X)
    train = Dataset(X[:n_train], y[:n_train])
    valid = Dataset(X[n_train : n_train + n_valid],
                    y[n_train : n_train + n_valid])
    test = Dataset(X[n_train + n_valid :], y[n_train + n_valid :])
    return LearningProblem(
        name=spec.name,
        category=spec.category,
        n_inputs=spec.n_inputs,
        train=train,
        valid=valid,
        test=test,
    )
