"""The 100-benchmark suite of Table I — now a registry shim.

======  ==========================================================
ex      contents
======  ==========================================================
00-09   2 MSBs of k-bit adders, k in {16, 32, 64, 128, 256}
10-19   quotient/remainder MSBs of k-bit dividers, same k
20-29   MSB and middle bit of k-bit multipliers, k in {8..128}
30-39   k-bit comparators, k in {10, 20, ..., 100}
40-49   LSB and middle bit of k-bit square-rooters, k in {16..256}
50-59   PicoJava-like balanced random control cones, 16-200 inputs
60-69   i10-like balanced random mixed cones, 16-200 inputs
70-74   cordic (2 outputs), too_large-like, t481-like, 16-parity
75-79   16-input symmetric functions (signatures from the paper)
80-89   MNIST-like group comparisons (Table II)
90-99   CIFAR-like group comparisons (Table II)
======  ==========================================================

Benchmarks 50-99 use documented synthetic substitutions (DESIGN.md
section 3).  Sampling follows the contest: 6400 train + 6400
validation + 6400 test rows, drawn without replacement where the input
space allows.

.. deprecated::
    ``build_suite()`` / ``make_problem()`` are thin shims over
    :mod:`repro.contest.registry` kept for the historical
    index-addressed interface; their outputs are byte-identical to the
    pre-registry implementation (pinned by the golden fingerprint
    tests).  New code should resolve problems through
    ``repro.contest.registry.DEFAULT_REGISTRY`` — named specs,
    parameterized generator families, glob selection — and sample via
    ``DEFAULT_REGISTRY.problem(spec, ...)``.  Unlike the old eager
    tuple, the shim holds no datasets and no generator state: heavy
    materializations (random cones, image models) live in the
    registry's bounded, clearable cache.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.contest.problem import LearningProblem
from repro.contest.registry import (
    DEFAULT_REGISTRY,
    ProblemSpec,
    unique_uniform_rows,
)
from repro.ml.dataset import Dataset
from repro.utils.rng import rng_for

# Backwards-compatible alias (the old private name).
_unique_uniform_rows = unique_uniform_rows

# Historical grid constants, re-exported from the registry.
from repro.contest.registry import (  # noqa: E402, F401  (public re-exports)
    ADDER_WIDTHS,
    COMPARATOR_WIDTHS,
    CONE_INPUTS,
    DIVIDER_WIDTHS,
    MULTIPLIER_WIDTHS,
    SQRT_WIDTHS,
)


@dataclass
class BenchmarkSpec:
    """One contest benchmark: a named sampling procedure.

    Kept as the ``build_suite()`` element type for compatibility.  The
    ``label_fn``/``sampler`` slots are lazy proxies into the registry's
    bounded materialization cache — constructing the suite builds
    nothing and pins nothing.
    """

    index: int
    category: str
    description: str
    n_inputs: int
    # Either a deterministic label function over uniform inputs...
    label_fn: Callable[[np.ndarray], np.ndarray] | None = None
    # ...or a full generative sampler (image-like benchmarks).
    sampler: Callable | None = field(default=None, repr=False)

    @property
    def name(self) -> str:
        return f"ex{self.index:02d}"

    def sample(
        self, n: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` labelled samples."""
        if self.sampler is not None:
            return self.sampler(n, rng)
        label_fn = self.label_fn
        if label_fn is None:
            raise ValueError(
                f"benchmark {self.name} has neither label_fn nor sampler"
            )
        X = unique_uniform_rows(self.n_inputs, n, rng)
        return X, label_fn(X)


class _RegistryLabelFn:
    """Label-function proxy: materializes through the registry cache."""

    __slots__ = ("_spec",)

    def __init__(self, spec: ProblemSpec):
        self._spec = spec

    def __call__(self, X: np.ndarray) -> np.ndarray:
        label_fn = DEFAULT_REGISTRY.materialize(self._spec).label_fn
        if label_fn is None:
            raise ValueError(
                f"{self._spec.name} is generative and has no label_fn"
            )
        return label_fn(X)


class _RegistrySampler:
    """Sampler proxy: materializes through the registry cache."""

    __slots__ = ("_spec", "n_inputs")

    def __init__(self, spec: ProblemSpec):
        self._spec = spec
        self.n_inputs = spec.n_inputs

    def __call__(self, n: int, rng: np.random.Generator):
        sampler = DEFAULT_REGISTRY.materialize(self._spec).sampler
        if sampler is None:
            raise ValueError(
                f"{self._spec.name} is deterministic and has no sampler"
            )
        return sampler(n, rng)


def _shim_spec(spec: ProblemSpec) -> BenchmarkSpec:
    generative = DEFAULT_REGISTRY.families[spec.family].generative
    return BenchmarkSpec(
        index=spec.index,
        category=spec.category,
        description=spec.description,
        n_inputs=spec.n_inputs,
        label_fn=None if generative else _RegistryLabelFn(spec),
        sampler=_RegistrySampler(spec) if generative else None,
    )


@lru_cache(maxsize=1)
def build_suite() -> tuple[BenchmarkSpec, ...]:
    """All 100 paper benchmark specs, index-aligned with the paper.

    Deprecated shim (see module docstring): the tuple holds only
    lightweight proxies; generator state lives in the registry's
    bounded cache, so caching this tuple pins no datasets or models.
    """
    specs: list[BenchmarkSpec] = [
        _shim_spec(DEFAULT_REGISTRY.by_index(i)) for i in range(100)
    ]
    if [s.index for s in specs] != list(range(100)):
        raise RuntimeError("registry paper indices are not 0..99")
    return tuple(specs)


def default_small_indices() -> list[int]:
    """Two representative benchmarks per category (20 total).

    Used by the small-scale bench harness; pairs a small (learnable or
    matchable) instance with a wide (hard-tail) instance where the
    category has both, so reduced runs preserve the paper's difficulty
    spread.
    """
    return [0, 1, 10, 11, 20, 27, 30, 31, 40, 47,
            50, 59, 60, 69, 74, 75, 80, 81, 90, 91]


def make_problem(
    spec: BenchmarkSpec,
    n_train: int = 6400,
    n_valid: int = 6400,
    n_test: int = 6400,
    master_seed: int = 0,
) -> LearningProblem:
    """Sample a train/validation/test triple for one benchmark.

    Deprecated shim over ``DEFAULT_REGISTRY.problem`` (byte-identical
    for the 100 paper benchmarks).  For deterministic label functions
    the three sets are disjoint in input space (split from one
    without-replacement draw); generative benchmarks use independent
    draws, like the contest's image data.
    """
    rng = rng_for("problem", spec.index, master_seed)
    total = n_train + n_valid + n_test
    X, y = spec.sample(total, rng)
    train = Dataset(X[:n_train], y[:n_train])
    valid = Dataset(X[n_train : n_train + n_valid],
                    y[n_train : n_train + n_valid])
    test = Dataset(X[n_train + n_valid :], y[n_train + n_valid :])
    return LearningProblem(
        name=spec.name,
        category=spec.category,
        n_inputs=spec.n_inputs,
        train=train,
        valid=valid,
        test=test,
    )
