"""Synthetic MNIST/CIFAR-like binary classification (ex80-ex99).

The contest derived its last twenty benchmarks from binarized MNIST
and CIFAR-10 images, comparing two groups of class labels (Table II).
We cannot ship those datasets, so we substitute a generative model
that preserves what matters for the learning problem: ten classes,
each a *prototype* binary image; a sample is its class prototype with
pixel noise.  The MNIST-like model uses a 14x14 grid with low noise
(easy, like binarized digits); the CIFAR-like model uses a 16x16 grid
with heavy noise and partially shared prototypes (hard, matching the
~50-75% accuracies the paper reports on ex90-99).

Prototypes are low-frequency blobs (thresholded Gaussian-smoothed
noise) so nearby pixels correlate, as in real images.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.contest.functions import brand_label_fn
from repro.utils.rng import rng_for

# Table II of the paper: (group A -> label 0, group B -> label 1).
GROUP_COMPARISONS: list[tuple[tuple[int, ...], tuple[int, ...]]] = [
    ((0, 1, 2, 3, 4), (5, 6, 7, 8, 9)),
    ((1, 3, 5, 7, 9), (0, 2, 4, 6, 8)),   # odd vs even
    ((0, 1, 2), (3, 4, 5)),
    ((0, 1), (2, 3)),
    ((4, 5), (6, 7)),
    ((6, 7), (8, 9)),
    ((1, 7), (3, 8)),
    ((0, 9), (3, 8)),
    ((1, 3), (7, 8)),
    ((0, 3), (8, 9)),
]


@dataclass
class ImageModel:
    """Prototype-plus-noise generative model for one dataset kind."""

    side: int
    noise: float
    prototypes: np.ndarray  # (10, side*side) uint8

    @property
    def n_pixels(self) -> int:
        return self.side * self.side

    def sample_class(
        self, cls: int, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        base = self.prototypes[cls]
        flips = rng.random((n, self.n_pixels)) < self.noise
        return (base[None, :] ^ flips).astype(np.uint8)


def _make_prototypes(
    side: int, smoothing: float, overlap: float, seed_key: str
) -> np.ndarray:
    """Ten low-frequency blob prototypes; ``overlap`` mixes in a shared
    background component so classes are partially confusable."""
    rng = rng_for("imagelike", seed_key)
    shared = ndimage.gaussian_filter(
        rng.normal(size=(side, side)), smoothing
    )
    prototypes = []
    for _ in range(10):
        own = ndimage.gaussian_filter(rng.normal(size=(side, side)), smoothing)
        field = (1 - overlap) * own + overlap * shared
        prototypes.append((field > np.median(field)).astype(np.uint8).ravel())
    return np.array(prototypes, dtype=np.uint8)


def mnist_like_model() -> ImageModel:
    """Easy model: 14x14 pixels, 8% pixel noise, distinct prototypes."""
    return ImageModel(
        side=14,
        noise=0.08,
        prototypes=_make_prototypes(14, smoothing=2.0, overlap=0.15,
                                    seed_key="mnist"),
    )


def cifar_like_model() -> ImageModel:
    """Hard model: 16x16 pixels, 30% noise, heavily shared prototypes."""
    return ImageModel(
        side=16,
        noise=0.30,
        prototypes=_make_prototypes(16, smoothing=1.2, overlap=0.55,
                                    seed_key="cifar"),
    )


def group_comparison_sampler(model: ImageModel, comparison_index: int):
    """Sampler for one Table II group comparison.

    Returns a callable ``sample(n, rng) -> (X, y)`` drawing classes
    uniformly from group A (label 0) and group B (label 1).
    """
    group_a, group_b = GROUP_COMPARISONS[comparison_index]

    ga = np.array(group_a, dtype=np.int64)
    gb = np.array(group_b, dtype=np.int64)

    def sample(n: int, rng: np.random.Generator):
        y = rng.integers(0, 2, size=n).astype(np.uint8)
        picks_a = ga[rng.integers(0, len(ga), size=n)]
        picks_b = gb[rng.integers(0, len(gb), size=n)]
        classes = np.where(y == 1, picks_b, picks_a)
        flips = rng.random((n, model.n_pixels)) < model.noise
        X = (model.prototypes[classes] ^ flips).astype(np.uint8)
        return X, y

    return brand_label_fn(
        sample, model.n_pixels, f"group_comparison_{comparison_index}"
    )
