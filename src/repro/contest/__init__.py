"""The IWLS 2020 contest: benchmarks, problems and scoring.

``suite`` builds the 100-benchmark set of Table I (with documented
synthetic substitutions for the PicoJava / MCNC / MNIST / CIFAR
assets); ``problem`` defines the train/validation/test triple handed
to the team flows; ``evaluate`` scores solutions the way the contest
did (test accuracy, 5000-AND cap, ties broken by size).
"""

from repro.contest.problem import LearningProblem, Solution
from repro.contest.evaluate import Score, evaluate_solution
from repro.contest.suite import (
    BenchmarkSpec,
    build_suite,
    default_small_indices,
    make_problem,
)

__all__ = [
    "LearningProblem",
    "Solution",
    "Score",
    "evaluate_solution",
    "BenchmarkSpec",
    "build_suite",
    "default_small_indices",
    "make_problem",
]
