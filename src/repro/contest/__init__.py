"""The IWLS 2020 contest: benchmarks, problems and scoring.

``registry`` is the source of truth for benchmarks: named specs
(``ex00``..``ex99``, the paper's Table I grid) plus parameterized
generator families (``adder:width=48``, ``cone:inputs=120,seed=7``)
materialized lazily through a bounded cache; ``suite`` keeps the
historical index-addressed ``build_suite()``/``make_problem()``
interface as a byte-identical shim; ``problem`` defines the
train/validation/test triple handed to the team flows; ``evaluate``
scores solutions the way the contest did (test accuracy, 5000-AND
cap, ties broken by size).
"""

from repro.contest.evaluate import Score, evaluate_solution
from repro.contest.problem import LearningProblem, Solution
from repro.contest.registry import (
    DEFAULT_REGISTRY,
    GeneratorFamily,
    MaterialCache,
    ProblemRegistry,
    ProblemSpec,
    clear_cache,
)
from repro.contest.suite import (
    BenchmarkSpec,
    build_suite,
    default_small_indices,
    make_problem,
)

__all__ = [
    "LearningProblem",
    "Solution",
    "Score",
    "evaluate_solution",
    "BenchmarkSpec",
    "build_suite",
    "default_small_indices",
    "make_problem",
    "DEFAULT_REGISTRY",
    "GeneratorFamily",
    "MaterialCache",
    "ProblemRegistry",
    "ProblemSpec",
    "clear_cache",
]
