"""Problem registry: generator families behind every benchmark.

The contest's closed world of 100 hardcoded benchmarks becomes an open
one: a :class:`ProblemSpec` names a *parameterized* instance of a
registered :class:`GeneratorFamily` (``adder:width=48``,
``cone:flavour=mixed,inputs=120,seed=7``), and datasets materialize
lazily per task — a 500-benchmark grid is 500 small spec objects, not
500 resident datasets.  The paper's grid survives as 100 *named*
specs (``ex00``..``ex99``) whose sampling is byte-identical to the
historical ``build_suite()``/``make_problem()`` path, pinned by the
golden fingerprint tests.

Three layers:

``GeneratorFamily``
    A named, parameterized benchmark generator: parameter schema with
    defaults, an ``n_inputs`` formula, and a ``build`` hook returning
    the materialized label function or sampler.  The ten paper
    categories are ported as families accepting arbitrary widths and
    input counts, plus swept families the paper never had
    (``perturbed``, ``composed``).

``ProblemSpec``
    One concrete benchmark: family + resolved parameters + a
    deterministic seed derivation (paper benchmarks keep their
    historical ``("problem", index)`` stream; generated ones derive
    from their canonical name, so every spec is reproducible from its
    name alone).

``ProblemRegistry``
    Name -> spec lookup, family spec-string parsing, glob selection
    over names/families/categories (``"adder*"``, ``"ex8?"``), suite
    manifest files (``@path``), and a **bounded, clearable**
    materialization cache — heavy generator state (balanced random
    cones, image models) is pinned per-process only up to the cache
    bound, never for process lifetime.
"""

from __future__ import annotations

import fnmatch
from collections import OrderedDict
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, cast

import numpy as np

from repro.contest import functions as fns
from repro.contest.problem import LearningProblem
from repro.ml.dataset import Dataset
from repro.utils.rng import rng_for
from repro.utils.suggest import did_you_mean

#: Sentinel: a family parameter with no default must be given.
REQUIRED = object()


# ---------------------------------------------------------------------------
# Materialization cache
# ---------------------------------------------------------------------------


class MaterialCache:
    """Bounded, clearable per-process cache of generator state.

    Keys are hashable tuples chosen by the families (a spec's
    ``(family, params)``, or a shared component like one image model
    serving ten benchmarks).  LRU eviction bounds the heavy state —
    balanced random cones, prototype image models — that the old
    ``build_suite()`` ``lru_cache`` + ``_lazy`` wrappers pinned for
    process lifetime in every worker.
    """

    def __init__(self, maxsize: int = 32):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self.hits = 0
        self.builds = 0
        self.evictions = 0

    def get(self, key: tuple, builder: Callable[[], object]) -> object:
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.builds += 1
        value = builder()
        self._entries[key] = value
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
        return value

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> list[tuple]:
        return list(self._entries)

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "builds": self.builds,
            "evictions": self.evictions,
        }


# ---------------------------------------------------------------------------
# Specs and families
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Materialized:
    """A built generator: exactly one of label_fn / sampler is set."""

    label_fn: Callable[[np.ndarray], np.ndarray] | None = None
    sampler: Callable | None = None

    def sample(
        self, n_inputs: int, n: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        if self.sampler is not None:
            return self.sampler(n, rng)
        label_fn = self.label_fn
        if label_fn is None:
            raise ValueError(
                "materialized generator has neither label_fn nor sampler"
            )
        X = unique_uniform_rows(n_inputs, n, rng)
        return X, label_fn(X)


@dataclass(frozen=True)
class ProblemSpec:
    """One concrete benchmark: a family instance with resolved params.

    ``index`` is set only for the 100 paper benchmarks; it keeps their
    historical RNG stream (``rng_for("problem", index, seed)``) so the
    registry reproduces ``make_problem`` byte-identically.  Generated
    specs derive their stream from the canonical name instead — any
    process can rebuild the exact datasets from the name alone.
    """

    name: str
    family: str
    params: tuple[tuple[str, object], ...]
    n_inputs: int
    category: str
    description: str
    index: int | None = None

    @property
    def params_dict(self) -> dict[str, object]:
        return dict(self.params)

    @property
    def seed_part(self) -> int | str:
        return self.index if self.index is not None else self.name


@dataclass(frozen=True)
class GeneratorFamily:
    """A parameterized benchmark generator.

    ``params`` maps parameter name to ``(type, default)``; a default of
    :data:`REQUIRED` must be supplied.  ``n_inputs`` computes the input
    count from resolved params without materializing anything (grids
    stay cheap to *describe*).  ``build`` returns the
    :class:`Materialized` generator; it receives the cache so shared
    components (e.g. one image model behind ten comparisons) can be
    reused across specs.
    """

    name: str
    category: str
    description: str
    params: Mapping[str, tuple[type, object]]
    n_inputs: Callable[[dict[str, Any]], int]
    build: Callable[[dict[str, Any], MaterialCache], Materialized]
    describe: Callable[[dict[str, Any]], str] | None = field(
        default=None
    )
    #: True when specs materialize to a generative sampler instead of
    #: a deterministic label function (lets the suite shim expose the
    #: right slot without materializing anything).
    generative: bool = False
    #: Optional post-resolution hook for defaults that depend on other
    #: parameters (e.g. adder ``bit`` defaulting to the MSB of
    #: ``width``).  Runs before the canonical name is derived, so the
    #: name always shows fully resolved parameters.
    finalize: Callable[[dict[str, Any]], dict[str, Any]] | None = None

    def param_summary(self) -> list[tuple[str, object | None]]:
        """``(name, default)`` pairs for display; required parameters
        (no default) appear with ``None``."""
        return [
            (key, None if default is REQUIRED else default)
            for key, (_, default) in self.params.items()
        ]

    def resolve_params(self, overrides: Mapping[str, object]) -> dict[str, Any]:
        resolved: dict[str, Any] = {}
        for key, (kind, default) in self.params.items():
            if key in overrides:
                raw = overrides[key]
                try:
                    resolved[key] = kind(raw) if not isinstance(raw, kind) \
                        else raw
                except (TypeError, ValueError):
                    raise ValueError(
                        f"family {self.name!r}: parameter {key}={raw!r} "
                        f"is not a valid {kind.__name__}"
                    ) from None
            elif default is REQUIRED:
                raise ValueError(
                    f"family {self.name!r} requires parameter {key!r} "
                    f"(e.g. {self.name}:{key}=...)"
                )
            else:
                resolved[key] = default
        unknown = set(overrides) - set(self.params)
        if unknown:
            raise ValueError(
                f"family {self.name!r} has no parameter(s) "
                f"{sorted(unknown)}; accepted: {sorted(self.params)}"
            )
        if self.finalize is not None:
            resolved = self.finalize(resolved)
        return resolved

    def spec(self, *, index: int | None = None,
             name: str | None = None,
             category: str | None = None,
             **overrides) -> ProblemSpec:
        """A concrete :class:`ProblemSpec` of this family.

        Without ``name`` the spec gets its canonical generated name:
        ``family:key=value,...`` over every resolved parameter in
        sorted order, so two spellings of the same instance collapse
        to one identity (and one cache entry, one RNG stream).
        """
        resolved = self.resolve_params(overrides)
        params = tuple(sorted(resolved.items()))
        if name is None:
            name = canonical_spec_string(self.name, resolved)
        if self.describe is not None:
            description = self.describe(resolved)
        else:
            description = self.description
        return ProblemSpec(
            name=name,
            family=self.name,
            params=params,
            n_inputs=int(self.n_inputs(resolved)),
            category=category if category is not None else self.category,
            description=description,
            index=index,
        )


def canonical_spec_string(family: str, params: Mapping[str, object]) -> str:
    """The one true name of a generated family instance."""
    if not params:
        return family
    joined = ",".join(f"{k}={v}" for k, v in sorted(params.items()))
    return f"{family}:{joined}"


def parse_spec_string(text: str) -> tuple[str, dict[str, str]]:
    """``"adder:width=48,bit=47"`` -> ``("adder", {...})``."""
    head, _, tail = text.partition(":")
    overrides: dict[str, str] = {}
    if tail:
        for item in tail.split(","):
            key, eq, value = item.partition("=")
            if not eq or not key:
                raise ValueError(
                    f"malformed family spec {text!r}: expected "
                    f"family:key=value[,key=value...]"
                )
            overrides[key.strip()] = value.strip()
    return head.strip(), overrides


# ---------------------------------------------------------------------------
# Sampling helpers (moved from suite.py; byte-identical behaviour)
# ---------------------------------------------------------------------------


def unique_uniform_rows(
    n_inputs: int, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Uniform random distinct input rows.

    For wide inputs collisions are essentially impossible and we skip
    the dedup; for narrow inputs we sample integers without
    replacement from the full space when it is small enough.
    """
    space = 2.0**n_inputs
    if n_inputs <= 40:
        if space <= 4 * n:
            chosen = rng.choice(int(space), size=min(n, int(space)),
                                replace=False)
        else:
            seen = set()
            while len(seen) < n:
                draw = rng.integers(0, int(space), size=n)
                for v in draw:
                    seen.add(int(v))
                    if len(seen) == n:
                        break
            chosen = np.fromiter(seen, dtype=np.int64, count=n)
        # Python set iteration leaks value order for small ints, which
        # would skew the train/valid/test split; shuffle explicitly.
        chosen = chosen[rng.permutation(len(chosen))]
        X = np.zeros((len(chosen), n_inputs), dtype=np.uint8)
        for i in range(n_inputs):
            X[:, i] = (chosen >> i) & 1
        return X
    return rng.integers(0, 2, size=(n, n_inputs)).astype(np.uint8)


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------


class ProblemRegistry:
    """Named problems + generator families + the material cache."""

    def __init__(self, cache_size: int = 32):
        self.families: dict[str, GeneratorFamily] = {}
        self._named: OrderedDict[str, ProblemSpec] = OrderedDict()
        self.cache = MaterialCache(cache_size)

    # -- registration ------------------------------------------------

    def register_family(self, family: GeneratorFamily) -> GeneratorFamily:
        if family.name in self.families:
            raise ValueError(f"family {family.name!r} already registered")
        self.families[family.name] = family
        return family

    def register(self, spec: ProblemSpec) -> ProblemSpec:
        if spec.name in self._named:
            raise ValueError(f"problem {spec.name!r} already registered")
        self._named[spec.name] = spec
        return spec

    # -- lookup ------------------------------------------------------

    def names(self) -> list[str]:
        return list(self._named)

    def family_names(self) -> list[str]:
        return sorted(self.families)

    def __contains__(self, name: str) -> bool:
        return name in self._named

    def by_index(self, index: int) -> ProblemSpec:
        """The paper benchmark at suite ``index`` (``ex{index:02d}``)."""
        name = f"ex{index:02d}"
        spec = self._named.get(name)
        if spec is None or spec.index != index:
            raise IndexError(
                f"benchmark index {index} out of range (no registered "
                f"{name!r})"
            )
        return spec

    def get(self, name: str | ProblemSpec) -> ProblemSpec:
        """One spec: a registered name or a family spec string."""
        if isinstance(name, ProblemSpec):
            return name
        named = self._named.get(name)
        if named is not None:
            return named
        head = name.partition(":")[0]
        if head in self.families:
            _, overrides = parse_spec_string(name)
            return self.families[head].spec(**overrides)
        raise KeyError(self._unknown_message(name))

    def _unknown_message(self, name: str) -> str:
        pool = list(self._named) + list(self.families)
        hint = did_you_mean(name, pool)
        return (
            f"unknown benchmark {name!r}: not a registered problem, "
            f"family spec or glob (families: "
            f"{', '.join(self.family_names())}){hint}"
        )

    def select(
        self,
        patterns: str | Iterable[str | int | ProblemSpec],
    ) -> list[ProblemSpec]:
        """Resolve a benchmark selector into specs (order-preserving).

        Each pattern may be: a registered name (``ex42``), an integer
        suite index (``42``), a family spec string with parameters
        (``adder:width=48``), a glob over names / families /
        categories (``"adder*"``, ``"ex8?"``, ``"mnist-like"``), or
        ``@path`` — a *suite manifest* file holding one pattern per
        line (``#`` comments allowed).  A comma inside one pattern
        separates sub-patterns, except after a family head, where it
        separates parameters (``cone:inputs=64,seed=3`` is one spec).
        Duplicates collapse to the first occurrence.
        """
        if isinstance(patterns, (str, int)):
            patterns = [patterns]
        out: OrderedDict[str, ProblemSpec] = OrderedDict()
        for pattern in patterns:
            for spec in self._select_one(pattern):
                out.setdefault(spec.name, spec)
        return list(out.values())

    def _select_one(
        self, pattern: str | int | ProblemSpec
    ) -> list[ProblemSpec]:
        if isinstance(pattern, ProblemSpec):
            return [pattern]
        if isinstance(pattern, (int, np.integer)):
            return [self.by_index(int(pattern))]
        pattern = pattern.strip()
        if not pattern:
            return []
        if pattern.startswith("@"):
            return self._select_manifest(pattern[1:])
        head = pattern.partition(":")[0]
        if head in self.families:
            # Parameters may contain commas; the whole token is one spec.
            return [self.get(pattern)]
        if "," in pattern:
            specs: list[ProblemSpec] = []
            for part in pattern.split(","):
                specs.extend(self._select_one(part))
            return specs
        if pattern.lstrip("-").isdigit():
            return [self.by_index(int(pattern))]
        if pattern in self._named:
            return [self._named[pattern]]
        if any(ch in pattern for ch in "*?["):
            matches = [
                spec for spec in self._named.values()
                if fnmatch.fnmatchcase(spec.name, pattern)
                or fnmatch.fnmatchcase(spec.family, pattern)
                or fnmatch.fnmatchcase(spec.category, pattern)
            ]
            if not matches:
                raise KeyError(
                    f"benchmark glob {pattern!r} matches nothing "
                    f"(families: {', '.join(self.family_names())})"
                )
            return matches
        # Bare family/category name acts as a select-all for it.
        matches = [
            spec for spec in self._named.values()
            if spec.family == pattern or spec.category == pattern
        ]
        if matches:
            return matches
        raise KeyError(self._unknown_message(pattern))

    def _select_manifest(self, path: str) -> list[ProblemSpec]:
        """A suite manifest: one selector pattern per line."""
        text = Path(path).read_text(encoding="utf-8")
        specs: list[ProblemSpec] = []
        for line in text.splitlines():
            line = line.split("#", 1)[0].strip()
            if line:
                specs.extend(self._select_one(line))
        return specs

    # -- materialization ---------------------------------------------

    def materialize(self, spec: str | ProblemSpec) -> Materialized:
        """The built generator for a spec (bounded-cache memoized)."""
        spec = self.get(spec)
        family = self.families[spec.family]
        resolved = spec  # bind for the closure after narrowing to a spec
        built = self.cache.get(
            ("materialized", spec.family, spec.params),
            lambda: family.build(resolved.params_dict, self.cache),
        )
        return cast(Materialized, built)

    def problem(
        self,
        spec: str | ProblemSpec,
        n_train: int = 6400,
        n_valid: int = 6400,
        n_test: int = 6400,
        master_seed: int = 0,
    ) -> LearningProblem:
        """Sample a train/validation/test triple for one spec.

        For deterministic label functions the three sets are disjoint
        in input space (split from one without-replacement draw);
        generative benchmarks use independent draws, like the
        contest's image data.  Paper benchmarks reproduce the
        historical ``make_problem`` byte-for-byte.
        """
        spec = self.get(spec)
        material = self.materialize(spec)
        rng = rng_for("problem", spec.seed_part, master_seed)
        total = n_train + n_valid + n_test
        X, y = material.sample(spec.n_inputs, total, rng)
        train = Dataset(X[:n_train], y[:n_train])
        valid = Dataset(X[n_train : n_train + n_valid],
                        y[n_train : n_train + n_valid])
        test = Dataset(X[n_train + n_valid :], y[n_train + n_valid :])
        return LearningProblem(
            name=spec.name,
            category=spec.category,
            n_inputs=spec.n_inputs,
            train=train,
            valid=valid,
            test=test,
        )


# ---------------------------------------------------------------------------
# The built-in families (the ten paper categories, parameterized)
# ---------------------------------------------------------------------------


def _build_label(fn) -> Materialized:
    return Materialized(label_fn=fn)


def _adder(p, cache):
    return _build_label(fns.adder_bit(p["width"], p["bit"]))


def _divider(p, cache):
    part = p["part"]
    if part not in ("quotient", "remainder"):
        raise ValueError("divider part must be 'quotient' or 'remainder'")
    return _build_label(fns.divider_bit(p["width"], part))


def _multiplier(p, cache):
    return _build_label(fns.multiplier_bit(p["width"], p["bit"]))


def _comparator(p, cache):
    return _build_label(fns.comparator(p["width"]))


def _sqrt(p, cache):
    which = p["which"]
    if which not in ("lsb", "mid"):
        raise ValueError("sqrt which must be 'lsb' or 'mid'")
    return _build_label(fns.sqrt_bit(p["width"], which))


def _cone(p, cache):
    from repro.contest.randomlogic import random_cone_function

    flavour = p["flavour"]
    if flavour not in ("control", "mixed"):
        raise ValueError("cone flavour must be 'control' or 'mixed'")
    return _build_label(random_cone_function(
        p["inputs"], flavour, p["seed"], density=p["density"],
    ))


def _cordic(p, cache):
    return _build_label(fns.cordic_sign(output=p["output"]))


def _widesop(p, cache):
    return _build_label(fns.wide_sop_like(
        n_inputs=p["inputs"], n_cubes=p["cubes"],
        literals=p["literals"], seed=p["seed"],
    ))


def _t481(p, cache):
    return _build_label(fns.t481_like())


def _parity(p, cache):
    return _build_label(fns.parity(p["inputs"]))


def _symmetric(p, cache):
    return _build_label(fns.symmetric16(p["signature"]))


def _image_model(kind: str, cache: MaterialCache):
    from repro.contest.imagelike import cifar_like_model, mnist_like_model

    builder = mnist_like_model if kind == "mnist" else cifar_like_model
    return cache.get(("image-model", kind), builder)


def _image_pixels(kind: str) -> int:
    return 196 if kind == "mnist" else 256  # 14x14 / 16x16


def _image_family(kind: str):
    def build(p, cache):
        from repro.contest.imagelike import group_comparison_sampler

        model = _image_model(kind, cache)
        return Materialized(
            sampler=group_comparison_sampler(model, p["comparison"])
        )

    return build


def _perturbed(p, cache):
    """A standard function XOR a sparse seeded SOP: the base problem
    with a deterministic, structured 'label noise' overlay."""
    base = DEFAULT_REGISTRY.get(p["base"])
    base_material = DEFAULT_REGISTRY.materialize(base)
    if base_material.label_fn is None:
        raise ValueError(
            f"perturbed base {p['base']!r} must be a deterministic "
            f"label function, not a generative sampler"
        )
    noise = fns.wide_sop_like(
        n_inputs=base.n_inputs, n_cubes=p["cubes"],
        literals=p["literals"], seed=p["seed"],
    )
    base_fn = base_material.label_fn

    def fn(X: np.ndarray) -> np.ndarray:
        return (base_fn(X) ^ noise(X)).astype(np.uint8)

    fn.n_inputs = base.n_inputs
    fn.__name__ = f"perturbed_{base.name}"
    return _build_label(fn)


def _perturbed_inputs(p) -> int:
    return DEFAULT_REGISTRY.get(p["base"]).n_inputs


def _composed(p, cache):
    """XOR of two deterministic benchmarks over shared inputs (the
    wider operand's extra columns feed only the wider function)."""
    a = DEFAULT_REGISTRY.get(p["a"])
    b = DEFAULT_REGISTRY.get(p["b"])
    ma = DEFAULT_REGISTRY.materialize(a)
    mb = DEFAULT_REGISTRY.materialize(b)
    if ma.label_fn is None or mb.label_fn is None:
        raise ValueError(
            "composed operands must be deterministic label functions"
        )
    fa, fb = ma.label_fn, mb.label_fn
    na, nb = a.n_inputs, b.n_inputs

    def fn(X: np.ndarray) -> np.ndarray:
        return (fa(X[:, :na]) ^ fb(X[:, :nb])).astype(np.uint8)

    fn.n_inputs = max(na, nb)
    fn.__name__ = f"composed_{a.name}_{b.name}"
    return _build_label(fn)


def _composed_inputs(p) -> int:
    return max(DEFAULT_REGISTRY.get(p["a"]).n_inputs,
               DEFAULT_REGISTRY.get(p["b"]).n_inputs)


def _builtin_families() -> list[GeneratorFamily]:
    return [
        GeneratorFamily(
            name="adder", category="adder",
            description="output bit of a k-bit adder",
            params={"width": (int, REQUIRED), "bit": (int, -1)},
            n_inputs=lambda p: 2 * p["width"],
            build=_adder,
            describe=lambda p: (
                f"bit {p['bit']} of {p['width']}-bit adder"),
            finalize=lambda p: _default_bit(p, p["width"]),
        ),
        GeneratorFamily(
            name="divider", category="divider",
            description="quotient/remainder MSB of a k-bit divider",
            params={"width": (int, REQUIRED), "part": (str, "quotient")},
            n_inputs=lambda p: 2 * p["width"],
            build=_divider,
            describe=lambda p: (
                f"{p['part']} MSB of {p['width']}-bit divider"),
        ),
        GeneratorFamily(
            name="multiplier", category="multiplier",
            description="output bit of a k-bit multiplier",
            params={"width": (int, REQUIRED), "bit": (int, -1)},
            n_inputs=lambda p: 2 * p["width"],
            build=_multiplier,
            describe=lambda p: (
                f"bit {p['bit']} of {p['width']}-bit multiplier"),
            finalize=lambda p: _default_bit(p, 2 * p["width"] - 1),
        ),
        GeneratorFamily(
            name="comparator", category="comparator",
            description="k-bit comparator (a > b)",
            params={"width": (int, REQUIRED)},
            n_inputs=lambda p: 2 * p["width"],
            build=_comparator,
            describe=lambda p: f"{p['width']}-bit comparator (a > b)",
        ),
        GeneratorFamily(
            name="sqrt", category="sqrt",
            description="lsb/mid bit of a k-bit square-rooter",
            params={"width": (int, REQUIRED), "which": (str, "lsb")},
            n_inputs=lambda p: p["width"],
            build=_sqrt,
            describe=lambda p: (
                f"{p['which']} bit of {p['width']}-bit square-rooter"),
        ),
        GeneratorFamily(
            name="cone", category="randomlogic",
            description="balanced seeded random logic cone",
            params={
                "inputs": (int, REQUIRED),
                "flavour": (str, "control"),
                "seed": (int, 0),
                "density": (int, 3),
            },
            n_inputs=lambda p: p["inputs"],
            build=_cone,
            describe=lambda p: (
                f"balanced random {p['flavour']} cone, {p['inputs']} "
                f"inputs (density {p['density']}, seed {p['seed']})"),
        ),
        GeneratorFamily(
            name="cordic", category="mcnc-like",
            description="CORDIC sin/cos threshold comparison",
            params={"output": (str, "sin_ge")},
            n_inputs=lambda p: 23,
            build=_cordic,
        ),
        GeneratorFamily(
            name="widesop", category="mcnc-like",
            description="seeded wide two-level function",
            params={
                "inputs": (int, 38),
                "cubes": (int, 40),
                "literals": (int, 7),
                "seed": (int, 0),
            },
            n_inputs=lambda p: p["inputs"],
            build=_widesop,
            describe=lambda p: (
                f"wide SOP: {p['cubes']} cubes x {p['literals']} "
                f"literals over {p['inputs']} inputs (seed {p['seed']})"),
        ),
        GeneratorFamily(
            name="t481", category="mcnc-like",
            description="t481-like structured function",
            params={},
            n_inputs=lambda p: 16,
            build=_t481,
        ),
        GeneratorFamily(
            name="parity", category="mcnc-like",
            description="XOR of all inputs",
            params={"inputs": (int, 16)},
            n_inputs=lambda p: p["inputs"],
            build=_parity,
            describe=lambda p: f"{p['inputs']}-input parity",
        ),
        GeneratorFamily(
            name="symmetric", category="symmetric",
            description="symmetric function from its signature",
            params={"signature": (str, REQUIRED)},
            n_inputs=lambda p: len(p["signature"]) - 1,
            build=_symmetric,
            describe=lambda p: (
                f"{len(p['signature']) - 1}-input symmetric "
                f"{p['signature']}"),
        ),
        GeneratorFamily(
            name="mnist", category="mnist-like",
            description="MNIST-like group comparison",
            params={"comparison": (int, REQUIRED)},
            n_inputs=lambda p: _image_pixels("mnist"),
            build=_image_family("mnist"),
            describe=lambda p: f"MNIST-like groups {p['comparison']}",
            generative=True,
        ),
        GeneratorFamily(
            name="cifar", category="cifar-like",
            description="CIFAR-like group comparison",
            params={"comparison": (int, REQUIRED)},
            n_inputs=lambda p: _image_pixels("cifar"),
            build=_image_family("cifar"),
            describe=lambda p: f"CIFAR-like groups {p['comparison']}",
            generative=True,
        ),
        GeneratorFamily(
            name="perturbed", category="perturbed",
            description="standard function XOR sparse seeded SOP noise",
            params={
                "base": (str, REQUIRED),
                "cubes": (int, 8),
                "literals": (int, 6),
                "seed": (int, 0),
            },
            n_inputs=_perturbed_inputs,
            build=_perturbed,
            describe=lambda p: (
                f"{p['base']} perturbed by {p['cubes']} noise cubes "
                f"(seed {p['seed']})"),
        ),
        GeneratorFamily(
            name="composed", category="composed",
            description="XOR of two deterministic benchmarks",
            params={"a": (str, REQUIRED), "b": (str, REQUIRED)},
            n_inputs=_composed_inputs,
            build=_composed,
            describe=lambda p: f"{p['a']} XOR {p['b']}",
        ),
    ]


def _default_bit(p: dict[str, Any], msb: int) -> dict[str, Any]:
    """``bit=-1`` (the default) means the MSB for adder/multiplier."""
    out = dict(p)
    if out.get("bit", -1) < 0:
        out["bit"] = msb
    return out


# ---------------------------------------------------------------------------
# The paper's 100 named benchmarks (Table I), registered via families
# ---------------------------------------------------------------------------

ADDER_WIDTHS = (16, 32, 64, 128, 256)
DIVIDER_WIDTHS = (16, 32, 64, 128, 256)
MULTIPLIER_WIDTHS = (8, 16, 32, 64, 128)
COMPARATOR_WIDTHS = tuple(range(10, 101, 10))
SQRT_WIDTHS = (16, 32, 64, 128, 256)
CONE_INPUTS = (16, 32, 57, 83, 108, 134, 159, 185, 200, 24)


def _register_paper_suite(reg: ProblemRegistry) -> None:
    def add(index: int, family: str, category: str, **params) -> None:
        spec = reg.families[family].spec(
            index=index, name=f"ex{index:02d}", category=category,
            **params,
        )
        reg.register(spec)

    # ex00-09: two MSBs of adders.
    for i, k in enumerate(ADDER_WIDTHS):
        for j, bit in enumerate((k, k - 1)):  # MSB (carry), 2nd MSB
            add(2 * i + j, "adder", "adder", width=k, bit=bit)
    # ex10-19: divider quotient/remainder MSBs.
    for i, k in enumerate(DIVIDER_WIDTHS):
        for j, part in enumerate(("quotient", "remainder")):
            add(10 + 2 * i + j, "divider", "divider", width=k, part=part)
    # ex20-29: multiplier MSB and middle bit.
    for i, k in enumerate(MULTIPLIER_WIDTHS):
        for j, bit in enumerate((2 * k - 1, k - 1)):
            add(20 + 2 * i + j, "multiplier", "multiplier",
                width=k, bit=bit)
    # ex30-39: comparators.
    for i, k in enumerate(COMPARATOR_WIDTHS):
        add(30 + i, "comparator", "comparator", width=k)
    # ex40-49: square-rooter LSB / middle bit.
    for i, k in enumerate(SQRT_WIDTHS):
        for j, which in enumerate(("lsb", "mid")):
            add(40 + 2 * i + j, "sqrt", "sqrt", width=k, which=which)
    # ex50-59 / ex60-69: PicoJava-like and i10-like cones.
    for i, n in enumerate(CONE_INPUTS):
        add(50 + i, "cone", "picojava-like",
            inputs=n, flavour="control", seed=i)
    for i, n in enumerate(CONE_INPUTS):
        add(60 + i, "cone", "i10-like",
            inputs=n, flavour="mixed", seed=i)
    # ex70-74: MCNC singles.
    add(70, "cordic", "mcnc-like", output="sin_ge")
    add(71, "cordic", "mcnc-like", output="cos_ge")
    add(72, "widesop", "mcnc-like", seed=2)
    add(73, "t481", "mcnc-like")
    add(74, "parity", "mcnc-like", inputs=16)
    # ex75-79: symmetric functions.
    for i, sig in enumerate(fns.SYMMETRIC_SIGNATURES):
        add(75 + i, "symmetric", "symmetric", signature=sig)
    # ex80-89 / ex90-99: image-like group comparisons.
    for i in range(10):
        add(80 + i, "mnist", "mnist-like", comparison=i)
    for i in range(10):
        add(90 + i, "cifar", "cifar-like", comparison=i)


def _paper_descriptions(reg: ProblemRegistry) -> None:
    """Keep the historical ``repro list`` wording for cordic/t481."""
    overrides = {
        "ex70": "cordic output 0 (sin threshold)",
        "ex71": "cordic output 1 (cos threshold)",
        "ex72": "too_large-like wide SOP",
        "ex73": "t481-like structured function",
        "ex74": "16-input parity",
    }
    for name, description in overrides.items():
        old = reg._named[name]
        reg._named[name] = ProblemSpec(
            name=old.name, family=old.family, params=old.params,
            n_inputs=old.n_inputs, category=old.category,
            description=description, index=old.index,
        )


def _build_default_registry() -> ProblemRegistry:
    reg = ProblemRegistry()
    for family in _builtin_families():
        reg.register_family(family)
    _register_paper_suite(reg)
    _paper_descriptions(reg)
    return reg


#: The process-wide registry every layer (suite shim, runner, CLI,
#: analysis, serving) resolves benchmarks through.
DEFAULT_REGISTRY = _build_default_registry()


def clear_cache() -> None:
    """Drop every materialized generator in the default registry."""
    DEFAULT_REGISTRY.cache.clear()
