"""Learning problems and solutions (the contest contract).

A flow receives the *training* and *validation* sets and must return a
:class:`Solution` whose AIG has at most 5000 AND nodes; the *test* set
stays with the harness, exactly as in the contest (it "was kept
private until the competition was over").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aig.aig import AIG
from repro.ml.dataset import Dataset

MAX_AND_NODES = 5000


@dataclass
class LearningProblem:
    """One benchmark instance with its three sample sets."""

    name: str
    category: str
    n_inputs: int
    train: Dataset
    valid: Dataset
    test: Dataset

    def merged_train_valid(self) -> Dataset:
        """Train+validation merge (several teams retrain on it)."""
        return self.train.merge(self.valid)


@dataclass
class Solution:
    """A flow's answer: the circuit plus bookkeeping.

    Size accounting is over *used* nodes (the transitive fanin of the
    outputs): a graph that still carries dead logic — e.g. a candidate
    that was never cone-extracted — is judged by what it actually
    computes with, exactly like a cleaned-up AIGER submission would
    have been.
    """

    aig: AIG
    method: str
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def num_ands(self) -> int:
        return self.aig.count_used_ands()

    def is_legal(self, max_nodes: int = MAX_AND_NODES) -> bool:
        return self.num_ands <= max_nodes
