"""Ground-truth benchmark functions (arithmetic, symmetric, CORDIC).

Each function maps a ``(n_samples, n_inputs)`` 0/1 matrix to labels.
Word operands are wired LSB-first, with word A in the low columns and
word B in the high columns — the ordering the paper says let Team 1
reverse-engineer the arithmetic test cases.

All arithmetic is exact Python-integer arithmetic, so 256-bit dividers
and square-rooters are no problem.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from typing import Any

import numpy as np

from repro.utils.bitops import rows_to_ints

LabelFn = Callable[[np.ndarray], np.ndarray]


def brand_label_fn(
    fn: Any, n_inputs: int, name: str, **extra: Any
) -> LabelFn:
    """Attach the introspection attributes every label function carries
    (``n_inputs``, a readable ``__name__``, optional extras like the
    frozen cone's ``aig``)."""
    fn.n_inputs = n_inputs
    fn.__name__ = name
    for key, value in extra.items():
        setattr(fn, key, value)
    return fn


def _split_words(X: np.ndarray) -> tuple:
    k = X.shape[1] // 2
    return rows_to_ints(X[:, :k]), rows_to_ints(X[:, k:])


def adder_bit(k: int, bit: int) -> LabelFn:
    """Output bit ``bit`` of the (k+1)-bit sum of two k-bit words."""

    def fn(X: np.ndarray) -> np.ndarray:
        a, b = _split_words(X)
        return np.array(
            [((x + y) >> bit) & 1 for x, y in zip(a, b, strict=True)], dtype=np.uint8
        )

    return brand_label_fn(fn, 2 * k, f"adder{k}_bit{bit}")


def divider_bit(k: int, part: str) -> LabelFn:
    """MSB of the quotient or remainder of ``a / b`` (k-bit words).

    Division by zero follows the usual hardware convention: quotient
    all-ones, remainder = dividend.
    """
    if part not in ("quotient", "remainder"):
        raise ValueError("part must be 'quotient' or 'remainder'")
    msb = k - 1

    def fn(X: np.ndarray) -> np.ndarray:
        a, b = _split_words(X)
        out = []
        for x, y in zip(a, b, strict=True):
            if y == 0:
                q, r = (1 << k) - 1, x
            else:
                q, r = divmod(x, y)
            value = q if part == "quotient" else r
            out.append((value >> msb) & 1)
        return np.array(out, dtype=np.uint8)

    return brand_label_fn(fn, 2 * k, f"divider{k}_{part}_msb")


def multiplier_bit(k: int, bit: int) -> LabelFn:
    """Output bit ``bit`` of the 2k-bit product of two k-bit words."""

    def fn(X: np.ndarray) -> np.ndarray:
        a, b = _split_words(X)
        return np.array(
            [((x * y) >> bit) & 1 for x, y in zip(a, b, strict=True)], dtype=np.uint8
        )

    return brand_label_fn(fn, 2 * k, f"multiplier{k}_bit{bit}")


def comparator(k: int) -> LabelFn:
    """``a > b`` over two k-bit words."""

    def fn(X: np.ndarray) -> np.ndarray:
        a, b = _split_words(X)
        return np.array([int(x > y) for x, y in zip(a, b, strict=True)], dtype=np.uint8)

    return brand_label_fn(fn, 2 * k, f"comparator{k}")


def sqrt_bit(k: int, which: str) -> LabelFn:
    """LSB or middle bit of the integer square root of a k-bit word."""
    root_bits = (k + 1) // 2
    bit = 0 if which == "lsb" else root_bits // 2

    def fn(X: np.ndarray) -> np.ndarray:
        values = rows_to_ints(X)
        return np.array(
            [(math.isqrt(v) >> bit) & 1 for v in values], dtype=np.uint8
        )

    return brand_label_fn(fn, k, f"sqrt{k}_{which}")


# The five 16-input symmetric signatures of ex75-ex79 (Table I text).
SYMMETRIC_SIGNATURES: list[str] = [
    "00000000111111111",
    "11111100000111111",
    "00011110001111000",
    "00001110101110000",
    "00000011111000000",
]


def symmetric16(signature: str) -> LabelFn:
    """16-input symmetric function from its 17-character signature."""
    if len(signature) != 17:
        raise ValueError("signature must have 17 characters")
    lut = np.array([1 if ch == "1" else 0 for ch in signature], dtype=np.uint8)

    def fn(X: np.ndarray) -> np.ndarray:
        return lut[X.sum(axis=1)]

    return brand_label_fn(fn, 16, f"symmetric16_{signature}")


def parity(n: int = 16) -> LabelFn:
    """XOR of all inputs (MCNC ``parity``, ex74)."""

    def fn(X: np.ndarray) -> np.ndarray:
        return (X.sum(axis=1) % 2).astype(np.uint8)

    return brand_label_fn(fn, n, f"parity{n}")


def t481_like() -> LabelFn:
    """Structured 16-input function standing in for MCNC ``t481``.

    t481 is the classic example of a function with a huge SOP but a
    tiny multi-level form built from XORs and ANDs; we use the same
    shape: XOR of four (xor AND xor) groups.
    """

    def fn(X: np.ndarray) -> np.ndarray:
        x = X.astype(np.uint8)
        groups = []
        for g in range(4):
            base = 4 * g
            left = x[:, base] ^ x[:, base + 1]
            right = x[:, base + 2] ^ x[:, base + 3]
            groups.append(left & right)
        out = groups[0]
        for g in groups[1:]:
            out = out ^ g
        return out.astype(np.uint8)

    return brand_label_fn(fn, 16, "t481_like")


def cordic_sign(angle_bits: int = 12, value_bits: int = 11,
                output: str = "sin_ge") -> LabelFn:
    """CORDIC benchmark substitute (MCNC ``cordic``, ex70/ex71).

    Inputs are an ``angle_bits``-bit phase word and a ``value_bits``-bit
    threshold.  A fixed-iteration integer CORDIC rotation computes
    sin/cos of the phase; the output compares it to the threshold:
    ``sin_ge`` -> sin(theta) >= v, ``cos_ge`` -> cos(theta) >= v
    (both in signed fixed point).
    """
    if output not in ("sin_ge", "cos_ge"):
        raise ValueError("output must be 'sin_ge' or 'cos_ge'")
    iterations = 14
    scale = 1 << 14
    # Pre-computed arctan table in turn units scaled by 2**angle_bits.
    atan_table = [
        math.atan(2.0**-i) / (2 * math.pi) for i in range(iterations)
    ]
    gain = 1.0
    for i in range(iterations):
        gain *= math.sqrt(1 + 2.0 ** (-2 * i))

    def cordic(theta_turns: float) -> tuple:
        # Rotate (1/gain, 0) by theta using doubling into [-1/4, 1/4].
        angle = theta_turns % 1.0
        x, y = 1.0 / gain, 0.0
        # Map to [-1/2, 1/2) then quadrant-fix.
        if angle >= 0.5:
            angle -= 1.0
        flip = False
        if angle > 0.25:
            angle -= 0.5
            flip = True
        elif angle < -0.25:
            angle += 0.5
            flip = True
        z = angle
        for i in range(iterations):
            d = 1.0 if z >= 0 else -1.0
            x, y = x - d * y * 2.0**-i, y + d * x * 2.0**-i
            z -= d * atan_table[i]
        if flip:
            x, y = -x, -y
        return x, y

    def fn(X: np.ndarray) -> np.ndarray:
        angles = rows_to_ints(X[:, :angle_bits])
        thresholds = rows_to_ints(X[:, angle_bits:])
        out = []
        for a, v in zip(angles, thresholds, strict=True):
            x, y = cordic(a / (1 << angle_bits))
            target = y if output == "sin_ge" else x
            fixed = int(round(target * scale))
            # Threshold is unsigned in [0, 2^value_bits); compare in
            # the shifted domain so both polarities matter.
            shifted = fixed + scale  # [0, 2*scale]
            level = v << (15 - value_bits)
            out.append(int(shifted >= level))
        return np.array(out, dtype=np.uint8)

    return brand_label_fn(fn, angle_bits + value_bits, f"cordic_{output}")


def wide_sop_like(
    n_inputs: int = 38, n_cubes: int = 40, literals: int = 7, seed: int = 0
) -> LabelFn:
    """Seeded wide two-level function (MCNC ``too_large`` substitute)."""
    rng = np.random.default_rng(seed)
    cubes = []
    for _ in range(n_cubes):
        cols = rng.choice(n_inputs, size=literals, replace=False)
        vals = rng.integers(0, 2, size=literals)
        cubes.append((cols, vals))

    def fn(X: np.ndarray) -> np.ndarray:
        out = np.zeros(X.shape[0], dtype=bool)
        for cols, vals in cubes:
            out |= (X[:, cols] == vals).all(axis=1)
        return out.astype(np.uint8)

    return brand_label_fn(fn, n_inputs, f"wide_sop_{seed}")
