"""Export the benchmark suite as contest-format PLA files.

The organizers distributed each benchmark as ``exNN.train.pla``,
``exNN.valid.pla`` and ``exNN.test.pla``; this module recreates that
layout so downstream tools (or the original contest submissions) can
consume our suite directly:

    python -m repro.contest.export --out-dir ./iwls2020 \
        --indices 0 30 74 --samples 6400
"""

from __future__ import annotations

import argparse
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.contest.suite import build_suite, make_problem
from repro.twolevel.pla import write_pla


def export_benchmarks(
    out_dir: Path,
    indices: Sequence[int] | None = None,
    samples: int = 6400,
    master_seed: int = 0,
) -> Iterable[Path]:
    """Write the train/valid/test PLA triple per benchmark index."""
    suite = build_suite()
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    written = []
    for idx in indices if indices is not None else range(100):
        spec = suite[idx]
        problem = make_problem(
            spec, n_train=samples, n_valid=samples, n_test=samples,
            master_seed=master_seed,
        )
        for split, data in (
            ("train", problem.train),
            ("valid", problem.valid),
            ("test", problem.test),
        ):
            path = out_dir / f"{spec.name}.{split}.pla"
            write_pla(data.to_pla(), path)
            written.append(path)
    return written


def main(argv: Sequence[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", type=Path, required=True)
    parser.add_argument("--indices", type=int, nargs="*", default=None)
    parser.add_argument("--samples", type=int, default=6400)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    written = export_benchmarks(
        args.out_dir, args.indices, args.samples, args.seed
    )
    print(f"wrote {len(list(written))} PLA files to {args.out_dir}")


if __name__ == "__main__":
    main()
