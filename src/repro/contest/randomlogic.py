"""Seeded random multi-level logic cones (PicoJava / i10 substitutes).

The contest's ex50-ex69 are output cones extracted from the PicoJava
and MCNC i10 netlists: 16-200 inputs, multi-level random-looking
control logic, onset/offset roughly balanced.  We cannot ship those
netlists, so we generate seeded random AIG cones with the same
profile and *resample until the output is balanced* (onset fraction in
[0.35, 0.65] over a probe set), as the benchmark description requires.

Two structural flavours distinguish the categories: ``control`` cones
(AND/OR-heavy, PicoJava-like) and ``mixed`` cones that also sprinkle
XOR/MUX nodes (i10-like).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.aig.aig import AIG, lit_not
from repro.contest.functions import brand_label_fn
from repro.utils.rng import rng_for


def _random_cone(
    n_inputs: int, n_nodes: int, flavour: str, rng: np.random.Generator
) -> AIG:
    aig = AIG(n_inputs)
    pool = list(aig.input_lits())
    for _ in range(n_nodes):
        a = int(pool[rng.integers(0, len(pool))])
        b = int(pool[rng.integers(0, len(pool))])
        if rng.random() < 0.5:
            a = lit_not(a)
        if rng.random() < 0.5:
            b = lit_not(b)
        if flavour == "mixed":
            kind = rng.random()
            if kind < 0.55:
                lit = aig.add_and(a, b)
            elif kind < 0.8:
                lit = aig.add_xor(a, b)
            else:
                c = int(pool[rng.integers(0, len(pool))])
                lit = aig.add_mux(a, b, c)
        else:
            lit = aig.add_and(a, b) if rng.random() < 0.7 else aig.add_or(a, b)
        pool.append(lit)
    aig.set_output(pool[-1])
    return aig.extract_cone()


def random_cone_function(
    n_inputs: int,
    flavour: str = "control",
    seed: int = 0,
    balance_range=(0.35, 0.65),
    density: int = 3,
) -> Callable[[np.ndarray], np.ndarray]:
    """A balanced random logic-cone labelling function.

    Resamples (new derived seeds) until the cone output is balanced on
    a 2048-sample probe, then freezes the cone.  ``density`` scales the
    node budget (``max(24, density * n_inputs)``) — the registry's
    swept-entropy knob: denser cones mix inputs more and are harder to
    learn.  The paper's cones use the default density 3, whose RNG
    stream is unchanged; other densities derive their own stream.
    """
    lo, hi = balance_range
    if density < 1:
        raise ValueError("density must be >= 1")
    n_nodes = max(24, density * n_inputs)
    for attempt in range(200):
        if density == 3:
            rng = rng_for("randomlogic", flavour, n_inputs, seed, attempt)
        else:
            rng = rng_for("randomlogic", flavour, n_inputs, seed,
                          attempt, "d", density)
        aig = _random_cone(n_inputs, n_nodes, flavour, rng)
        probe = rng.integers(0, 2, size=(2048, n_inputs)).astype(np.uint8)
        frac = float(aig.simulate(probe)[:, 0].mean())
        if lo <= frac <= hi:
            break
    else:
        raise RuntimeError(
            f"could not generate a balanced cone for n={n_inputs}"
        )

    def fn(X: np.ndarray) -> np.ndarray:
        return aig.simulate(np.asarray(X, dtype=np.uint8))[:, 0]

    # ``aig`` is exposed for inspection in tests.
    return brand_label_fn(
        fn, n_inputs, f"{flavour}_cone_{n_inputs}_{seed}", aig=aig
    )
