"""Contest scoring.

"The score assigned to each participant was the average test accuracy
over all the benchmarks with possible ties being broken by the circuit
size." — plus the paper's Table III columns: average AND count,
average level count, and the overfit gap (validation minus test
accuracy)."""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.contest.problem import MAX_AND_NODES, LearningProblem, Solution
from repro.ml.metrics import accuracy
from repro.sim.batch import output_predictions


@dataclass
class Score:
    """Evaluation of one solution on one benchmark.

    ``seed`` identifies the trial in multi-seed runs (the runner's
    store sets it when reconstructing scores); ``None`` for ad-hoc
    single evaluations.  ``num_ands`` counts *used* AND nodes (the
    transitive fanin of the output) so dead logic in a non-extracted
    candidate neither inflates the size column nor flips ``legal``.
    """

    benchmark: str
    method: str
    test_accuracy: float
    valid_accuracy: float
    train_accuracy: float
    num_ands: int
    levels: int
    legal: bool
    seed: int | None = None

    @property
    def overfit(self) -> float:
        """Generalization gap as the paper defines it (valid - test)."""
        return self.valid_accuracy - self.test_accuracy


def _check_interface(problem: LearningProblem, solution: Solution) -> None:
    aig = solution.aig
    if aig.n_inputs != problem.n_inputs:
        raise ValueError(
            f"solution has {aig.n_inputs} inputs, problem has "
            f"{problem.n_inputs}"
        )
    if aig.num_outputs != 1:
        raise ValueError("contest solutions are single-output")


def evaluate_solutions(
    problem: LearningProblem,
    solutions: Sequence[Solution],
    max_nodes: int = MAX_AND_NODES,
    backend: str | None = None,
) -> list[Score]:
    """Score many solutions on one benchmark in a single batched pass.

    The test/valid/train matrices are stacked and bit-packed once;
    every circuit is then evaluated against the shared packed words,
    so scoring N candidates costs one packing plus N engine runs
    instead of 3N full simulations.  ``backend`` selects the
    simulation executor (see :mod:`repro.sim.backend`); every backend
    yields bit-identical predictions, so scores are backend-invariant.
    """
    solutions = list(solutions)
    if not solutions:
        return []
    for solution in solutions:
        _check_interface(problem, solution)
    stacked = np.vstack((problem.test.X, problem.valid.X, problem.train.X))
    preds = output_predictions(
        [s.aig for s in solutions], stacked, backend=backend
    )
    n_test = problem.test.n_samples
    n_valid = problem.valid.n_samples
    scores = []
    for solution, pred in zip(solutions, preds, strict=True):
        aig = solution.aig
        scores.append(
            Score(
                benchmark=problem.name,
                method=solution.method,
                test_accuracy=accuracy(problem.test.y, pred[:n_test]),
                valid_accuracy=accuracy(
                    problem.valid.y, pred[n_test : n_test + n_valid]
                ),
                train_accuracy=accuracy(
                    problem.train.y, pred[n_test + n_valid :]
                ),
                num_ands=aig.count_used_ands(),
                levels=aig.depth(),
                legal=solution.is_legal(max_nodes),
            )
        )
    return scores


def evaluate_solution(
    problem: LearningProblem,
    solution: Solution,
    max_nodes: int = MAX_AND_NODES,
    backend: str | None = None,
) -> Score:
    """Score a solution on all three sample sets (one simulation pass)."""
    return evaluate_solutions(problem, [solution], max_nodes, backend)[0]


def summarize(scores: Iterable[Score]) -> dict[str, float]:
    """Table III row for one team: averages over benchmarks."""
    scores = list(scores)
    if not scores:
        raise ValueError("no scores to summarize")
    return {
        "test_accuracy": float(np.mean([s.test_accuracy for s in scores])),
        "and_gates": float(np.mean([s.num_ands for s in scores])),
        "levels": float(np.mean([s.levels for s in scores])),
        "overfit": float(np.mean([s.overfit for s in scores])),
        "legal_fraction": float(np.mean([s.legal for s in scores])),
    }
