"""Multi-output learning problems (the paper's proposed extension).

The conclusion suggests: "Future extensions of this contest could
target circuits with multiple outputs".  This module implements that
extension: word-level benchmarks exposing *all* output bits at once
(e.g. every sum bit of an adder), a dataset/problem type carrying a
label matrix, a baseline flow that trains one model per output into a
single shared structurally hashed AIG, and scoring that counts the
shared logic once — the whole point of multi-output synthesis.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.aig.aig import AIG
from repro.ml.decision_tree import DecisionTree
from repro.ml.metrics import accuracy
from repro.synth.from_tree import tree_output_lit
from repro.utils.bitops import rows_to_ints
from repro.utils.rng import rng_for


@dataclass
class MultiOutputProblem:
    """Train/test sample sets with one label column per output."""

    name: str
    n_inputs: int
    n_outputs: int
    train_X: np.ndarray
    train_Y: np.ndarray
    test_X: np.ndarray
    test_Y: np.ndarray


def adder_all_bits(k: int) -> tuple[int, int, Callable]:
    """All ``k + 1`` sum bits of a k-bit adder."""

    def fn(X: np.ndarray) -> np.ndarray:
        a = rows_to_ints(X[:, :k])
        b = rows_to_ints(X[:, k:])
        out = np.zeros((X.shape[0], k + 1), dtype=np.uint8)
        for r, (av, bv) in enumerate(zip(a, b, strict=True)):
            s = av + bv
            for j in range(k + 1):
                out[r, j] = (s >> j) & 1
        return out

    return 2 * k, k + 1, fn


def multiplier_low_bits(k: int, n_bits: int) -> tuple[int, int, Callable]:
    """The ``n_bits`` least significant product bits of a k-bit
    multiplier."""

    def fn(X: np.ndarray) -> np.ndarray:
        a = rows_to_ints(X[:, :k])
        b = rows_to_ints(X[:, k:])
        out = np.zeros((X.shape[0], n_bits), dtype=np.uint8)
        for r, (av, bv) in enumerate(zip(a, b, strict=True)):
            p = av * bv
            for j in range(n_bits):
                out[r, j] = (p >> j) & 1
        return out

    return 2 * k, n_bits, fn


def make_multioutput_problem(
    name: str,
    spec: tuple[int, int, Callable],
    n_train: int = 2000,
    n_test: int = 1000,
    master_seed: int = 0,
) -> MultiOutputProblem:
    n_inputs, n_outputs, fn = spec
    rng = rng_for("multioutput", name, master_seed)
    X = rng.integers(0, 2, size=(n_train + n_test, n_inputs)).astype(
        np.uint8
    )
    Y = fn(X)
    return MultiOutputProblem(
        name=name,
        n_inputs=n_inputs,
        n_outputs=n_outputs,
        train_X=X[:n_train],
        train_Y=Y[:n_train],
        test_X=X[n_train:],
        test_Y=Y[n_train:],
    )


def shared_tree_flow(
    problem: MultiOutputProblem, max_depth: int = 8
) -> AIG:
    """Baseline multi-output flow: one DT per output, shared AIG.

    Trees use Team 8's functional-decomposition fallback so XOR-shaped
    output bits (every low-order sum bit) are learnable; structural
    hashing shares identical subtrees across outputs for free.  The
    returned AIG has ``n_outputs`` outputs.
    """
    aig = AIG(problem.n_inputs)
    inputs = aig.input_lits()
    for j in range(problem.n_outputs):
        tree = DecisionTree(max_depth=max_depth, decomposition_tau=0.02)
        tree.fit(problem.train_X, problem.train_Y[:, j])
        aig.set_output(tree_output_lit(tree, aig, inputs))
    return aig.extract_cone()


def evaluate_multioutput(
    problem: MultiOutputProblem, aig: AIG
) -> dict:
    """Per-output and average accuracy plus shared-size accounting."""
    if aig.num_outputs != problem.n_outputs:
        raise ValueError("output count mismatch")
    pred = aig.simulate(problem.test_X)
    per_output = [
        accuracy(problem.test_Y[:, j], pred[:, j])
        for j in range(problem.n_outputs)
    ]
    separate_size = sum(
        aig.count_used_ands([aig.outputs[j]])
        for j in range(problem.n_outputs)
    )
    return {
        "per_output": per_output,
        "mean_accuracy": float(np.mean(per_output)),
        "shared_ands": aig.num_ands,
        "sum_of_cones": separate_size,
        "sharing_factor": separate_size / max(1, aig.num_ands),
    }
