"""Accuracy and cross-validation utilities.

The scoring vocabulary shared by every learner and the contest
analysis layer: plain accuracy over 0/1 labels and k-fold
cross-validation whose fold assignment is drawn from a caller-passed
seeded generator — CV scores are deterministic for a given RNG
stream, never dependent on global random state.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

import numpy as np


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of matching labels."""
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch")
    if y_true.size == 0:
        return 0.0
    return float((y_true == y_pred).mean())


def stratified_kfold(
    y: np.ndarray, n_folds: int, rng: np.random.Generator
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(train_idx, test_idx)`` pairs with per-class balance."""
    y = np.asarray(y).ravel()
    folds: list[list[int]] = [[] for _ in range(n_folds)]
    for label in np.unique(y):
        idx = np.nonzero(y == label)[0]
        idx = idx[rng.permutation(len(idx))]
        for pos, sample in enumerate(idx):
            folds[pos % n_folds].append(int(sample))
    for f in range(n_folds):
        test_idx = np.array(sorted(folds[f]), dtype=np.int64)
        train_idx = np.array(
            sorted(i for g in range(n_folds) if g != f for i in folds[g]),
            dtype=np.int64,
        )
        yield train_idx, test_idx


def cross_val_accuracy(
    fit_predict: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    X: np.ndarray,
    y: np.ndarray,
    n_folds: int,
    rng: np.random.Generator,
) -> float:
    """Mean k-fold accuracy of a ``fit_predict(X_tr, y_tr, X_te)`` callable.

    This mirrors how Teams 2 and 7 pick classifier configurations by
    cross-validating on the training data only.
    """
    scores = []
    for train_idx, test_idx in stratified_kfold(y, n_folds, rng):
        pred = fit_predict(X[train_idx], y[train_idx], X[test_idx])
        scores.append(accuracy(y[test_idx], pred))
    return float(np.mean(scores))
