"""C4.5-style decision trees on binary features.

This single implementation covers the roles the contest teams filled
with WEKA's J48 (Team 2), scikit-learn's CART (Teams 5 and 10) and two
custom C4.5 variants (Teams 3 and 8):

* information-gain or gini splitting on 0/1 features;
* depth / minimum-samples stopping (`max_depth`, `min_samples_leaf`);
* C4.5 *confidence-factor* (pessimistic error) subtree pruning, the
  knob Team 2 sweeps over {0.001, 0.01, 0.1, 0.25, 0.5};
* Team 8's *functional decomposition* fallback: when the best mutual
  information is below a threshold ``tau``, split instead on a feature
  for which one branch looks constant or one branch looks like the
  complement of the other (checked aggressively: assumed true until a
  counterexample is found, picking the last satisfying feature, as in
  their contest implementation).

Trees expose their structure (`nodes` array) so the synthesis bridges
can turn them into MUX-tree AIGs or path covers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.twolevel.cover import Cover
from repro.twolevel.cube import Cube

_EPS = 1e-12


def entropy(pos: np.ndarray, total: np.ndarray) -> np.ndarray:
    """Binary entropy of ``pos`` successes out of ``total`` (vectorized)."""
    total = np.maximum(total, _EPS)
    p = np.clip(pos / total, _EPS, 1 - _EPS)
    return -(p * np.log2(p) + (1 - p) * np.log2(1 - p))


def gini(pos: np.ndarray, total: np.ndarray) -> np.ndarray:
    """Gini impurity (vectorized)."""
    total = np.maximum(total, _EPS)
    p = pos / total
    return 2 * p * (1 - p)


@dataclass
class TreeNode:
    """One node; leaves have ``feature == -1``."""

    feature: int = -1
    left: int = -1   # child when feature value is 0
    right: int = -1  # child when feature value is 1
    value: int = 0   # majority label (used when leaf)
    n_samples: int = 0
    n_errors: int = 0  # training errors if this node were a leaf
    is_leaf: bool = True


class DecisionTree:
    """Binary-feature classification tree.

    Parameters
    ----------
    max_depth:
        Depth cap; ``None`` grows until purity (Team 7's "unlimited").
    min_samples_leaf:
        Minimum samples to keep splitting (WEKA's ``-M``).
    criterion:
        ``"entropy"`` (C4.5/J48) or ``"gini"`` (CART).
    min_gain:
        Minimum impurity gain to accept a split.
    decomposition_tau:
        When set, enables Team 8's functional-decomposition fallback
        for splits whose best gain is below this threshold.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        criterion: str = "entropy",
        min_gain: float = 1e-9,
        decomposition_tau: float | None = None,
    ):
        if criterion not in ("entropy", "gini"):
            raise ValueError(f"unknown criterion {criterion!r}")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.criterion = criterion
        self.min_gain = min_gain
        self.decomposition_tau = decomposition_tau
        self.nodes: list[TreeNode] = []
        self.n_inputs: int | None = None

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTree":
        X = np.asarray(X, dtype=np.uint8)
        y = np.asarray(y, dtype=np.uint8).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X/y length mismatch")
        self.n_inputs = X.shape[1]
        self.nodes = []
        self._grow(X, y, np.arange(X.shape[0]), depth=0, banned=0)
        return self

    def _impurity(self, pos, total):
        fn = entropy if self.criterion == "entropy" else gini
        return fn(pos, total)

    def _grow(self, X, y, idx, depth, banned) -> int:
        """Grow a subtree over ``idx``; returns its node index.

        ``banned`` is a bitmask of features already used on this path
        (re-splitting a binary feature is useless).
        """
        node_id = len(self.nodes)
        y_here = y[idx]
        n = len(idx)
        n_pos = int(y_here.sum())
        value = 1 if 2 * n_pos > n else 0
        node = TreeNode(
            value=value,
            n_samples=n,
            n_errors=min(n_pos, n - n_pos),
        )
        self.nodes.append(node)
        if (
            n_pos == 0
            or n_pos == n
            or (self.max_depth is not None and depth >= self.max_depth)
            or n < max(2, 2 * self.min_samples_leaf)
        ):
            return node_id
        feature, gain = self._best_split(X, y, idx, banned)
        if feature is None:
            return node_id
        use_decomposition = (
            self.decomposition_tau is not None
            and gain < self.decomposition_tau
        )
        if use_decomposition:
            alt = self._decomposition_split(X, y, idx, banned)
            if alt is not None:
                feature = alt
        elif gain < self.min_gain:
            return node_id
        mask = X[idx, feature] == 1
        idx_left = idx[~mask]
        idx_right = idx[mask]
        if (
            len(idx_left) < self.min_samples_leaf
            or len(idx_right) < self.min_samples_leaf
        ):
            return node_id
        node.feature = feature
        node.is_leaf = False
        new_banned = banned | (1 << feature)
        node.left = self._grow(X, y, idx_left, depth + 1, new_banned)
        node.right = self._grow(X, y, idx_right, depth + 1, new_banned)
        return node_id

    def _best_split(self, X, y, idx, banned) -> tuple[int | None, float]:
        """Highest-gain feature over the node's samples (vectorized)."""
        Xn = X[idx]
        yn = y[idx]
        n = len(idx)
        ones = Xn.sum(axis=0).astype(np.float64)          # count x=1
        pos_ones = Xn[yn == 1].sum(axis=0).astype(np.float64)
        n_pos = float(yn.sum())
        zeros = n - ones
        pos_zeros = n_pos - pos_ones
        parent = self._impurity(np.array(n_pos), np.array(float(n)))
        child = (
            ones / n * self._impurity(pos_ones, ones)
            + zeros / n * self._impurity(pos_zeros, zeros)
        )
        gains = parent - child
        # A split is useless if one side is empty or the feature was
        # already used on this path.
        gains = np.where((ones == 0) | (zeros == 0), -np.inf, gains)
        if banned:
            banned_idx = [
                i for i in range(X.shape[1]) if banned & (1 << i)
            ]
            gains[banned_idx] = -np.inf
        best = int(np.argmax(gains))
        if not np.isfinite(gains[best]):
            return None, 0.0
        return best, float(gains[best])

    def _decomposition_split(self, X, y, idx, banned) -> int | None:
        """Team 8's fallback: constant branch or complement branches.

        Checked aggressively (complement assumed until a counterexample
        is seen) and picking the *last* satisfying feature, both
        matching the behaviour their write-up describes.
        """
        Xn = X[idx]
        yn = y[idx]
        chosen = None
        for feature in range(X.shape[1]):
            if banned & (1 << feature):
                continue
            mask = Xn[:, feature] == 1
            y0, y1 = yn[~mask], yn[mask]
            if len(y0) == 0 or len(y1) == 0:
                continue
            constant = (
                y0.min() == y0.max() or y1.min() == y1.max()
            )
            complement = self._looks_complement(Xn, yn, feature, mask)
            if constant or complement:
                chosen = feature
        return chosen

    @staticmethod
    def _looks_complement(Xn, yn, feature, mask) -> bool:
        """True unless a counterexample to branch-complementarity exists.

        Two samples that agree on every feature except ``feature``
        must have opposite labels for the branches to be complements.
        """
        other_cols = [c for c in range(Xn.shape[1]) if c != feature]
        seen = {}
        for row, label in zip(Xn, yn, strict=True):
            key = row[other_cols].tobytes()
            side = row[feature]
            prev = seen.get(key)
            if prev is None:
                seen[key] = (int(side), int(label))
            else:
                prev_side, prev_label = prev
                if prev_side != side and prev_label == label:
                    return False
        return True

    # ------------------------------------------------------------------
    # C4.5 confidence-factor pruning
    # ------------------------------------------------------------------
    def prune(self, confidence_factor: float = 0.25) -> "DecisionTree":
        """Pessimistic-error subtree replacement (J48's ``-C``).

        Smaller confidence factors prune more aggressively.
        """
        if not self.nodes:
            return self
        self._prune_rec(0, confidence_factor)
        return self

    def _prune_rec(self, node_id: int, cf: float) -> float:
        """Returns the estimated error count of the (pruned) subtree."""
        node = self.nodes[node_id]
        leaf_error = _pessimistic_errors(node.n_samples, node.n_errors, cf)
        if node.is_leaf:
            return leaf_error
        subtree_error = self._prune_rec(node.left, cf) + self._prune_rec(
            node.right, cf
        )
        if leaf_error <= subtree_error + 0.1:
            node.is_leaf = True
            node.feature = -1
            node.left = -1
            node.right = -1
            return leaf_error
        return subtree_error

    # ------------------------------------------------------------------
    # Prediction and export
    # ------------------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.uint8)
        if X.ndim == 1:
            X = X[None, :]
        out = np.zeros(X.shape[0], dtype=np.uint8)
        # Route sample groups down the tree iteratively.
        stack = [(0, np.arange(X.shape[0]))]
        while stack:
            node_id, idx = stack.pop()
            if idx.size == 0:
                continue
            node = self.nodes[node_id]
            if node.is_leaf:
                out[idx] = node.value
                continue
            mask = X[idx, node.feature] == 1
            stack.append((node.left, idx[~mask]))
            stack.append((node.right, idx[mask]))
        return out

    def depth(self) -> int:
        """Maximum root-to-leaf edge count."""
        if not self.nodes:
            return 0

        def rec(node_id):
            node = self.nodes[node_id]
            if node.is_leaf:
                return 0
            return 1 + max(rec(node.left), rec(node.right))

        return rec(0)

    def num_leaves(self) -> int:
        """Count of leaves reachable from the root (after pruning)."""
        count = 0
        stack = [0] if self.nodes else []
        while stack:
            node = self.nodes[stack.pop()]
            if node.is_leaf:
                count += 1
            else:
                stack.append(node.left)
                stack.append(node.right)
        return count

    def to_cover(self) -> Cover:
        """Cover of root-to-leaf paths ending in a 1-leaf (DT -> PLA).

        This is exactly Team 2's ``j48topla`` conversion.
        """
        if self.n_inputs is None:
            raise RuntimeError("tree is not fitted")
        cubes: list[Cube] = []

        def rec(node_id: int, path: list[tuple[int, int]]):
            node = self.nodes[node_id]
            if node.is_leaf:
                if node.value == 1:
                    cubes.append(Cube.from_literals(path))
                return
            rec(node.left, path + [(node.feature, 0)])
            rec(node.right, path + [(node.feature, 1)])

        rec(0, [])
        return Cover(self.n_inputs, cubes)


def _pessimistic_errors(n: int, errors: int, cf: float) -> float:
    """C4.5 upper confidence bound on errors at a node.

    Uses the Clopper-Pearson upper bound on the binomial error rate at
    confidence level ``cf`` (J48's ``CF`` parameter), scaled by ``n``.
    """
    if n == 0:
        return 0.0
    if errors >= n:
        return float(n)
    upper = stats.beta.ppf(1 - cf, errors + 1, n - errors)
    return float(n * upper)
