"""ARFF (Attribute-Relation File Format) conversion (Team 2).

Team 2's first pipeline step "transforms the PLA file in an ARFF
description to handle the WEKA tool".  We provide the same conversion
for our datasets: binary attributes as nominal {0,1}, the label as a
nominal class attribute, plus a reader for round-tripping.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.ml.dataset import Dataset

PathLike = str | Path


def write_arff(
    dataset: Dataset, path: PathLike, relation: str = "iwls"
) -> None:
    """Write a dataset as a WEKA-style ARFF file."""
    lines = [f"@RELATION {relation}", ""]
    for i in range(dataset.n_inputs):
        lines.append(f"@ATTRIBUTE x{i} {{0,1}}")
    lines.append("@ATTRIBUTE class {0,1}")
    lines.append("")
    lines.append("@DATA")
    for row, label in zip(dataset.X, dataset.y, strict=True):
        lines.append(",".join(str(int(v)) for v in row) + f",{int(label)}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="ascii")


def read_arff(path: PathLike) -> Dataset:
    """Read a binary-attribute ARFF file back into a dataset."""
    attributes = 0
    rows = []
    in_data = False
    for raw in Path(path).read_text(encoding="ascii").splitlines():
        line = raw.split("%", 1)[0].strip()
        if not line:
            continue
        upper = line.upper()
        if upper.startswith("@ATTRIBUTE"):
            attributes += 1
        elif upper.startswith("@DATA"):
            in_data = True
        elif in_data:
            values = [int(v) for v in line.split(",")]
            if len(values) != attributes:
                raise ValueError(
                    f"row has {len(values)} values, expected {attributes}"
                )
            rows.append(values)
    if attributes < 2:
        raise ValueError("ARFF file needs at least one input and a class")
    data = np.array(rows, dtype=np.uint8)
    return Dataset(data[:, :-1], data[:, -1])
