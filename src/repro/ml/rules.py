"""PART-style rule-list learning (Team 2's second classifier).

PART [Frank & Witten 1998] combines decision-tree induction with
separate-and-conquer rule learning: repeatedly build a (partial) C4.5
tree on the remaining samples, turn the leaf that covers the most
samples into a rule, discard the covered samples and repeat.  The
resulting ordered rule list is evaluated first-match-wins, which the
synthesis bridge turns into the priority AND/OR network of the paper's
Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.decision_tree import DecisionTree


@dataclass
class Rule:
    """Conjunction of ``(feature, value)`` tests implying ``label``."""

    literals: tuple[tuple[int, int], ...]
    label: int

    def matches(self, X: np.ndarray) -> np.ndarray:
        out = np.ones(X.shape[0], dtype=bool)
        for feature, value in self.literals:
            out &= X[:, feature] == value
        return out


class RuleList:
    """Ordered rules with a default label; first match wins."""

    def __init__(self, rules: list[Rule], default: int, n_inputs: int):
        self.rules = rules
        self.default = default
        self.n_inputs = n_inputs

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.uint8)
        if X.ndim == 1:
            X = X[None, :]
        out = np.full(X.shape[0], self.default, dtype=np.uint8)
        undecided = np.ones(X.shape[0], dtype=bool)
        for rule in self.rules:
            hit = rule.matches(X) & undecided
            out[hit] = rule.label
            undecided &= ~hit
        return out

    def __len__(self) -> int:
        return len(self.rules)


class PartRuleLearner:
    """Separate-and-conquer rule induction from partial C4.5 trees.

    Parameters mirror the J48 knobs Team 2 swept: ``confidence_factor``
    controls pruning of each partial tree, ``min_samples_leaf`` is
    WEKA's ``-M``.
    """

    def __init__(
        self,
        confidence_factor: float = 0.25,
        min_samples_leaf: int = 2,
        max_rules: int = 200,
        max_depth: int | None = None,
    ):
        self.confidence_factor = confidence_factor
        self.min_samples_leaf = min_samples_leaf
        self.max_rules = max_rules
        self.max_depth = max_depth

    def fit(self, X: np.ndarray, y: np.ndarray) -> RuleList:
        X = np.asarray(X, dtype=np.uint8)
        y = np.asarray(y, dtype=np.uint8).ravel()
        remaining = np.arange(X.shape[0])
        rules: list[Rule] = []
        while remaining.size > 0 and len(rules) < self.max_rules:
            ys = y[remaining]
            if ys.min() == ys.max():
                break  # remainder is pure: becomes the default label
            tree = DecisionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
            )
            tree.fit(X[remaining], y[remaining])
            tree.prune(self.confidence_factor)
            rule = self._best_leaf_rule(tree)
            if rule is None:
                break
            hit = rule.matches(X[remaining])
            if not hit.any():
                break
            rules.append(rule)
            remaining = remaining[~hit]
        if remaining.size > 0:
            ys = y[remaining]
            default = 1 if 2 * int(ys.sum()) > ys.size else 0
        else:
            default = rules[-1].label ^ 1 if rules else 0
        return RuleList(rules, default, X.shape[1])

    @staticmethod
    def _best_leaf_rule(tree: DecisionTree) -> Rule | None:
        """Rule from the leaf covering the most training samples."""
        best = None
        best_count = -1

        def rec(node_id, path):
            nonlocal best, best_count
            node = tree.nodes[node_id]
            if node.is_leaf:
                if node.n_samples > best_count:
                    best_count = node.n_samples
                    best = Rule(tuple(path), node.value)
                return
            rec(node.left, path + [(node.feature, 0)])
            rec(node.right, path + [(node.feature, 1)])

        rec(0, [])
        if best is not None and len(best.literals) == 0:
            return None  # the tree is a single leaf: no usable rule
        return best
