"""Memorization LUT networks [Chatterjee, "Learning and memorization"].

A LUT network is layers of k-input lookup tables with *random* wiring;
"training" is pure memorization: each LUT's table entry for a pattern
is the majority label of the training samples that present that
pattern at the LUT's inputs, computed layer by layer.  Teams 1 and 6
used this directly; Team 3 compared against it (Table IV's LUT-Net
row).

Two wiring schemes are supported, following Team 6: ``random`` draws
each connection independently from the previous layer, while
``unique`` guarantees every output of the previous layer is consumed
once before any is duplicated.
"""

from __future__ import annotations

import numpy as np


class LUTNetwork:
    """Randomly wired k-LUT layers trained by memorization."""

    def __init__(
        self,
        n_layers: int = 4,
        luts_per_layer: int = 128,
        lut_size: int = 4,
        scheme: str = "random",
        unseen_default: str = "zero",
        rng: np.random.Generator | None = None,
    ):
        if scheme not in ("random", "unique"):
            raise ValueError(f"unknown wiring scheme {scheme!r}")
        if unseen_default not in ("zero", "random"):
            raise ValueError(f"unknown unseen_default {unseen_default!r}")
        self.n_layers = n_layers
        self.luts_per_layer = luts_per_layer
        self.lut_size = lut_size
        self.scheme = scheme
        self.unseen_default = unseen_default
        self.rng = rng if rng is not None else np.random.default_rng(0)
        # connections[l] has shape (width_l, k): indices into the
        # previous layer's outputs.  tables[l] has shape
        # (width_l, 2**k) of uint8.
        self.connections: list[np.ndarray] = []
        self.tables: list[np.ndarray] = []
        self.n_inputs: int | None = None

    # ------------------------------------------------------------------
    def _wire_layer(self, n_prev: int, width: int) -> np.ndarray:
        k = self.lut_size
        needed = width * k
        if self.scheme == "unique":
            pool = []
            while len(pool) < needed:
                pool.extend(self.rng.permutation(n_prev).tolist())
            wires = np.array(pool[:needed], dtype=np.int64)
        else:
            wires = self.rng.integers(0, n_prev, size=needed)
        return wires.reshape(width, k)

    def _layer_patterns(self, prev: np.ndarray, conns: np.ndarray) -> np.ndarray:
        """Pattern index of each (sample, lut): shape (n, width)."""
        weights = 1 << np.arange(self.lut_size)
        # prev: (n, n_prev); prev[:, conns]: (n, width, k)
        return (prev[:, conns].astype(np.int64) * weights).sum(axis=2)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LUTNetwork":
        X = np.asarray(X, dtype=np.uint8)
        y = np.asarray(y, dtype=np.int64).ravel()
        self.n_inputs = X.shape[1]
        self.connections = []
        self.tables = []
        prev = X
        widths = [self.luts_per_layer] * self.n_layers + [1]
        n_patterns = 1 << self.lut_size
        for width in widths:
            conns = self._wire_layer(prev.shape[1], width)
            patterns = self._layer_patterns(prev, conns)
            tables = np.zeros((width, n_patterns), dtype=np.uint8)
            for j in range(width):
                pos = np.bincount(
                    patterns[:, j], weights=y, minlength=n_patterns
                )
                tot = np.bincount(patterns[:, j], minlength=n_patterns)
                bit = (2 * pos > tot).astype(np.uint8)
                unseen = tot == 0
                if self.unseen_default == "random":
                    bit[unseen] = self.rng.integers(
                        0, 2, size=int(unseen.sum())
                    )
                else:
                    bit[unseen] = 0
                tables[j] = bit
            self.connections.append(conns)
            self.tables.append(tables)
            prev = np.take_along_axis(
                tables.T, patterns, axis=0
            ).astype(np.uint8)
        return self

    # ------------------------------------------------------------------
    def forward(self, X: np.ndarray) -> np.ndarray:
        """Values of the final layer (single column)."""
        prev = np.asarray(X, dtype=np.uint8)
        if prev.ndim == 1:
            prev = prev[None, :]
        for conns, tables in zip(self.connections, self.tables, strict=True):
            patterns = self._layer_patterns(prev, conns)
            prev = np.take_along_axis(tables.T, patterns, axis=0)
            prev = prev.astype(np.uint8)
        return prev

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.forward(X)[:, 0]

    def num_luts(self) -> int:
        return sum(t.shape[0] for t in self.tables)
