"""Fringe feature extraction (Team 3's Fr-DT).

After training a decision tree, the variable pairs tested on the last
two levels above each leaf ("the fringe") are combined into composite
features — the 12 two-variable Boolean functions of Pagallo & Haussler
/ Oliveira & Sangiovanni-Vincentelli — which are added as new input
columns and the tree is retrained.  Iterating this lets a DT discover
XOR-like structure that single-variable splits cannot.

A :class:`FringeDT` carries its composite-feature definitions so it
can featurize raw inputs at prediction time and so the synthesis
bridge can realize each composite feature as two extra AIG nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.decision_tree import DecisionTree

# A composite feature: (var_a, var_b, op). Vars index the *augmented*
# feature list, op is one of the function names below.
FRINGE_OPS = (
    "and",     # a & b
    "and_na",  # ~a & b
    "and_nb",  # a & ~b
    "nor",     # ~a & ~b
    "or",      # a | b
    "or_na",   # ~a | b
    "or_nb",   # a | ~b
    "nand",    # ~a | ~b
    "xor",     # a ^ b
    "xnor",    # ~(a ^ b)
    "not_a",   # ~a (degenerate fringe patterns)
    "not_b",   # ~b
)


@dataclass(frozen=True)
class CompositeFeature:
    var_a: int
    var_b: int
    op: str

    def evaluate(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = a.astype(bool)
        b = b.astype(bool)
        if self.op == "and":
            out = a & b
        elif self.op == "and_na":
            out = ~a & b
        elif self.op == "and_nb":
            out = a & ~b
        elif self.op == "nor":
            out = ~a & ~b
        elif self.op == "or":
            out = a | b
        elif self.op == "or_na":
            out = ~a | b
        elif self.op == "or_nb":
            out = a | ~b
        elif self.op == "nand":
            out = ~a | ~b
        elif self.op == "xor":
            out = a ^ b
        elif self.op == "xnor":
            out = ~(a ^ b)
        elif self.op == "not_a":
            out = ~a
        elif self.op == "not_b":
            out = ~b
        else:
            raise ValueError(f"unknown fringe op {self.op!r}")
        return out.astype(np.uint8)


class FringeDT:
    """Decision tree with iterated fringe feature extraction."""

    def __init__(
        self,
        max_iterations: int = 10,
        max_features: int = 64,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        confidence_factor: float | None = 0.25,
    ):
        self.max_iterations = max_iterations
        self.max_features = max_features
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.confidence_factor = confidence_factor
        self.features: list[CompositeFeature] = []
        self.tree: DecisionTree | None = None
        self.n_raw_inputs: int | None = None

    # ------------------------------------------------------------------
    def featurize(self, X: np.ndarray) -> np.ndarray:
        """Append composite feature columns to the raw inputs."""
        X = np.asarray(X, dtype=np.uint8)
        cols = [X]
        n = X.shape[1]
        values = list(X.T)
        for feat in self.features:
            col = feat.evaluate(values[feat.var_a], values[feat.var_b])
            values.append(col)
            cols.append(col[:, None])
        del n
        return np.hstack(cols)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "FringeDT":
        X = np.asarray(X, dtype=np.uint8)
        y = np.asarray(y, dtype=np.uint8).ravel()
        self.n_raw_inputs = X.shape[1]
        self.features = []
        seen: set[CompositeFeature] = set()
        for _ in range(self.max_iterations):
            Xa = self.featurize(X)
            tree = DecisionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
            )
            tree.fit(Xa, y)
            if self.confidence_factor is not None:
                tree.prune(self.confidence_factor)
            self.tree = tree
            new = [
                f
                for f in self._fringe_candidates(tree)
                if f not in seen
            ]
            if not new or len(self.features) + len(new) > self.max_features:
                break
            for f in new:
                seen.add(f)
                self.features.append(f)
        return self

    def _fringe_candidates(self, tree: DecisionTree) -> list[CompositeFeature]:
        """Composite features from parent/leaf-child variable pairs.

        Two fringe shapes are recognized, covering the 12 two-variable
        patterns of the paper's Fig. 14:

        * a full fringe subtree — parent splits on ``a``, one branch is
          a leaf and the other splits on ``b`` into two leaves — fixes
          the complete two-variable truth table, mapped directly to
          its operation;
        * a half-space fringe — both parent branches are internal but
          one child's grandchildren are leaves — yields the AND-type
          pattern of the known half-space.
        """
        found: list[CompositeFeature] = []

        def leaf_value(node_id) -> int | None:
            node = tree.nodes[node_id]
            return node.value if node.is_leaf else None

        for node in tree.nodes:
            if node.is_leaf:
                continue
            for parent_side, child_id in ((0, node.left), (1, node.right)):
                child = tree.nodes[child_id]
                if child.is_leaf:
                    continue
                lv0 = leaf_value(child.left)
                lv1 = leaf_value(child.right)
                if lv0 is None or lv1 is None or lv0 == lv1:
                    continue
                a, b = node.feature, child.feature
                if a == b:
                    continue
                other_id = node.right if parent_side == 0 else node.left
                other_value = leaf_value(other_id)
                if other_value is not None:
                    # Full subtree known: derive the exact 2-var op.
                    op = _full_pattern_op(
                        parent_side, other_value, lv0, lv1
                    )
                else:
                    op = _pattern_op(parent_side, lv0, lv1)
                if op is None:
                    continue
                found.append(CompositeFeature(a, b, op))
        return found

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.tree is None:
            raise RuntimeError("FringeDT is not fitted")
        return self.tree.predict(self.featurize(X))


# Two-variable truth tables (bit index = a + 2*b) -> fringe ops.
_TT_TO_OP = {
    0b1000: "and",
    0b0100: "and_na",
    0b0010: "and_nb",
    0b0001: "nor",
    0b1110: "or",
    0b1101: "or_na",
    0b1011: "or_nb",
    0b0111: "nand",
    0b0110: "xor",
    0b1001: "xnor",
    0b0101: "not_a",
    0b0011: "not_b",
}


def _full_pattern_op(
    parent_side: int, other_value: int, leaf0: int, leaf1: int
) -> str | None:
    """Op of a fully-known fringe subtree.

    The parent splits on ``a``; branch ``parent_side`` splits on ``b``
    with leaves ``leaf0``/``leaf1``; the other branch is the constant
    ``other_value``.  Constant and single-variable tables return None
    (no composite needed).
    """
    table = 0
    for a in (0, 1):
        for b in (0, 1):
            if a == parent_side:
                value = leaf1 if b else leaf0
            else:
                value = other_value
            if value:
                table |= 1 << (a + 2 * b)
    return _TT_TO_OP.get(table)


def _pattern_op(parent_side: int, leaf0: int, leaf1: int) -> str | None:
    """Boolean op of the fringe pattern (parent var a, child var b).

    ``parent_side`` tells which branch of the parent we descended
    (0 = a is false, 1 = a is true); the child splits on b, its 0/1
    leaves classify ``leaf0`` / ``leaf1``.  The subtree then computes
    a two-variable function of (a, b) on that half-space; we return
    the function extended most naturally to the full space, following
    the 12 fringe patterns.
    """
    if parent_side == 1:  # reached when a = 1
        if (leaf0, leaf1) == (0, 1):
            return "and"       # 1-region: a & b
        if (leaf0, leaf1) == (1, 0):
            return "and_nb"    # a & ~b
    else:  # reached when a = 0
        if (leaf0, leaf1) == (0, 1):
            return "and_na"    # ~a & b
        if (leaf0, leaf1) == (1, 0):
            return "nor"       # ~a & ~b
    return None
