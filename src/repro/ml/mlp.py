"""Multi-layer perceptrons with contest-specific extensions.

Covers three team roles:

* Team 3 prunes a 3-layer sigmoid MLP until every neuron has at most
  12 fanins, then converts neurons to LUTs
  (:meth:`MLP.prune_to_fanin`, fanin masks are persistent through
  retraining);
* Team 8 swaps ReLU for a *sine* activation to capture periodic
  structure (parity-like functions);
* Team 4 replaces the plain MLP with an AFN-style logarithmic
  interaction layer (:class:`LogInteractionNet`) that learns
  multiplicative cross-features of the selected inputs;
* Team 5 reads feature importances off the first-layer weights
  (:meth:`MLP.feature_importance`).

Everything is plain numpy with manual backprop and Adam.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

_ACTIVATIONS = ("relu", "sigmoid", "tanh", "sine", "identity")


def _act(name: str, z: np.ndarray) -> np.ndarray:
    if name == "relu":
        return np.maximum(z, 0.0)
    if name == "sigmoid":
        return 1.0 / (1.0 + np.exp(-np.clip(z, -30, 30)))
    if name == "tanh":
        return np.tanh(z)
    if name == "sine":
        return np.sin(z)
    if name == "identity":
        return z
    raise ValueError(f"unknown activation {name!r}")


def _act_grad(name: str, z: np.ndarray, a: np.ndarray) -> np.ndarray:
    if name == "relu":
        return (z > 0).astype(np.float64)
    if name == "sigmoid":
        return a * (1.0 - a)
    if name == "tanh":
        return 1.0 - a * a
    if name == "sine":
        return np.cos(z)
    if name == "identity":
        return np.ones_like(z)
    raise ValueError(f"unknown activation {name!r}")


class _Dense:
    """Fully connected layer with a persistent connection mask."""

    def __init__(self, n_in: int, n_out: int, activation: str,
                 rng: np.random.Generator):
        if activation == "sine":
            # Periodic activations need large first-moment weights or
            # sin(z) ~ z degenerates to a linear layer (the SIREN
            # omega_0 trick); parity needs weights near pi.
            scale = 2.0
        else:
            scale = np.sqrt(2.0 / max(1, n_in))
        self.W = rng.normal(0.0, scale, size=(n_in, n_out))
        self.b = np.zeros(n_out)
        self.mask = np.ones_like(self.W)
        self.activation = activation
        self._adam_state = None

    def forward(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        z = x @ (self.W * self.mask) + self.b
        return z, _act(self.activation, z)

    def init_adam(self):
        self._adam_state = [np.zeros_like(self.W), np.zeros_like(self.W),
                            np.zeros_like(self.b), np.zeros_like(self.b)]

    def adam_step(self, dW, db, lr, t, beta1=0.9, beta2=0.999, eps=1e-8):
        mW, vW, mb, vb = self._adam_state
        mW[:] = beta1 * mW + (1 - beta1) * dW
        vW[:] = beta2 * vW + (1 - beta2) * dW * dW
        mb[:] = beta1 * mb + (1 - beta1) * db
        vb[:] = beta2 * vb + (1 - beta2) * db * db
        mhW = mW / (1 - beta1**t)
        vhW = vW / (1 - beta2**t)
        mhb = mb / (1 - beta1**t)
        vhb = vb / (1 - beta2**t)
        self.W -= lr * mhW / (np.sqrt(vhW) + eps)
        self.b -= lr * mhb / (np.sqrt(vhb) + eps)
        self.W *= self.mask


class MLP:
    """Binary classifier MLP (sigmoid output, cross-entropy loss)."""

    def __init__(
        self,
        hidden_sizes: Sequence[int] = (64, 32),
        activation: str = "relu",
        rng: np.random.Generator | None = None,
    ):
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        self.hidden_sizes = tuple(hidden_sizes)
        self.activation = activation
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.layers: list[_Dense] = []
        self.n_inputs: int | None = None

    # ------------------------------------------------------------------
    def _build(self, n_inputs: int) -> None:
        sizes = [n_inputs, *self.hidden_sizes, 1]
        self.layers = []
        for i in range(len(sizes) - 1):
            act = self.activation if i < len(sizes) - 2 else "sigmoid"
            self.layers.append(_Dense(sizes[i], sizes[i + 1], act, self.rng))
        self.n_inputs = n_inputs

    def _forward_all(self, x):
        zs, acts = [], [x]
        for layer in self.layers:
            z, a = layer.forward(acts[-1])
            zs.append(z)
            acts.append(a)
        return zs, acts

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        epochs: int = 30,
        batch_size: int = 64,
        lr: float = 1e-3,
        reset: bool = True,
    ) -> "MLP":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if reset or not self.layers:
            self._build(X.shape[1])
        for layer in self.layers:
            layer.init_adam()
        n = X.shape[0]
        t = 0
        for _ in range(epochs):
            order = self.rng.permutation(n)
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                xb, yb = X[idx], y[idx]
                zs, acts = self._forward_all(xb)
                # Cross-entropy with sigmoid output: delta = p - y.
                delta = (acts[-1].ravel() - yb)[:, None] / len(idx)
                t += 1
                for li in reversed(range(len(self.layers))):
                    layer = self.layers[li]
                    if li < len(self.layers) - 1:
                        delta = delta * _act_grad(
                            layer.activation, zs[li], acts[li + 1]
                        )
                    dW = acts[li].T @ delta * layer.mask
                    db = delta.sum(axis=0)
                    new_delta = delta @ (layer.W * layer.mask).T
                    layer.adam_step(dW, db, lr, t)
                    delta = new_delta
        return self

    # ------------------------------------------------------------------
    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        x = np.asarray(X, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        for layer in self.layers:
            _, x = layer.forward(x)
        return x.ravel()

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.predict_proba(X) >= 0.5).astype(np.uint8)

    def feature_importance(self) -> np.ndarray:
        """Mean |weight| per input over the first layer (Team 5)."""
        first = self.layers[0]
        return np.abs(first.W * first.mask).sum(axis=1)

    # ------------------------------------------------------------------
    def max_fanin(self) -> int:
        """Largest neuron fanin over all layers."""
        return max(
            int((layer.mask != 0).sum(axis=0).max(initial=0))
            for layer in self.layers
        )

    def neuron_fanins(self, layer_idx: int) -> list[np.ndarray]:
        """Indices of surviving input connections per neuron."""
        layer = self.layers[layer_idx]
        return [
            np.nonzero(layer.mask[:, j])[0]
            for j in range(layer.mask.shape[1])
        ]

    def prune_to_fanin(
        self,
        max_fanin: int,
        X: np.ndarray,
        y: np.ndarray,
        rounds: int = 3,
        retrain_epochs: int = 10,
        lr: float = 1e-3,
    ) -> "MLP":
        """Iterative magnitude pruning until every fanin <= max_fanin.

        After each pruning round the network is retrained with the
        masks held fixed (Han et al.'s prune-retrain loop, as used by
        Team 3 to reach <= 12 fanins per neuron).
        """
        if not self.layers:
            raise RuntimeError("fit the network before pruning")
        for round_idx in range(rounds):
            frac = (round_idx + 1) / rounds
            changed = False
            for layer in self.layers:
                current = (layer.mask != 0).sum(axis=0)
                limit = np.maximum(
                    max_fanin,
                    np.ceil(current * (1 - frac) + max_fanin * frac),
                ).astype(int)
                for j in range(layer.W.shape[1]):
                    alive = np.nonzero(layer.mask[:, j])[0]
                    if alive.size <= limit[j]:
                        continue
                    weights = np.abs(layer.W[alive, j])
                    keep = alive[np.argsort(-weights)[: limit[j]]]
                    new_mask = np.zeros(layer.W.shape[0])
                    new_mask[keep] = 1.0
                    layer.mask[:, j] = new_mask
                    changed = True
                layer.W *= layer.mask
            if changed:
                self.fit(X, y, epochs=retrain_epochs, lr=lr, reset=False)
        return self


class LogInteractionNet(MLP):
    """AFN-style approximator: logarithmic interaction layer + MLP.

    Binary inputs are squashed to ``(eps, 1-eps)``; the first layer
    computes ``exp(W @ ln(x'))`` — each unit is an adaptive-order
    multiplicative cross-feature — and a small MLP combines the
    crossed features (Team 4's recommendation-model substitute).
    """

    def __init__(
        self,
        n_cross: int = 32,
        hidden_sizes: Sequence[int] = (64, 32),
        eps: float = 0.05,
        rng: np.random.Generator | None = None,
    ):
        super().__init__(hidden_sizes=hidden_sizes, activation="relu", rng=rng)
        self.n_cross = n_cross
        self.eps = eps
        self.W_log: np.ndarray | None = None

    def _transform(self, X: np.ndarray) -> np.ndarray:
        x = np.asarray(X, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        squashed = self.eps + (1.0 - 2.0 * self.eps) * x
        logs = np.log(squashed)
        crossed = np.exp(np.clip(logs @ self.W_log, -30.0, 10.0))
        return crossed

    def fit(self, X, y, epochs: int = 30, batch_size: int = 64,
            lr: float = 1e-3, reset: bool = True) -> "LogInteractionNet":
        X = np.asarray(X, dtype=np.float64)
        if reset or self.W_log is None:
            # Sparse random +/- exponents pick interaction candidates;
            # the dense layers then learn how to combine them.
            self.W_log = self.rng.normal(
                0.0, 1.0, size=(X.shape[1], self.n_cross)
            ) * (self.rng.random((X.shape[1], self.n_cross)) < 0.3)
        crossed = self._transform(X)
        super().fit(crossed, y, epochs=epochs, batch_size=batch_size,
                    lr=lr, reset=reset)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return super().predict_proba(self._transform(X))
