"""Second-order gradient boosting of regression trees (XGBoost role).

Team 7's non-matching path trains "an extreme gradient boosting of 125
trees with a maximum depth of five" and then quantizes each leaf to one
bit so the ensemble becomes a majority vote realizable with MAJ-5
gates.  This module implements the Chen & Guestrin formulation for
binary logistic loss on binary features: per-split gain

    gain = 1/2 * [GL^2/(HL+lam) + GR^2/(HR+lam) - G^2/(H+lam)] - gamma

with leaf weight ``-G/(H+lam)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class _RegNode:
    feature: int = -1
    left: int = -1
    right: int = -1
    weight: float = 0.0
    is_leaf: bool = True


class _RegressionTree:
    """Depth-limited tree fit to (gradient, hessian) statistics."""

    def __init__(self, max_depth: int, reg_lambda: float, gamma: float,
                 min_child_weight: float):
        self.max_depth = max_depth
        self.reg_lambda = reg_lambda
        self.gamma = gamma
        self.min_child_weight = min_child_weight
        self.nodes: list[_RegNode] = []

    def fit(self, X, grad, hess):
        self.nodes = []
        self._grow(X, grad, hess, np.arange(X.shape[0]), 0)
        return self

    def _grow(self, X, grad, hess, idx, depth) -> int:
        node_id = len(self.nodes)
        g = float(grad[idx].sum())
        h = float(hess[idx].sum())
        node = _RegNode(weight=-g / (h + self.reg_lambda))
        self.nodes.append(node)
        if depth >= self.max_depth or idx.size < 2:
            return node_id
        feature, gain = self._best_split(X, grad, hess, idx, g, h)
        if feature is None or gain <= 0:
            return node_id
        mask = X[idx, feature] == 1
        left_idx, right_idx = idx[~mask], idx[mask]
        node.feature = feature
        node.is_leaf = False
        node.left = self._grow(X, grad, hess, left_idx, depth + 1)
        node.right = self._grow(X, grad, hess, right_idx, depth + 1)
        return node_id

    def _best_split(self, X, grad, hess, idx, g, h) -> tuple[int | None, float]:
        Xn = X[idx].astype(np.float64)
        gn = grad[idx]
        hn = hess[idx]
        g_right = gn @ Xn            # sum of grads where feature = 1
        h_right = hn @ Xn
        g_left = g - g_right
        h_left = h - h_right
        lam = self.reg_lambda
        parent = g * g / (h + lam)
        gains = 0.5 * (
            g_left**2 / (h_left + lam)
            + g_right**2 / (h_right + lam)
            - parent
        ) - self.gamma
        bad = (
            (h_left < self.min_child_weight)
            | (h_right < self.min_child_weight)
        )
        gains = np.where(bad, -np.inf, gains)
        best = int(np.argmax(gains))
        if not np.isfinite(gains[best]):
            return None, 0.0
        return best, float(gains[best])

    def predict(self, X) -> np.ndarray:
        out = np.zeros(X.shape[0], dtype=np.float64)
        stack = [(0, np.arange(X.shape[0]))]
        while stack:
            node_id, idx = stack.pop()
            if idx.size == 0:
                continue
            node = self.nodes[node_id]
            if node.is_leaf:
                out[idx] = node.weight
                continue
            mask = X[idx, node.feature] == 1
            stack.append((node.left, idx[~mask]))
            stack.append((node.right, idx[mask]))
        return out


class GradientBoostedTrees:
    """Boosted ensemble with logistic loss on binary features."""

    def __init__(
        self,
        n_estimators: int = 125,
        max_depth: int = 5,
        learning_rate: float = 0.3,
        reg_lambda: float = 1.0,
        gamma: float = 0.0,
        min_child_weight: float = 1e-3,
        base_score: float = 0.5,
    ):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.reg_lambda = reg_lambda
        self.gamma = gamma
        self.min_child_weight = min_child_weight
        self.base_score = base_score
        self.trees: list[_RegressionTree] = []
        self.base_margin = float(np.log(base_score / (1 - base_score)))
        self.n_inputs: int | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        X = np.asarray(X, dtype=np.uint8)
        y = np.asarray(y, dtype=np.float64).ravel()
        self.n_inputs = X.shape[1]
        self.trees = []
        margin = np.full(X.shape[0], self.base_margin)
        for _ in range(self.n_estimators):
            p = 1.0 / (1.0 + np.exp(-margin))
            grad = p - y
            hess = p * (1.0 - p)
            tree = _RegressionTree(
                self.max_depth, self.reg_lambda, self.gamma,
                self.min_child_weight,
            )
            tree.fit(X, grad, hess)
            step = tree.predict(X)
            if not np.any(step):
                break
            margin = margin + self.learning_rate * step
            self.trees.append(tree)
        return self

    def decision_margin(self, X: np.ndarray) -> np.ndarray:
        """Raw log-odds margin (sum of leaf values + base)."""
        X = np.asarray(X, dtype=np.uint8)
        if X.ndim == 1:
            X = X[None, :]
        margin = np.full(X.shape[0], self.base_margin)
        for tree in self.trees:
            margin += self.learning_rate * tree.predict(X)
        return margin

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_margin(X) > 0).astype(np.uint8)

    def leaf_bits(self, X: np.ndarray) -> np.ndarray:
        """One quantized bit per tree (Team 7's leaf quantization).

        A tree votes 1 when the leaf it routes the sample to has a
        positive weight.  Shape ``(n_samples, n_trees)``.
        """
        X = np.asarray(X, dtype=np.uint8)
        if X.ndim == 1:
            X = X[None, :]
        out = np.zeros((X.shape[0], len(self.trees)), dtype=np.uint8)
        for t, tree in enumerate(self.trees):
            out[:, t] = (tree.predict(X) > 0).astype(np.uint8)
        return out

    def predict_quantized(self, X: np.ndarray) -> np.ndarray:
        """Majority vote over quantized per-tree bits."""
        bits = self.leaf_bits(X)
        if bits.shape[1] == 0:
            return np.full(X.shape[0], int(self.base_margin > 0), np.uint8)
        return (bits.sum(axis=1) * 2 >= bits.shape[1]).astype(np.uint8)
