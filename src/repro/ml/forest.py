"""Random forests of binary decision trees.

The contest teams used forests with a plain majority vote (not
probability averaging) because a majority gate is cheap in an AIG:
Team 8 used 17 trees of depth 8, Team 5 used 3 trees to stay inside
the 5000-gate cap.  Each tree sees a bootstrap sample and a random
feature subset, per Breiman.
"""

from __future__ import annotations

import numpy as np

from repro.ml.decision_tree import DecisionTree


class RandomForest:
    """Bagged decision trees with majority voting."""

    def __init__(
        self,
        n_trees: int = 17,
        max_depth: int | None = 8,
        min_samples_leaf: int = 1,
        feature_fraction: float | None = None,
        bootstrap: bool = True,
        criterion: str = "entropy",
        rng: np.random.Generator | None = None,
    ):
        if n_trees % 2 == 0:
            raise ValueError("use an odd tree count so the vote cannot tie")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.feature_fraction = feature_fraction
        self.bootstrap = bootstrap
        self.criterion = criterion
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.trees: list[DecisionTree] = []
        self.feature_subsets: list[np.ndarray] = []
        self.n_inputs: int | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForest":
        X = np.asarray(X, dtype=np.uint8)
        y = np.asarray(y, dtype=np.uint8).ravel()
        self.n_inputs = X.shape[1]
        self.trees = []
        self.feature_subsets = []
        n = X.shape[0]
        n_features = X.shape[1]
        if self.feature_fraction is None:
            k = max(1, int(round(np.sqrt(n_features))))
        else:
            k = max(1, int(round(self.feature_fraction * n_features)))
        for _ in range(self.n_trees):
            if self.bootstrap:
                idx = self.rng.integers(0, n, size=n)
            else:
                idx = np.arange(n)
            cols = np.sort(
                self.rng.choice(n_features, size=min(k, n_features),
                                replace=False)
            )
            tree = DecisionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                criterion=self.criterion,
            )
            tree.fit(X[np.ix_(idx, cols)], y[idx])
            self.trees.append(tree)
            self.feature_subsets.append(cols)
        return self

    def votes(self, X: np.ndarray) -> np.ndarray:
        """Per-tree predictions, shape ``(n_samples, n_trees)``."""
        X = np.asarray(X, dtype=np.uint8)
        if X.ndim == 1:
            X = X[None, :]
        out = np.zeros((X.shape[0], self.n_trees), dtype=np.uint8)
        for t, (tree, cols) in enumerate(zip(self.trees, self.feature_subsets, strict=True)):
            out[:, t] = tree.predict(X[:, cols])
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        votes = self.votes(X)
        return (votes.sum(axis=1) * 2 > self.n_trees).astype(np.uint8)
