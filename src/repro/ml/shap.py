"""Shapley-value feature attribution (Team 7's SHAP analysis).

Team 7 ran SHAP tree explanations on an initial XGBoost model to spot
arithmetic structure: adder/comparator operands show up as monotone
"weight" patterns over the input bits (the paper's Figs. 26-27).  We
provide a model-agnostic Monte-Carlo Shapley estimator (permutation
sampling with background-sample imputation) plus an exact enumerative
version used to validate it in tests.

``predict`` should return a real-valued margin (e.g.
``GradientBoostedTrees.decision_margin``); attributions then sum to
``f(x) - E_background[f]`` in expectation.
"""

from __future__ import annotations

from collections.abc import Callable
from itertools import combinations
from math import comb

import numpy as np

Predictor = Callable[[np.ndarray], np.ndarray]


def sampling_shapley(
    predict: Predictor,
    background: np.ndarray,
    x: np.ndarray,
    n_permutations: int = 64,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Monte-Carlo Shapley values of one sample ``x``.

    For each random feature permutation, features are switched one by
    one from a random background sample's value to ``x``'s value; the
    prediction delta is the marginal contribution of the switched
    feature.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    background = np.asarray(background)
    x = np.asarray(x).ravel()
    n_features = x.shape[0]
    values = np.zeros(n_features, dtype=np.float64)
    for _ in range(n_permutations):
        base = background[rng.integers(0, background.shape[0])]
        order = rng.permutation(n_features)
        current = base.astype(x.dtype).copy()
        prev = float(predict(current[None, :])[0])
        for feat in order:
            current[feat] = x[feat]
            now = float(predict(current[None, :])[0])
            values[feat] += now - prev
            prev = now
    return values / n_permutations


def exact_shapley(
    predict: Predictor,
    background: np.ndarray,
    x: np.ndarray,
) -> np.ndarray:
    """Exact Shapley values by subset enumeration (small n only).

    The value of a coalition S is the mean prediction with features in
    S taken from ``x`` and the rest from each background row.
    """
    background = np.asarray(background)
    x = np.asarray(x).ravel()
    n = x.shape[0]
    if n > 12:
        raise ValueError("exact_shapley is exponential; use n <= 12")

    def value(subset) -> float:
        rows = np.array(background, copy=True)
        for feat in subset:
            rows[:, feat] = x[feat]
        return float(np.mean(predict(rows)))

    cache = {}

    def cached_value(subset) -> float:
        key = frozenset(subset)
        if key not in cache:
            cache[key] = value(subset)
        return cache[key]

    values = np.zeros(n)
    features = list(range(n))
    for feat in features:
        others = [f for f in features if f != feat]
        for size in range(n):
            weight = 1.0 / (n * comb(n - 1, size))
            for subset in combinations(others, size):
                gain = cached_value(subset + (feat,)) - cached_value(subset)
                values[feat] += weight * gain
    return values


def mean_abs_shapley(
    predict: Predictor,
    background: np.ndarray,
    samples: np.ndarray,
    n_permutations: int = 16,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Mean |Shapley| per feature over a set of samples (Fig. 26b)."""
    if rng is None:
        rng = np.random.default_rng(0)
    samples = np.asarray(samples)
    total = np.zeros(samples.shape[1])
    for row in samples:
        total += np.abs(
            sampling_shapley(predict, background, row, n_permutations, rng)
        )
    return total / samples.shape[0]


def mean_shapley(
    predict: Predictor,
    background: np.ndarray,
    samples: np.ndarray,
    n_permutations: int = 16,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Signed mean Shapley per feature (Fig. 27's polarity pattern)."""
    if rng is None:
        rng = np.random.default_rng(0)
    samples = np.asarray(samples)
    total = np.zeros(samples.shape[1])
    for row in samples:
        total += sampling_shapley(predict, background, row, n_permutations, rng)
    return total / samples.shape[0]
