"""Feature scoring and selection for binary features.

Implements the scikit-learn selectors the teams relied on — chi2,
ANOVA F (``f_classif``), mutual information, ``SelectKBest`` and
``SelectPercentile`` (Team 5) — plus permutation importance over an
arbitrary fitted model (Team 4's level-1 ranking).
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.ml.metrics import accuracy

_EPS = 1e-12


def chi2_scores(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Chi-squared statistic of each binary feature against the label.

    Matches sklearn's ``chi2`` on 0/1 features: observed counts are
    the per-class sums of the feature, expected counts come from the
    class priors.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y).ravel()
    n = X.shape[0]
    observed = np.vstack([X[y == 0].sum(axis=0), X[y == 1].sum(axis=0)])
    feature_total = X.sum(axis=0)
    class_prob = np.array([(y == 0).mean(), (y == 1).mean()])[:, None]
    expected = class_prob * feature_total[None, :]
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = (observed - expected) ** 2 / np.maximum(expected, _EPS)
    scores = terms.sum(axis=0)
    scores[feature_total == 0] = 0.0
    del n
    return scores


def f_classif_scores(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """One-way ANOVA F statistic per feature."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y).ravel()
    groups = [X[y == label] for label in (0, 1)]
    n = X.shape[0]
    grand_mean = X.mean(axis=0)
    ss_between = sum(
        g.shape[0] * (g.mean(axis=0) - grand_mean) ** 2
        for g in groups
        if g.shape[0] > 0
    )
    ss_within = sum(
        ((g - g.mean(axis=0)) ** 2).sum(axis=0)
        for g in groups
        if g.shape[0] > 0
    )
    df_between = 1
    df_within = max(n - 2, 1)
    return (ss_between / df_between) / np.maximum(
        ss_within / df_within, _EPS
    )


def mutual_info_scores(X: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Plug-in mutual information (bits) per binary feature."""
    X = np.asarray(X, dtype=np.uint8)
    y = np.asarray(y, dtype=np.uint8).ravel()
    n = X.shape[0]
    scores = np.zeros(X.shape[1])
    p_y1 = y.mean()
    for value in (0, 1):
        mask = y == value
        p_y = p_y1 if value else 1 - p_y1
        if p_y == 0:
            continue
        p_x1_given = X[mask].mean(axis=0) if mask.any() else np.zeros(X.shape[1])
        for xv in (0, 1):
            p_joint = p_y * (p_x1_given if xv else 1 - p_x1_given)
            p_x = X.mean(axis=0) if xv else 1 - X.mean(axis=0)
            ratio = p_joint / np.maximum(p_x * p_y, _EPS)
            scores += np.where(
                p_joint > 0, p_joint * np.log2(np.maximum(ratio, _EPS)), 0.0
            )
    del n
    return scores


_SCORERS = {
    "chi2": chi2_scores,
    "f_classif": f_classif_scores,
    "mutual_info_classif": mutual_info_scores,
}


def select_k_best(
    X: np.ndarray, y: np.ndarray, k: int, score_func: str = "chi2"
) -> np.ndarray:
    """Indices of the k highest-scoring features (sorted ascending)."""
    scores = _SCORERS[score_func](X, y)
    k = min(k, X.shape[1])
    top = np.argsort(-scores, kind="stable")[:k]
    return np.sort(top)


def select_percentile(
    X: np.ndarray, y: np.ndarray, percentile: float, score_func: str = "chi2"
) -> np.ndarray:
    """Indices of the top ``percentile`` percent of features."""
    k = max(1, int(round(X.shape[1] * percentile / 100.0)))
    return select_k_best(X, y, k, score_func)


def permutation_importance(
    predict: Callable[[np.ndarray], np.ndarray],
    X: np.ndarray,
    y: np.ndarray,
    n_repeats: int = 5,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Mean accuracy drop when each feature column is shuffled."""
    if rng is None:
        rng = np.random.default_rng(0)
    X = np.asarray(X)
    y = np.asarray(y).ravel()
    baseline = accuracy(y, predict(X))
    importances = np.zeros(X.shape[1])
    for col in range(X.shape[1]):
        drops = []
        for _ in range(n_repeats):
            shuffled = X.copy()
            shuffled[:, col] = shuffled[rng.permutation(X.shape[0]), col]
            drops.append(baseline - accuracy(y, predict(shuffled)))
        importances[col] = float(np.mean(drops))
    return importances
