"""Binary-classification sample sets.

A :class:`Dataset` wraps the ``(X, y)`` matrices parsed from the
contest PLA files and provides the split/merge plumbing the team flows
use: stratified splits that preserve the label distribution (Team 5's
80/20 protocol), merges of train+validation (Teams 2 and 10) and
subsampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.twolevel.pla import PLA


@dataclass
class Dataset:
    """Feature matrix ``X`` (n_samples, n_inputs) and labels ``y``."""

    X: np.ndarray
    y: np.ndarray

    def __post_init__(self):
        self.X = np.asarray(self.X, dtype=np.uint8)
        self.y = np.asarray(self.y, dtype=np.uint8).ravel()
        if self.X.ndim != 2 or self.X.shape[0] != self.y.shape[0]:
            raise ValueError(
                f"inconsistent shapes X={self.X.shape} y={self.y.shape}"
            )

    @property
    def n_samples(self) -> int:
        return self.X.shape[0]

    @property
    def n_inputs(self) -> int:
        return self.X.shape[1]

    def onset_fraction(self) -> float:
        """Fraction of samples labelled 1."""
        if self.n_samples == 0:
            return 0.0
        return float(self.y.mean())

    def merge(self, other: "Dataset") -> "Dataset":
        """Concatenate two datasets (train + validation merging)."""
        if other.n_inputs != self.n_inputs:
            raise ValueError("input counts differ")
        return Dataset(
            np.vstack([self.X, other.X]), np.concatenate([self.y, other.y])
        )

    def subset(self, indices) -> "Dataset":
        return Dataset(self.X[indices], self.y[indices])

    def split_stratified(
        self, train_fraction: float, rng: np.random.Generator
    ) -> tuple["Dataset", "Dataset"]:
        """Split preserving the label distribution.

        Returns ``(first, second)`` where ``first`` holds roughly
        ``train_fraction`` of the samples of each class.
        """
        first_idx = []
        second_idx = []
        for label in (0, 1):
            idx = np.nonzero(self.y == label)[0]
            idx = idx[rng.permutation(len(idx))]
            cut = int(round(train_fraction * len(idx)))
            first_idx.append(idx[:cut])
            second_idx.append(idx[cut:])
        first = np.concatenate(first_idx)
        second = np.concatenate(second_idx)
        rng.shuffle(first)
        rng.shuffle(second)
        return self.subset(first), self.subset(second)

    def sample_fraction(
        self, fraction: float, rng: np.random.Generator
    ) -> "Dataset":
        """Random stratified subsample (Team 5's 40% training runs)."""
        kept, _ = self.split_stratified(fraction, rng)
        return kept

    def to_pla(self) -> PLA:
        return PLA.from_samples(self.X, self.y)

    @staticmethod
    def from_pla(pla: PLA) -> "Dataset":
        X, y = pla.to_samples()
        return Dataset(X, y)

    def select_columns(self, columns) -> "Dataset":
        """Restrict to a feature subset (after feature selection)."""
        return Dataset(self.X[:, columns], self.y)
