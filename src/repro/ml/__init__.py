"""From-scratch machine-learning substrate.

Every learner used by the ten contest teams is implemented here on
numpy/scipy only: C4.5-style decision trees with confidence-factor
pruning (WEKA J48 role), PART-style rule lists, random forests,
XGBoost-style gradient boosting, MLPs with relu/sigmoid/sine
activations and connection pruning, memorization LUT networks, feature
selection (chi2 / F-score / mutual information / permutation
importance) and a Shapley-value attribution estimator.
"""

from repro.ml.boosting import GradientBoostedTrees
from repro.ml.dataset import Dataset
from repro.ml.decision_tree import DecisionTree
from repro.ml.forest import RandomForest
from repro.ml.lutnet import LUTNetwork
from repro.ml.metrics import accuracy, cross_val_accuracy, stratified_kfold
from repro.ml.mlp import MLP
from repro.ml.rules import PartRuleLearner, RuleList

__all__ = [
    "Dataset",
    "DecisionTree",
    "RandomForest",
    "GradientBoostedTrees",
    "PartRuleLearner",
    "RuleList",
    "LUTNetwork",
    "MLP",
    "accuracy",
    "cross_val_accuracy",
    "stratified_kfold",
]
