"""Comparative analysis of flow results (the paper's section V).

Turns per-team :class:`~repro.contest.evaluate.Score` lists into the
paper's tables and figures: Table III (team summary), Fig. 2 (accuracy
vs size Pareto with the virtual best), Fig. 3 (per-benchmark maximum
accuracy), Fig. 4 (win-rate / top-1% counts).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.contest.evaluate import Score, summarize
from repro.flows.portfolio import virtual_best


def table3(scores_by_team: dict[str, list[Score]]) -> list[dict]:
    """Table III rows sorted like the paper (test accuracy descending)."""
    rows = []
    for team, scores in scores_by_team.items():
        summary = summarize(scores)
        summary["team"] = team
        rows.append(summary)
    rows.sort(key=lambda r: -r["test_accuracy"])
    return rows


def pareto_curve(points: Sequence[tuple[float, float]]) -> list[tuple[float, float]]:
    """Pareto frontier of (size, accuracy) points: smaller-is-better
    size, larger-is-better accuracy, sorted by size ascending."""
    frontier: list[tuple[float, float]] = []
    for size, acc in sorted(points):
        if not frontier or acc > frontier[-1][1]:
            frontier.append((size, acc))
    return frontier


def accuracy_size_tradeoff(
    scores_by_team: dict[str, list[Score]],
    accuracy_grid: Sequence[float] | None = None,
) -> list[tuple[float, float]]:
    """Fig. 2's virtual-best trade-off curve.

    A Lagrangian sweep: for each multiplier, pick per benchmark the
    legal solution (across all teams) maximizing ``accuracy - lam *
    size`` and average; the swept averages reduce to a Pareto
    frontier.  Without ``accuracy_grid`` the full frontier is
    returned.  With it, the frontier is sampled at the given target
    accuracies: one ``(size, target)`` point per target, where size is
    the smallest average size reaching that accuracy (NaN when the
    target is unreachable) — the form the paper's Fig. 2 annotations
    quote ("~x ANDs buy y% accuracy").
    """
    by_benchmark: dict[str, list[Score]] = {}
    for scores in scores_by_team.values():
        for s in scores:
            if s.legal:
                by_benchmark.setdefault(s.benchmark, []).append(s)
    if not by_benchmark:
        return []
    curve: list[tuple[float, float]] = []
    lambdas = np.geomspace(1e-6, 1e-1, 60)
    for lam in lambdas:
        total_acc = 0.0
        total_size = 0.0
        for entries in by_benchmark.values():
            best = max(entries,
                       key=lambda s: s.test_accuracy - lam * s.num_ands)
            total_acc += best.test_accuracy
            total_size += best.num_ands
        n = len(by_benchmark)
        curve.append((total_size / n, total_acc / n))
    # Reduce to the Pareto frontier.
    frontier = pareto_curve(curve)
    if accuracy_grid is None:
        return frontier
    return [
        (size_needed_for_accuracy(frontier, target), float(target))
        for target in accuracy_grid
    ]


def size_needed_for_accuracy(
    frontier: Sequence[tuple[float, float]], accuracy: float
) -> float:
    """Smallest average size on the frontier reaching ``accuracy``."""
    feasible = [size for size, acc in frontier if acc >= accuracy]
    if not feasible:
        return float("nan")
    return min(feasible)


def per_benchmark_best(
    scores_by_team: dict[str, list[Score]]
) -> dict[str, float]:
    """Fig. 3: maximum accuracy achieved on each benchmark."""
    return {
        s.benchmark: s.test_accuracy
        for s in virtual_best(scores_by_team)
    }


def win_rates(
    scores_by_team: dict[str, list[Score]], top_tolerance: float = 0.01
) -> dict[str, dict[str, int]]:
    """Fig. 4: per team, #benchmarks where it is best / near the top.

    ``top_tolerance`` is an **absolute** accuracy margin, not a
    relative one: the default 0.01 counts a team as "top1pct" when its
    test accuracy is within one accuracy *point* of the per-benchmark
    best (e.g. best 0.90 admits >= 0.89), matching the paper's "within
    1% of the best" reading.  Exact ties at the top all count as
    "best" — and every "best" team trivially also counts as "top1pct".

    Multi-trial runs contribute one comparison per (benchmark, trial),
    so counts scale with trials instead of silently dropping all but
    one seed.  Scores carrying a ``seed`` (everything reconstructed
    from a run store) are matched by seed — robust even when an
    interrupted store holds different seed subsets per team; scores
    without one fall back to positional alignment, which is exact for
    complete in-memory grids.
    """
    by_benchmark: dict[tuple[str, object], dict[str, Score]] = {}
    for team, scores in scores_by_team.items():
        occurrence: dict[str, int] = {}
        for s in scores:
            if s.seed is not None:
                trial: object = ("seed", s.seed)
            else:
                index = occurrence.get(s.benchmark, 0)
                occurrence[s.benchmark] = index + 1
                trial = ("pos", index)
            by_benchmark.setdefault((s.benchmark, trial), {})[team] = s
    out = {team: {"best": 0, "top1pct": 0} for team in scores_by_team}
    for entries in by_benchmark.values():
        top = max(e.test_accuracy for e in entries.values())
        winners = [
            t for t, e in entries.items() if e.test_accuracy == top
        ]
        for t in winners:
            out[t]["best"] += 1
        for t, e in entries.items():
            if e.test_accuracy >= top - top_tolerance:
                out[t]["top1pct"] += 1
    return out


def format_table3(rows: list[dict]) -> str:
    """Render Table III the way the paper prints it."""
    lines = [
        f"{'team':>8} {'test acc':>9} {'And gates':>10} "
        f"{'levels':>7} {'overfit':>8}"
    ]
    for r in rows:
        lines.append(
            f"{r['team']:>8} {100 * r['test_accuracy']:9.2f} "
            f"{r['and_gates']:10.2f} {r['levels']:7.2f} "
            f"{100 * r['overfit']:8.2f}"
        )
    return "\n".join(lines)


def per_category_table(
    scores_by_team: dict[str, list[Score]],
    categories: dict[str, str],
) -> dict[str, dict[str, float]]:
    """Mean test accuracy per (team, benchmark category).

    ``categories`` maps benchmark name -> category.  This backs the
    paper's qualitative per-category observations (arithmetic is hard
    for learners, image comparisons favour forests, symmetric
    functions favour matching/periodic models).
    """
    out: dict[str, dict[str, float]] = {}
    for team, scores in scores_by_team.items():
        buckets: dict[str, list[float]] = {}
        for s in scores:
            cat = categories.get(s.benchmark, "unknown")
            buckets.setdefault(cat, []).append(s.test_accuracy)
        out[team] = {
            cat: float(np.mean(vals)) for cat, vals in buckets.items()
        }
    return out


@dataclass
class ContestRun:
    """Convenience bundle: every team's scores over a benchmark set."""

    scores_by_team: dict[str, list[Score]]

    def table3(self) -> list[dict]:
        return table3(self.scores_by_team)

    def virtual_best(self) -> list[Score]:
        return virtual_best(self.scores_by_team)

    def win_rates(self) -> dict[str, dict[str, int]]:
        return win_rates(self.scores_by_team)


def run_contest(
    benchmarks: Sequence[object],
    flows: dict[str, object] | Sequence[str],
    n_train: int = 1000,
    n_valid: int = 1000,
    n_test: int = 1000,
    effort: str = "small",
    master_seed: int = 0,
    verbose: bool = False,
    jobs: int = 1,
    trials: int = 1,
    out_dir: str | None = None,
    resume: bool = True,
    keep_solutions: bool = False,
    shard: str | None = None,
) -> ContestRun:
    """Execute a set of flows over a benchmark subset and score them.

    Thin wrapper over :mod:`repro.runner`: the (flow x benchmark x
    trial) grid runs through the task layer — in-process for
    ``jobs=1``, over a process pool otherwise — and the ``ContestRun``
    is reconstructed from the task records.  With ``out_dir`` every
    completed task is persisted and already-stored tasks are skipped
    on re-invocation (``resume=True``), so interrupted or extended
    runs never recompute finished work.

    ``benchmarks`` entries may be suite indices (ints), registry
    problem names / family spec strings (``"ex74"``,
    ``"adder:width=48"``) or :class:`~repro.contest.registry.ProblemSpec`
    objects; use ``DEFAULT_REGISTRY.select`` first to expand globs and
    manifest files into specs.

    ``flows`` is a sequence of registry names / spec strings
    (``"team01"``, ``"portfolio"``, ``"team01:effort=full"`` — the
    registry is the source of truth, see :mod:`repro.flows.registry`)
    or a ``{display name: callable}`` dict (the historical interface).
    Parallel or stored runs need callables resolvable by name so
    workers can re-resolve them; purely in-process runs (``jobs=1``,
    no ``out_dir``) keep accepting arbitrary callables (lambdas,
    partials) and fall back to invoking them directly.

    ``shard="k/N"`` runs only the grid subset owned by shard ``k``
    (deterministic key-hash partition).  Run each shard into its own
    ``out_dir`` and merge with :func:`repro.runner.merge_stores` or
    report with :func:`merge_contest_runs` — the result is
    byte-identical to the unsharded run.
    """
    from repro.runner import (
        contest_tasks,
        flow_name_for,
        parse_shard,
        resolve_flow,
        run_contest_tasks,
        shard_tasks,
    )

    if isinstance(flows, dict):
        try:
            flow_names = {
                name: flow_name_for(name, flow)
                for name, flow in flows.items()
            }
        except ValueError:
            if jobs > 1 or out_dir is not None or shard is not None:
                raise
            return _run_contest_inline(
                benchmarks, flows, n_train=n_train, n_valid=n_valid,
                n_test=n_test, effort=effort, master_seed=master_seed,
                trials=trials, verbose=verbose,
            )
    else:
        # Fail fast on unknown flows / malformed specs instead of
        # erroring task-by-task inside the workers.
        for name in flows:
            resolve_flow(name)
        flow_names = {name: name for name in flows}
    specs = contest_tasks(
        benchmarks,
        flow_names,
        n_train=n_train,
        n_valid=n_valid,
        n_test=n_test,
        effort=effort,
        master_seed=master_seed,
        trials=trials,
    )
    if shard is not None:
        index, total = parse_shard(shard)
        specs = shard_tasks(specs, index, total)
    return run_contest_tasks(
        specs,
        jobs=jobs,
        out_dir=out_dir,
        resume=resume,
        keep_solutions=keep_solutions,
        verbose=verbose,
    )


def merge_contest_runs(out_dirs: Sequence[str]) -> ContestRun:
    """One :class:`ContestRun` from several run directories.

    The in-memory counterpart of :func:`repro.runner.merge_stores`:
    records from all directories (typically the stores of a sharded
    run) are combined by task key — conflicting duplicates rejected —
    and reconstructed in deterministic order.
    """
    from repro.runner import load_contest_runs

    return load_contest_runs(out_dirs)


def _run_contest_inline(
    benchmarks: Sequence[object],
    flows: dict[str, object],
    n_train: int,
    n_valid: int,
    n_test: int,
    effort: str,
    master_seed: int,
    trials: int,
    verbose: bool,
) -> ContestRun:
    """The pre-runner serial loop, kept for non-importable callables."""
    from repro.contest import DEFAULT_REGISTRY, evaluate_solution

    scores_by_team: dict[str, list[Score]] = {name: [] for name in flows}
    for entry in benchmarks:
        if isinstance(entry, int):
            spec = DEFAULT_REGISTRY.by_index(entry)
        else:
            spec = DEFAULT_REGISTRY.get(entry)
        for t in range(trials):
            seed = master_seed + t
            problem = DEFAULT_REGISTRY.problem(
                spec, n_train=n_train, n_valid=n_valid,
                n_test=n_test, master_seed=seed,
            )
            for name, flow in flows.items():
                solution = flow(problem, effort=effort, master_seed=seed)
                score = evaluate_solution(problem, solution)
                scores_by_team[name].append(score)
                if verbose:
                    print(
                        f"{problem.name} {name} s{seed}: "
                        f"acc={score.test_accuracy:.3f} "
                        f"ands={score.num_ands} [{solution.method}]"
                    )
    return ContestRun(scores_by_team)
