"""Comparative analysis of flow results (the paper's section V).

Turns per-team :class:`~repro.contest.evaluate.Score` lists into the
paper's tables and figures: Table III (team summary), Fig. 2 (accuracy
vs size Pareto with the virtual best), Fig. 3 (per-benchmark maximum
accuracy), Fig. 4 (win-rate / top-1% counts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.contest.evaluate import Score, summarize
from repro.flows.portfolio import virtual_best


def table3(scores_by_team: Dict[str, List[Score]]) -> List[dict]:
    """Table III rows sorted like the paper (test accuracy descending)."""
    rows = []
    for team, scores in scores_by_team.items():
        summary = summarize(scores)
        summary["team"] = team
        rows.append(summary)
    rows.sort(key=lambda r: -r["test_accuracy"])
    return rows


def pareto_curve(points: Sequence[Tuple[float, float]]) -> List[Tuple[float, float]]:
    """Pareto frontier of (size, accuracy) points: smaller-is-better
    size, larger-is-better accuracy, sorted by size ascending."""
    frontier: List[Tuple[float, float]] = []
    for size, acc in sorted(points):
        if not frontier or acc > frontier[-1][1]:
            frontier.append((size, acc))
    return frontier


def accuracy_size_tradeoff(
    scores_by_team: Dict[str, List[Score]],
    accuracy_grid: Sequence[float] = (0.85, 0.87, 0.89, 0.91, 0.93),
) -> List[Tuple[float, float]]:
    """Fig. 2's virtual-best trade-off curve.

    For each target average accuracy, chooses per-benchmark solutions
    (among all teams' solutions) minimizing average size subject to the
    average accuracy reaching the target: per benchmark we scan the
    accuracy-sorted candidate list, which yields the standard
    Lagrangian sweep approximation the paper plots.
    """
    by_benchmark: Dict[str, List[Score]] = {}
    for scores in scores_by_team.values():
        for s in scores:
            if s.legal:
                by_benchmark.setdefault(s.benchmark, []).append(s)
    curve: List[Tuple[float, float]] = []
    lambdas = np.geomspace(1e-6, 1e-1, 60)
    for lam in lambdas:
        total_acc = 0.0
        total_size = 0.0
        for entries in by_benchmark.values():
            best = max(entries,
                       key=lambda s: s.test_accuracy - lam * s.num_ands)
            total_acc += best.test_accuracy
            total_size += best.num_ands
        n = len(by_benchmark)
        curve.append((total_size / n, total_acc / n))
    # Reduce to the Pareto frontier.
    frontier = pareto_curve(curve)
    del accuracy_grid
    return frontier


def size_needed_for_accuracy(
    frontier: Sequence[Tuple[float, float]], accuracy: float
) -> float:
    """Smallest average size on the frontier reaching ``accuracy``."""
    feasible = [size for size, acc in frontier if acc >= accuracy]
    if not feasible:
        return float("nan")
    return min(feasible)


def per_benchmark_best(
    scores_by_team: Dict[str, List[Score]]
) -> Dict[str, float]:
    """Fig. 3: maximum accuracy achieved on each benchmark."""
    return {
        s.benchmark: s.test_accuracy
        for s in virtual_best(scores_by_team)
    }


def win_rates(
    scores_by_team: Dict[str, List[Score]], top_tolerance: float = 0.01
) -> Dict[str, Dict[str, int]]:
    """Fig. 4: per team, #benchmarks where it is best / within top 1%."""
    by_benchmark: Dict[str, Dict[str, Score]] = {}
    for team, scores in scores_by_team.items():
        for s in scores:
            by_benchmark.setdefault(s.benchmark, {})[team] = s
    out = {team: {"best": 0, "top1pct": 0} for team in scores_by_team}
    for entries in by_benchmark.values():
        top = max(e.test_accuracy for e in entries.values())
        winners = [
            t for t, e in entries.items() if e.test_accuracy == top
        ]
        for t in winners:
            out[t]["best"] += 1
        for t, e in entries.items():
            if e.test_accuracy >= top - top_tolerance:
                out[t]["top1pct"] += 1
    return out


def format_table3(rows: List[dict]) -> str:
    """Render Table III the way the paper prints it."""
    lines = [
        f"{'team':>8} {'test acc':>9} {'And gates':>10} "
        f"{'levels':>7} {'overfit':>8}"
    ]
    for r in rows:
        lines.append(
            f"{r['team']:>8} {100 * r['test_accuracy']:9.2f} "
            f"{r['and_gates']:10.2f} {r['levels']:7.2f} "
            f"{100 * r['overfit']:8.2f}"
        )
    return "\n".join(lines)


def per_category_table(
    scores_by_team: Dict[str, List[Score]],
    categories: Dict[str, str],
) -> Dict[str, Dict[str, float]]:
    """Mean test accuracy per (team, benchmark category).

    ``categories`` maps benchmark name -> category.  This backs the
    paper's qualitative per-category observations (arithmetic is hard
    for learners, image comparisons favour forests, symmetric
    functions favour matching/periodic models).
    """
    out: Dict[str, Dict[str, float]] = {}
    for team, scores in scores_by_team.items():
        buckets: Dict[str, List[float]] = {}
        for s in scores:
            cat = categories.get(s.benchmark, "unknown")
            buckets.setdefault(cat, []).append(s.test_accuracy)
        out[team] = {
            cat: float(np.mean(vals)) for cat, vals in buckets.items()
        }
    return out


@dataclass
class ContestRun:
    """Convenience bundle: every team's scores over a benchmark set."""

    scores_by_team: Dict[str, List[Score]]

    def table3(self) -> List[dict]:
        return table3(self.scores_by_team)

    def virtual_best(self) -> List[Score]:
        return virtual_best(self.scores_by_team)

    def win_rates(self) -> Dict[str, Dict[str, int]]:
        return win_rates(self.scores_by_team)


def run_contest(
    benchmark_indices: Sequence[int],
    flows: Dict[str, object],
    n_train: int = 1000,
    n_valid: int = 1000,
    n_test: int = 1000,
    effort: str = "small",
    master_seed: int = 0,
    verbose: bool = False,
) -> ContestRun:
    """Execute a set of flows over a benchmark subset and score them."""
    from repro.contest import build_suite, evaluate_solution, make_problem

    suite = build_suite()
    scores_by_team: Dict[str, List[Score]] = {name: [] for name in flows}
    for idx in benchmark_indices:
        problem = make_problem(
            suite[idx], n_train=n_train, n_valid=n_valid, n_test=n_test,
            master_seed=master_seed,
        )
        for name, flow in flows.items():
            solution = flow(problem, effort=effort, master_seed=master_seed)
            score = evaluate_solution(problem, solution)
            scores_by_team[name].append(score)
            if verbose:
                print(
                    f"{problem.name} {name}: acc={score.test_accuracy:.3f} "
                    f"ands={score.num_ands} [{solution.method}]"
                )
    return ContestRun(scores_by_team)
