"""Inline suppression comments.

A violation is silenced by a trailing comment on its own line::

    value = json.dumps(payload)  # repro-lint: ignore[REP201]

Multiple rules separate with commas
(``# repro-lint: ignore[REP201,REP303]``).  Rule IDs are mandatory —
there is no blanket ``ignore`` — so every suppression documents
exactly which invariant it waives, and a justifying comment should sit
next to it.
"""

from __future__ import annotations

import re

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore\[(?P<rules>[A-Z0-9,\s]+)\]"
)


def suppressions_for(source_lines: list[str]) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule IDs suppressed there."""
    table: dict[int, frozenset[str]] = {}
    for lineno, text in enumerate(source_lines, start=1):
        if "repro-lint" not in text:
            continue
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        rules = frozenset(
            part.strip()
            for part in match.group("rules").split(",")
            if part.strip()
        )
        if rules:
            table[lineno] = rules
    return table


def is_suppressed(
    table: dict[int, frozenset[str]], line: int, rule_id: str
) -> bool:
    """True when ``rule_id`` is suppressed on ``line``."""
    return rule_id in table.get(line, frozenset())
