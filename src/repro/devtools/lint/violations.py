"""Violation records and output formatting for the lint engine."""

from __future__ import annotations

import json
from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Violation:
    """One rule firing at one source location.

    Ordered by ``(path, line, col, rule_id)`` so reports and JSON
    output are stable regardless of rule execution order.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def as_text(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} {self.message}"
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "message": self.message,
        }


def format_text(violations: list[Violation], n_files: int) -> str:
    """Human-readable report: one line per violation plus a summary."""
    lines = [v.as_text() for v in sorted(violations)]
    noun = "violation" if len(violations) == 1 else "violations"
    lines.append(
        f"{len(violations)} {noun} in {n_files} file(s) checked"
    )
    return "\n".join(lines)


def format_json(violations: list[Violation], n_files: int) -> str:
    """Machine-readable report (stable key and violation order)."""
    payload = {
        "checked_files": n_files,
        "violation_count": len(violations),
        "violations": [v.as_dict() for v in sorted(violations)],
    }
    return json.dumps(payload, sort_keys=True, indent=2)
