"""Worker purity rules.

The parallel runner and the serving pool both rely on worker functions
being pure functions of their arguments: any process, any order, same
bytes.  Wall-clock reads, ambient environment lookups and post-fork
mutation of module globals are the three ways that purity quietly
dies; these rules fence them inside the configured worker zones (see
:mod:`repro.devtools.lint.config`).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.lint.rules.base import (
    ParsedModule,
    Rule,
    Violation,
    dotted_parts,
    violation,
)

WALLCLOCK_IN_WORKER = Rule(
    rule_id="REP301",
    name="wallclock-in-worker",
    description=(
        "wall-clock read inside a worker-zone function; results must "
        "not depend on when or where a task executes"
    ),
)

ENV_IN_WORKER = Rule(
    rule_id="REP302",
    name="env-read-in-worker",
    description=(
        "ambient environment read inside a worker-zone function; pass "
        "settings through the initializer or the task spec instead"
    ),
)

GLOBAL_MUTATION_IN_WORKER = Rule(
    rule_id="REP303",
    name="worker-global-mutation",
    description=(
        "module global mutated inside a worker-zone function; "
        "post-fork global state diverges between workers"
    ),
)

_WALLCLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
})

# ``os.environ`` itself is caught as an attribute read (which also
# covers ``os.environ.get`` / ``os.environ[...]`` exactly once).
_ENV_CALLS = frozenset({"os.getenv"})

_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "discard", "remove",
    "update", "clear", "pop", "popitem", "setdefault", "move_to_end",
    "appendleft", "extendleft",
})

_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "OrderedDict", "defaultdict", "deque",
    "Counter",
})


def _module_level_mutables(module: ParsedModule) -> frozenset[str]:
    """Module-level names bound to syntactically mutable containers."""
    names: set[str] = set()
    for stmt in module.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        is_mutable = isinstance(
            value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                    ast.DictComp, ast.SetComp)
        )
        if isinstance(value, ast.Call):
            callee = dotted_parts(value.func)
            if callee is not None:
                is_mutable = callee.split(".")[-1] in _MUTABLE_FACTORIES
        if not is_mutable:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
    return frozenset(names)


def _check_worker_body(
    module: ParsedModule,
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    mutable_globals: frozenset[str],
) -> Iterator[Violation]:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            path = module.resolve_call_path(node.func)
            if path in _WALLCLOCK_CALLS:
                yield violation(
                    module, node, WALLCLOCK_IN_WORKER,
                    f"{path}() called in worker function "
                    f"{func.name!r}",
                )
            elif path in _ENV_CALLS:
                yield violation(
                    module, node, ENV_IN_WORKER,
                    f"{path}() read in worker function {func.name!r}",
                )
            dotted = dotted_parts(node.func)
            if (
                dotted is not None
                and "." in dotted
                and dotted.split(".")[0] in mutable_globals
                and dotted.split(".")[-1] in _MUTATING_METHODS
            ):
                yield violation(
                    module, node, GLOBAL_MUTATION_IN_WORKER,
                    f"module global {dotted.split('.')[0]!r} mutated "
                    f"via .{dotted.split('.')[-1]}() in worker "
                    f"function {func.name!r}",
                )
        elif isinstance(node, ast.Attribute):
            dotted = dotted_parts(node)
            if dotted == "os.environ":
                yield violation(
                    module, node, ENV_IN_WORKER,
                    f"os.environ read in worker function {func.name!r}",
                )
        elif isinstance(node, ast.Global):
            yield violation(
                module, node, GLOBAL_MUTATION_IN_WORKER,
                f"'global {', '.join(node.names)}' rebinding in "
                f"worker function {func.name!r}",
            )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in mutable_globals
                ):
                    yield violation(
                        module, target, GLOBAL_MUTATION_IN_WORKER,
                        f"module global {target.value.id!r} written "
                        f"by subscript in worker function "
                        f"{func.name!r}",
                    )


def check_worker_purity(module: ParsedModule) -> Iterator[Violation]:
    mutable_globals = _module_level_mutables(module)
    for func in module.worker_functions():
        yield from _check_worker_body(module, func, mutable_globals)
