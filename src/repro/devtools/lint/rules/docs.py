"""Documentation rules.

The library's modules double as its architecture documentation: every
public module states its role and — where it matters — its determinism
contract in the module docstring (``docs/architecture.md`` links into
them rather than duplicating).  REP501 keeps that true: a module under
``src/repro`` without a docstring fails lint, so new subsystems cannot
land undocumented.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.lint.rules.base import (
    ParsedModule,
    Rule,
    Violation,
    violation,
)

MODULE_DOCSTRING = Rule(
    rule_id="REP501",
    name="missing-module-docstring",
    description=(
        "module in src/repro without a module docstring; state the "
        "module's role (and determinism contract, if any)"
    ),
)


def check_module_docstring(
    module: ParsedModule,
) -> Iterator[Violation]:
    """REP501: src/repro modules must open with a docstring.

    Empty files (an ``__init__.py`` that only marks a package) are
    exempt — there is nothing to document.
    """
    if module.config.rule_skips_path(MODULE_DOCSTRING.rule_id,
                                     module.path):
        return
    if not module.config.rule_applies_to_path(
        MODULE_DOCSTRING.rule_id, module.path
    ):
        return
    if not module.tree.body:
        return
    if ast.get_docstring(module.tree) is None:
        yield violation(
            module, module.tree, MODULE_DOCSTRING,
            "module has no docstring; open with one stating the "
            "module's role (and determinism contract, if any)",
        )
