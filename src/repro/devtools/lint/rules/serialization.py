"""Serialization determinism rules.

Store records, manifests and golden fingerprints are compared
byte-for-byte (resume, shard merge, golden tests), so anything that
reaches ``json.dump``/JSONL must serialize canonically: dict keys
sorted, and no iteration order borrowed from a ``set``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.lint.rules.base import (
    ParsedModule,
    Rule,
    Violation,
    violation,
)

JSON_SORT_KEYS = Rule(
    rule_id="REP201",
    name="json-sort-keys",
    description=(
        "json.dump/json.dumps without sort_keys=True; unsorted keys "
        "make output byte-unstable across dict construction orders"
    ),
)

UNSORTED_SET_ITER = Rule(
    rule_id="REP202",
    name="unsorted-set-iteration",
    description=(
        "iteration over a set in an order-sensitive position; wrap it "
        "in sorted() before the order can leak into output"
    ),
)

#: Calls that materialize their argument's iteration order.
_ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "iter"})


def _is_set_expr(node: ast.expr) -> bool:
    """Syntactically-certain set expressions (no type inference)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


def check_json_sort_keys(module: ParsedModule) -> Iterator[Violation]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        path = module.resolve_call_path(node.func)
        if path not in ("json.dump", "json.dumps"):
            continue
        sort_keys = next(
            (kw for kw in node.keywords if kw.arg == "sort_keys"), None
        )
        if sort_keys is None:
            yield violation(
                module, node, JSON_SORT_KEYS,
                f"{path} without sort_keys=True",
            )
        elif (
            isinstance(sort_keys.value, ast.Constant)
            and sort_keys.value.value is False
        ):
            yield violation(
                module, node, JSON_SORT_KEYS,
                f"{path} with sort_keys=False",
            )


def _iteration_sites(tree: ast.Module) -> Iterator[ast.expr]:
    """Expressions whose iteration order becomes visible."""
    for node in ast.walk(tree):
        if isinstance(node, ast.For):
            yield node.iter
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for comp in node.generators:
                yield comp.iter
        elif isinstance(node, ast.Call):
            func = node.func
            is_materializer = (
                isinstance(func, ast.Name)
                and func.id in _ORDER_SENSITIVE_CALLS
            )
            is_join = isinstance(func, ast.Attribute) and func.attr == "join"
            if (is_materializer or is_join) and node.args:
                yield node.args[0]


def check_set_iteration(module: ParsedModule) -> Iterator[Violation]:
    for expr in _iteration_sites(module.tree):
        if _is_set_expr(expr):
            yield violation(
                module, expr, UNSORTED_SET_ITER,
                "set iterated in an order-sensitive position; "
                "wrap in sorted()",
            )
