"""RNG discipline rules.

Reproducibility here rests on one invariant: every random draw comes
from a named stream derived via :func:`repro.utils.rng.rng_for` (or an
explicitly seeded generator threaded through arguments).  Module-level
RNG state — ``random.shuffle``, ``np.random.rand``, an unseeded
``default_rng()`` — silently couples components and breaks the
byte-identical serial/parallel/resume guarantees.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.lint.rules.base import (
    ParsedModule,
    Rule,
    Violation,
    violation,
)

RNG_GLOBAL_CALL = Rule(
    rule_id="REP101",
    name="rng-global-call",
    description=(
        "call into module-level RNG state (random.* / numpy.random.*) "
        "outside repro.utils.rng; derive a stream via rng_for instead"
    ),
)

RNG_UNSEEDED = Rule(
    rule_id="REP102",
    name="rng-unseeded",
    description=(
        "RNG constructed without a seed (default_rng() / "
        "random.Random()); seed it from rng_for/master_seed"
    ),
)

#: Seeded constructors: allowed with >= 1 positional seed argument.
_SEEDED_CONSTRUCTORS = frozenset({
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.PCG64",
    "numpy.random.SeedSequence",
    "random.Random",
})


def check_rng(module: ParsedModule) -> Iterator[Violation]:
    exempt = module.config.is_rng_exempt(module.path)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        path = module.resolve_call_path(node.func)
        if path is None:
            continue
        if path in _SEEDED_CONSTRUCTORS:
            if not node.args and not node.keywords:
                yield violation(
                    module, node, RNG_UNSEEDED,
                    f"{path}() constructed without a seed",
                )
            continue
        if exempt:
            continue
        if path.startswith("numpy.random.") or path.startswith("random."):
            yield violation(
                module, node, RNG_GLOBAL_CALL,
                f"call to {path} uses module-level RNG state; "
                f"derive a generator from repro.utils.rng.rng_for",
            )
