"""Rule registry: every rule the engine runs, in report order."""

from __future__ import annotations

from collections.abc import Callable, Iterator

from repro.devtools.lint.rules.base import ParsedModule, Rule
from repro.devtools.lint.rules.docs import (
    MODULE_DOCSTRING,
    check_module_docstring,
)
from repro.devtools.lint.rules.hygiene import (
    BARE_EXCEPT,
    MUTABLE_DEFAULT,
    RUNTIME_ASSERT,
    check_bare_except,
    check_mutable_defaults,
    check_runtime_assert,
)
from repro.devtools.lint.rules.purity import (
    ENV_IN_WORKER,
    GLOBAL_MUTATION_IN_WORKER,
    WALLCLOCK_IN_WORKER,
    check_worker_purity,
)
from repro.devtools.lint.rules.rng import (
    RNG_GLOBAL_CALL,
    RNG_UNSEEDED,
    check_rng,
)
from repro.devtools.lint.rules.serialization import (
    JSON_SORT_KEYS,
    UNSORTED_SET_ITER,
    check_json_sort_keys,
    check_set_iteration,
)
from repro.devtools.lint.violations import Violation

Checker = Callable[[ParsedModule], Iterator[Violation]]

#: ``(rule, checker)`` pairs; one checker may emit several rules
#: (worker purity shares a single AST walk).
ALL_RULES: tuple[Rule, ...] = (
    RNG_GLOBAL_CALL,
    RNG_UNSEEDED,
    JSON_SORT_KEYS,
    UNSORTED_SET_ITER,
    WALLCLOCK_IN_WORKER,
    ENV_IN_WORKER,
    GLOBAL_MUTATION_IN_WORKER,
    MUTABLE_DEFAULT,
    BARE_EXCEPT,
    RUNTIME_ASSERT,
    MODULE_DOCSTRING,
)

ALL_CHECKERS: tuple[Checker, ...] = (
    check_rng,
    check_json_sort_keys,
    check_set_iteration,
    check_worker_purity,
    check_mutable_defaults,
    check_bare_except,
    check_runtime_assert,
    check_module_docstring,
)

RULES_BY_ID: dict[str, Rule] = {rule.rule_id: rule for rule in ALL_RULES}
