"""Shared rule infrastructure: parsed modules and name resolution.

Every rule works on a :class:`ParsedModule` — source, AST, import
table and config — and yields :class:`Violation` objects.  The import
table is what keeps the rules honest: ``np.random.default_rng`` is
only an RNG call because ``np`` was imported as ``numpy``, and a local
variable that happens to be called ``random`` never matches.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.devtools.lint.config import LintConfig
from repro.devtools.lint.violations import Violation


def build_import_table(tree: ast.Module) -> dict[str, str]:
    """Local name -> fully dotted import path, for every import.

    ``import numpy as np`` maps ``np -> numpy``; ``import numpy.random``
    maps ``numpy -> numpy``; ``from numpy.random import default_rng as
    d`` maps ``d -> numpy.random.default_rng``.  Relative imports keep
    their leading dots and therefore never collide with the absolute
    module paths the rules match on.
    """
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    table[alias.asname] = alias.name
                else:
                    head = alias.name.partition(".")[0]
                    table[head] = head
        elif isinstance(node, ast.ImportFrom):
            prefix = "." * node.level + (node.module or "")
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{prefix}.{alias.name}" if prefix \
                    else alias.name
    return table


def dotted_parts(node: ast.expr) -> str | None:
    """``a.b.c`` attribute chains as a dotted string (else ``None``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    return ".".join(parts)


@dataclass
class ParsedModule:
    """One source file, parsed once and shared by every rule."""

    path: str
    source_lines: list[str]
    tree: ast.Module
    config: LintConfig
    imports: dict[str, str] = field(init=False)

    def __post_init__(self) -> None:
        self.imports = build_import_table(self.tree)

    def resolve_call_path(self, node: ast.expr) -> str | None:
        """Resolve a callee expression to its imported dotted path.

        Returns ``None`` when the head name was never imported — a
        local variable, parameter or builtin — so rules keyed on
        module paths cannot false-positive on shadowing names.
        """
        dotted = dotted_parts(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        base = self.imports.get(head)
        if base is None:
            return None
        return f"{base}.{rest}" if rest else base

    def worker_functions(
        self,
    ) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        """Every function in this module that is a worker zone."""
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if self.config.is_worker_function(self.path, node.name):
                    yield node


@dataclass(frozen=True)
class Rule:
    """A rule's identity; the check itself is a free function."""

    rule_id: str
    name: str
    description: str


def violation(
    module: ParsedModule, node: ast.AST, rule: Rule, message: str
) -> Violation:
    return Violation(
        path=module.path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        rule_id=rule.rule_id,
        message=message,
    )
