"""API hygiene rules.

Classic Python failure modes that this repo has no excuse to carry:
mutable default arguments (shared across calls — and across forked
workers), bare ``except`` (swallows ``KeyboardInterrupt`` and real
bugs alike), and ``assert`` for runtime validation (compiled away
under ``python -O``, so the check silently vanishes in production).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.lint.rules.base import (
    ParsedModule,
    Rule,
    Violation,
    dotted_parts,
    violation,
)

MUTABLE_DEFAULT = Rule(
    rule_id="REP401",
    name="mutable-default-arg",
    description=(
        "mutable default argument; the instance is shared across "
        "every call (use None and construct inside)"
    ),
)

BARE_EXCEPT = Rule(
    rule_id="REP402",
    name="bare-except",
    description=(
        "bare 'except:' catches SystemExit/KeyboardInterrupt; name "
        "the exceptions you can actually handle"
    ),
)

RUNTIME_ASSERT = Rule(
    rule_id="REP403",
    name="runtime-assert",
    description=(
        "assert used for runtime validation in library code; "
        "'python -O' strips it — raise a real exception"
    ),
)

_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "OrderedDict", "defaultdict", "deque",
    "Counter",
})


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        callee = dotted_parts(node.func)
        if callee is not None:
            return callee.split(".")[-1] in _MUTABLE_FACTORIES
    return False


def check_mutable_defaults(module: ParsedModule) -> Iterator[Violation]:
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                yield violation(
                    module, default, MUTABLE_DEFAULT,
                    f"mutable default in {node.name}()",
                )


def check_bare_except(module: ParsedModule) -> Iterator[Violation]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield violation(
                module, node, BARE_EXCEPT, "bare 'except:' clause"
            )


def check_runtime_assert(module: ParsedModule) -> Iterator[Violation]:
    if module.config.rule_skips_path(RUNTIME_ASSERT.rule_id, module.path):
        return
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Assert):
            yield violation(
                module, node, RUNTIME_ASSERT,
                "assert in library code (stripped under -O); raise "
                "instead",
            )
