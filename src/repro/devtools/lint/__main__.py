"""``python -m repro.devtools.lint`` — same entry as ``repro lint``."""

from __future__ import annotations

import sys

from repro.devtools.lint.engine import main

if __name__ == "__main__":
    sys.exit(main())
