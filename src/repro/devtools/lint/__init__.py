"""Repo-specific determinism/safety static analysis (``repro lint``).

Public surface:

- :func:`lint_paths` / :func:`lint_source` — run the rules, get
  :class:`Violation` objects back.
- :data:`ALL_RULES` — the rule registry (IDs, names, rationales).
- :func:`main` — the CLI entry point shared by ``repro lint`` and
  ``python -m repro.devtools.lint``.

Suppress a single finding with a trailing
``# repro-lint: ignore[RULE]`` comment; see
:mod:`repro.devtools.lint.suppress`.
"""

from __future__ import annotations

from repro.devtools.lint.config import LintConfig
from repro.devtools.lint.engine import lint_paths, lint_source, main
from repro.devtools.lint.rules import ALL_RULES, RULES_BY_ID
from repro.devtools.lint.violations import Violation

__all__ = [
    "ALL_RULES",
    "LintConfig",
    "RULES_BY_ID",
    "Violation",
    "lint_paths",
    "lint_source",
    "main",
]
