"""Repo-specific scoping for the lint rules.

The rules themselves are generic AST checks; this module pins them to
the places where this codebase's determinism contracts actually live:

- which modules are *worker zones* (code that runs inside forked
  worker processes and must stay pure — see
  :mod:`repro.runner.task` and :mod:`repro.serve.pool`),
- which files are allowed to touch global RNG machinery (only
  :mod:`repro.utils.rng`, the seed-derivation chokepoint),
- which path prefixes individual rules skip (benchmarks assert their
  perf floors by design, so REP403 does not apply there).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Functions that execute inside pool workers, keyed by a module path
#: suffix.  Purity rules (REP301/302/303) only fire inside these — or
#: inside any function named ``_worker*`` / ``*_worker`` anywhere,
#: so new worker entry points are covered by convention.
DEFAULT_WORKER_ZONES: dict[str, frozenset[str]] = {
    "repro/runner/task.py": frozenset({
        "initialize_worker",
        "run_task",
        "make_task_problem",
        "_cached_problem",
        "run_flow_on_problem",
        "dataset_fingerprint",
    }),
    "repro/serve/pool.py": frozenset({
        "_init_worker",
        "_worker_compiled",
        "_worker_predict",
        "_worker_ping",
    }),
}

#: Files allowed to call global RNG constructors: the seed-derivation
#: chokepoint every stream must come from.
DEFAULT_RNG_EXEMPT: tuple[str, ...] = (
    "repro/utils/rng.py",
)

#: Per-rule path-suffix/prefix fragments the rule skips entirely.
#: Benchmarks assert measured floors (that is their job) and drive
#: wall clocks for timing, so the runtime-assert rule stays out.
DEFAULT_RULE_PATH_SKIPS: dict[str, tuple[str, ...]] = {
    "REP403": ("benchmarks/", "tests/"),
}

#: Per-rule path fragments a rule is *confined to*: a rule listed
#: here fires only on paths containing one of its fragments (rules
#: not listed apply everywhere).  The docstring rule documents the
#: library, not benches or tests.
DEFAULT_RULE_PATH_ONLY: dict[str, tuple[str, ...]] = {
    "REP501": ("src/repro/",),
}


def _worker_name_matches(name: str) -> bool:
    return name.startswith("_worker") or name.endswith("_worker")


@dataclass(frozen=True)
class LintConfig:
    """Scoping knobs; tests build narrowed instances."""

    worker_zones: dict[str, frozenset[str]] = field(
        default_factory=lambda: dict(DEFAULT_WORKER_ZONES)
    )
    rng_exempt: tuple[str, ...] = DEFAULT_RNG_EXEMPT
    rule_path_skips: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_RULE_PATH_SKIPS)
    )
    rule_path_only: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_RULE_PATH_ONLY)
    )

    def is_worker_function(self, path: str, func_name: str) -> bool:
        """Is ``func_name`` in ``path`` a worker-zone function?"""
        if _worker_name_matches(func_name):
            return True
        normalized = path.replace("\\", "/")
        for suffix, names in self.worker_zones.items():
            if normalized.endswith(suffix) and func_name in names:
                return True
        return False

    def is_rng_exempt(self, path: str) -> bool:
        normalized = path.replace("\\", "/")
        return any(normalized.endswith(s) for s in self.rng_exempt)

    def rule_skips_path(self, rule_id: str, path: str) -> bool:
        normalized = path.replace("\\", "/")
        return any(
            fragment in normalized
            for fragment in self.rule_path_skips.get(rule_id, ())
        )

    def rule_applies_to_path(self, rule_id: str, path: str) -> bool:
        """False when the rule is confined elsewhere (see
        ``rule_path_only``); rules without an entry apply everywhere."""
        only = self.rule_path_only.get(rule_id)
        if only is None:
            return True
        normalized = path.replace("\\", "/")
        return any(fragment in normalized for fragment in only)
