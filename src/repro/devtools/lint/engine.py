"""The lint engine: walk files, run rules, filter suppressions.

Run it as ``repro lint`` or ``python -m repro.devtools.lint``::

    repro lint src/repro benchmarks
    repro lint --format json src/repro
    repro lint --list-rules

Exit status is 0 on a clean tree, 1 when violations remain, 2 on
usage errors (unreadable path, syntax error in a checked file).
"""

from __future__ import annotations

import argparse
import ast
import sys
from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.devtools.lint.config import LintConfig
from repro.devtools.lint.rules import ALL_CHECKERS, ALL_RULES
from repro.devtools.lint.rules.base import ParsedModule
from repro.devtools.lint.suppress import is_suppressed, suppressions_for
from repro.devtools.lint.violations import (
    Violation,
    format_json,
    format_text,
)


def iter_python_files(paths: Iterable[str]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    found: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for child in sorted(path.rglob("*.py")):
                found[child] = None
        elif path.is_file():
            found[path] = None
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return sorted(found)


def lint_source(
    source: str,
    path: str,
    config: LintConfig | None = None,
) -> list[Violation]:
    """Lint one source string (the unit tests' entry point)."""
    config = config if config is not None else LintConfig()
    tree = ast.parse(source, filename=path)
    module = ParsedModule(
        path=path,
        source_lines=source.splitlines(),
        tree=tree,
        config=config,
    )
    suppressed = suppressions_for(module.source_lines)
    violations = [
        v
        for checker in ALL_CHECKERS
        for v in checker(module)
        if not is_suppressed(suppressed, v.line, v.rule_id)
    ]
    return sorted(set(violations))


def lint_paths(
    paths: Sequence[str],
    config: LintConfig | None = None,
) -> tuple[list[Violation], int]:
    """Lint every ``.py`` file under ``paths``.

    Returns ``(violations, files_checked)``.  Syntax errors abort with
    the offending location — an unparseable file is a build problem,
    not a lint finding.
    """
    files = iter_python_files(paths)
    violations: list[Violation] = []
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        violations.extend(lint_source(source, str(file_path), config))
    return sorted(violations), len(files)


def _rule_table() -> str:
    lines = []
    for rule in ALL_RULES:
        lines.append(f"{rule.rule_id}  {rule.name}")
        lines.append(f"        {rule.description}")
    return "\n".join(lines)


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="repo-specific determinism and safety lints",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro", "benchmarks"],
        help="files or directories to lint "
             "(default: src/repro benchmarks)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is stable and machine-parseable)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    if args.list_rules:
        print(_rule_table())
        return 0
    try:
        violations, n_files = lint_paths(args.paths)
    except FileNotFoundError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    except SyntaxError as exc:
        print(f"repro lint: syntax error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(format_json(violations, n_files))
    else:
        print(format_text(violations, n_files))
    return 1 if violations else 0
