"""Developer tooling that ships with the repo, not the paper.

:mod:`repro.devtools.lint` is the repo-specific static-analysis
engine (``repro lint``); it enforces the determinism and safety
invariants the reproduction's guarantees rest on.  Nothing in here is
imported by the library at runtime.
"""
