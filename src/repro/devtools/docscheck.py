"""Documentation checker: link integrity + CLI coverage.

Run as ``python -m repro.devtools.docscheck`` (CI's docs job):

1. **Link check** — every relative markdown link in ``README.md`` and
   ``docs/*.md`` must point at a file or directory that exists
   (external ``http(s)``/``mailto`` links and pure ``#anchor``
   fragments are skipped; no network access, so the check is
   deterministic and offline).
2. **CLI coverage** — every subcommand ``repro --help`` advertises
   must be mentioned somewhere in the checked documents, so a new CLI
   verb cannot land undocumented.

Exit status 0 when clean, 1 with findings listed one per line.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

#: ``[text](target)`` — good enough for this repo's plain markdown;
#: images (``![...](...)``) match too, which is what we want.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def iter_doc_files(root: Path) -> list[Path]:
    """README.md plus every markdown file under docs/, sorted."""
    files = []
    readme = root / "README.md"
    if readme.is_file():
        files.append(readme)
    docs = root / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.rglob("*.md")))
    return files


def check_links(doc: Path, root: Path) -> list[str]:
    """Broken relative links in one document."""
    problems = []
    text = doc.read_text(encoding="utf-8")
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
            continue
        path_part = target.split("#", 1)[0]
        if not path_part:
            continue
        resolved = (doc.parent / path_part).resolve()
        if not resolved.is_relative_to(root):
            # GitHub web-relative links (badges, /actions/ pages)
            # escape the checkout; there is nothing on disk to verify.
            continue
        if not resolved.exists():
            line = text.count("\n", 0, match.start()) + 1
            problems.append(
                f"{doc.relative_to(root)}:{line}: broken link "
                f"{target!r} ({path_part} does not exist)"
            )
    return problems


def cli_subcommands() -> list[str]:
    """The subcommand names ``repro --help`` lists."""
    from repro.cli import build_parser

    parser = build_parser()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return sorted(action.choices)
    return []


def check_cli_coverage(docs: list[Path]) -> list[str]:
    """CLI subcommands no checked document mentions."""
    corpus = "\n".join(d.read_text(encoding="utf-8") for d in docs)
    problems = []
    for command in cli_subcommands():
        pattern = re.compile(
            rf"repro\s+{re.escape(command)}\b|`{re.escape(command)}`"
        )
        if not pattern.search(corpus):
            problems.append(
                f"CLI subcommand 'repro {command}' is not mentioned in "
                f"README.md or docs/ — document it"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.docscheck",
        description=__doc__,
    )
    parser.add_argument(
        "--root", default=".",
        help="repository root holding README.md and docs/ "
             "(default: current directory)",
    )
    args = parser.parse_args(argv)
    root = Path(args.root).resolve()
    docs = iter_doc_files(root)
    if not docs:
        print(f"no README.md or docs/*.md under {root}", file=sys.stderr)
        return 1
    problems: list[str] = []
    for doc in docs:
        problems.extend(check_links(doc, root))
    problems.extend(check_cli_coverage(docs))
    for problem in problems:
        print(problem)
    print(
        f"docscheck: {len(docs)} documents, "
        f"{len(cli_subcommands())} CLI subcommands, "
        f"{len(problems)} problem(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
