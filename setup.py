from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # PEP 561: ship the marker so installed copies expose their inline
    # annotations to type checkers.
    package_data={"repro": ["py.typed"]},
)
