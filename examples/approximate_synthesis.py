"""Trading exactness for size: approximate logic synthesis.

The paper's headline finding: "sacrificing a little accuracy allows
for a significant reduction in the size of the circuit".  This example
shows both halves of that trade:

1. Team 1's simulation-guided approximation applied to an exact
   multiplier-MSB cone — accuracy degrades gracefully as nodes are
   stripped (the paper's Fig. 7: <=5% loss for thousands of nodes).
2. A learned random-forest circuit for an image-like benchmark, swept
   over forest sizes — the accuracy-vs-AND-gates Pareto the paper
   plots in Fig. 2.

Run:  python examples/approximate_synthesis.py
"""

import numpy as np

from repro.aig.aig import AIG
from repro.aig.approx import approximate_to_size
from repro.aig.build import multiplier
from repro.contest import build_suite, make_problem
from repro.ml.forest import RandomForest
from repro.ml.metrics import accuracy
from repro.synth.from_forest import forest_to_aig
from repro.utils.rng import rng_for


def exact_circuit_approximation() -> None:
    print("-- Team 1 approximation on an exact 8x8 multiplier MSB --")
    k = 8
    aig = AIG(2 * k)
    lits = aig.input_lits()
    product = multiplier(aig, lits[:k], lits[k:])
    aig.set_output(product[2 * k - 1])
    aig = aig.extract_cone()
    rng = rng_for("example-approx")
    X = rng.integers(0, 2, size=(4000, 2 * k)).astype(np.uint8)
    golden = aig.simulate(X)[:, 0]
    print(f"{'target':>8} {'ands':>6} {'agreement':>10}")
    print(f"{'exact':>8} {aig.num_ands:6d} {1.0:10.3f}")
    for target in (200, 120, 80, 40, 20):
        small = approximate_to_size(aig, max_ands=target, rng=rng)
        agree = accuracy(golden, small.simulate(X)[:, 0])
        print(f"{target:8d} {small.num_ands:6d} {agree:10.3f}")


def learned_circuit_tradeoff() -> None:
    print("\n-- accuracy vs size on an MNIST-like benchmark --")
    suite = build_suite()
    problem = make_problem(suite[80], n_train=1500, n_valid=500,
                           n_test=1500)
    rng = rng_for("example-pareto")
    print(f"{'trees':>6} {'depth':>6} {'ands':>6} {'test acc':>9}")
    for n_trees, depth in [(1, 4), (1, 8), (3, 8), (7, 8), (15, 8)]:
        forest = RandomForest(
            n_trees=n_trees, max_depth=depth, feature_fraction=0.5,
            rng=rng,
        ).fit(problem.train.X, problem.train.y)
        aig = forest_to_aig(forest).extract_cone()
        acc = accuracy(problem.test.y, aig.simulate(problem.test.X)[:, 0])
        print(f"{n_trees:6d} {depth:6d} {aig.num_ands:6d} {acc:9.3f}")
    print("\nnote the knee: most of the accuracy is available at a "
          "fraction of the size,\nthe paper's 'trading exactness for "
          "generalization' in circuit form.")


if __name__ == "__main__":
    exact_circuit_approximation()
    learned_circuit_tradeoff()
