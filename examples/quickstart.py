"""Quickstart: learn one contest benchmark end to end.

Builds benchmark ex30 (a 10-bit comparator) the way the IWLS 2020
contest did — 6400 training, validation and test minterms in PLA form —
runs the winning team's flow on it, scores the returned AIG on the
hidden test set and writes the circuit to an AIGER file.

Run:  python examples/quickstart.py
"""

from pathlib import Path

from repro.aig import write_aag
from repro.contest import build_suite, evaluate_solution, make_problem
from repro.flows import get_flow
from repro.twolevel.pla import write_pla


def main() -> None:
    suite = build_suite()
    spec = suite[30]
    print(f"benchmark {spec.name}: {spec.description} "
          f"({spec.n_inputs} inputs)")

    # Sample the train/validation/test triple (scaled down from the
    # contest's 6400/6400/6400 so the example runs in seconds).
    problem = make_problem(spec, n_train=1000, n_valid=1000, n_test=1000)
    print(f"train onset fraction: {problem.train.onset_fraction():.2f}")

    # The contest distributed the data as PLA files; write one to show
    # the format.
    out_dir = Path("examples_output")
    out_dir.mkdir(exist_ok=True)
    write_pla(problem.train.to_pla(), out_dir / f"{spec.name}.train.pla")
    print(f"wrote {out_dir / (spec.name + '.train.pla')}")

    # Run the contest winner's flow (Team 1: matching / espresso /
    # LUT network / random forest portfolio), resolved through the
    # flow registry.  ``run_detailed`` also returns the candidate
    # table: every circuit the flow's stages proposed, not just the
    # winner.
    flow = get_flow("team01")
    print(f"flow stages:   {', '.join(flow.stage_names)}")
    result = flow.run_detailed(problem, effort="small")
    solution = result.solution
    score = evaluate_solution(problem, solution)

    for candidate in result.candidates:
        print(f"  candidate {candidate.name:20s} "
              f"[{candidate.stage}] {candidate.num_ands} ANDs")
    print(f"method:        {solution.method}")
    print(f"test accuracy: {score.test_accuracy:.4f}")
    print(f"AND nodes:     {score.num_ands} (cap 5000, "
          f"legal={score.legal})")
    print(f"logic levels:  {score.levels}")
    print(f"overfit gap:   {score.overfit * 100:.2f}%")

    aig_path = out_dir / f"{spec.name}.solution.aag"
    write_aag(solution.aig, aig_path)
    print(f"wrote {aig_path}")


if __name__ == "__main__":
    main()
