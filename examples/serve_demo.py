"""Serve learned circuits over HTTP and query them.

End-to-end tour of the serving layer (`repro.serve`):

1. run a mini contest with ``--keep-solutions`` so the store holds
   the winning circuits,
2. start the microbatching HTTP server on a background thread,
3. fire concurrent single-row requests at ``/predict/{model}`` and
   watch them coalesce into a handful of engine passes,
4. score a rows file offline with the same models (`repro predict`).

Run:  python examples/serve_demo.py            (seconds)
"""

import http.client
import json
import tempfile
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np

from repro.runner import contest_tasks, run_contest_tasks
from repro.serve import ModelStore, ServeApp, ServerHandle, predict_file

BENCHMARKS = [30, 74]  # 10-bit comparator, 16-input parity
FLOWS = ["team01", "team10"]
SAMPLES = 64
N_REQUESTS = 32


def post_row(host, port, model, row):
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("POST", f"/predict/{model}",
                     body=json.dumps({"row": row}))
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def main() -> None:
    tmp = Path(tempfile.mkdtemp(prefix="repro-serve-demo-"))
    store_dir = tmp / "run"
    print(f"1) contest into {store_dir} (--keep-solutions) ...")
    specs = contest_tasks(BENCHMARKS, FLOWS, SAMPLES, SAMPLES, SAMPLES)
    run_contest_tasks(specs, jobs=1, out_dir=store_dir, keep_solutions=True)

    store = ModelStore(store_dir)
    print(f"   serving catalogue: {store.names()}")
    for info in store.infos():
        print(f"   {info.name}: {info.n_inputs} inputs, "
              f"{info.num_ands} ANDs, flow {info.flow}, "
              f"test acc {info.test_accuracy}")

    app = ServeApp(store, tick_s=0.005)
    with ServerHandle(app) as handle:
        print(f"\n2) serving on http://{handle.host}:{handle.port}")
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 2, size=(N_REQUESTS, 16)).tolist()

        print(f"3) {N_REQUESTS} concurrent single-row requests ...")
        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(
                lambda row: post_row(handle.host, handle.port, "ex74", row),
                rows,
            ))
        bits = "".join(str(body["outputs"][0][0]) for _, body in results)
        print(f"   predictions: {bits}")

        conn = http.client.HTTPConnection(handle.host, handle.port, timeout=30)
        conn.request("GET", "/healthz")
        health = json.loads(conn.getresponse().read())
        conn.close()
        batching = health["batching"]
        print(f"   microbatching: {batching['requests']} requests -> "
              f"{batching['batches']} engine passes "
              f"(largest batch {batching['max_coalesced']})")

    print("\n4) offline scoring of a rows file (repro predict) ...")
    rows_file = tmp / "rows.txt"
    preds_file = tmp / "preds.txt"
    rows_file.write_text(
        "\n".join("".join(str(b) for b in row) for row in rows) + "\n"
    )
    n = predict_file(store_dir, "ex74", rows_file, preds_file)
    offline = "".join(preds_file.read_text().split())
    print(f"   {n} rows -> {preds_file}")
    assert offline == bits, "offline and HTTP predictions must agree"
    print("   offline == HTTP, bit for bit")


if __name__ == "__main__":
    main()
