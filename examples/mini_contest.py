"""Run a miniature IWLS 2020 contest.

Executes all ten team flows over a handful of benchmarks spanning the
suite's categories and prints a Table-III-style leaderboard plus the
per-benchmark winners (Fig. 4's win counts, in miniature).

Run:  python examples/mini_contest.py          (a few minutes)
      python examples/mini_contest.py --fast   (3 flows, seconds)
"""

import sys

from repro.analysis import format_table3, run_contest, win_rates
from repro.flows import TEAM_FLOW_NAMES

FAST_FLOWS = ("team01", "team07", "team10")
BENCHMARKS = [0, 21, 30, 74, 75, 80, 90]  # one per difficulty flavour


def main() -> None:
    fast = "--fast" in sys.argv
    # Flows are plain registry names; spec strings like
    # "team01:effort=full" or "portfolio:flows=team01+team10" are
    # equally valid here (see `python -m repro.cli flows`).
    flows = [
        name for name in TEAM_FLOW_NAMES
        if not fast or name in FAST_FLOWS
    ]
    print(f"running {len(flows)} flows over benchmarks "
          f"{['ex%02d' % b for b in BENCHMARKS]} ...\n")
    run = run_contest(
        BENCHMARKS, flows, n_train=400, n_valid=400, n_test=400,
        effort="small", verbose=True,
    )
    print("\n=== Table III (miniature) ===")
    print(format_table3(run.table3()))

    print("\n=== win counts (Fig. 4, miniature) ===")
    wins = win_rates(run.scores_by_team)
    for team in sorted(wins, key=lambda t: -wins[t]["best"]):
        print(f"  {team}: best on {wins[team]['best']} benchmark(s), "
              f"top-1% on {wins[team]['top1pct']}")

    vb = run.virtual_best()
    print("\n=== virtual best per benchmark ===")
    for score in vb:
        print(f"  {score.benchmark}: {score.test_accuracy:.3f} "
              f"({score.num_ands} ANDs, by {score.method})")


if __name__ == "__main__":
    main()
