"""Learning arithmetic circuit bits: why matching beats learning.

The contest's hardest benchmarks are output bits of wide arithmetic
circuits.  This example reproduces the paper's core observation on the
2nd MSB of a 16-bit adder (ex01-style):

* a depth-8 decision tree (Team 10's flow) barely beats chance,
* a BDD minimized against the care set with an MSB-first interleaved
  variable order learns it well (Team 1's appendix experiment),
* pre-defined standard function matching recognizes the adder from the
  samples and emits an exact ripple-carry circuit.

Run:  python examples/learn_arithmetic.py
"""

from repro.bdd import BDD, restrict
from repro.contest import build_suite, make_problem
from repro.ml.decision_tree import DecisionTree
from repro.ml.metrics import accuracy
from repro.synth.matching import match_standard_function


def main() -> None:
    suite = build_suite()
    spec = suite[1]  # 2nd MSB of a 16-bit adder
    problem = make_problem(spec, n_train=2000, n_valid=500, n_test=2000)
    k = spec.n_inputs // 2
    print(f"benchmark {spec.name}: {spec.description}\n")

    # 1. Decision tree (Team 10 style).
    tree = DecisionTree(max_depth=8).fit(problem.train.X, problem.train.y)
    dt_acc = accuracy(problem.test.y, tree.predict(problem.test.X))
    print(f"decision tree (depth 8)        test accuracy: {dt_acc:.3f}")

    # 2. BDD with don't-care minimization, MSB-first interleaved order
    #    (the appendix reports ~98% for 2-word adders).
    order = []
    for j in reversed(range(k)):
        order.extend([j, k + j])
    bdd = BDD(spec.n_inputs)
    X_train = problem.train.X[:, order]
    onset = bdd.from_samples(X_train[problem.train.y == 1])
    care = bdd.from_samples(X_train)
    minimized = restrict(bdd, onset, care)
    pred = bdd.evaluate(minimized, problem.test.X[:, order])
    bdd_acc = accuracy(problem.test.y, pred)
    print(f"BDD one-sided matching         test accuracy: {bdd_acc:.3f} "
          f"({bdd.count_nodes(minimized)} BDD nodes)")

    # 3. Standard function matching (Teams 1 and 7).
    merged = problem.merged_train_valid()
    match = match_standard_function(merged.X, merged.y)
    assert match is not None, "adder should be recognized"
    match_pred = match.aig.simulate(problem.test.X)[:, 0]
    match_acc = accuracy(problem.test.y, match_pred)
    print(f"function matching ({match.name})"
          f"  test accuracy: {match_acc:.3f} "
          f"({match.aig.num_ands} AND nodes)")

    print("\npaper's story: learning generalizes poorly on wide "
          "arithmetic;\nstructure recognition (matching, or a "
          "well-ordered BDD) wins.")
    assert match_acc > bdd_acc > dt_acc


if __name__ == "__main__":
    main()
