"""The paper's future-work proposals, runnable.

The conclusion of the paper sketches two extensions: contests over
*multi-output* circuits, and flows that return an *accuracy-area
trade-off* instead of a single solution.  Both are implemented in this
library; this example demonstrates them.

Run:  python examples/future_extensions.py
"""

from repro.contest import build_suite, make_problem
from repro.contest.multioutput import (
    adder_all_bits,
    evaluate_multioutput,
    make_multioutput_problem,
    shared_tree_flow,
)
from repro.flows.tradeoff import run_tradeoff
from repro.ml.metrics import accuracy


def multi_output_demo() -> None:
    print("-- multi-output: all 7 sum bits of a 6-bit adder --")
    problem = make_multioutput_problem(
        "adder6", adder_all_bits(6), n_train=3000, n_test=1000
    )
    aig = shared_tree_flow(problem, max_depth=8)
    report = evaluate_multioutput(problem, aig)
    for j, acc in enumerate(report["per_output"]):
        print(f"  sum bit {j}: {100 * acc:6.2f}%")
    print(f"  shared netlist: {report['shared_ands']} ANDs; "
          f"independent cones would need {report['sum_of_cones']} "
          f"(sharing x{report['sharing_factor']:.2f})")


def tradeoff_demo() -> None:
    print("\n-- accuracy-area Pareto set on an MNIST-like benchmark --")
    suite = build_suite()
    problem = make_problem(suite[80], n_train=1200, n_valid=600,
                           n_test=1200)
    frontier = run_tradeoff(problem, effort="small")
    print(f"  {'ANDs':>6} {'valid acc':>10} {'test acc':>9}")
    for point in frontier:
        test_acc = accuracy(
            problem.test.y,
            point.solution.aig.simulate(problem.test.X)[:, 0],
        )
        print(f"  {point.num_ands:6d} "
              f"{100 * point.valid_accuracy:9.2f}% "
              f"{100 * test_acc:8.2f}%")
    print("\ninstead of one circuit, the flow hands the designer the "
          "whole exactness-vs-area menu.")


if __name__ == "__main__":
    multi_output_demo()
    tradeoff_demo()
