"""C4.5-style decision tree: fitting, pruning, export."""

import numpy as np
import pytest

from repro.ml.decision_tree import DecisionTree, _pessimistic_errors, entropy
from repro.ml.metrics import accuracy


def _make(rng, fn, n=800, d=8):
    X = rng.integers(0, 2, size=(n, d)).astype(np.uint8)
    return X, fn(X).astype(np.uint8)


class TestFitting:
    def test_learns_conjunction(self, rng):
        X, y = _make(rng, lambda X: X[:, 0] & X[:, 3])
        tree = DecisionTree().fit(X, y)
        Xt, yt = _make(rng, lambda X: X[:, 0] & X[:, 3], n=300)
        assert accuracy(yt, tree.predict(Xt)) == 1.0

    def test_learns_disjunction_with_gini(self, rng):
        X, y = _make(rng, lambda X: X[:, 1] | X[:, 2])
        tree = DecisionTree(criterion="gini").fit(X, y)
        assert accuracy(y, tree.predict(X)) == 1.0

    def test_depth_limit_respected(self, rng):
        X, y = _make(rng, lambda X: X[:, 0] ^ X[:, 1] ^ X[:, 2])
        tree = DecisionTree(max_depth=2).fit(X, y)
        assert tree.depth() <= 2

    def test_min_samples_controls_growth(self, rng):
        X, y = _make(rng, lambda X: (X.sum(axis=1) % 3 == 0))
        big = DecisionTree(min_samples_leaf=1).fit(X, y)
        small = DecisionTree(min_samples_leaf=50).fit(X, y)
        assert small.num_leaves() < big.num_leaves()

    def test_pure_node_is_leaf(self):
        X = np.array([[0, 1], [1, 0], [1, 1]], dtype=np.uint8)
        y = np.array([1, 1, 1], dtype=np.uint8)
        tree = DecisionTree().fit(X, y)
        assert tree.num_leaves() == 1
        assert tree.predict(X).tolist() == [1, 1, 1]

    def test_unknown_criterion_rejected(self):
        with pytest.raises(ValueError):
            DecisionTree(criterion="mse")

    def test_feature_not_reused_on_path(self, rng):
        X, y = _make(rng, lambda X: X[:, 0])
        tree = DecisionTree().fit(X, y)
        # One split suffices; reusing x0 would be useless anyway.
        assert tree.num_leaves() == 2

    def test_xor_fails_shallow_succeeds_deep(self, rng):
        """The paper's Team 8 example: XOR confuses greedy gain."""
        X, y = _make(rng, lambda X: X[:, 0] ^ X[:, 1], n=2000, d=4)
        deep = DecisionTree().fit(X, y)
        assert accuracy(y, deep.predict(X)) == 1.0


class TestPruning:
    def test_pessimistic_error_bounds(self):
        # Zero observed errors still yield a positive pessimistic count.
        assert _pessimistic_errors(100, 0, 0.25) > 0
        # More confidence (smaller cf) -> larger estimate.
        assert _pessimistic_errors(100, 5, 0.01) > _pessimistic_errors(
            100, 5, 0.5
        )
        assert _pessimistic_errors(10, 10, 0.25) == 10.0
        assert _pessimistic_errors(0, 0, 0.25) == 0.0

    def test_pruning_shrinks_noisy_tree(self, rng):
        X = rng.integers(0, 2, size=(600, 10)).astype(np.uint8)
        y = (X[:, 0] & X[:, 1]).astype(np.uint8)
        noise = rng.random(600) < 0.15
        y_noisy = y ^ noise.astype(np.uint8)
        tree = DecisionTree().fit(X, y_noisy)
        before = tree.num_leaves()
        tree.prune(0.25)
        assert tree.num_leaves() < before

    def test_aggressive_cf_prunes_more(self, rng):
        X = rng.integers(0, 2, size=(600, 10)).astype(np.uint8)
        y = ((X[:, 0] | X[:, 1]) ^ (rng.random(600) < 0.2)).astype(np.uint8)
        loose = DecisionTree().fit(X, y)
        tight = DecisionTree().fit(X, y)
        loose.prune(0.5)
        tight.prune(0.001)
        assert tight.num_leaves() <= loose.num_leaves()

    def test_pruned_tree_still_predicts(self, rng):
        X = rng.integers(0, 2, size=(500, 8)).astype(np.uint8)
        y = (X[:, 2] | (X[:, 3] & X[:, 4])).astype(np.uint8)
        tree = DecisionTree().fit(X, y)
        tree.prune(0.25)
        assert accuracy(y, tree.predict(X)) > 0.9


class TestFunctionalDecomposition:
    def test_fallback_triggers_on_low_gain(self, rng):
        """XOR of two features has ~zero single-feature gain at the
        root; the decomposition split must still pick a relevant
        feature (complement-branch test)."""
        X = rng.integers(0, 2, size=(1500, 6)).astype(np.uint8)
        y = (X[:, 4] ^ X[:, 5]).astype(np.uint8)
        plain = DecisionTree(max_depth=2).fit(X, y)
        decomp = DecisionTree(max_depth=2, decomposition_tau=0.05).fit(X, y)
        assert accuracy(y, decomp.predict(X)) >= accuracy(
            y, plain.predict(X)
        )


class TestExport:
    def test_cover_matches_predictions(self, rng):
        X = rng.integers(0, 2, size=(400, 7)).astype(np.uint8)
        y = ((X[:, 0] & X[:, 1]) | (X[:, 5] & ~X[:, 6] & 1)).astype(np.uint8)
        tree = DecisionTree(max_depth=6).fit(X, y)
        cover = tree.to_cover()
        assert np.array_equal(cover.evaluate(X), tree.predict(X))

    def test_cover_requires_fit(self):
        with pytest.raises(RuntimeError):
            DecisionTree().to_cover()

    def test_entropy_vectorized(self):
        vals = entropy(np.array([0.0, 5.0, 10.0]), np.array([10.0] * 3))
        assert vals[0] == pytest.approx(0.0, abs=1e-6)
        assert vals[1] == pytest.approx(1.0)
        assert vals[2] == pytest.approx(0.0, abs=1e-6)
