"""Tests for the docs checker (link integrity + CLI coverage)."""

from pathlib import Path

from repro.devtools.docscheck import (
    check_cli_coverage,
    check_links,
    cli_subcommands,
    iter_doc_files,
    main,
)


def _write(root: Path, rel: str, text: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text, encoding="utf-8")
    return path


class TestLinks:
    def test_good_relative_link_passes(self, tmp_path):
        _write(tmp_path, "docs/other.md", "hi")
        doc = _write(tmp_path, "docs/a.md", "see [other](other.md)")
        assert check_links(doc, tmp_path) == []

    def test_broken_link_reports_path_and_line(self, tmp_path):
        doc = _write(tmp_path, "docs/a.md", "x\n[gone](missing.md)\n")
        problems = check_links(doc, tmp_path)
        assert len(problems) == 1
        assert "docs/a.md:2" in problems[0]
        assert "missing.md" in problems[0]

    def test_external_and_anchor_links_skipped(self, tmp_path):
        doc = _write(
            tmp_path,
            "docs/a.md",
            "[x](https://example.com/y) [y](#anchor) "
            "[z](mailto:a@b.c)",
        )
        assert check_links(doc, tmp_path) == []

    def test_anchor_suffix_on_real_file_passes(self, tmp_path):
        _write(tmp_path, "docs/b.md", "## Section\n")
        doc = _write(tmp_path, "docs/a.md", "[b](b.md#section)")
        assert check_links(doc, tmp_path) == []

    def test_links_escaping_the_root_are_skipped(self, tmp_path):
        # GitHub web-relative badge links point outside the checkout.
        doc = _write(
            tmp_path, "README.md", "[ci](../../actions/workflows/ci.yml)"
        )
        assert check_links(doc, tmp_path) == []


class TestCliCoverage:
    def test_all_subcommands_discovered(self):
        commands = cli_subcommands()
        assert "contest" in commands
        assert "sched" in commands
        assert "lint" in commands

    def test_missing_subcommand_reported(self, tmp_path):
        doc = _write(tmp_path, "README.md", "nothing about the CLI here")
        problems = check_cli_coverage([doc])
        assert any("repro contest" in p for p in problems)

    def test_backticked_or_spaced_mentions_count(self, tmp_path):
        mentions = " ".join(
            f"repro {command}" for command in cli_subcommands()
        )
        doc = _write(tmp_path, "README.md", mentions)
        assert check_cli_coverage([doc]) == []


class TestMain:
    def test_repo_docs_are_clean(self):
        root = Path(__file__).resolve().parent.parent
        assert main(["--root", str(root)]) == 0

    def test_iter_orders_readme_first(self, tmp_path):
        _write(tmp_path, "docs/z.md", "z")
        _write(tmp_path, "docs/a.md", "a")
        _write(tmp_path, "README.md", "r")
        names = [p.name for p in iter_doc_files(tmp_path)]
        assert names == ["README.md", "a.md", "z.md"]

    def test_missing_docs_tree_errors(self, tmp_path, capsys):
        assert main(["--root", str(tmp_path)]) == 1
        assert "no README.md" in capsys.readouterr().err
