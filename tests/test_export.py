"""Contest-format PLA export (`repro.contest.export`).

Round-trip property: an exported train/valid/test triple, re-parsed
from disk, reproduces the sampled datasets exactly — same rows, same
order, same labels.
"""

import numpy as np
import pytest

from repro.contest.export import export_benchmarks, main
from repro.contest.suite import build_suite, make_problem
from repro.ml.dataset import Dataset
from repro.twolevel.pla import read_pla

SPLITS = ("train", "valid", "test")


def _problem(index, samples, seed=0):
    return make_problem(
        build_suite()[index], n_train=samples, n_valid=samples,
        n_test=samples, master_seed=seed,
    )


@pytest.mark.parametrize("index", [30, 74])
def test_export_round_trip(tmp_path, index):
    samples = 40
    written = list(export_benchmarks(tmp_path, indices=[index], samples=samples))
    name = build_suite()[index].name
    assert [p.name for p in written] == [f"{name}.{s}.pla" for s in SPLITS]

    problem = _problem(index, samples)
    for split in SPLITS:
        dataset = getattr(problem, split)
        parsed = Dataset.from_pla(read_pla(tmp_path / f"{name}.{split}.pla"))
        assert np.array_equal(parsed.X, dataset.X), f"{split} inputs differ"
        assert np.array_equal(parsed.y, dataset.y), f"{split} labels differ"


def test_export_honours_master_seed(tmp_path):
    export_benchmarks(tmp_path / "s0", indices=[30], samples=32, master_seed=0)
    export_benchmarks(tmp_path / "s7", indices=[30], samples=32, master_seed=7)
    a = (tmp_path / "s0" / "ex30.train.pla").read_text()
    b = (tmp_path / "s7" / "ex30.train.pla").read_text()
    assert a != b  # different seed, different sample draw
    parsed = Dataset.from_pla(read_pla(tmp_path / "s7" / "ex30.train.pla"))
    expected = _problem(30, 32, seed=7).train
    assert np.array_equal(parsed.X, expected.X)
    assert np.array_equal(parsed.y, expected.y)


def test_export_cli_indices_and_seed(tmp_path, capsys):
    out_dir = tmp_path / "exported"
    main([
        "--out-dir", str(out_dir), "--indices", "0", "74",
        "--samples", "24", "--seed", "5",
    ])
    names = sorted(p.name for p in out_dir.iterdir())
    assert names == sorted(
        f"ex{i:02d}.{s}.pla" for i in (0, 74) for s in SPLITS
    )
    assert "wrote 6 PLA files" in capsys.readouterr().out
    parsed = Dataset.from_pla(read_pla(out_dir / "ex74.test.pla"))
    expected = _problem(74, 24, seed=5).test
    assert np.array_equal(parsed.X, expected.X)
    assert np.array_equal(parsed.y, expected.y)
