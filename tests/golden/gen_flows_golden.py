"""Regenerate ``flows_golden.json`` — the flow-equivalence pin.

The committed JSON was captured from the *pre-redesign* module-level
``run()`` implementations (before the Flow API landed), so the golden
test in ``tests/test_flows_golden.py`` proves the registry/Stage ports
produce byte-identical Solutions.  Only regenerate this file when a
flow's behaviour is changed *deliberately* — doing so re-baselines the
equivalence pin.

Run:  PYTHONPATH=src python tests/golden/gen_flows_golden.py
"""

import hashlib
import json
from pathlib import Path

N_SAMPLES = 200
MASTER_SEED = 0

#: (case id, benchmark index, flow name, portfolio member subset)
CASES = [
    ("ex30:team01", 30, "team01", None),
    ("ex30:team02", 30, "team02", None),
    ("ex30:team03", 30, "team03", None),
    ("ex30:team04", 30, "team04", None),
    ("ex30:team05", 30, "team05", None),
    ("ex30:team06", 30, "team06", None),
    ("ex30:team07", 30, "team07", None),
    ("ex30:team08", 30, "team08", None),
    ("ex30:team09", 30, "team09", None),
    ("ex30:team10", 30, "team10", None),
    # Match-path pins (parity short-circuits team01/team07) and the
    # augmentation path (team10 retrains on train+valid under 70%).
    ("ex74:team01", 74, "team01", None),
    ("ex74:team07", 74, "team07", None),
    ("ex74:team10", 74, "team10", None),
    # Portfolio: selection + method/metadata propagation.
    ("ex30:portfolio", 30, "portfolio", ["team02", "team10"]),
    ("ex74:portfolio", 74, "portfolio", ["team01", "team07"]),
]


def solution_entry(solution):
    from repro.aig.aiger import dumps_aag
    from repro.runner.task import _json_safe

    aag = dumps_aag(solution.aig.extract_cone())
    return {
        "method": solution.method,
        "metadata": _json_safe(solution.metadata),
        "num_ands": solution.aig.count_used_ands(),
        "aag_sha256": hashlib.sha256(aag.encode("utf-8")).hexdigest(),
    }


def run_case(benchmark, flow_name, members):
    from repro.contest import build_suite, make_problem

    problem = make_problem(
        build_suite()[benchmark], n_train=N_SAMPLES, n_valid=N_SAMPLES,
        n_test=N_SAMPLES, master_seed=MASTER_SEED,
    )
    if flow_name == "portfolio":
        from repro.flows import portfolio

        solution = portfolio.run(
            problem, effort="small", master_seed=MASTER_SEED, flows=members
        )
    else:
        from repro.flows import ALL_FLOWS

        solution = ALL_FLOWS[flow_name](
            problem, effort="small", master_seed=MASTER_SEED
        )
    return solution_entry(solution)


def main():
    golden = {
        "n_samples": N_SAMPLES,
        "master_seed": MASTER_SEED,
        "cases": {},
    }
    for case_id, benchmark, flow_name, members in CASES:
        print(f"running {case_id} ...", flush=True)
        entry = run_case(benchmark, flow_name, members)
        entry["benchmark"] = benchmark
        entry["flow"] = flow_name
        if members is not None:
            entry["members"] = members
        golden["cases"][case_id] = entry
    out = Path(__file__).parent / "flows_golden.json"
    out.write_text(json.dumps(golden, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    print(f"wrote {out} ({len(golden['cases'])} cases)")


if __name__ == "__main__":
    main()
