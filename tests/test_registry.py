"""The problem registry: golden byte-identity, cache bounds, selectors.

The registry replaced the hardcoded ``build_suite()`` tuple; these
tests pin the three promises of that refactor:

1. **Byte identity** — all 100 paper benchmarks sample exactly the
   bytes the pre-registry code sampled (golden fingerprints captured
   from the old implementation), through both the ``build_suite()``
   shim and the registry-direct path.
2. **Bounded laziness** — describing specs builds nothing; heavy
   generator state (balanced cones, image models) lives in one
   explicit, size-bounded, clearable per-process cache.
3. **Uniform addressing** — names, indices, family spec strings,
   globs and manifest files all resolve through one selector with
   helpful near-match errors.
"""

import json
import multiprocessing
from pathlib import Path

import pytest

from repro.contest import (
    DEFAULT_REGISTRY,
    MaterialCache,
    ProblemSpec,
    build_suite,
    clear_cache,
)
from repro.contest.registry import (
    GeneratorFamily,
    ProblemRegistry,
    canonical_spec_string,
    parse_spec_string,
)
from repro.runner import dataset_fingerprint

GOLDEN = Path(__file__).parent / "golden" / "problem_fingerprints.json"


def _registry_fingerprint(name, n_train, n_valid, n_test, master_seed):
    """Fingerprint via the registry-direct path (no shim)."""
    import hashlib

    import numpy as np

    problem = DEFAULT_REGISTRY.problem(
        name, n_train=n_train, n_valid=n_valid, n_test=n_test,
        master_seed=master_seed,
    )
    digest = hashlib.sha256()
    for ds in (problem.train, problem.valid, problem.test):
        digest.update(np.ascontiguousarray(ds.X).tobytes())
        digest.update(np.ascontiguousarray(ds.y).tobytes())
    return digest.hexdigest()


class TestGoldenFingerprints:
    """The refactor's anchor: captured from the pre-registry code."""

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN.read_text())

    def test_all_100_paper_benchmarks_byte_identical(self, golden):
        g = golden["fingerprints"]
        mismatched = []
        for name, want in g["values"].items():
            idx = int(name[2:])
            got = dataset_fingerprint(
                idx, g["n_train"], g["n_valid"], g["n_test"],
                master_seed=g["master_seed"],
            )
            if got != want:
                mismatched.append(name)
        assert not mismatched, (
            f"{len(mismatched)} benchmark(s) drifted from the "
            f"pre-registry bytes: {mismatched}"
        )

    def test_alt_sizes_and_seed_byte_identical(self, golden):
        g = golden["alt"]
        for name, want in g["values"].items():
            idx = int(name[2:])
            assert dataset_fingerprint(
                idx, g["n_train"], g["n_valid"], g["n_test"],
                master_seed=g["master_seed"],
            ) == want, name

    def test_registry_direct_path_matches_shim(self, golden):
        g = golden["alt"]
        for name, want in g["values"].items():
            assert _registry_fingerprint(
                name, g["n_train"], g["n_valid"], g["n_test"],
                g["master_seed"],
            ) == want, name

    def test_string_and_index_tasks_sample_identically(self, golden):
        g = golden["alt"]
        name = next(iter(g["values"]))
        assert dataset_fingerprint(
            name, g["n_train"], g["n_valid"], g["n_test"],
            master_seed=g["master_seed"],
        ) == g["values"][name]


class TestSuiteShim:
    def test_shim_exposes_the_paper_grid(self):
        suite = build_suite()
        assert len(suite) == 100
        assert [s.index for s in suite] == list(range(100))
        assert suite[74].name == "ex74"
        assert suite[74].n_inputs == 16

    def test_shim_slots_match_family_kind(self):
        suite = build_suite()
        assert suite[74].label_fn is not None and suite[74].sampler is None
        assert suite[80].sampler is not None and suite[80].label_fn is None

    def test_building_the_suite_materializes_nothing(self):
        clear_cache()
        build_suite.cache_clear()
        build_suite()
        assert len(DEFAULT_REGISTRY.cache) == 0


class TestMaterialCache:
    """Satellite 1: explicit, clearable, size-bounded registry cache."""

    def test_bounded_with_lru_eviction(self):
        cache = MaterialCache(maxsize=3)
        for i in range(5):
            cache.get(("k", i), lambda i=i: i * 10)
        assert len(cache) == 3
        stats = cache.stats()
        assert stats["builds"] == 5 and stats["evictions"] == 2
        # Oldest entries went first; the newest survive.
        assert ("k", 4) in cache.keys() and ("k", 0) not in cache.keys()

    def test_hit_refreshes_recency(self):
        cache = MaterialCache(maxsize=2)
        cache.get(("a",), lambda: 1)
        cache.get(("b",), lambda: 2)
        cache.get(("a",), lambda: 1)  # refresh a
        cache.get(("c",), lambda: 3)  # evicts b, not a
        assert ("a",) in cache.keys() and ("b",) not in cache.keys()

    def test_clear(self):
        cache = MaterialCache(maxsize=4)
        cache.get(("x",), lambda: object())
        cache.clear()
        assert len(cache) == 0

    def test_registry_cache_is_bounded_over_full_sweep(self):
        """Materializing far more specs than the cache holds must not
        grow the cache past its bound (the old lru_cache'd suite pinned
        everything forever)."""
        clear_cache()
        maxsize = DEFAULT_REGISTRY.cache.maxsize
        # Cheap deterministic specs, more than the cache can hold.
        for width in range(2, maxsize + 10):
            spec = DEFAULT_REGISTRY.get(f"comparator:width={width}")
            DEFAULT_REGISTRY.materialize(spec)
        assert len(DEFAULT_REGISTRY.cache) <= maxsize
        assert DEFAULT_REGISTRY.cache.stats()["evictions"] > 0
        clear_cache()
        assert len(DEFAULT_REGISTRY.cache) == 0

    def test_repeated_materialization_hits_cache(self):
        clear_cache()
        spec = DEFAULT_REGISTRY.get("ex74")
        first = DEFAULT_REGISTRY.materialize(spec)
        before = DEFAULT_REGISTRY.cache.stats()["builds"]
        second = DEFAULT_REGISTRY.materialize(spec)
        assert DEFAULT_REGISTRY.cache.stats()["builds"] == before
        assert first is second


class TestSelectors:
    def test_names_indices_and_specs(self):
        specs = DEFAULT_REGISTRY.select(["ex74", 75, "adder:width=4"])
        assert [s.name for s in specs] == \
            ["ex74", "ex75", "adder:bit=4,width=4"]
        passthrough = DEFAULT_REGISTRY.select([specs[2]])
        assert passthrough == [specs[2]]

    def test_globs_over_names_families_and_categories(self):
        adders = DEFAULT_REGISTRY.select(["adder*"])
        assert len(adders) == 10  # ex00..ex09
        ex8x = DEFAULT_REGISTRY.select(["ex8?"])
        assert [s.name for s in ex8x] == [f"ex8{i}" for i in range(10)]

    def test_comma_joined_patterns(self):
        specs = DEFAULT_REGISTRY.select(["adder*,ex8?"])
        assert len(specs) == 20

    def test_selection_deduplicates_preserving_order(self):
        specs = DEFAULT_REGISTRY.select(["ex74", "parity*", 74])
        assert [s.name for s in specs] == ["ex74"]

    def test_manifest_file(self, tmp_path):
        manifest = tmp_path / "suite.txt"
        manifest.write_text(
            "# tier-1 mini suite\n"
            "ex74\n"
            "adder:width=4\n"
            "\n"
            "ex8?\n"
        )
        specs = DEFAULT_REGISTRY.select([f"@{manifest}"])
        assert [s.name for s in specs[:2]] == \
            ["ex74", "adder:bit=4,width=4"]
        assert len(specs) == 12

    def test_near_match_error(self):
        with pytest.raises(KeyError) as exc:
            DEFAULT_REGISTRY.get("ex9a")
        message = str(exc.value)
        assert "ex9" in message and "did you mean" in message

    def test_unknown_family_lists_families(self):
        with pytest.raises(KeyError, match="families"):
            DEFAULT_REGISTRY.get("addr:width=4")

    def test_bad_index_raises_index_error(self):
        with pytest.raises(IndexError, match="out of range"):
            DEFAULT_REGISTRY.by_index(100)


class TestFamilies:
    def test_canonical_names_are_spelling_invariant(self):
        a = DEFAULT_REGISTRY.get("adder:width=4,bit=4")
        b = DEFAULT_REGISTRY.get("adder:bit=4,width=4")
        assert a == b and a.name == "adder:bit=4,width=4"

    def test_required_parameter_enforced(self):
        with pytest.raises(ValueError, match="requires parameter"):
            DEFAULT_REGISTRY.get("adder")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="no parameter"):
            DEFAULT_REGISTRY.get("adder:width=4,depth=2")

    def test_bad_parameter_type_rejected(self):
        with pytest.raises(ValueError, match="not a valid int"):
            DEFAULT_REGISTRY.get("adder:width=four")

    def test_paper_specs_carry_indices_generated_do_not(self):
        assert DEFAULT_REGISTRY.get("ex00").index == 0
        assert DEFAULT_REGISTRY.get("adder:width=4").index is None

    def test_spec_string_round_trips(self):
        spec = DEFAULT_REGISTRY.get("cone:inputs=20,seed=3")
        head, overrides = parse_spec_string(spec.name)
        assert head == "cone"
        assert DEFAULT_REGISTRY.families[head].spec(**overrides) == spec
        assert canonical_spec_string(
            spec.family, dict(spec.params)) == spec.name

    def test_perturbed_differs_from_base(self):
        import numpy as np

        base = DEFAULT_REGISTRY.materialize(DEFAULT_REGISTRY.get("ex74"))
        pert = DEFAULT_REGISTRY.materialize(
            DEFAULT_REGISTRY.get("perturbed:base=ex74"))
        rng = np.random.default_rng(0)
        X = rng.integers(0, 2, size=(512, 16)).astype(np.uint8)
        y0, y1 = base.label_fn(X), pert.label_fn(X)
        assert y0.shape == y1.shape
        assert 0 < int((y0 != y1).sum()) < 512  # noisy, not scrambled

    def test_perturbed_rejects_generative_base(self):
        with pytest.raises(ValueError, match="deterministic"):
            DEFAULT_REGISTRY.materialize(
                DEFAULT_REGISTRY.get("perturbed:base=ex80"))

    def test_composed_xors_two_benchmarks(self):
        import numpy as np

        spec = DEFAULT_REGISTRY.get("composed:a=ex74,b=t481")
        assert spec.n_inputs == 16
        mat = DEFAULT_REGISTRY.materialize(spec)
        a = DEFAULT_REGISTRY.materialize(DEFAULT_REGISTRY.get("ex74"))
        b = DEFAULT_REGISTRY.materialize(DEFAULT_REGISTRY.get("t481"))
        rng = np.random.default_rng(1)
        X = rng.integers(0, 2, size=(256, 16)).astype(np.uint8)
        assert np.array_equal(
            mat.label_fn(X), a.label_fn(X) ^ b.label_fn(X[:, :16]))

    def test_swept_cone_density_changes_function(self):
        import numpy as np

        lo = DEFAULT_REGISTRY.materialize(
            DEFAULT_REGISTRY.get("cone:inputs=16,density=1"))
        hi = DEFAULT_REGISTRY.materialize(
            DEFAULT_REGISTRY.get("cone:inputs=16,density=8"))
        rng = np.random.default_rng(2)
        X = rng.integers(0, 2, size=(512, 16)).astype(np.uint8)
        assert not np.array_equal(lo.label_fn(X), hi.label_fn(X))


class TestGeneratedDeterminism:
    """Generated specs get the paper benchmarks' reproducibility."""

    @pytest.mark.parametrize(
        "name", ["adder:width=6", "cone:inputs=18,seed=4", "parity:inputs=10"]
    )
    def test_same_spec_same_bytes_in_process(self, name):
        assert _registry_fingerprint(name, 40, 24, 16, 3) == \
            _registry_fingerprint(name, 40, 24, 16, 3)

    def test_spawned_worker_sees_identical_data(self):
        name = "cone:inputs=18,seed=4"
        parent = dataset_fingerprint(name, 40, 24, 16, master_seed=3)
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(1) as pool:
            child = pool.apply(dataset_fingerprint, (name, 40, 24, 16, 3))
        assert child == parent

    def test_generated_stream_independent_of_paper_stream(self):
        """A generated spec with the same parameters as a paper
        benchmark is a *different* named stream (name-derived seed),
        not an alias — ex74 keeps its historical index-derived bytes."""
        paper = dataset_fingerprint(74, 40, 24, 16, master_seed=0)
        generated = dataset_fingerprint(
            "parity:inputs=16", 40, 24, 16, master_seed=0)
        assert paper != generated


class TestCustomRegistry:
    def test_register_family_and_named_spec(self):
        reg = ProblemRegistry()
        family = GeneratorFamily(
            name="const",
            category="trivial",
            description="constant zero",
            params={"inputs": (int, 4)},
            n_inputs=lambda p: p["inputs"],
            build=lambda p, cache: __import__(
                "repro.contest.registry", fromlist=["Materialized"]
            ).Materialized(label_fn=lambda X: X[:, 0] * 0),
        )
        reg.register_family(family)
        spec = reg.get("const:inputs=3")
        assert spec.n_inputs == 3
        reg.register(family.spec(name="zero3", inputs=3))
        assert reg.get("zero3").family == "const"
        assert "zero3" in reg.names()

    def test_duplicate_name_rejected(self):
        reg = ProblemRegistry()
        spec = DEFAULT_REGISTRY.get("ex74")
        reg.families["parity"] = DEFAULT_REGISTRY.families["parity"]
        reg.register(spec)
        with pytest.raises(ValueError, match="already registered"):
            reg.register(spec)
