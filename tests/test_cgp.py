"""Cartesian genetic programming."""

import numpy as np

from repro.cgp import (
    XAIG_FUNCTIONS,
    CGPEvolver,
    CGPGenome,
    evolve_from_aig,
)
from tests.conftest import random_aig


class TestGenome:
    def test_random_genome_valid_references(self, rng):
        g = CGPGenome.random(5, 30, rng)
        limits = 5 + np.arange(30)
        assert (g.in0 < limits).all()
        assert (g.in1 < limits).all()
        assert 0 <= g.output < 35

    def test_evaluate_matches_aig_roundtrip(self, rng):
        g = CGPGenome.random(6, 25, rng, XAIG_FUNCTIONS)
        X = rng.integers(0, 2, size=(300, 6)).astype(np.uint8)
        assert np.array_equal(
            g.evaluate(X), g.to_aig().simulate(X)[:, 0]
        )

    def test_from_aig_preserves_function(self, rng):
        for seed in range(5):
            aig = random_aig(5, 20, seed=seed)
            g = CGPGenome.from_aig(aig, rng=rng)
            X = rng.integers(0, 2, size=(200, 5)).astype(np.uint8)
            assert np.array_equal(g.evaluate(X), aig.simulate(X)[:, 0])

    def test_from_aig_constant_output(self, rng):
        from repro.aig.aig import AIG

        aig = AIG(3)
        aig.set_output(1)
        g = CGPGenome.from_aig(aig, rng=rng)
        X = rng.integers(0, 2, size=(50, 3)).astype(np.uint8)
        assert g.evaluate(X).tolist() == [1] * 50

    def test_mutation_rate_zero_is_identity(self, rng):
        g = CGPGenome.random(4, 15, rng)
        child = g.mutate(0.0, rng)
        assert np.array_equal(child.funcs, g.funcs)
        assert child.output == g.output

    def test_mutation_preserves_feedforward(self, rng):
        g = CGPGenome.random(4, 20, rng)
        for _ in range(20):
            g = g.mutate(0.3, rng)
        limits = 4 + np.arange(20)
        assert (g.in0 < limits).all()
        assert (g.in1 < limits).all()

    def test_phenotype_size_bounded(self, rng):
        g = CGPGenome.random(4, 50, rng)
        assert 0 <= g.phenotype_size() <= 50


class TestEvolution:
    def test_learns_and2(self, rng):
        X = rng.integers(0, 2, size=(400, 4)).astype(np.uint8)
        y = (X[:, 0] & X[:, 1]).astype(np.uint8)
        evolver = CGPEvolver(n_nodes=20, rng=rng)
        genome, fit = evolver.run(X, y, generations=400)
        assert fit == 1.0

    def test_xaig_learns_xor_faster(self, rng):
        X = rng.integers(0, 2, size=(400, 4)).astype(np.uint8)
        y = (X[:, 0] ^ X[:, 1]).astype(np.uint8)
        evolver = CGPEvolver(
            n_nodes=20, function_set=XAIG_FUNCTIONS,
            rng=np.random.default_rng(1),
        )
        genome, fit = evolver.run(X, y, generations=300)
        assert fit == 1.0

    def test_bootstrap_does_not_regress(self, rng):
        """Evolving from a perfect seed must keep perfect fitness
        (neutral drift accepts only >= fitness)."""
        from repro.aig.aig import AIG

        aig = AIG(4)
        aig.set_output(aig.add_and(aig.input_lit(0), aig.input_lit(1)))
        X = rng.integers(0, 2, size=(300, 4)).astype(np.uint8)
        y = (X[:, 0] & X[:, 1]).astype(np.uint8)
        genome, fit = evolve_from_aig(aig, X, y, generations=100,
                                      rng=rng)
        assert fit == 1.0

    def test_minibatch_mode_runs(self, rng):
        X = rng.integers(0, 2, size=(600, 5)).astype(np.uint8)
        y = X[:, 0]
        evolver = CGPEvolver(
            n_nodes=15, batch_size=128, batch_generations=50, rng=rng
        )
        genome, fit = evolver.run(X, y, generations=200)
        assert fit > 0.9

    def test_log_recorded(self, rng):
        X = rng.integers(0, 2, size=(100, 3)).astype(np.uint8)
        evolver = CGPEvolver(n_nodes=10, rng=rng)
        evolver.run(X, X[:, 0], generations=50)
        assert len(evolver.log.fitness) == 50
        assert len(evolver.log.mutation_rate) == 50

    def test_mutation_rate_adapts(self, rng):
        X = rng.integers(0, 2, size=(100, 3)).astype(np.uint8)
        evolver = CGPEvolver(n_nodes=10, mutation_rate=0.1, rng=rng)
        evolver.run(X, X[:, 0] & X[:, 1], generations=100)
        rates = evolver.log.mutation_rate
        assert min(rates) >= 1e-4
        assert max(rates) <= 0.5
        assert len(set(np.round(rates, 6))) > 1
