"""Unit tests for the flow plumbing in repro.flows.common."""

import numpy as np
import pytest

from repro.aig.aig import AIG, CONST0, CONST1
from repro.aig.build import multiplier
from repro.flows.common import (
    aig_accuracy,
    constant_solution,
    finalize_aig,
    flow_rng,
    pick_best,
)
from repro.ml.dataset import Dataset


def _const_aig(n_inputs, value):
    aig = AIG(n_inputs)
    aig.set_output(CONST1 if value else CONST0)
    return aig


def _passthrough_aig(n_inputs, column):
    aig = AIG(n_inputs)
    aig.set_output(aig.input_lit(column))
    return aig


@pytest.fixture
def data(rng):
    X = rng.integers(0, 2, size=(100, 4)).astype(np.uint8)
    return Dataset(X, X[:, 1])


class TestPickBest:
    def test_prefers_accuracy(self, data):
        best = pick_best(
            [("const0", _const_aig(4, 0)), ("exact", _passthrough_aig(4, 1))],
            data,
        )
        assert best[0] == "exact"
        assert best[2] == 1.0

    def test_ties_break_by_size(self, data):
        small = _passthrough_aig(4, 1)
        # Same function built with three *used* (reachable) nodes:
        # (i1 & i0) | (i1 & ~i0) == i1.
        big = AIG(4)
        i0, i1 = big.input_lit(0), big.input_lit(1)
        big.set_output(big.add_or(big.add_and(i1, i0), big.add_and(i1, i0 ^ 1)))
        assert big.count_used_ands() == 3
        best = pick_best([("big", big), ("small", small)], data)
        assert best[0] == "small"

    def test_dead_nodes_do_not_penalize_ranking(self, data):
        # Satellite regression: size comparison is over *used* nodes.
        # A deliberately dirty graph (dead logic never cone-extracted)
        # computes the same function with the same used count, so it
        # must not lose the tie-break to the clean copy.
        clean = _passthrough_aig(4, 1)
        dirty = AIG(4)
        for col in (0, 2, 3):  # dead logic, unreachable from the output
            dirty.add_and(dirty.input_lit(col), dirty.input_lit(1) ^ 1)
        dirty.set_output(dirty.input_lit(1))
        assert dirty.num_ands == 3 and dirty.count_used_ands() == 0
        best = pick_best([("dirty", dirty), ("clean", clean)], data)
        # Full tie on (accuracy, used size): the first candidate wins,
        # instead of the dirty one being demoted by its dead nodes.
        assert best[0] == "dirty"

    def test_dirty_graph_not_rejected_as_over_cap(self, data):
        # Satellite regression: the cap check is on used nodes, so a
        # perfect candidate carrying dead logic beyond max_nodes is
        # still legal and must beat a worse clean candidate.
        dirty = AIG(4)
        for col in (0, 2, 3):
            dirty.add_and(dirty.input_lit(col), dirty.input_lit(1) ^ 1)
        dirty.set_output(dirty.input_lit(1))
        best = pick_best(
            [("const", _const_aig(4, 0)), ("dirty", dirty)],
            data,
            max_nodes=2,  # below the raw count (3), above the used count (0)
        )
        assert best[0] == "dirty"
        assert best[2] == 1.0

    def test_oversize_used_only_as_fallback(self, data):
        oversize = _passthrough_aig(4, 1)
        best = pick_best(
            [("huge", oversize), ("const", _const_aig(4, 0))],
            data,
            max_nodes=-1,  # everything is oversize
        )
        assert best[0] == "huge"  # fallback keeps the best anyway

    def test_oversize_ties_break_by_size(self, data):
        # Regression: the fallback branch must apply the same
        # "ties broken by smaller circuit" rule as the legal branch
        # (on used nodes, so the extra logic must be reachable).
        small = _passthrough_aig(4, 1)
        big = AIG(4)
        i0, i1 = big.input_lit(0), big.input_lit(1)
        big.set_output(big.add_or(big.add_and(i1, i0), big.add_and(i1, i0 ^ 1)))
        for order in (
            [("big", big), ("small", small)],
            [("small", small), ("big", big)],
        ):
            best = pick_best(order, data, max_nodes=-1)
            assert best[0] == "small"

    def test_empty_candidates(self, data):
        assert pick_best([], data) is None


def _redundant_aig():
    """(i1 & i0) | (i1 & ~i0) == i1: 3 AND nodes that ``compress``
    collapses to 0 but ``balance`` (pure reassociation) keeps."""
    aig = AIG(4)
    i0, i1 = aig.input_lit(0), aig.input_lit(1)
    aig.set_output(aig.add_or(aig.add_and(i1, i0), aig.add_and(i1, i0 ^ 1)))
    return aig


class TestFinalizeOptimizeLimit:
    """Satellite: the optimize_limit boundary, the over-cap
    approximation path re-entering compress, and optimize=False."""

    def test_at_limit_runs_compress(self, rng):
        # num_ands == optimize_limit is inside the compress branch.
        out = finalize_aig(_redundant_aig(), rng, optimize_limit=3)
        assert out.num_ands == 0
        assert out.truth_tables() == _redundant_aig().truth_tables()

    def test_above_limit_balance_only(self, rng):
        # One over the limit: balance cannot remove the redundancy.
        out = finalize_aig(_redundant_aig(), rng, optimize_limit=2)
        assert out.num_ands == 3
        assert out.truth_tables() == _redundant_aig().truth_tables()

    def test_optimize_false_skips_both_passes(self, rng):
        out = finalize_aig(_redundant_aig(), rng, optimize=False)
        assert out.num_ands == 3
        assert out.truth_tables() == _redundant_aig().truth_tables()

    def _multiplier_aig(self):
        aig = AIG(12)
        lits = aig.input_lits()
        for bit in multiplier(aig, lits[:6], lits[6:]):
            aig.set_output(bit)
        return aig.extract_cone()

    def test_over_cap_reenters_compress(self):
        """The post-approximation result re-enters compress when it
        fits under optimize_limit; the pipeline is exactly
        compress -> approximate -> compress."""
        from repro.aig.approx import approximate_to_size
        from repro.aig.optimize import compress

        max_nodes = 60
        got = finalize_aig(
            self._multiplier_aig(), np.random.default_rng(7),
            max_nodes=max_nodes, optimize_limit=10**9,
        )
        manual = compress(self._multiplier_aig())
        assert manual.num_ands > max_nodes  # the approx path is taken
        manual = approximate_to_size(
            manual, max_ands=max_nodes, rng=np.random.default_rng(7)
        )
        manual = compress(manual)
        assert got.num_ands == manual.num_ands <= max_nodes

    def test_over_cap_without_compress_reentry_still_capped(self):
        # optimize_limit below the approximated size: the re-entry is
        # skipped but the cap still holds.
        got = finalize_aig(
            self._multiplier_aig(), np.random.default_rng(7),
            max_nodes=60, optimize_limit=-1,
        )
        assert got.num_ands <= 60


class TestFinalize:
    def test_respects_cap_via_approximation(self, rng):
        aig = AIG(12)
        lits = aig.input_lits()
        for bit in multiplier(aig, lits[:6], lits[6:]):
            aig.set_output(bit)
        out = finalize_aig(aig.extract_cone(), rng, max_nodes=60,
                          optimize=False)
        assert out.num_ands <= 60

    def test_keeps_small_circuits_functional(self, rng):
        aig = _passthrough_aig(4, 2)
        out = finalize_aig(aig, rng)
        assert out.truth_tables() == aig.truth_tables()


class TestPortfolioFallback:
    def test_empty_flow_list_returns_constant(self, small_problem):
        # Regression: used to raise "cannot unpack non-sequence
        # NoneType" because pick_best returns None for no candidates.
        from repro.contest.problem import MAX_AND_NODES
        from repro.flows import portfolio

        solution = portfolio.run(small_problem, flows=[])
        assert solution.is_legal(MAX_AND_NODES)
        assert solution.aig.num_ands == 0
        assert solution.method.endswith("+const")
        assert solution.metadata["selected_flow"] is None
        assert 0.0 <= solution.metadata["valid_accuracy"] <= 1.0


class TestHelpers:
    def test_constant_solution_majority(self, small_problem):
        solution = constant_solution(small_problem, "x")
        # The constant is the train+valid majority label; its test
        # accuracy is exactly that label's test frequency.
        merged = small_problem.merged_train_valid()
        label = 1 if merged.onset_fraction() > 0.5 else 0
        frac = small_problem.test.onset_fraction()
        expected = frac if label == 1 else 1 - frac
        acc = aig_accuracy(solution.aig, small_problem.test)
        assert acc == pytest.approx(expected, abs=1e-9)

    def test_flow_rng_streams_differ(self, small_problem):
        a = flow_rng("team01", small_problem, 0)
        b = flow_rng("team02", small_problem, 0)
        assert a.integers(0, 2**31) != b.integers(0, 2**31)

    def test_flow_rng_reproducible(self, small_problem):
        a = flow_rng("team01", small_problem, 0)
        b = flow_rng("team01", small_problem, 0)
        assert a.integers(0, 2**31) == b.integers(0, 2**31)
