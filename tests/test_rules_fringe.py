"""PART rule lists and fringe feature extraction."""

import numpy as np
import pytest

from repro.ml.fringe import CompositeFeature, FringeDT
from repro.ml.metrics import accuracy
from repro.ml.rules import PartRuleLearner, Rule, RuleList


class TestRules:
    def test_rule_matching(self):
        rule = Rule(literals=((0, 1), (2, 0)), label=1)
        X = np.array([[1, 0, 0], [1, 0, 1], [0, 0, 0]], dtype=np.uint8)
        assert rule.matches(X).tolist() == [True, False, False]

    def test_first_match_wins(self):
        rules = RuleList(
            [Rule(((0, 1),), 1), Rule(((1, 1),), 0)], default=1, n_inputs=2
        )
        X = np.array([[1, 1], [0, 1], [0, 0]], dtype=np.uint8)
        assert rules.predict(X).tolist() == [1, 0, 1]

    def test_learns_simple_function(self, rng):
        X = rng.integers(0, 2, size=(800, 8)).astype(np.uint8)
        y = ((X[:, 0] & X[:, 1]) | X[:, 5]).astype(np.uint8)
        rules = PartRuleLearner().fit(X, y)
        assert accuracy(y, rules.predict(X)) == 1.0
        assert len(rules) <= 6

    def test_generalizes(self, rng):
        X = rng.integers(0, 2, size=(1200, 10)).astype(np.uint8)
        y = ((X[:, 2] | X[:, 3]) & X[:, 7]).astype(np.uint8)
        rules = PartRuleLearner().fit(X[:800], y[:800])
        assert accuracy(y[800:], rules.predict(X[800:])) > 0.95

    def test_pure_data_yields_default_only(self):
        X = np.zeros((50, 4), dtype=np.uint8)
        y = np.ones(50, dtype=np.uint8)
        rules = PartRuleLearner().fit(X, y)
        assert len(rules) == 0
        assert rules.predict(X).tolist() == [1] * 50

    def test_max_rules_cap(self, rng):
        X = rng.integers(0, 2, size=(500, 12)).astype(np.uint8)
        y = rng.integers(0, 2, size=500).astype(np.uint8)  # pure noise
        rules = PartRuleLearner(max_rules=5).fit(X, y)
        assert len(rules) <= 5


class TestComposite:
    @pytest.mark.parametrize("op,expected", [
        ("and", [0, 0, 0, 1]),
        ("or", [0, 1, 1, 1]),
        ("xor", [0, 1, 1, 0]),
        ("xnor", [1, 0, 0, 1]),
        ("nand", [1, 1, 1, 0]),
        ("nor", [1, 0, 0, 0]),
        ("and_na", [0, 0, 1, 0]),
        ("and_nb", [0, 1, 0, 0]),
        ("or_na", [1, 0, 1, 1]),
        ("or_nb", [1, 1, 0, 1]),
        ("not_a", [1, 0, 1, 0]),
        ("not_b", [1, 1, 0, 0]),
    ])
    def test_ops(self, op, expected):
        a = np.array([0, 1, 0, 1], dtype=np.uint8)
        b = np.array([0, 0, 1, 1], dtype=np.uint8)
        feat = CompositeFeature(0, 1, op)
        assert feat.evaluate(a, b).tolist() == expected

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            CompositeFeature(0, 1, "imp").evaluate(
                np.zeros(2, np.uint8), np.zeros(2, np.uint8)
            )


class TestFringeDT:
    def test_xor_recovery(self, rng):
        """The motivating case: plain shallow DTs fail XOR, fringe
        features recover it (Team 3's Fr-DT result)."""
        X = rng.integers(0, 2, size=(1500, 8)).astype(np.uint8)
        y = (X[:, 0] ^ X[:, 1]).astype(np.uint8)
        Xt = rng.integers(0, 2, size=(500, 8)).astype(np.uint8)
        yt = (Xt[:, 0] ^ Xt[:, 1]).astype(np.uint8)
        model = FringeDT(max_depth=6).fit(X, y)
        assert accuracy(yt, model.predict(Xt)) == 1.0
        assert len(model.features) > 0

    def test_nested_composites_allowed(self, rng):
        X = rng.integers(0, 2, size=(2000, 6)).astype(np.uint8)
        y = (X[:, 0] ^ X[:, 1] ^ X[:, 2]).astype(np.uint8)
        model = FringeDT(max_depth=8, max_iterations=8).fit(X, y)
        assert accuracy(y, model.predict(X)) > 0.95

    def test_feature_cap(self, rng):
        X = rng.integers(0, 2, size=(500, 10)).astype(np.uint8)
        y = rng.integers(0, 2, size=500).astype(np.uint8)
        model = FringeDT(max_features=8).fit(X, y)
        assert len(model.features) <= 8

    def test_predict_requires_fit(self):
        with pytest.raises(RuntimeError):
            FringeDT().predict(np.zeros((1, 3), dtype=np.uint8))


class TestFullFringePatterns:
    def test_or_pattern_discovered(self, rng):
        """f = (x0|x1) & (x2|x3): a full fringe subtree with a 1-leaf
        sibling encodes an OR composite — the shape only the complete
        12-pattern extraction catches."""
        X = rng.integers(0, 2, size=(3000, 6)).astype(np.uint8)
        y = ((X[:, 0] | X[:, 1]) & (X[:, 2] | X[:, 3])).astype(np.uint8)
        model = FringeDT(max_depth=6, max_iterations=6).fit(X, y)
        ops = {f.op for f in model.features}
        assert ops & {"or", "or_na", "or_nb", "nand", "nor",
                      "and", "and_na", "and_nb"}
        assert accuracy(y, model.predict(X)) == 1.0

    def test_full_pattern_tt_mapping(self):
        from repro.ml.fringe import _full_pattern_op

        # parent splits a; a=1 branch splits b into leaves (0,1);
        # a=0 branch is constant 1 -> f = !a | (a & b) = !a | b.
        assert _full_pattern_op(1, 1, 0, 1) == "or_na"
        # a=0 branch splits b into (0,1); a=1 constant 1 -> a | b.
        assert _full_pattern_op(0, 1, 0, 1) == "or"
        # a=1 branch (0,1), a=0 constant 0 -> a & b.
        assert _full_pattern_op(1, 0, 0, 1) == "and"
        # Constant/single-var tables yield no composite.
        assert _full_pattern_op(1, 1, 1, 1) is None
