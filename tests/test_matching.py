"""Standard function matching (Teams 1/7)."""

import numpy as np
import pytest

from repro.synth.matching import (
    match_adder_bit,
    match_comparator,
    match_multiplier_bit,
    match_standard_function,
    match_symmetric,
    match_wordwise,
)
from repro.utils.bitops import rows_to_ints


def _words(rng, k, n=600):
    X = rng.integers(0, 2, size=(n, 2 * k)).astype(np.uint8)
    return X, rows_to_ints(X[:, :k]), rows_to_ints(X[:, k:])


class TestAdder:
    def test_msb_recognized_and_exact(self, rng):
        k = 12
        X, a, b = _words(rng, k)
        y = np.array([((x + z) >> k) & 1 for x, z in zip(a, b, strict=True)], np.uint8)
        m = match_adder_bit(X, y)
        assert m is not None
        assert "adder" in m.name
        assert np.array_equal(m.aig.simulate(X)[:, 0], y)

    def test_second_msb(self, rng):
        k = 8
        X, a, b = _words(rng, k)
        y = np.array(
            [((x + z) >> (k - 1)) & 1 for x, z in zip(a, b, strict=True)], np.uint8
        )
        m = match_adder_bit(X, y)
        assert m is not None and f"bit{k-1}" in m.name

    def test_rejects_odd_width(self, rng):
        X = rng.integers(0, 2, size=(100, 7)).astype(np.uint8)
        assert match_adder_bit(X, X[:, 0]) is None

    def test_rejects_non_adder(self, rng):
        k = 8
        X, _, _ = _words(rng, k)
        y = rng.integers(0, 2, size=X.shape[0]).astype(np.uint8)
        assert match_adder_bit(X, y) is None


class TestComparator:
    @pytest.mark.parametrize("op,fn", [
        ("gt", lambda a, b: a > b),
        ("lt", lambda a, b: a < b),
        ("ge", lambda a, b: a >= b),
        ("le", lambda a, b: a <= b),
    ])
    def test_all_predicates(self, rng, op, fn):
        k = 10
        X, a, b = _words(rng, k)
        y = np.array([int(fn(x, z)) for x, z in zip(a, b, strict=True)], np.uint8)
        m = match_comparator(X, y)
        assert m is not None
        assert np.array_equal(m.aig.simulate(X)[:, 0], y)

    def test_equality(self, rng):
        k = 4
        X, a, b = _words(rng, k, n=400)
        X[:50, k:] = X[:50, :k]  # ensure equal pairs exist
        a = rows_to_ints(X[:, :k])
        b = rows_to_ints(X[:, k:])
        y = np.array([int(x == z) for x, z in zip(a, b, strict=True)], np.uint8)
        m = match_comparator(X, y)
        assert m is not None and "eq" in m.name


class TestSymmetricAndWordwise:
    def test_symmetric_majority(self, rng):
        X = rng.integers(0, 2, size=(800, 9)).astype(np.uint8)
        y = (X.sum(axis=1) >= 5).astype(np.uint8)
        m = match_symmetric(X, y)
        assert m is not None
        assert np.array_equal(m.aig.simulate(X)[:, 0], y)

    def test_symmetric_rejects_asymmetric(self, rng):
        X = rng.integers(0, 2, size=(800, 9)).astype(np.uint8)
        y = X[:, 0]
        assert match_symmetric(X, y) is None

    def test_parity(self, rng):
        X = rng.integers(0, 2, size=(400, 16)).astype(np.uint8)
        y = (X.sum(axis=1) % 2).astype(np.uint8)
        m = match_wordwise(X, y)
        assert m is not None and m.name == "xor_all"

    def test_or_all(self, rng):
        X = rng.integers(0, 2, size=(300, 6)).astype(np.uint8)
        y = (X.sum(axis=1) > 0).astype(np.uint8)
        m = match_wordwise(X, y)
        assert m is not None and m.name == "or_all"


class TestMultiplier:
    def test_small_multiplier_bit(self, rng):
        k = 6
        X, a, b = _words(rng, k)
        y = np.array(
            [((x * z) >> (k - 1)) & 1 for x, z in zip(a, b, strict=True)], np.uint8
        )
        m = match_multiplier_bit(X, y)
        assert m is not None
        assert np.array_equal(m.aig.simulate(X)[:, 0], y)

    def test_wide_multiplier_skipped(self, rng):
        k = 32
        X, a, b = _words(rng, k, n=100)
        y = np.array(
            [((x * z) >> (k - 1)) & 1 for x, z in zip(a, b, strict=True)], np.uint8
        )
        assert match_multiplier_bit(X, y, max_width=16) is None


class TestDispatcher:
    def test_match_priority_and_cap(self, rng):
        # Parity matches the cheap wordwise matcher before symmetric.
        X = rng.integers(0, 2, size=(500, 16)).astype(np.uint8)
        y = (X.sum(axis=1) % 2).astype(np.uint8)
        m = match_standard_function(X, y)
        assert m.name == "xor_all"

    def test_no_match_returns_none(self, rng):
        X = rng.integers(0, 2, size=(500, 10)).astype(np.uint8)
        y = rng.integers(0, 2, size=500).astype(np.uint8)
        assert match_standard_function(X, y) is None

    def test_empty_data(self):
        X = np.zeros((0, 8), dtype=np.uint8)
        y = np.zeros(0, dtype=np.uint8)
        assert match_standard_function(X, y) is None

    def test_node_cap_respected(self, rng):
        k = 12
        X, a, b = _words(rng, k)
        y = np.array([((x + z) >> k) & 1 for x, z in zip(a, b, strict=True)], np.uint8)
        assert match_standard_function(X, y, max_nodes=3) is None
