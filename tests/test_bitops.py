"""Unit tests for packed bit-vector helpers."""

import numpy as np
import pytest

from repro.utils.bitops import (
    bits_to_int,
    int_to_bits,
    pack_bits,
    popcount64,
    rows_to_ints,
    unpack_bits,
)


class TestPackUnpack:
    def test_roundtrip_exact_word(self):
        rng = np.random.default_rng(0)
        X = rng.integers(0, 2, size=(64, 5)).astype(np.uint8)
        assert np.array_equal(unpack_bits(pack_bits(X), 64), X)

    def test_roundtrip_partial_word(self):
        rng = np.random.default_rng(1)
        X = rng.integers(0, 2, size=(37, 9)).astype(np.uint8)
        assert np.array_equal(unpack_bits(pack_bits(X), 37), X)

    def test_roundtrip_multi_word(self):
        rng = np.random.default_rng(2)
        X = rng.integers(0, 2, size=(200, 3)).astype(np.uint8)
        assert np.array_equal(unpack_bits(pack_bits(X), 200), X)

    def test_padding_bits_are_zero(self):
        X = np.ones((5, 2), dtype=np.uint8)
        packed = pack_bits(X)
        assert packed[0, 0] == 0b11111  # only 5 sample bits set

    def test_bit_order_sample_zero_is_lsb(self):
        X = np.zeros((3, 1), dtype=np.uint8)
        X[0, 0] = 1
        packed = pack_bits(X)
        assert packed[0, 0] & 1 == 1

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            pack_bits(np.zeros(4, dtype=np.uint8))


class TestPopcount:
    def test_known_values(self):
        words = np.array([0, 1, 3, 0xFFFFFFFFFFFFFFFF], dtype=np.uint64)
        assert popcount64(words).tolist() == [0, 1, 2, 64]

    def test_matches_python_bin(self):
        rng = np.random.default_rng(3)
        words = rng.integers(0, 2**63, size=50, dtype=np.uint64)
        want = [bin(int(w)).count("1") for w in words]
        assert popcount64(words).tolist() == want


class TestIntConversions:
    def test_bits_to_int_lsb_first(self):
        assert bits_to_int(np.array([1, 0, 1])) == 5

    def test_int_to_bits_roundtrip(self):
        for value in (0, 1, 5, 255, 256, 12345):
            assert bits_to_int(int_to_bits(value, 20)) == value

    def test_int_to_bits_rejects_negative(self):
        with pytest.raises(ValueError):
            int_to_bits(-1, 4)

    def test_rows_to_ints_wide(self):
        rng = np.random.default_rng(4)
        X = rng.integers(0, 2, size=(20, 300)).astype(np.uint8)
        values = rows_to_ints(X)
        for row, v in zip(X, values, strict=True):
            assert v == sum(int(b) << i for i, b in enumerate(row))
