"""AIG optimization passes: equivalence and improvement."""

import pytest

from repro.aig.aig import AIG
from repro.aig.build import (multiplier, parity_chain, ripple_adder,
                             ripple_chain, symmetric_function)
from repro.aig.optimize import (balance, compress, fraig_lite, refactor,
                                rewrite)
from tests.conftest import random_aig

PASSES = [balance, rewrite, refactor, fraig_lite, compress]


@pytest.mark.parametrize("pass_fn", PASSES)
class TestEquivalence:
    def test_random_graphs(self, pass_fn):
        for seed in range(6):
            aig = random_aig(6, 50, seed=seed, n_outputs=2)
            assert pass_fn(aig).truth_tables() == aig.truth_tables()

    def test_adder(self, pass_fn):
        aig = AIG(8)
        lits = aig.input_lits()
        for bit in ripple_adder(aig, lits[:4], lits[4:]):
            aig.set_output(bit)
        assert pass_fn(aig).truth_tables() == aig.truth_tables()

    def test_constant_output(self, pass_fn):
        aig = AIG(2)
        aig.set_output(1)
        assert pass_fn(aig).truth_tables() == [0b1111]


class TestImprovement:
    def test_compress_never_grows(self):
        for seed in range(8):
            aig = random_aig(6, 60, seed=seed)
            out = compress(aig)
            assert out.num_ands <= aig.count_used_ands()

    def test_balance_reduces_chain_depth(self):
        # A long AND chain balances to logarithmic depth.
        aig = AIG(16)
        acc = aig.input_lit(0)
        for i in range(1, 16):
            acc = aig.add_and(acc, aig.input_lit(i))
        aig.set_output(acc)
        assert aig.depth() == 15
        balanced = balance(aig)
        assert balanced.depth() == 4
        assert balanced.truth_tables() == aig.truth_tables()

    def test_rewrite_removes_redundancy(self):
        # (a & b) | (a & b & c-free duplicate structure) style waste:
        # build the same function twice without sharing via polarity
        # tricks, rewrite should shrink it back.
        aig = AIG(3)
        a, b, c = (aig.input_lit(i) for i in range(3))
        x1 = aig.add_and(a, b)
        x2 = aig.add_and(aig.add_and(a, a), b)  # folded by strash anyway
        y = aig.add_or(aig.add_and(x1, c), aig.add_and(x2, c ^ 1))
        aig.set_output(y)
        out = rewrite(aig)
        assert out.truth_tables() == aig.truth_tables()
        assert out.num_ands <= aig.count_used_ands()

    def test_compress_on_symmetric_function(self):
        aig = AIG(10)
        aig.set_output(
            symmetric_function(aig, aig.input_lits(), "01010101010")
        )
        out = compress(aig)
        assert out.truth_tables() == aig.truth_tables()
        assert out.num_ands <= aig.num_ands

    def test_multiplier_compression_keeps_equivalence(self):
        aig = AIG(8)
        lits = aig.input_lits()
        for bit in multiplier(aig, lits[:4], lits[4:]):
            aig.set_output(bit)
        out = compress(aig, max_rounds=1)
        assert out.truth_tables() == aig.truth_tables()

    def test_fraig_merges_structurally_distinct_equivalents(self):
        # x XOR y built once as OR-of-ANDs and once as a MUX: strash
        # cannot see the sharing, fraig-lite must prove and merge it.
        aig = AIG(3)
        x, y, z = (aig.input_lit(i) for i in range(3))
        xor1 = aig.add_or(aig.add_and(x, y ^ 1), aig.add_and(x ^ 1, y))
        # (x | y) & ~(x & y): same function, disjoint structure.
        xor2 = aig.add_and(aig.add_or(x, y), aig.add_and(x, y) ^ 1)
        aig.set_output(aig.add_and(xor1, z))
        aig.set_output(aig.add_and(xor2, z ^ 1))
        out = fraig_lite(aig)
        assert out.truth_tables() == aig.truth_tables()
        assert out.num_ands < aig.count_used_ands()


class TestChainRegression:
    """Deep chain-shaped graphs (what ``build.py`` emits for learned
    arithmetic) used to blow the Python recursion limit inside the
    rewriting passes' cone walks.  Satellite regression: ``compress``
    completes — iteratively — on ~5000-node parity/ripple chains."""

    def test_compress_parity_chain_no_recursion_error(self):
        aig = parity_chain(n_inputs=4, n_nodes=5000)
        assert aig.num_ands >= 5000
        out = compress(aig)  # seed: RecursionError in the cone walks
        assert out.truth_tables() == aig.truth_tables()
        assert out.num_ands <= aig.count_used_ands()

    def test_compress_ripple_chain_no_recursion_error(self):
        aig = ripple_chain(word_width=4, n_nodes=5000)
        assert aig.num_ands >= 5000
        out = compress(aig, max_rounds=1)
        assert out.truth_tables() == aig.truth_tables()
        assert out.num_ands <= aig.count_used_ands()

    def test_single_passes_survive_chains(self):
        aig = parity_chain(n_inputs=4, n_nodes=2000)
        tables = aig.truth_tables()
        for pass_fn in PASSES:
            assert pass_fn(aig).truth_tables() == tables
