"""Unit tests for the NPN-library rewriting engine (repro.aig.opt)."""

import random

import pytest

from repro.aig.aig import AIG, CONST0, CONST1
from repro.aig.build import sop_over_leaves
from repro.aig.cuts import (
    cut_function,
    enumerate_cuts,
    enumerate_cuts_with_truths,
)
from repro.aig.isop import full_mask, isop
from repro.aig.opt.counting import BudgetExceeded, VirtualBuilder
from repro.aig.opt.library import NpnLibrary, get_library
from repro.aig.opt.npn import npn_apply, npn_canon
from repro.aig.opt.traverse import bounded_cut, cut_truth, mffc_size
from tests.conftest import random_aig


class TestNpnCanon:
    def test_transform_contract(self):
        # npn_canon's (perm, phase, out_neg) must reproduce the
        # canonical table through the reference transform.
        rnd = random.Random(0)
        for _ in range(200):
            k = rnd.randint(0, 4)
            table = rnd.getrandbits(1 << k)
            ctable, perm, phase, out_neg = npn_canon(table, k)
            assert npn_apply(table, k, perm, phase, out_neg) == ctable

    def test_npn_equivalent_functions_share_a_class(self):
        # Applying any NPN transform to a function must not change its
        # canonical representative.
        rnd = random.Random(1)
        for _ in range(100):
            k = rnd.randint(1, 4)
            table = rnd.getrandbits(1 << k)
            perm = list(range(k))
            rnd.shuffle(perm)
            phase = rnd.getrandbits(k)
            out_neg = bool(rnd.getrandbits(1))
            moved = npn_apply(table, k, tuple(perm), phase, out_neg)
            assert npn_canon(moved, k)[0] == npn_canon(table, k)[0]

    def test_canonical_is_minimal(self):
        # The representative is the numerically smallest table of the
        # class, so canonicalizing it is a fixpoint.
        rnd = random.Random(2)
        for _ in range(50):
            k = rnd.randint(1, 4)
            table = rnd.getrandbits(1 << k)
            ctable = npn_canon(table, k)[0]
            assert ctable <= table
            assert npn_canon(ctable, k)[0] == ctable

    def test_class_count_of_2var_functions(self):
        # The 16 2-input functions form exactly 4 NPN classes.
        classes = {npn_canon(t, 2)[0] for t in range(16)}
        assert len(classes) == 4

    def test_rejects_wide_tables(self):
        with pytest.raises(ValueError):
            npn_canon(0, 5)


class TestLibrary:
    def test_instantiate_matches_table(self):
        lib = NpnLibrary()
        rnd = random.Random(3)
        for _ in range(150):
            k = rnd.randint(1, 4)
            table = rnd.getrandbits(1 << k)
            aig = AIG(k)
            aig.set_output(lib.instantiate(aig, table, aig.input_lits()))
            assert aig.truth_tables()[0] == table & full_mask(k)

    def test_instantiate_over_arbitrary_leaves(self):
        # Leaves that are internal literals, complemented or constant.
        lib = get_library()
        rnd = random.Random(4)
        for _ in range(60):
            aig = random_aig(4, 12, seed=rnd.randint(0, 999))
            pool = [2 * v for v in range(1, aig.num_vars)] + [CONST0, CONST1]
            leaves = [rnd.choice(pool) ^ rnd.getrandbits(1) for _ in range(3)]
            table = rnd.getrandbits(8)
            lit = lib.instantiate(aig, table, leaves)
            aig.outputs = []
            aig.set_output(lit)
            got = aig.truth_tables()[0]
            # Oracle: evaluate the leaves, then look the table up.
            oracle = AIG(aig.n_inputs)
            oracle._fanin0 = list(aig._fanin0)
            oracle._fanin1 = list(aig._fanin1)
            for leaf in leaves:
                oracle.outputs.append(leaf)
            leaf_tables = oracle.truth_tables()
            n_rows = 1 << aig.n_inputs
            expect = 0
            for m in range(n_rows):
                idx = 0
                for pos, lt in enumerate(leaf_tables):
                    if (lt >> m) & 1:
                        idx |= 1 << pos
                if (table >> idx) & 1:
                    expect |= 1 << m
            assert got == expect

    def test_recipes_cached_per_class(self):
        lib = NpnLibrary()
        aig = AIG(4)
        lib.instantiate(aig, 0b1000, [aig.input_lit(i) for i in range(2)])
        n = len(lib)
        # Same class under input permutation/complement: no new recipe.
        lib.instantiate(aig, 0b0100, [aig.input_lit(i) for i in range(2)])
        lib.instantiate(aig, 0b0010, [aig.input_lit(i) for i in range(2)])
        assert len(lib) == n

    def test_constants_short_circuit(self):
        lib = get_library()
        aig = AIG(2)
        assert lib.instantiate(aig, 0, aig.input_lits()) == CONST0
        assert lib.instantiate(aig, 0b1111, aig.input_lits()) == CONST1
        assert aig.num_ands == 0


class TestVirtualBuilder:
    def test_counting_matches_building_in_lockstep(self):
        # Pricing a construction and then really building it must
        # agree on both the node delta and the returned literals.
        rnd = random.Random(5)
        for trial in range(40):
            aig = random_aig(5, 20, seed=trial)
            k = rnd.randint(2, 4)
            table = rnd.getrandbits(1 << k)
            cover, _ = isop(table, table, k)
            leaves = [aig.input_lit(i) for i in range(k)]
            counter = VirtualBuilder(aig)
            virtual_lit = sop_over_leaves(counter, cover, leaves)
            before = aig.num_ands
            real_lit = sop_over_leaves(aig, cover, leaves)
            assert counter.n_new == aig.num_ands - before
            assert virtual_lit == real_lit

    def test_counts_sharing_with_existing_graph(self):
        aig = AIG(2)
        a, b = aig.input_lit(0), aig.input_lit(1)
        existing = aig.add_and(a, b)
        counter = VirtualBuilder(aig)
        assert counter.add_and(a, b) == existing
        assert counter.n_new == 0

    def test_counts_internal_sharing(self):
        aig = AIG(2)
        a, b = aig.input_lit(0), aig.input_lit(1)
        counter = VirtualBuilder(aig)
        x = counter.add_and(a, b)
        y = counter.add_and(a, b)
        assert x == y
        assert counter.n_new == 1

    def test_graph_is_never_touched(self):
        aig = AIG(3)
        version = aig._version
        counter = VirtualBuilder(aig)
        counter.add_and_multi([aig.input_lit(i) for i in range(3)])
        assert aig.num_ands == 0
        assert aig._version == version

    def test_budget_aborts(self):
        aig = AIG(4)
        counter = VirtualBuilder(aig, budget=1)
        counter.add_and(aig.input_lit(0), aig.input_lit(1))
        with pytest.raises(BudgetExceeded):
            counter.add_and(aig.input_lit(2), aig.input_lit(3))


class TestCutTruths:
    def test_enumeration_truths_match_cone_evaluation(self):
        for seed in range(8):
            aig = random_aig(5, 30, seed=seed)
            with_truths = enumerate_cuts_with_truths(aig, k=4)
            plain = enumerate_cuts(aig, k=4)
            for var in range(1 + aig.n_inputs, aig.num_vars):
                assert [c for c, _ in with_truths[var]] == plain[var]
                for cut, table in with_truths[var]:
                    if cut == (var,):
                        assert table == 0b10
                    else:
                        assert table == cut_function(aig, var, cut)

    def test_deep_cut_truths_are_cheap_and_correct(self):
        # On a chain over two repeated inputs the 2-leaf cuts span the
        # whole chain; the bottom-up merge must stay exact.
        aig = AIG(2)
        x, y = aig.input_lit(0), aig.input_lit(1)
        acc = aig.add_and(x, y)
        for i in range(500):
            acc = aig.add_and(acc, (x, y)[i % 2] ^ ((i // 5) & 1))
        aig.set_output(acc)
        truths = enumerate_cuts_with_truths(aig, k=4)
        root = acc >> 1
        for cut, table in truths[root]:
            if cut != (root,):
                assert table == cut_function(aig, root, cut)


class TestTraverse:
    def test_cut_truth_rejects_non_cut(self):
        aig = random_aig(4, 15, seed=9)
        with pytest.raises(ValueError):
            cut_truth(aig, aig.num_vars - 1, ())

    def test_mffc_matches_reference_recursive(self):
        def recursive_mffc(aig, var, fanout):
            counted = set()

            def walk(v, is_root):
                if v in counted or not aig.is_and_var(v):
                    return
                if not is_root and fanout[v] > 1:
                    return
                counted.add(v)
                f0, f1 = aig.fanins(v)
                walk(f0 >> 1, False)
                walk(f1 >> 1, False)

            walk(var, True)
            return len(counted)

        for seed in range(6):
            aig = random_aig(6, 80, seed=seed)
            fanout = aig.fanout_counts()
            for var in range(1 + aig.n_inputs, aig.num_vars):
                assert mffc_size(aig, var, fanout) == recursive_mffc(
                    aig, var, fanout
                )

    def test_bounded_cut_is_a_valid_cut(self):
        for seed in range(6):
            aig = random_aig(6, 60, seed=seed)
            rnd = random.Random(seed)
            vars_ = [
                rnd.randrange(1 + aig.n_inputs, aig.num_vars)
                for _ in range(5)
            ]
            for v1, v2 in zip(vars_, vars_[1:], strict=False):
                cut = bounded_cut(aig, (v1, v2), max_leaves=16, max_visit=16)
                if cut is None:
                    continue
                # cut_truth terminating (no ValueError) proves every
                # root-to-input path crosses the leaf set.
                cut_truth(aig, v1, cut)
                cut_truth(aig, v2, cut)

    def test_bounded_cut_respects_leaf_limit(self):
        aig = random_aig(10, 120, seed=7)
        root = aig.num_vars - 1
        cut = bounded_cut(aig, (root,), max_leaves=3, max_visit=4)
        assert cut is None or len(cut) <= 3


class TestReferenceBaseline:
    def test_seed_passes_equivalent_and_never_better(self):
        # The pinned seed baseline must stay correct (it anchors
        # bench_opt_engine), and the engine must never ship a larger
        # circuit than it.
        from repro.aig.opt.reference import (
            reference_compress,
            reference_refactor,
            reference_rewrite,
        )
        from repro.aig.optimize import compress

        for seed in range(4):
            aig = random_aig(6, 50, seed=seed, n_outputs=2)
            tables = aig.truth_tables()
            for pass_fn in (
                reference_rewrite, reference_refactor, reference_compress
            ):
                assert pass_fn(aig).truth_tables() == tables
            assert (
                compress(aig).num_ands
                <= reference_compress(aig).num_ands
            )


class TestRewritePipeline:
    def test_rewrite_prefers_existing_structure(self):
        # A function whose NPN class is already built in the output
        # graph must be reused rather than duplicated.
        from repro.aig.optimize import rewrite

        aig = AIG(4)
        a, b, c = (aig.input_lit(i) for i in range(3))
        and3 = aig.add_and(aig.add_and(a, b), c)
        # Same function again with different association: redundant.
        and3b = aig.add_and(a, aig.add_and(b, c))
        aig.set_output(aig.add_and(and3, aig.input_lit(3)))
        aig.set_output(aig.add_and(and3b, aig.input_lit(3) ^ 1))
        out = rewrite(aig)
        assert out.truth_tables() == aig.truth_tables()
        assert out.num_ands < aig.count_used_ands()

    def test_rewrite_supports_wide_cuts(self):
        # Cuts beyond the NPN library width (k > 4) fall back to
        # mutation-free ISOP pricing — the seed's public k range.
        from repro.aig.optimize import rewrite

        for seed in range(4):
            aig = random_aig(6, 40, seed=seed, n_outputs=2)
            out = rewrite(aig, k=5)
            assert out.truth_tables() == aig.truth_tables()
            assert out.num_ands <= aig.count_used_ands()
