"""ROBDD manager and don't-care minimization."""

import numpy as np

from repro.bdd import BDD, minimize_dontcare, restrict
from repro.bdd.bdd import FALSE, TRUE


def _xor_chain(bdd, n):
    f = FALSE
    for i in range(n):
        f = bdd.xor_(f, bdd.var_node(i))
    return f


class TestBDDCore:
    def test_reduction_rule(self):
        bdd = BDD(2)
        assert bdd.mk(0, TRUE, TRUE) == TRUE

    def test_unique_table_shares(self):
        bdd = BDD(2)
        a = bdd.mk(0, FALSE, TRUE)
        b = bdd.mk(0, FALSE, TRUE)
        assert a == b

    def test_apply_known_identities(self):
        bdd = BDD(3)
        x = bdd.var_node(0)
        assert bdd.and_(x, TRUE) == x
        assert bdd.and_(x, FALSE) == FALSE
        assert bdd.or_(x, TRUE) == TRUE
        assert bdd.xor_(x, x) == FALSE
        assert bdd.not_(bdd.not_(x)) == x

    def test_evaluate_majority(self, rng):
        bdd = BDD(3)
        x = [bdd.var_node(i) for i in range(3)]
        maj = bdd.or_(
            bdd.and_(x[0], x[1]),
            bdd.or_(bdd.and_(x[0], x[2]), bdd.and_(x[1], x[2])),
        )
        X = rng.integers(0, 2, size=(100, 3)).astype(np.uint8)
        want = (X.sum(axis=1) >= 2).astype(np.uint8)
        assert np.array_equal(bdd.evaluate(maj, X), want)

    def test_xor_chain_size_linear(self):
        bdd = BDD(10)
        f = _xor_chain(bdd, 10)
        # XOR has a linear-size BDD under any order.
        assert bdd.count_nodes(f) == 10 * 2 - 1

    def test_from_samples_matches_membership(self, rng):
        bdd = BDD(6)
        X = np.unique(
            rng.integers(0, 2, size=(30, 6)).astype(np.uint8), axis=0
        )
        f = bdd.from_samples(X)
        assert np.array_equal(bdd.evaluate(f, X),
                              np.ones(len(X), np.uint8))
        others = rng.integers(0, 2, size=(100, 6)).astype(np.uint8)
        member = {tuple(r) for r in X}
        want = np.array(
            [1 if tuple(r) in member else 0 for r in others], np.uint8
        )
        assert np.array_equal(bdd.evaluate(f, others), want)

    def test_to_aig_equivalence(self, rng):
        bdd = BDD(5)
        f = _xor_chain(bdd, 5)
        aig = bdd.to_aig(f)
        X = rng.integers(0, 2, size=(200, 5)).astype(np.uint8)
        assert np.array_equal(
            aig.simulate(X)[:, 0], bdd.evaluate(f, X)
        )


class TestDontCareMinimization:
    def _setup(self, rng, n=8, n_care=120):
        bdd = BDD(n)
        x = [bdd.var_node(i) for i in range(n)]
        f = bdd.or_(
            bdd.and_(x[0], x[1]), bdd.and_(x[2], bdd.not_(x[3]))
        )
        care_rows = np.unique(
            rng.integers(0, 2, size=(n_care, n)).astype(np.uint8), axis=0
        )
        care = bdd.from_samples(care_rows)
        return bdd, f, care, care_rows

    def test_restrict_agrees_on_care(self, rng):
        bdd, f, care, care_rows = self._setup(rng)
        g = restrict(bdd, f, care)
        assert np.array_equal(
            bdd.evaluate(g, care_rows), bdd.evaluate(f, care_rows)
        )

    def test_restrict_never_larger(self, rng):
        bdd, f, care, _ = self._setup(rng)
        g = restrict(bdd, f, care)
        assert bdd.count_nodes(g) <= bdd.count_nodes(f)

    def test_two_sided_agrees_on_care(self, rng):
        bdd, f, care, care_rows = self._setup(rng)
        g = minimize_dontcare(bdd, f, care)
        assert np.array_equal(
            bdd.evaluate(g, care_rows), bdd.evaluate(f, care_rows)
        )

    def test_complemented_agrees_on_care(self, rng):
        bdd, f, care, care_rows = self._setup(rng)
        g = minimize_dontcare(bdd, f, care, complemented=True)
        assert np.array_equal(
            bdd.evaluate(g, care_rows), bdd.evaluate(f, care_rows)
        )

    def test_full_care_is_identity(self, rng):
        bdd, f, _, _ = self._setup(rng)
        assert restrict(bdd, f, TRUE) == f
        assert minimize_dontcare(bdd, f, TRUE) == f

    def test_empty_care_collapses(self, rng):
        bdd, f, _, _ = self._setup(rng)
        assert restrict(bdd, f, FALSE) == FALSE

    def test_learning_adder_second_msb(self, rng):
        """The paper's appendix claim: with an MSB-first interleaved
        order, one-sided matching learns adder output bits well."""
        k = 6
        n = 2 * k
        X = rng.integers(0, 2, size=(700, n)).astype(np.uint8)
        a = [sum(int(r[i]) << i for i in range(k)) for r in X]
        b = [sum(int(r[k + i]) << i for i in range(k)) for r in X]
        y = np.array(
            [((av + bv) >> (k - 1)) & 1 for av, bv in zip(a, b, strict=True)], np.uint8
        )
        order = []
        for j in reversed(range(k)):
            order.extend([j, k + j])
        Xo = X[:, order]
        bdd = BDD(n)
        onset = bdd.from_samples(Xo[:500][y[:500] == 1])
        care = bdd.from_samples(Xo[:500])
        g = restrict(bdd, onset, care)
        pred = bdd.evaluate(g, Xo[500:])
        acc = float((pred == y[500:]).mean())
        assert acc > 0.85
