"""Model-to-AIG bridges: every bridge must agree with its model."""

import numpy as np
import pytest

from repro.ml.boosting import GradientBoostedTrees
from repro.ml.decision_tree import DecisionTree
from repro.ml.forest import RandomForest
from repro.ml.fringe import FringeDT
from repro.ml.lutnet import LUTNetwork
from repro.ml.mlp import MLP, _act
from repro.ml.rules import PartRuleLearner
from repro.synth import (
    boosted_to_aig,
    cover_to_aig,
    forest_to_aig,
    fringe_dt_to_aig,
    lutnet_to_aig,
    mlp_to_aig,
    rules_to_aig,
    tree_to_aig,
)


@pytest.fixture
def data(rng):
    X = rng.integers(0, 2, size=(900, 9)).astype(np.uint8)
    y = ((X[:, 0] & X[:, 1]) | (X[:, 4] & X[:, 6])).astype(np.uint8)
    Xt = rng.integers(0, 2, size=(400, 9)).astype(np.uint8)
    return X, y, Xt


class TestTreeBridges:
    def test_tree_to_aig_exact(self, data):
        X, y, Xt = data
        tree = DecisionTree(max_depth=8).fit(X, y)
        aig = tree_to_aig(tree)
        assert np.array_equal(aig.simulate(Xt)[:, 0], tree.predict(Xt))

    def test_cover_to_aig_exact(self, data):
        X, y, Xt = data
        tree = DecisionTree(max_depth=8).fit(X, y)
        cover = tree.to_cover()
        aig = cover_to_aig(cover)
        assert np.array_equal(aig.simulate(Xt)[:, 0], cover.evaluate(Xt))

    def test_fringe_to_aig_exact(self, rng):
        X = rng.integers(0, 2, size=(1200, 6)).astype(np.uint8)
        y = (X[:, 0] ^ X[:, 1]).astype(np.uint8)
        model = FringeDT(max_depth=6).fit(X, y)
        aig = fringe_dt_to_aig(model)
        Xt = rng.integers(0, 2, size=(300, 6)).astype(np.uint8)
        assert np.array_equal(aig.simulate(Xt)[:, 0], model.predict(Xt))

    def test_constant_tree(self):
        X = np.zeros((10, 3), dtype=np.uint8)
        y = np.ones(10, dtype=np.uint8)
        aig = tree_to_aig(DecisionTree().fit(X, y))
        assert aig.simulate(X)[:, 0].tolist() == [1] * 10


class TestEnsembleBridges:
    def test_forest_to_aig_exact(self, data, rng):
        X, y, Xt = data
        forest = RandomForest(n_trees=5, max_depth=6, rng=rng).fit(X, y)
        aig = forest_to_aig(forest)
        assert np.array_equal(aig.simulate(Xt)[:, 0], forest.predict(Xt))

    def test_rules_to_aig_exact(self, data):
        X, y, Xt = data
        rules = PartRuleLearner().fit(X, y)
        aig = rules_to_aig(rules)
        assert np.array_equal(aig.simulate(Xt)[:, 0], rules.predict(Xt))

    def test_boosted_to_aig_matches_quantized(self, data):
        X, y, Xt = data
        model = GradientBoostedTrees(n_estimators=19, max_depth=3).fit(X, y)
        aig = boosted_to_aig(model, exact_majority=True)
        assert np.array_equal(
            aig.simulate(Xt)[:, 0], model.predict_quantized(Xt)
        )

    def test_boosted_maj5_close_to_quantized(self, data):
        X, y, Xt = data
        model = GradientBoostedTrees(n_estimators=25, max_depth=3).fit(X, y)
        aig = boosted_to_aig(model, exact_majority=False)
        agree = (
            aig.simulate(Xt)[:, 0] == model.predict_quantized(Xt)
        ).mean()
        assert agree > 0.9

    def test_unfitted_forest_rejected(self):
        with pytest.raises(RuntimeError):
            forest_to_aig(RandomForest(n_trees=3))


class TestNetworkBridges:
    def test_lutnet_to_aig_exact(self, data, rng):
        X, y, Xt = data
        net = LUTNetwork(n_layers=2, luts_per_layer=16, lut_size=4,
                         rng=rng).fit(X, y)
        aig = lutnet_to_aig(net)
        assert np.array_equal(aig.simulate(Xt)[:, 0], net.predict(Xt))

    def test_mlp_to_aig_matches_quantized_forward(self, data, rng):
        X, y, Xt = data
        mlp = MLP(hidden_sizes=(10, 5), rng=rng).fit(
            X.astype(float), y, epochs=20
        )
        mlp.prune_to_fanin(5, X.astype(float), y, rounds=2,
                           retrain_epochs=5)
        aig = mlp_to_aig(mlp)

        def quantized_forward(mat):
            prev = mat.astype(float)
            for layer in mlp.layers:
                z = prev @ (layer.W * layer.mask) + layer.b
                prev = (_act(layer.activation, z) >= 0.5).astype(float)
            return prev[:, 0].astype(np.uint8)

        assert np.array_equal(
            aig.simulate(Xt)[:, 0], quantized_forward(Xt)
        )

    def test_mlp_bridge_rejects_wide_fanin(self, data, rng):
        X, y, _ = data
        MLP(hidden_sizes=(40,), rng=rng).fit(X.astype(float), y, epochs=2)
        # 9 inputs -> fanin 9 <= 16 is fine; force failure with a fake
        # wide layer by not pruning a 40-wide second layer input.
        from repro.synth.from_mlp import _neuron_table

        with pytest.raises(ValueError):
            _neuron_table(np.ones(20), 0.0, "sigmoid")
