"""Team 1's simulation-guided approximation."""

import numpy as np
import pytest

from repro.aig.aig import AIG, CONST0, CONST1
from repro.aig.approx import approximate_to_size, substitute_constants
from repro.aig.build import multiplier
from tests.conftest import random_aig


def _multiplier_aig(k=6):
    aig = AIG(2 * k)
    lits = aig.input_lits()
    for bit in multiplier(aig, lits[:k], lits[k:]):
        aig.set_output(bit)
    return aig


class TestSubstitute:
    def test_constant_substitution_semantics(self):
        aig = AIG(2)
        a, b = aig.input_lit(0), aig.input_lit(1)
        x = aig.add_and(a, b)
        y = aig.add_or(x, a)
        aig.set_output(y)
        forced = substitute_constants(aig, {x >> 1: CONST1})
        # y becomes (1 | a) = 1.
        assert forced.truth_tables() == [0b1111]

    def test_substitute_rejects_inputs(self):
        aig = AIG(2)
        aig.set_output(aig.add_and(aig.input_lit(0), aig.input_lit(1)))
        with pytest.raises(ValueError):
            substitute_constants(aig, {1: CONST0})

    def test_negated_references_get_opposite_constant(self):
        aig = AIG(2)
        a, b = aig.input_lit(0), aig.input_lit(1)
        x = aig.add_and(a, b)
        y = aig.add_and(x ^ 1, a)  # uses complement of x
        aig.set_output(y)
        forced = substitute_constants(aig, {x >> 1: CONST0})
        # !0 & a = a.
        assert forced.truth_tables() == [0b1010]


class TestApproximate:
    def test_reaches_target_size(self):
        aig = _multiplier_aig()
        target = 60
        small = approximate_to_size(aig, max_ands=target, n_patterns=1024)
        assert small.num_ands <= target

    def test_noop_when_already_small(self):
        aig = random_aig(4, 10, seed=2)
        out = approximate_to_size(aig, max_ands=5000)
        assert out.truth_tables() == aig.truth_tables()

    def test_interface_preserved(self):
        aig = _multiplier_aig()
        small = approximate_to_size(aig, max_ands=100, n_patterns=512)
        assert small.n_inputs == aig.n_inputs
        assert small.num_outputs == aig.num_outputs

    def test_agreement_degrades_gracefully(self, rng):
        """The approximation should stay well above chance agreement."""
        aig = _multiplier_aig()
        small = approximate_to_size(aig, max_ands=150, n_patterns=2048)
        X = rng.integers(0, 2, size=(2000, aig.n_inputs)).astype(np.uint8)
        agree = (aig.simulate(X) == small.simulate(X)).mean()
        assert agree > 0.6

    def test_deterministic_given_rng(self):
        aig = _multiplier_aig()
        a1 = approximate_to_size(
            aig, max_ands=80, rng=np.random.default_rng(7)
        )
        a2 = approximate_to_size(
            aig, max_ands=80, rng=np.random.default_rng(7)
        )
        assert a1.num_ands == a2.num_ands
        assert a1.truth_tables() == a2.truth_tables()
