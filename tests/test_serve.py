"""The serving layer: ModelStore, microbatching, HTTP, offline predict.

The acceptance property pinned here: everything `repro serve` answers
on ``/predict/{model}`` is *bit-identical* to ``AIG.simulate`` run
directly on the stored solution — loading, compiling, coalescing and
HTTP transport must never change a single output bit.
"""

import asyncio
import http.client
import json
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.aig.aig import AIG
from repro.aig.aiger import dumps_aag, loads_aag, read_aag
from repro.runner import contest_tasks, run_contest_tasks
from repro.runner.store import RunStore, _solution_filename
from repro.serve import (
    CircuitBundle,
    DeadlineExceeded,
    ExecutionError,
    MicroBatcher,
    ModelStore,
    QueueSaturated,
    ServeApp,
    ServerHandle,
    WorkerPool,
    parse_metrics_text,
)
from repro.serve.metrics import MetricsRegistry
from repro.serve.predict import format_outputs, predict_file, read_rows_file
from repro.sim.batch import simulate_rows_grouped

BENCHMARKS = [30, 74]
FLOWS = ["team01", "team10"]
SAMPLES = 48


@pytest.fixture(scope="session")
def run_store_dir(tmp_path_factory):
    """A real contest run with stored solutions (built once)."""
    out_dir = tmp_path_factory.mktemp("serve") / "run"
    specs = contest_tasks(BENCHMARKS, FLOWS, SAMPLES, SAMPLES, SAMPLES)
    run_contest_tasks(specs, jobs=1, out_dir=out_dir, keep_solutions=True)
    return out_dir


@pytest.fixture()
def model_store(run_store_dir):
    return ModelStore(run_store_dir, cache_size=8)


def _random_rows(n_rows, n_inputs, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2, size=(n_rows, n_inputs)).astype(np.uint8)


def _stored_winner_aig(run_store_dir, model_store, name) -> AIG:
    """The winning stored .aag, read back through the run store."""
    key = model_store.info(name).key
    return read_aag(RunStore(run_store_dir).solution_path(key))


# ---------------------------------------------------------------------------
# ModelStore
# ---------------------------------------------------------------------------


def test_model_store_catalogue(model_store):
    assert model_store.names() == ["ex30", "ex74"]
    assert model_store.resolve("74") == "ex74"
    assert "ex30" in model_store and "30" in model_store
    assert "ex99" not in model_store
    info = model_store.info("ex74")
    assert info.benchmark == 74
    assert info.flow in FLOWS
    assert info.n_inputs == 16
    with pytest.raises(KeyError):
        model_store.resolve("ex99")


def test_model_store_glob_resolution(model_store):
    # A glob matching exactly one stored name resolves to it; an
    # ambiguous glob names the candidates instead of guessing.
    assert model_store.resolve("*74") == "ex74"
    assert "ex7?" in model_store
    with pytest.raises(KeyError, match="ambiguous"):
        model_store.resolve("ex*")
    with pytest.raises(KeyError, match="unknown model"):
        model_store.resolve("zz*")


def test_model_store_serves_generated_spec(tmp_path):
    """Registry spec-string benchmarks are servable end to end: the
    record's string ``benchmark`` field must survive catalogue
    building (it used to be force-cast to int) and the canonical name
    must work as the serving route."""
    name = "parity:inputs=8"
    specs = contest_tasks([name], ["team10"], SAMPLES, SAMPLES, SAMPLES)
    run_contest_tasks(specs, jobs=1, out_dir=tmp_path, keep_solutions=True)
    store = ModelStore(tmp_path, cache_size=2)
    assert store.names() == [name]
    assert store.resolve("parity:*") == name
    info = store.info(name)
    assert info.benchmark == name
    assert info.n_inputs == 8
    compiled = store.load(name)
    rows = _random_rows(16, 8)
    assert compiled.predict(rows).shape == (16, 1)


def test_model_store_picks_best_record(tmp_path):
    """Selection: legal first, then accuracy, then size, then levels."""
    store = RunStore(tmp_path)
    aig = AIG(2)
    aig.set_output(aig.add_and(2, 4))
    aag = dumps_aag(aig)
    rows = [
        # (key, legal, acc, ands): the acc=0.9 legal record must win
        ("b000:flowA:s0", True, 0.8, 5),
        ("b000:flowB:s0", True, 0.9, 9),
        ("b000:flowC:s0", False, 0.99, 9000),  # illegal never beats legal
        ("b000:flowD:s0", True, 0.9, 12),  # same acc, larger -> loses
    ]
    for key, legal, acc, ands in rows:
        store.append(
            {
                "schema": 1,
                "key": key,
                "benchmark": 0,
                "benchmark_name": "ex00",
                "flow": key.split(":")[1],
                "seed": 0,
                "legal": legal,
                "test_accuracy": acc,
                "num_ands": ands,
                "levels": 3,
            },
            aag=aag,
        )
    ms = ModelStore(tmp_path)
    assert ms.names() == ["ex00"]
    assert ms.info("ex00").flow == "flowB"


def test_model_store_requires_solutions(tmp_path):
    store = RunStore(tmp_path)
    store.append({"schema": 1, "key": "b000:f:s0", "benchmark_name": "ex00"})
    with pytest.raises(FileNotFoundError):
        ModelStore(tmp_path)  # records but no kept circuits
    with pytest.raises(FileNotFoundError):
        ModelStore(tmp_path / "missing")


def test_model_store_bundle_directory(tmp_path, model_store, run_store_dir):
    """Any directory of .aag files (+ JSON sidecars) is servable."""
    aig = _stored_winner_aig(run_store_dir, model_store, "ex74")
    (tmp_path / "parity16.aag").write_text(dumps_aag(aig), encoding="ascii")
    (tmp_path / "parity16.json").write_text(
        json.dumps({"flow": "handmade", "test_accuracy": 0.75})
    )
    aig2 = AIG(3)
    aig2.set_output(aig2.add_and(2, 4))
    (tmp_path / "bare.aag").write_text(dumps_aag(aig2), encoding="ascii")

    ms = ModelStore(tmp_path)
    assert ms.names() == ["bare", "parity16"]
    assert ms.info("parity16").flow == "handmade"
    assert ms.info("bare").n_inputs == 3  # no sidecar needed
    rows = _random_rows(9, 16)
    assert np.array_equal(ms.load("parity16").predict(rows), aig.simulate(rows))


def test_model_store_lru(run_store_dir):
    ms = ModelStore(run_store_dir, cache_size=1)
    ms.load("ex30")
    assert ms.stats()["misses"] == 1
    ms.load("ex30")
    assert ms.stats()["hits"] == 1
    ms.load("ex74")  # evicts ex30
    stats = ms.stats()
    assert stats["evictions"] == 1 and stats["compiled"] == 1
    assert ms.cached_names() == ["ex74"]
    ms.load("ex30")  # recompiles
    assert ms.stats()["misses"] == 3
    with pytest.raises(ValueError):
        ModelStore(run_store_dir, cache_size=0)


# ---------------------------------------------------------------------------
# Bit-identity (the golden serving property)
# ---------------------------------------------------------------------------


def test_compiled_circuit_bit_identical_to_simulate(
    model_store, run_store_dir
):
    for name in model_store.names():
        circuit = model_store.load(name)
        aig = _stored_winner_aig(run_store_dir, model_store, name)
        rows = _random_rows(133, circuit.n_inputs, seed=7)
        assert np.array_equal(circuit.predict(rows), aig.simulate(rows))
        single = circuit.predict(rows[3])  # 1-d row convenience
        assert np.array_equal(single, aig.simulate(rows[3 : 4]))


def test_predict_validates_width(model_store):
    circuit = model_store.load("ex74")
    with pytest.raises(ValueError):
        circuit.predict(np.zeros((4, 3), dtype=np.uint8))


def test_predict_rejects_non_binary_values(model_store):
    """A 2 in one request's row must never leak into a neighbour's
    packed bits — non-0/1 input is rejected, not silently packed."""
    circuit = model_store.load("ex74")
    bad = np.zeros((1, 16), dtype=np.uint8)
    bad[0, 0] = 2
    with pytest.raises(ValueError):
        circuit.predict(bad)
    with pytest.raises(ValueError):
        circuit.predict_grouped([bad])
    # Fractional values must be rejected, not truncated to 0.
    frac = np.zeros((1, 16))
    frac[0, 0] = 0.9
    with pytest.raises(ValueError):
        circuit.predict(frac)
    # ...but integral floats and negative ints fail cleanly too.
    assert np.array_equal(
        circuit.predict(np.ones((1, 16))),
        circuit.predict(np.ones((1, 16), dtype=np.uint8)),
    )
    with pytest.raises(ValueError):
        circuit.predict([[-1] * 16])


def test_model_store_info_does_not_compile(run_store_dir):
    """The catalogue path must not thrash the compiled-plan LRU."""
    ms = ModelStore(run_store_dir, cache_size=1)
    infos = ms.infos()
    assert [i.name for i in infos] == ["ex30", "ex74"]
    assert all(i.num_ands > 0 for i in infos)
    stats = ms.stats()
    assert stats["misses"] == 0 and stats["compiled"] == 0


def test_simulate_rows_grouped_matches_per_block(model_store):
    circuit = model_store.load("ex74")
    blocks = [
        _random_rows(k, circuit.n_inputs, seed=k) for k in (1, 1, 5, 2)
    ]
    grouped = simulate_rows_grouped(circuit.compiled, blocks)
    assert len(grouped) == len(blocks)
    for block, out in zip(blocks, grouped, strict=True):
        assert np.array_equal(out, circuit.predict(block))
    assert simulate_rows_grouped(circuit.compiled, []) == []
    one = simulate_rows_grouped(circuit.compiled, [blocks[2][0]])  # 1-d
    assert np.array_equal(one[0], circuit.predict(blocks[2][:1]))


def test_loads_aag_round_trip(model_store, run_store_dir):
    aig = _stored_winner_aig(run_store_dir, model_store, "ex30")
    again = loads_aag(dumps_aag(aig))
    assert dumps_aag(again) == dumps_aag(aig)


# ---------------------------------------------------------------------------
# Microbatching
# ---------------------------------------------------------------------------


def test_microbatcher_coalesces_concurrent_singles(model_store):
    circuit = model_store.load("ex74")
    rows = _random_rows(8, circuit.n_inputs, seed=3)
    expected = circuit.predict(rows)

    async def drive():
        batcher = MicroBatcher(model_store, tick_s=0.05)
        outs = await asyncio.gather(
            *(batcher.predict("ex74", rows[i]) for i in range(len(rows)))
        )
        return batcher, outs

    batcher, outs = asyncio.run(drive())
    for i, out in enumerate(outs):
        assert np.array_equal(out[0], expected[i])
    # All 8 requests arrived within one tick: exactly one engine pass.
    assert batcher.batches == 1
    assert batcher.max_coalesced == 8
    assert batcher.rows_served == 8


def test_microbatcher_max_batch_flushes_early(model_store):
    circuit = model_store.load("ex74")
    rows = _random_rows(8, circuit.n_inputs, seed=4)
    expected = circuit.predict(rows)

    async def drive():
        batcher = MicroBatcher(model_store, tick_s=5.0, max_batch=4)
        outs = await asyncio.gather(
            *(batcher.predict("ex74", rows[i]) for i in range(len(rows)))
        )
        return batcher, outs

    batcher, outs = asyncio.run(drive())
    for i, out in enumerate(outs):
        assert np.array_equal(out[0], expected[i])
    # tick_s is far beyond the test budget, so only the max_batch
    # trigger can have flushed -- twice, at 4 rows each.
    assert batcher.batches == 2
    assert batcher.max_coalesced == 4


def test_microbatcher_rejects_bad_rows_before_enqueue(model_store):
    async def drive():
        batcher = MicroBatcher(model_store, tick_s=0.01)
        with pytest.raises(ValueError):
            await batcher.predict("ex74", np.zeros((1, 2), dtype=np.uint8))
        with pytest.raises(KeyError):
            await batcher.predict("nope", np.zeros((1, 16), dtype=np.uint8))
        assert batcher.requests == 0  # nothing was queued

    asyncio.run(drive())


# ---------------------------------------------------------------------------
# HTTP front end
# ---------------------------------------------------------------------------


@pytest.fixture()
def served(model_store):
    app = ServeApp(model_store, tick_s=0.002)
    with ServerHandle(app) as handle:
        yield handle


def _request(handle, method, path, body=None):
    conn = http.client.HTTPConnection(handle.host, handle.port, timeout=30)
    try:
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def test_http_predict_golden(served, model_store, run_store_dir):
    """ /predict output == AIG.simulate, bit for bit, via real HTTP."""
    for name in model_store.names():
        aig = _stored_winner_aig(run_store_dir, model_store, name)
        rows = _random_rows(57, aig.n_inputs, seed=11)
        status, body = _request(
            served, "POST", f"/predict/{name}",
            json.dumps({"rows": rows.tolist()}),
        )
        assert status == 200
        assert body["model"] == name and body["rows"] == 57
        got = np.asarray(body["outputs"], dtype=np.uint8)
        assert np.array_equal(got, aig.simulate(rows))


def test_http_single_row_and_index_route(served, model_store, run_store_dir):
    aig = _stored_winner_aig(run_store_dir, model_store, "ex74")
    row = _random_rows(1, 16, seed=2)[0]
    status, body = _request(
        served, "POST", "/predict/74", json.dumps({"row": row.tolist()})
    )
    assert status == 200 and body["model"] == "ex74"
    assert np.array_equal(
        np.asarray(body["outputs"], dtype=np.uint8), aig.simulate(row)
    )


def test_http_concurrent_singles_are_coalesced_and_exact(
    served, model_store, run_store_dir
):
    aig = _stored_winner_aig(run_store_dir, model_store, "ex74")
    rows = _random_rows(24, 16, seed=9)
    expected = aig.simulate(rows)

    def one(i):
        return i, _request(
            served, "POST", "/predict/ex74",
            json.dumps({"row": rows[i].tolist()}),
        )

    with ThreadPoolExecutor(max_workers=12) as pool:
        for i, (status, body) in pool.map(one, range(len(rows))):
            assert status == 200
            assert np.array_equal(
                np.asarray(body["outputs"], dtype=np.uint8)[0], expected[i]
            )

    status, health = _request(served, "GET", "/healthz")
    assert status == 200 and health["status"] == "ok"
    assert health["batching"]["rows_served"] >= len(rows)
    assert health["batching"]["batches"] <= health["batching"]["requests"]


def test_http_models_and_health(served, model_store):
    status, body = _request(served, "GET", "/models")
    assert status == 200
    names = [m["name"] for m in body["models"]]
    assert names == model_store.names()
    for model in body["models"]:
        assert {"n_inputs", "n_outputs", "num_ands", "compiled"} <= set(model)
    status, health = _request(served, "GET", "/healthz")
    assert status == 200
    assert health["store"]["models"] == len(names)


def test_http_error_paths(served):
    assert _request(served, "POST", "/predict/nope", "{}")[0] == 404
    assert _request(served, "GET", "/nothing")[0] == 404
    assert _request(served, "GET", "/predict/ex74")[0] == 405
    assert _request(served, "POST", "/predict/ex74", "not json")[0] == 400
    assert _request(served, "POST", "/predict/ex74", "[1,2]")[0] == 400
    assert _request(served, "POST", "/predict/ex74", "{}")[0] == 400
    status, body = _request(
        served, "POST", "/predict/ex74", json.dumps({"rows": [[0, 1]]})
    )
    assert status == 400 and "16 bits" in body["error"]


def test_http_rejects_non_binary_rows(served):
    status, body = _request(
        served, "POST", "/predict/ex74", json.dumps({"rows": [[2] * 16]})
    )
    assert status == 400 and "0/1" in body["error"]
    # Negative values are a 400 too (numpy raises OverflowError on
    # uint8 conversion; that must not surface as a 500).
    status, body = _request(
        served, "POST", "/predict/ex74", json.dumps({"row": [-1] * 16})
    )
    assert status == 400
    # Fractional JSON floats are rejected, never truncated to 0.
    status, body = _request(
        served, "POST", "/predict/ex74", json.dumps({"row": [0.9] * 16})
    )
    assert status == 400 and "fractional" in body["error"]


def test_http_malformed_content_length_gets_400(served):
    import socket

    with socket.create_connection((served.host, served.port), timeout=30) as s:
        s.sendall(
            b"POST /predict/ex74 HTTP/1.1\r\n"
            b"Content-Length: abc\r\n\r\n"
        )
        response = s.recv(65536).decode("latin-1")
    assert response.startswith("HTTP/1.1 400")
    assert "Content-Length" in response


def test_http_keep_alive_reuses_connection(served):
    conn = http.client.HTTPConnection(served.host, served.port, timeout=30)
    try:
        for _ in range(3):
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            assert response.status == 200
            response.read()
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# Offline predict + CLI
# ---------------------------------------------------------------------------


def test_read_rows_file_formats(tmp_path):
    path = tmp_path / "rows.txt"
    path.write_text("# comment\n0101\n1 1 0 0\n0,0,1,1\n\n")
    rows = read_rows_file(path)
    assert rows.tolist() == [[0, 1, 0, 1], [1, 1, 0, 0], [0, 0, 1, 1]]
    path.write_text("01\n011\n")
    with pytest.raises(ValueError):
        read_rows_file(path)
    path.write_text("01x1\n")
    with pytest.raises(ValueError):
        read_rows_file(path)
    path.write_text("# only comments\n")
    with pytest.raises(ValueError):
        read_rows_file(path)


def test_predict_file_golden(tmp_path, run_store_dir, model_store):
    aig = _stored_winner_aig(run_store_dir, model_store, "ex74")
    rows = _random_rows(21, 16, seed=5)
    in_path = tmp_path / "rows.txt"
    out_path = tmp_path / "preds.txt"
    in_path.write_text(
        "\n".join("".join(str(b) for b in r) for r in rows) + "\n"
    )
    n_rows = predict_file(run_store_dir, "ex74", in_path, out_path)
    assert n_rows == 21
    got = np.asarray(
        [[int(b) for b in line] for line in out_path.read_text().split()],
        dtype=np.uint8,
    )
    assert np.array_equal(got, aig.simulate(rows))
    assert format_outputs(got) == out_path.read_text()


def test_predict_cli(tmp_path, run_store_dir):
    from repro.cli import main

    in_path = tmp_path / "rows.txt"
    out_path = tmp_path / "preds.txt"
    in_path.write_text("0" * 16 + "\n" + "1" * 16 + "\n")
    main([
        "predict", "--store", str(run_store_dir), "--model", "ex74",
        "--input", str(in_path), "--output", str(out_path),
    ])
    assert len(out_path.read_text().split()) == 2
    with pytest.raises(SystemExit):
        main([
            "predict", "--store", str(run_store_dir), "--model", "ex99",
            "--input", str(in_path), "--output", str(out_path),
        ])


def test_serve_cli_parser():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["serve", "--store", "runs/x", "--port", "9000", "--tick-ms", "1"]
    )
    assert args.command == "serve"
    assert args.port == 9000 and args.tick_ms == 1.0


# ---------------------------------------------------------------------------
# Run-store solution filenames (serving depends on exact key -> file)
# ---------------------------------------------------------------------------


def test_solution_filename_distinct_for_colliding_keys():
    a = _solution_filename("b000:team_a:s0")
    b = _solution_filename("b000:team:a:s0")
    c = _solution_filename("b000_team_a_s0")
    assert len({a, b, c}) == 3  # sanitization alone would collide
    assert c == "b000_team_a_s0.aag"  # already-safe keys stay readable
    for name in (a, b, c):
        assert name.endswith(".aag")
        assert not set(name) - set(
            "abcdefghijklmnopqrstuvwxyz"
            "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-"
        )


def test_solution_text_round_trip(tmp_path):
    store = RunStore(tmp_path)
    aig = AIG(2)
    aig.set_output(aig.add_and(2, 5))
    aag = dumps_aag(aig)
    store.append(
        {"schema": 1, "key": "b001:f:s0", "benchmark_name": "ex01"}, aag=aag
    )
    assert store.solution_text("b001:f:s0") == aag
    assert store.solution_text("b001:missing:s0") is None


def test_solution_text_reads_legacy_pre_digest_files(tmp_path):
    """Stores written before the digest suffix must keep serving."""
    store = RunStore(tmp_path)
    aig = AIG(2)
    aig.set_output(aig.add_and(2, 4))
    aag = dumps_aag(aig)
    store.append(
        {
            "schema": 1,
            "key": "b002:team01:s0",
            "benchmark_name": "ex02",
            "num_ands": 1,
            "levels": 1,
            "test_accuracy": 1.0,
            "legal": True,
        }
    )
    legacy = store.solutions_dir / "b002_team01_s0.aag"  # old naming
    legacy.parent.mkdir(parents=True, exist_ok=True)
    legacy.write_text(aag, encoding="ascii")
    assert store.solution_path("b002:team01:s0") != legacy
    assert store.solution_text("b002:team01:s0") == aag
    ms = ModelStore(tmp_path)  # and the serving layer sees it too
    assert ms.names() == ["ex02"]


def test_bundle_from_files_explicit_meta(tmp_path):
    aig = AIG(2)
    aig.set_output(aig.add_and(2, 4))
    aag_path = tmp_path / "c.aag"
    aag_path.write_text(dumps_aag(aig), encoding="ascii")
    meta_path = tmp_path / "other_name.json"
    meta_path.write_text(json.dumps({"benchmark_name": "mine", "seed": 3}))
    bundle = CircuitBundle.from_files(aag_path, meta_path)
    circuit = bundle.compile()
    assert circuit.info.name == "mine" and circuit.info.seed == 3
    assert bundle.compile() is circuit  # compiled exactly once
    bundle.drop_compiled()
    assert bundle.compile() is not circuit


# ---------------------------------------------------------------------------
# Error classification (flush failures are 500s, never a caller's 400)
# ---------------------------------------------------------------------------


def test_flush_failure_is_execution_error_for_all_callers(
    model_store, monkeypatch
):
    """An engine fault mid-flush hits every coalesced caller as
    ExecutionError — historically it leaked out as the next await's
    bare exception and the HTTP layer blamed the caller with a 400."""
    import repro.serve.batching as batching_mod

    def boom(compiled, blocks):
        raise RuntimeError("engine exploded")

    monkeypatch.setattr(batching_mod, "simulate_rows_grouped", boom)
    rows = _random_rows(4, 16, seed=1)

    async def drive():
        batcher = MicroBatcher(model_store, tick_s=0.01)
        results = await asyncio.gather(
            *(batcher.predict("ex74", rows[i]) for i in range(4)),
            return_exceptions=True,
        )
        return batcher, results

    batcher, results = asyncio.run(drive())
    assert len(results) == 4
    for result in results:
        assert isinstance(result, ExecutionError)
        assert "engine exploded" in str(result)
    assert batcher.execution_errors == 1  # one batch, one fault
    assert batcher.rows_served == 0


def test_http_flush_failure_is_500_not_400(model_store, monkeypatch):
    import repro.serve.batching as batching_mod

    def boom(compiled, blocks):
        raise RuntimeError("engine exploded")

    monkeypatch.setattr(batching_mod, "simulate_rows_grouped", boom)
    app = ServeApp(model_store, tick_s=0.002)
    with ServerHandle(app) as handle:
        status, body = _request(
            handle, "POST", "/predict/ex74",
            json.dumps({"row": [0] * 16}),
        )
    assert status == 500
    assert "failed" in body["error"]
    assert "0/1" not in body["error"]  # the old misclassification
    # ...while a genuinely malformed request stays a 400: the bad rows
    # never reach the (broken) engine because validation happens at
    # enqueue time, not at flush time.
    app2 = ServeApp(model_store, tick_s=0.002)
    with ServerHandle(app2) as handle:
        status, body = _request(
            handle, "POST", "/predict/ex74",
            json.dumps({"row": [2] * 16}),
        )
    assert status == 400 and "0/1" in body["error"]


# ---------------------------------------------------------------------------
# Backpressure: saturation + deadlines (bounded queues, classified 503s)
# ---------------------------------------------------------------------------


def test_microbatcher_saturation_rejects_at_admission(model_store):
    rows = _random_rows(8, 16, seed=6)

    async def drive():
        batcher = MicroBatcher(
            model_store, tick_s=5.0, max_queued_rows=8
        )
        task = asyncio.ensure_future(batcher.predict("ex74", rows))
        await asyncio.sleep(0)  # let the first request enqueue
        assert batcher.pending_rows("ex74") == 8
        # The queue is exactly at capacity: one more row must bounce.
        with pytest.raises(QueueSaturated) as excinfo:
            await batcher.predict("ex74", rows[:1])
        assert excinfo.value.retry_after_s > 0
        assert batcher.rejected_saturated == 1
        # The admission bound held: never more than max_queued_rows.
        assert batcher.pending_rows("ex74") == 8
        batcher.flush_all()
        out = await task  # the queued request was not stranded
        return batcher, out

    batcher, out = asyncio.run(drive())
    expected = model_store.load("ex74").predict(rows)
    assert np.array_equal(out, expected)
    assert batcher.rows_served == 8


def test_microbatcher_deadline_fires_before_flush(model_store):
    async def drive():
        # Deadline far shorter than the tick: the request must be
        # answered by the deadline timer, not the (distant) flush.
        batcher = MicroBatcher(model_store, tick_s=5.0, deadline_s=0.02)
        with pytest.raises(DeadlineExceeded):
            await batcher.predict("ex74", np.zeros((1, 16), dtype=np.uint8))
        assert batcher.batches == 0  # answered *before* any flush
        assert batcher.rejected_deadline == 1
        assert batcher.pending_rows("ex74") == 0  # budget released
        # The queue stays usable afterwards: flush skips settled
        # futures and a fresh request still gets served.
        batcher.deadline_s = None
        task = asyncio.ensure_future(
            batcher.predict("ex74", np.ones((1, 16), dtype=np.uint8))
        )
        await asyncio.sleep(0)
        batcher.flush_all()
        out = await task
        return batcher, out

    batcher, out = asyncio.run(drive())
    assert out.shape[0] == 1 and batcher.rows_served == 1


def test_http_saturation_returns_503_with_retry_after(model_store):
    app = ServeApp(model_store, tick_s=1.0, max_queued_rows=4)
    rows = _random_rows(4, 16, seed=8)
    with ServerHandle(app) as handle:
        with ThreadPoolExecutor(max_workers=1) as pool:
            # Fill the queue; the long tick parks it server-side.
            first = pool.submit(
                _request, handle, "POST", "/predict/ex74",
                json.dumps({"rows": rows.tolist()}),
            )
            deadline = 1.0
            while app.batcher.pending_rows("ex74") < 4 and deadline > 0:
                import time as _time
                _time.sleep(0.01)
                deadline -= 0.01
            conn = http.client.HTTPConnection(
                handle.host, handle.port, timeout=30
            )
            try:
                conn.request(
                    "POST", "/predict/ex74",
                    body=json.dumps({"row": [0] * 16}),
                )
                response = conn.getresponse()
                body = json.loads(response.read())
                assert response.status == 503
                assert "saturated" in body["error"]
                retry_after = response.getheader("Retry-After")
                assert retry_after is not None and int(retry_after) >= 1
            finally:
                conn.close()
            # The parked request rides out the tick and completes:
            # saturation must shed new load, never strand queued work.
            status, body = first.result(timeout=30)
    assert status == 200
    expected = model_store.load("ex74").predict(rows)
    assert np.array_equal(
        np.asarray(body["outputs"], dtype=np.uint8), expected
    )


def test_http_deadline_returns_503_before_flush(model_store):
    app = ServeApp(model_store, tick_s=5.0, deadline_ms=30)
    with ServerHandle(app) as handle:
        status, body = _request(
            handle, "POST", "/predict/ex74", json.dumps({"row": [1] * 16})
        )
    assert status == 503
    assert "deadline" in body["error"]
    assert app.batcher.batches == 0  # the 503 preceded any flush


def test_metrics_reconcile_with_requests_handled(model_store):
    app = ServeApp(model_store, tick_s=0.002)
    with ServerHandle(app) as handle:
        for _ in range(3):
            assert _request(handle, "GET", "/healthz")[0] == 200
        status, _ = _request(
            handle, "POST", "/predict/ex74", json.dumps({"row": [0] * 16})
        )
        assert status == 200
        status, _ = _request(
            handle, "POST", "/predict/ex74",
            json.dumps({"rows": [[2] * 16]}),  # 400 via enqueue validation
        )
        assert status == 400
        conn = http.client.HTTPConnection(handle.host, handle.port, timeout=30)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type").startswith("text/plain")
            text = response.read().decode("utf-8")
        finally:
            conn.close()
    metrics = parse_metrics_text(text)
    # Every response sent so far is accounted for, by status...
    by_status = {
        key: value for key, value in metrics.items()
        if key.startswith("repro_serve_http_responses_total{")
    }
    assert sum(by_status.values()) == metrics["repro_serve_requests_handled"]
    assert by_status['repro_serve_http_responses_total{status="200"}'] == 4
    assert by_status['repro_serve_http_responses_total{status="400"}'] == 1
    # ...and the serving counters line up with the batcher's view.
    assert metrics["repro_serve_rows_served_total"] == 1
    assert metrics["repro_serve_batches_total"] == app.batcher.batches
    assert metrics["repro_serve_predict_latency_seconds_count"] == 2
    assert metrics['repro_serve_http_requests_total{endpoint="/predict"}'] == 2
    assert metrics["repro_serve_workers"] == 0


def test_metrics_instruments_unit():
    reg = MetricsRegistry(prefix="t")
    counter = reg.counter("hits", "Hits.", label="kind")
    counter.inc(2, label_value="a")
    counter.inc(label_value="b")
    assert counter.total == 3 and counter.value("a") == 2
    with pytest.raises(ValueError):
        counter.inc(-1)
    with pytest.raises(ValueError):
        reg.counter("hits", "duplicate name")
    gauge = reg.gauge("depth", "Depths.", label="q", callback=lambda: {"x": 2})
    hist = reg.histogram("lat", "Latency.", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 0.5, 2.0):
        hist.observe(value)
    assert hist.count == 4 and hist.bucket_counts == [1, 2, 1]
    assert hist.quantile(0.5) == 1.0  # bucket upper-bound estimate
    assert hist.quantile(0.99) == 1.0  # +Inf collapses to last bound
    text = reg.render()
    parsed = parse_metrics_text(text)
    assert parsed['t_hits{kind="a"}'] == 2
    assert parsed['t_depth{q="x"}'] == 2
    assert parsed['t_lat_bucket{le="1.0"}'] == 3  # cumulative
    assert parsed['t_lat_bucket{le="+Inf"}'] == 4
    assert parsed["t_lat_count"] == 4
    assert gauge.samples() == [({"q": "x"}, 2)]


# ---------------------------------------------------------------------------
# Connection header casing (RFC 9110: "Close" must close)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("token", ["close", "Close", "CLOSE"])
def test_http_connection_close_any_casing(served, token):
    import socket

    with socket.create_connection((served.host, served.port), timeout=30) as s:
        s.sendall(
            f"GET /healthz HTTP/1.1\r\nConnection: {token}\r\n\r\n"
            .encode("latin-1")
        )
        chunks = []
        while True:  # server must close — recv drains to EOF
            chunk = s.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    response = b"".join(chunks).decode("latin-1")
    assert response.startswith("HTTP/1.1 200")
    # The server echoed the close decision; "Connection: Close" being
    # treated as keep-alive would hang this test at recv instead.
    assert "connection: close" in response.lower()


# ---------------------------------------------------------------------------
# Store refresh invalidation (a better record must evict the stale plan)
# ---------------------------------------------------------------------------


def _append_record(store, key, name, accuracy, aag):
    store.append(
        {
            "schema": 1,
            "key": key,
            "benchmark": 0,
            "benchmark_name": name,
            "flow": key.split(":")[1],
            "seed": 0,
            "legal": True,
            "test_accuracy": accuracy,
            "num_ands": 1,
            "levels": 1,
        },
        aag=aag,
    )


def test_refresh_evicts_stale_compiled_entry(tmp_path):
    """A refresh that changes a model's winning record must recompile:
    keeping the old plan by name match alone serves a dead circuit."""
    run_store = RunStore(tmp_path)
    and_gate = AIG(2)
    and_gate.set_output(and_gate.add_and(2, 4))
    or_gate = AIG(2)
    or_gate.set_output(or_gate.add_and(3, 5) ^ 1)  # OR via De Morgan
    _append_record(run_store, "b000:flowA:s0", "ex00", 0.6, dumps_aag(and_gate))

    ms = ModelStore(tmp_path)
    rows = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.uint8)
    assert np.array_equal(ms.load("ex00").predict(rows).ravel(), [0, 0, 0, 1])

    # A better solution lands for the same benchmark...
    _append_record(run_store, "b000:flowB:s0", "ex00", 0.9, dumps_aag(or_gate))
    ms.refresh()
    # ...and the stale AND plan is evicted, not served by name match.
    assert ms.stats()["stale_evictions"] == 1
    assert ms.cached_names() == []
    assert np.array_equal(ms.load("ex00").predict(rows).ravel(), [0, 1, 1, 1])

    # A refresh that changes nothing keeps the warm plan.
    ms.refresh()
    assert ms.stats()["stale_evictions"] == 1
    assert ms.cached_names() == ["ex00"]


# ---------------------------------------------------------------------------
# Worker-pool execution tier
# ---------------------------------------------------------------------------


def test_worker_pool_bit_identity(model_store, run_store_dir):
    """A pool worker rebuilds from the AIGER text and returns outputs
    bit-identical to in-process evaluation (same text, same backend)."""
    with WorkerPool(1, sim_backend=model_store.sim_backend) as pool:
        pool.warm_up(timeout=120)
        for name in model_store.names():
            bundle = model_store.bundle(name)
            aig = _stored_winner_aig(run_store_dir, model_store, name)
            rows = _random_rows(37, aig.n_inputs, seed=13)
            got = pool.predict_sync(bundle.digest, bundle.aag_text, rows)
            assert np.array_equal(got, aig.simulate(rows))
        # Same digest again: served from the worker's LRU.
        got = pool.predict_sync(bundle.digest, bundle.aag_text, rows[:5])
        assert np.array_equal(got, aig.simulate(rows[:5]))
        assert pool.stats()["dispatches"] == len(model_store.names()) + 1
    with pytest.raises(ValueError):
        WorkerPool(0)


def test_http_with_workers_bit_identical(model_store, run_store_dir):
    """The full stack — HTTP, coalescing, process dispatch, split —
    must not change one output bit vs AIG.simulate."""
    app = ServeApp(model_store, tick_s=0.002, workers=1)
    with ServerHandle(app) as handle:
        aig = _stored_winner_aig(run_store_dir, model_store, "ex74")
        rows = _random_rows(16, 16, seed=21)
        expected = aig.simulate(rows)

        def one(i):
            return i, _request(
                handle, "POST", "/predict/ex74",
                json.dumps({"row": rows[i].tolist()}),
            )

        with ThreadPoolExecutor(max_workers=8) as tpool:
            for i, (status, body) in tpool.map(one, range(len(rows))):
                assert status == 200
                assert np.array_equal(
                    np.asarray(body["outputs"], dtype=np.uint8)[0],
                    expected[i],
                )
        status, health = _request(handle, "GET", "/healthz")
        assert status == 200
        assert health["pool"]["workers"] == 1
        assert health["pool"]["dispatches"] >= 1
        assert health["batching"]["workers"] == 1
        # Parent process never compiled: validation came off the
        # catalogue, execution happened in the worker.
        assert health["store"]["compiled"] == 0
    # 400s stay classified with the pool on: malformed rows are
    # rejected at enqueue and never reach a worker.
    app2 = ServeApp(model_store, tick_s=0.002, workers=1)
    with ServerHandle(app2) as handle:
        status, body = _request(
            handle, "POST", "/predict/ex74",
            json.dumps({"rows": [[2] * 16]}),
        )
        assert status == 400 and "0/1" in body["error"]


def test_serve_cli_parser_pool_flags():
    from repro.cli import build_parser

    args = build_parser().parse_args(["serve", "--store", "runs/x"])
    assert args.workers == 0
    assert args.max_queued_rows is None and args.deadline_ms is None
    args = build_parser().parse_args([
        "serve", "--store", "runs/x", "--workers", "4",
        "--max-queued-rows", "4096", "--deadline-ms", "50",
    ])
    assert args.workers == 4
    assert args.max_queued_rows == 4096 and args.deadline_ms == 50.0
