"""Edge cases for the accuracy-size tradeoff layers.

Covers ``repro.flows.tradeoff.run_tradeoff`` (the per-benchmark
Pareto-set flow) and the ``accuracy_grid`` sampling path of
``repro.analysis.accuracy_size_tradeoff`` beyond what
``tests/test_analysis.py`` pins.
"""

import math

from repro.analysis import Score, accuracy_size_tradeoff
from repro.flows.tradeoff import run_tradeoff


def _score(acc: float, size: int, benchmark: str = "ex00") -> Score:
    return Score(
        benchmark=benchmark,
        method="t",
        test_accuracy=acc,
        valid_accuracy=acc,
        train_accuracy=1.0,
        num_ands=size,
        levels=4,
        legal=True,
    )


class TestAccuracyGrid:
    def _runs(self):
        return {
            "t": [
                _score(0.6, 10),
                _score(0.8, 100),
                _score(0.95, 1000),
            ]
        }

    def test_empty_grid_returns_no_points(self):
        assert accuracy_size_tradeoff(self._runs(), accuracy_grid=()) == []

    def test_grid_on_empty_scores_is_empty(self):
        assert accuracy_size_tradeoff({}, accuracy_grid=(0.5, 0.9)) == []
        assert accuracy_size_tradeoff({"t": []}, accuracy_grid=(0.5,)) == []

    def test_duplicate_targets_yield_duplicate_points(self):
        points = accuracy_size_tradeoff(
            self._runs(), accuracy_grid=(0.5, 0.5)
        )
        assert len(points) == 2
        assert points[0] == points[1]

    def test_grid_order_is_preserved_not_sorted(self):
        points = accuracy_size_tradeoff(
            self._runs(), accuracy_grid=(0.9, 0.5)
        )
        assert [acc for _, acc in points] == [0.9, 0.5]

    def test_sizes_monotone_in_target(self):
        points = accuracy_size_tradeoff(
            self._runs(), accuracy_grid=(0.5, 0.7, 0.9)
        )
        sizes = [size for size, _ in points if not math.isnan(size)]
        assert sizes == sorted(sizes)

    def test_target_above_best_is_nan_below_worst_is_min(self):
        points = accuracy_size_tradeoff(
            self._runs(), accuracy_grid=(0.0, 1.0)
        )
        easiest, impossible = points[0][0], points[1][0]
        assert not math.isnan(easiest)
        assert math.isnan(impossible)


class TestRunTradeoff:
    def test_frontier_strictly_monotone_and_capped(self, small_problem):
        frontier = run_tradeoff(small_problem, effort="small")
        assert frontier
        sizes = [p.num_ands for p in frontier]
        accs = [p.valid_accuracy for p in frontier]
        assert sizes == sorted(sizes)
        assert all(a < b for a, b in zip(sizes, sizes[1:]))
        assert all(a < b for a, b in zip(accs, accs[1:]))
        assert all(s <= 5000 for s in sizes)

    def test_deterministic_across_calls(self, small_problem):
        one = run_tradeoff(small_problem, effort="small", master_seed=3)
        two = run_tradeoff(small_problem, effort="small", master_seed=3)
        assert [(p.num_ands, p.valid_accuracy) for p in one] == [
            (p.num_ands, p.valid_accuracy) for p in two
        ]

    def test_seed_changes_forest_candidates_but_stays_valid(
        self, small_problem
    ):
        frontier = run_tradeoff(small_problem, effort="small", master_seed=9)
        sizes = [p.num_ands for p in frontier]
        assert sizes == sorted(sizes)
        assert all(0.0 <= p.valid_accuracy <= 1.0 for p in frontier)
