"""Analysis: Table III aggregation, Pareto curve, win rates."""

import pytest

from repro.analysis import (
    accuracy_size_tradeoff,
    format_table3,
    pareto_curve,
    per_benchmark_best,
    size_needed_for_accuracy,
    table3,
    win_rates,
)
from repro.contest.evaluate import Score
from repro.flows.portfolio import virtual_best


def _score(benchmark, method, acc, ands, valid=None, levels=5, legal=True):
    return Score(
        benchmark=benchmark,
        method=method,
        test_accuracy=acc,
        valid_accuracy=acc if valid is None else valid,
        train_accuracy=1.0,
        num_ands=ands,
        levels=levels,
        legal=legal,
    )


@pytest.fixture
def runs():
    return {
        "alpha": [
            _score("ex00", "a", 0.90, 100),
            _score("ex01", "a", 0.80, 200, valid=0.85),
        ],
        "beta": [
            _score("ex00", "b", 0.95, 500),
            _score("ex01", "b", 0.70, 50),
        ],
    }


class TestTable3:
    def test_sorted_by_accuracy(self, runs):
        rows = table3(runs)
        assert rows[0]["team"] == "alpha"
        assert rows[0]["test_accuracy"] == pytest.approx(0.85)
        assert rows[1]["team"] == "beta"

    def test_overfit_column(self, runs):
        rows = table3(runs)
        alpha = next(r for r in rows if r["team"] == "alpha")
        assert alpha["overfit"] == pytest.approx(0.025)

    def test_format_matches_paper_layout(self, runs):
        text = format_table3(table3(runs))
        assert "test acc" in text
        assert "And gates" in text
        assert "alpha" in text


class TestVirtualBestAndWins:
    def test_virtual_best_per_benchmark(self, runs):
        best = virtual_best(runs)
        by_name = {s.benchmark: s for s in best}
        assert by_name["ex00"].test_accuracy == 0.95
        assert by_name["ex01"].test_accuracy == 0.80

    def test_virtual_best_ties_break_by_size(self):
        runs = {
            "a": [_score("ex00", "a", 0.9, 100)],
            "b": [_score("ex00", "b", 0.9, 50)],
        }
        assert virtual_best(runs)[0].num_ands == 50

    def test_per_benchmark_best(self, runs):
        best = per_benchmark_best(runs)
        assert best == {"ex00": 0.95, "ex01": 0.80}

    def test_win_rates(self, runs):
        wins = win_rates(runs)
        assert wins["beta"]["best"] == 1
        assert wins["alpha"]["best"] == 1
        # top-1% includes near ties.
        assert wins["alpha"]["top1pct"] >= wins["alpha"]["best"]

    def test_win_rates_exact_tie_counts_both_best(self):
        runs = {
            "a": [_score("ex00", "a", 0.9, 100)],
            "b": [_score("ex00", "b", 0.9, 50)],
            "c": [_score("ex00", "c", 0.5, 10)],
        }
        wins = win_rates(runs)
        assert wins["a"]["best"] == 1
        assert wins["b"]["best"] == 1
        assert wins["c"]["best"] == 0

    def test_win_rates_tolerance_is_absolute(self):
        # top = 0.90; the default 0.01 margin is one accuracy *point*
        # (absolute), so 0.89 is in and anything below is out.
        runs = {
            "top": [_score("ex00", "t", 0.90, 10)],
            "edge": [_score("ex00", "e", 0.89, 10)],
            "below": [_score("ex00", "b", 0.8899, 10)],
        }
        wins = win_rates(runs)
        assert wins["top"]["top1pct"] == 1
        assert wins["edge"]["top1pct"] == 1
        assert wins["below"]["top1pct"] == 0
        # A wider absolute margin admits the third team too.
        wide = win_rates(runs, top_tolerance=0.02)
        assert wide["below"]["top1pct"] == 1

    def test_win_rates_multi_trial_counts_every_trial(self):
        # Two seed-aligned trials on one benchmark: team a wins the
        # first, team b the second.  Both wins must be counted instead
        # of the last trial silently overwriting the first.
        runs = {
            "a": [_score("ex00", "a", 0.9, 10), _score("ex00", "a", 0.6, 10)],
            "b": [_score("ex00", "b", 0.7, 10), _score("ex00", "b", 0.8, 10)],
        }
        wins = win_rates(runs)
        assert wins["a"]["best"] == 1
        assert wins["b"]["best"] == 1

    def test_win_rates_partial_trials_align_by_seed(self):
        # An interrupted store: team a has seeds 0 and 1, team b only
        # seed 1.  b's lone score must be compared at seed 1 (where it
        # wins), never positionally against a's seed-0 score.
        def seeded(team, acc, seed):
            s = _score("ex00", team, acc, 10)
            s.seed = seed
            return s

        runs = {
            "a": [seeded("a", 0.9, 0), seeded("a", 0.6, 1)],
            "b": [seeded("b", 0.8, 1)],
        }
        wins = win_rates(runs)
        assert wins["a"]["best"] == 1  # seed 0, uncontested
        assert wins["b"]["best"] == 1  # seed 1: 0.8 > 0.6


class TestPareto:
    def test_frontier_monotone(self):
        points = [(100, 0.9), (50, 0.8), (200, 0.95), (150, 0.85)]
        frontier = pareto_curve(points)
        sizes = [p[0] for p in frontier]
        accs = [p[1] for p in frontier]
        assert sizes == sorted(sizes)
        assert accs == sorted(accs)
        assert (150, 0.85) not in frontier  # dominated by (100, 0.9)? no:
        # (100,0.9) has smaller size and higher accuracy -> dominates.

    def test_tradeoff_curve_shape(self, runs):
        frontier = accuracy_size_tradeoff(runs)
        assert len(frontier) >= 1
        sizes = [p[0] for p in frontier]
        assert sizes == sorted(sizes)

    def test_size_needed(self):
        frontier = [(50, 0.8), (100, 0.9), (500, 0.95)]
        assert size_needed_for_accuracy(frontier, 0.9) == 100
        assert size_needed_for_accuracy(frontier, 0.99) != 100

    def test_illegal_solutions_excluded(self):
        runs = {
            "a": [_score("ex00", "a", 1.0, 9999, legal=False)],
            "b": [_score("ex00", "b", 0.7, 10)],
        }
        frontier = accuracy_size_tradeoff(runs)
        assert all(acc <= 0.7 + 1e-9 for _, acc in frontier)

    def test_empty_points_give_empty_frontier(self):
        assert pareto_curve([]) == []
        assert accuracy_size_tradeoff({}) == []
        assert accuracy_size_tradeoff({"a": []}) == []

    def test_all_dominated_collapse_to_one_point(self):
        # (10, 0.9) dominates every other point: smaller and better.
        points = [(10, 0.9), (20, 0.8), (30, 0.7), (40, 0.9)]
        assert pareto_curve(points) == [(10, 0.9)]

    def test_size_needed_edge_cases(self):
        import math

        assert math.isnan(size_needed_for_accuracy([], 0.5))
        frontier = [(50, 0.8), (100, 0.9)]
        # Unreachable accuracy -> NaN, not an arbitrary size.
        assert math.isnan(size_needed_for_accuracy(frontier, 0.95))
        assert size_needed_for_accuracy(frontier, 0.8) == 50

    def test_accuracy_grid_honored(self, runs):
        import math

        points = accuracy_size_tradeoff(runs, accuracy_grid=(0.5, 0.99))
        assert [acc for _, acc in points] == [0.5, 0.99]
        reachable, unreachable = points[0][0], points[1][0]
        assert not math.isnan(reachable)
        assert math.isnan(unreachable)


class TestPerCategory:
    def test_per_category_table(self, runs):
        from repro.analysis import per_category_table

        categories = {"ex00": "adder", "ex01": "comparator"}
        table = per_category_table(runs, categories)
        assert table["alpha"]["adder"] == pytest.approx(0.90)
        assert table["alpha"]["comparator"] == pytest.approx(0.80)
        assert table["beta"]["adder"] == pytest.approx(0.95)

    def test_unknown_category_bucketed(self, runs):
        from repro.analysis import per_category_table

        table = per_category_table(runs, {})
        assert "unknown" in table["alpha"]
