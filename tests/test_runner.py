"""The parallel/resumable runner: determinism, store, resume.

The golden property: a task record is a pure function of its
(benchmark, flow, seed, sizes) spec.  Serial, parallel and resumed
runs must therefore produce byte-identical record lines per task and
identical reconstructed tables.
"""

import json

import numpy as np
import pytest

from repro.aig.aiger import read_aag
from repro.contest.evaluate import Score
from repro.runner import (
    RunStore,
    TaskSpec,
    canonical_line,
    contest_tasks,
    load_contest_run,
    load_contest_runs,
    merge_stores,
    parse_shard,
    run_contest_tasks,
    run_task,
    run_tasks,
    score_from_record,
    score_to_record,
    shard_of,
    shard_tasks,
)
from repro.runner.task import _json_safe, flow_name_for, resolve_flow

# Small but non-degenerate grid: two benchmarks x two flows x two
# seeds.  ex50 is an easy control cone, ex74 is 16-parity (hard for
# trees); team10 is fast, team02 exercises rules + metadata.
GRID = dict(
    benchmarks=[50, 74],
    flow_names=["team10", "team02"],
    n_train=48, n_valid=48, n_test=48,
)


def _grid_specs():
    return contest_tasks(trials=2, **GRID)


def _lines_by_key(store_root):
    lines = {}
    for line in (store_root / "records.jsonl").read_text().splitlines():
        if line:
            lines[json.loads(line)["key"]] = line
    return lines


class TestScoreRoundTrip:
    @pytest.mark.parametrize(
        "acc",
        [0.0, 1.0, 0.1 + 0.2, 1.0 / 3.0, 0.8149999999999998,
         float(np.float64(0.69140625)), 5e-324,
         float(np.nextafter(0.5, 0.0))],
    )
    def test_float_exact(self, acc):
        score = Score(
            benchmark="ex00", method="m", test_accuracy=acc,
            valid_accuracy=acc / 3, train_accuracy=1.0 - acc / 7,
            num_ands=17, levels=4, legal=True,
        )
        record = score_to_record(score)
        # Through the canonical serialization, not just the dict.
        revived = score_from_record(json.loads(canonical_line(record)))
        assert revived == score  # dataclass equality: exact floats

    def test_seed_round_trips_when_set(self):
        score = Score(
            benchmark="ex03", method="m", test_accuracy=0.5,
            valid_accuracy=0.5, train_accuracy=0.5,
            num_ands=1, levels=1, legal=True, seed=7,
        )
        revived = score_from_record(json.loads(
            canonical_line(score_to_record(score))))
        assert revived == score
        assert revived.seed == 7
        # Fresh evaluations carry seed=None and must not emit the key
        # (the task spec's seed owns that slot in full records).
        assert "seed" not in score_to_record(
            Score("ex00", "m", 0.5, 0.5, 0.5, 1, 1, True))

    def test_legal_flag_and_ints(self):
        score = Score(
            benchmark="ex99", method="overweight", test_accuracy=0.75,
            valid_accuracy=0.5, train_accuracy=0.25,
            num_ands=123456, levels=0, legal=False,
        )
        revived = score_from_record(json.loads(
            canonical_line(score_to_record(score))))
        assert revived == score
        assert revived.legal is False
        assert isinstance(revived.num_ands, int)

    def test_canonical_line_is_stable(self):
        record = {"b": 1.5, "a": "x", "c": [1, 2], "key": "k"}
        assert canonical_line(record) == canonical_line(dict(
            reversed(list(record.items()))))

    def test_json_safe_handles_numpy_and_objects(self):
        coerced = _json_safe({
            "f": np.float64(0.5), "i": np.int64(3),
            "arr": np.array([1, 2]), "tup": (1, "a"),
            "obj": object(), "none": None, "flag": np.True_,
        })
        assert coerced["f"] == 0.5 and coerced["i"] == 3
        assert coerced["arr"] == [1, 2] and coerced["tup"] == [1, "a"]
        assert isinstance(coerced["obj"], str)
        assert coerced["none"] is None and coerced["flag"] is True
        json.dumps(coerced)  # everything is serializable


class TestFlowResolution:
    def test_all_flows_names_resolve(self):
        from repro.flows import ALL_FLOWS

        for name, flow in ALL_FLOWS.items():
            assert resolve_flow(name) is flow
            assert flow_name_for(name, flow) == name

    def test_dotted_path_resolves(self):
        from repro.flows import team10

        name = flow_name_for("mine", team10.run)
        assert ":" in name
        assert resolve_flow(name) is team10.run

    def test_unknown_flow_rejected(self):
        with pytest.raises(KeyError):
            resolve_flow("team99")
        with pytest.raises(ValueError):
            flow_name_for("lam", lambda p, **kw: None)


class TestTaskPurity:
    def test_run_task_is_deterministic(self):
        spec = TaskSpec(benchmark=50, flow="team10", seed=1,
                        n_train=48, n_valid=48, n_test=48)
        first = run_task(spec)
        second = run_task(spec)
        assert canonical_line(first.record) == canonical_line(second.record)

    def test_bad_benchmark_index_raises(self):
        spec = TaskSpec(benchmark=100, flow="team10", seed=0,
                        n_train=8, n_valid=8, n_test=8)
        with pytest.raises(IndexError):
            run_task(spec)


class TestGoldenDeterminism:
    """jobs=1 == jobs=4 == resumed, byte for byte."""

    @pytest.fixture(scope="class")
    def stores(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("golden")
        specs = _grid_specs()
        serial = run_contest_tasks(specs, jobs=1, out_dir=root / "serial")
        parallel = run_contest_tasks(specs, jobs=4,
                                     out_dir=root / "parallel")
        # Resumed: first half with jobs=1, then the full grid at jobs=2.
        run_contest_tasks(specs[: len(specs) // 2], jobs=1,
                          out_dir=root / "resumed")
        resumed = run_contest_tasks(specs, jobs=2, out_dir=root / "resumed")
        return root, specs, serial, parallel, resumed

    def test_records_byte_identical(self, stores):
        root, specs, *_ = stores
        serial = _lines_by_key(root / "serial")
        parallel = _lines_by_key(root / "parallel")
        resumed = _lines_by_key(root / "resumed")
        assert set(serial) == {s.key for s in specs}
        assert serial == parallel
        assert serial == resumed

    def test_table3_identical(self, stores):
        _, _, serial, parallel, resumed = stores
        assert serial.table3() == parallel.table3()
        assert serial.table3() == resumed.table3()

    def test_store_reload_matches_in_memory(self, stores):
        root, _, serial, *_ = stores
        loaded = load_contest_run(root / "serial")
        assert loaded.table3() == serial.table3()
        assert loaded.win_rates() == serial.win_rates()

    def test_resume_skips_completed_tasks(self, stores, monkeypatch):
        root, specs, serial, *_ = stores

        def boom(spec, keep_solution=False):
            raise AssertionError(f"re-executed stored task {spec.key}")

        monkeypatch.setattr("repro.runner.runner.run_task", boom)
        again = run_contest_tasks(specs, jobs=1, out_dir=root / "serial")
        assert again.table3() == serial.table3()


class TestShardedDeterminism:
    """4 shards into 4 stores, merged == one unsharded jobs=4 store.

    The sharded grid deliberately mixes historical suite indices with
    generated-family spec strings: shard partitioning, the stores and
    the merge must all be indifferent to how a benchmark is named.
    """

    SHARDS = 4

    @pytest.fixture(scope="class")
    def sharded(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("sharded")
        specs = contest_tasks(
            [50, 74, "parity:inputs=12", "adder:width=4"],
            ["team10", "team02"], 48, 48, 48, trials=2,
        )
        run_contest_tasks(specs, jobs=4, out_dir=root / "unsharded")
        shard_dirs = []
        for k in range(self.SHARDS):
            part = shard_tasks(specs, k, self.SHARDS)
            run_contest_tasks(part, jobs=1, out_dir=root / f"shard{k}")
            shard_dirs.append(root / f"shard{k}")
        return root, specs, shard_dirs

    def test_partition_is_exact_and_deterministic(self, sharded):
        _, specs, _ = sharded
        parts = [shard_tasks(specs, k, self.SHARDS)
                 for k in range(self.SHARDS)]
        seen = [s.key for part in parts for s in part]
        assert sorted(seen) == sorted(s.key for s in specs)
        assert len(seen) == len(set(seen))  # disjoint
        # Stable under grid reordering and recomputation.
        again = shard_tasks(list(reversed(specs)), 0, self.SHARDS)
        assert {s.key for s in again} == {s.key for s in parts[0]}
        for s in specs:
            assert shard_of(s.key, self.SHARDS) == \
                shard_of(s.key, self.SHARDS)

    def test_merged_store_byte_identical_to_unsharded(self, sharded):
        root, specs, shard_dirs = sharded
        merge_stores(shard_dirs, root / "merged")
        merged = _lines_by_key(root / "merged")
        unsharded = _lines_by_key(root / "unsharded")
        assert set(merged) == {s.key for s in specs}
        assert merged == unsharded

    def test_merged_records_file_is_key_sorted(self, sharded):
        root, _, shard_dirs = sharded
        merge_stores(shard_dirs, root / "merged2")
        lines = (root / "merged2" / "records.jsonl").read_text() \
            .splitlines()
        keys = [json.loads(ln)["key"] for ln in lines if ln]
        assert keys == sorted(keys)

    def test_load_contest_runs_matches_unsharded_report(self, sharded):
        root, _, shard_dirs = sharded
        merged = load_contest_runs(shard_dirs)
        unsharded = load_contest_run(root / "unsharded")
        assert merged.table3() == unsharded.table3()
        assert merged.win_rates() == unsharded.win_rates()

    def test_merge_rejects_conflicting_duplicates(self, sharded, tmp_path):
        root, _, shard_dirs = sharded
        first = next(d for d in shard_dirs
                     if RunStore(d).records_path.exists()
                     and RunStore(d).load_records())
        key, record = next(iter(RunStore(first).load_records().items()))
        evil = RunStore(tmp_path / "evil")
        evil.append(dict(record, test_accuracy=0.123456))
        with pytest.raises(ValueError, match="differs"):
            merge_stores([first, evil.root], tmp_path / "out")
        with pytest.raises(ValueError, match="differs"):
            load_contest_runs([first, evil.root])

    def test_merge_config_conflict_rejected(self, tmp_path):
        run_contest_tasks(contest_tasks([74], ["team10"], 32, 32, 32),
                          out_dir=tmp_path / "a")
        run_contest_tasks(contest_tasks([50], ["team10"], 64, 64, 64),
                          out_dir=tmp_path / "b")
        with pytest.raises(ValueError, match="n_train"):
            merge_stores([tmp_path / "a", tmp_path / "b"],
                         tmp_path / "out")

    def test_merge_copies_solutions(self, tmp_path):
        specs = contest_tasks([74], ["team10"], 32, 32, 32)
        run_tasks(specs, store=RunStore(tmp_path / "src"),
                  keep_solutions=True)
        merged = merge_stores([tmp_path / "src"], tmp_path / "dst")
        assert merged.solution_text(specs[0].key) == \
            RunStore(tmp_path / "src").solution_text(specs[0].key)

    def test_parse_shard(self):
        assert parse_shard("0/4") == (0, 4)
        assert parse_shard("3/4") == (3, 4)
        for bad in ("4/4", "-1/4", "1", "a/b", "1/0", "1/"):
            with pytest.raises(ValueError):
                parse_shard(bad)

    def test_shard_1_of_1_is_identity(self):
        specs = _grid_specs()
        assert shard_tasks(specs, 0, 1) == list(specs)


class TestStore:
    def test_manifest_conflict_rejected(self, tmp_path):
        specs = contest_tasks([74], ["team10"], 32, 32, 32)
        run_contest_tasks(specs, out_dir=tmp_path)
        bigger = contest_tasks([74], ["team10"], 64, 64, 64)
        with pytest.raises(ValueError, match="n_train"):
            run_contest_tasks(bigger, out_dir=tmp_path)

    def test_duplicate_records_last_wins(self, tmp_path):
        store = RunStore(tmp_path)
        store.append({"key": "k", "benchmark": 0, "flow": "f", "seed": 0,
                      "benchmark_name": "ex00", "method": "a",
                      "test_accuracy": 0.1, "valid_accuracy": 0.1,
                      "train_accuracy": 0.1, "num_ands": 1, "levels": 1,
                      "legal": True})
        second = dict(store.load_records()["k"], test_accuracy=0.9)
        store.append(second)
        assert store.load_records()["k"]["test_accuracy"] == 0.9

    def test_solutions_written_and_readable(self, tmp_path):
        specs = contest_tasks([74], ["team10"], 32, 32, 32)
        run_tasks(specs, store=RunStore(tmp_path), keep_solutions=True)
        path = RunStore(tmp_path).solution_path(specs[0].key)
        assert path.exists()
        aig = read_aag(path)
        record = RunStore(tmp_path).load_records()[specs[0].key]
        assert aig.num_ands == record["num_ands"]

    def test_manifest_grid_unions_on_extension(self, tmp_path):
        run_contest_tasks(contest_tasks([74], ["team10"], 32, 32, 32),
                          out_dir=tmp_path)
        run_contest_tasks(contest_tasks([50, 74], ["team10", "team02"],
                                        32, 32, 32),
                          out_dir=tmp_path)
        manifest = RunStore(tmp_path).read_manifest()
        assert manifest["benchmarks"] == [50, 74]
        assert manifest["flows"] == ["team02", "team10"]

    def test_schema_mismatch_rejected_on_load(self, tmp_path):
        store = RunStore(tmp_path)
        store.append({"key": "k", "schema": 999})
        with pytest.raises(ValueError, match="schema-999"):
            store.load_records()

    def test_torn_tail_is_recoverable(self, tmp_path):
        """A run killed mid-append must not brick the store."""
        specs = contest_tasks([50, 74], ["team10"], 32, 32, 32)
        run_contest_tasks(specs, out_dir=tmp_path)
        store = RunStore(tmp_path)
        intact = store.load_records()
        # Simulate SIGKILL mid-write: a truncated fragment, no newline.
        with store.records_path.open("a", encoding="utf-8") as fh:
            fh.write('{"key": "b099:team10:s0", "test_acc')
        assert store.load_records() == intact
        # Appending after the tear truncates the fragment (no merge,
        # no interior garbage) and lands the new record cleanly...
        store.append(dict(intact[specs[0].key], key="extra"))
        after = store.load_records()
        assert "extra" in after
        assert set(after) == set(intact) | {"extra"}
        # ...and a resumed contest still sees every completed task.
        again = run_contest_tasks(specs, out_dir=tmp_path)
        assert {s.key for s in specs} <= set(store.load_records())
        assert again.table3()  # reconstructs fine

    def test_mid_file_corruption_still_raises(self, tmp_path):
        store = RunStore(tmp_path)
        store.append({"key": "a", "schema": 1})
        store.records_path.write_text(
            "garbage not json\n" + store.records_path.read_text())
        with pytest.raises(ValueError, match="line 1"):
            store.load_records()

    def test_missing_tasks_reported(self, tmp_path):
        specs = contest_tasks([74], ["team10"], 32, 32, 32)
        run_contest_tasks(specs[:0], out_dir=tmp_path)  # just manifest
        with pytest.raises(FileNotFoundError):
            load_contest_run(tmp_path)
        store = RunStore(tmp_path)
        with pytest.raises(KeyError, match="missing"):
            store.scores_by_team(specs)


class TestRunContestWrapper:
    def test_flows_dict_and_list_agree(self):
        from repro.analysis import run_contest
        from repro.flows import ALL_FLOWS

        by_dict = run_contest([74], {"team10": ALL_FLOWS["team10"]},
                              n_train=32, n_valid=32, n_test=32)
        by_list = run_contest([74], ["team10"],
                              n_train=32, n_valid=32, n_test=32)
        assert by_dict.table3() == by_list.table3()

    def test_trials_add_seeded_scores(self):
        from repro.analysis import run_contest

        run = run_contest([74], ["team10"], n_train=32, n_valid=32,
                          n_test=32, trials=3)
        assert len(run.scores_by_team["team10"]) == 3

    def test_non_importable_callable_still_runs_inline(self):
        from repro.analysis import run_contest
        from repro.flows import ALL_FLOWS

        wrapped = lambda p, **kw: ALL_FLOWS["team10"](p, **kw)  # noqa: E731
        run = run_contest([74], {"mine": wrapped},
                          n_train=32, n_valid=32, n_test=32)
        direct = run_contest([74], ["team10"],
                             n_train=32, n_valid=32, n_test=32)
        assert [s.test_accuracy for s in run.scores_by_team["mine"]] == \
            [s.test_accuracy for s in direct.scores_by_team["team10"]]

    def test_non_importable_callable_rejected_for_parallel_or_store(
            self, tmp_path):
        from repro.analysis import run_contest

        flows = {"lam": lambda p, **kw: None}
        with pytest.raises(ValueError, match="importable"):
            run_contest([74], flows, n_train=8, n_valid=8, n_test=8,
                        jobs=2)
        with pytest.raises(ValueError, match="importable"):
            run_contest([74], flows, n_train=8, n_valid=8, n_test=8,
                        out_dir=tmp_path)


class TestPortfolioParallel:
    def test_parallel_matches_serial(self, small_problem):
        from repro.flows import portfolio

        serial = portfolio.run(small_problem, flows=["team10", "team02"])
        parallel = portfolio.run(small_problem,
                                 flows=["team10", "team02"], jobs=2)
        assert parallel.method == serial.method
        assert parallel.metadata["selected_flow"] == \
            serial.metadata["selected_flow"]
        assert parallel.aig.num_ands == serial.aig.num_ands
