"""Cross-module integration tests: full pipelines end to end."""

import numpy as np
import pytest

from repro.aig import read_aag, write_aag
from repro.aig.cec import check_equivalence
from repro.aig.optimize import compress
from repro.analysis import run_contest, table3, win_rates
from repro.contest import build_suite, evaluate_solution, make_problem
from repro.flows import ALL_FLOWS
from repro.ml.arff import read_arff, write_arff
from repro.ml.dataset import Dataset
from repro.ml.decision_tree import DecisionTree
from repro.synth.from_tree import tree_to_aig
from repro.twolevel.pla import read_pla, write_pla


class TestPlaToAigPipeline:
    """The contest's data path: PLA file -> learner -> AIG file."""

    def test_full_roundtrip(self, tmp_path, small_problem):
        # 1. Distribute the training data as a PLA file.
        train_pla = tmp_path / "train.pla"
        write_pla(small_problem.train.to_pla(), train_pla)
        # 2. A participant reads it, trains, writes an AIG.
        data = Dataset.from_pla(read_pla(train_pla))
        tree = DecisionTree(max_depth=8).fit(data.X, data.y)
        aig = compress(tree_to_aig(tree))
        aig_path = tmp_path / "solution.aag"
        write_aag(aig, aig_path)
        # 3. The organizers read the AIG and score it on hidden data.
        submitted = read_aag(aig_path)
        from repro.contest import Solution

        score = evaluate_solution(
            small_problem, Solution(aig=submitted, method="pipeline")
        )
        assert score.legal
        assert score.test_accuracy > 0.8

    def test_arff_path_matches_pla_path(self, tmp_path, small_problem):
        """Team 2's ARFF detour must not change the data."""
        arff = tmp_path / "train.arff"
        write_arff(small_problem.train, arff)
        via_arff = read_arff(arff)
        assert np.array_equal(via_arff.X, small_problem.train.X)
        assert np.array_equal(via_arff.y, small_problem.train.y)


class TestOptimizationSoundness:
    """compress must be provably safe on real flow outputs."""

    def test_flow_output_equivalence(self, small_problem):
        solution = ALL_FLOWS["team10"](small_problem, effort="small")
        optimized = compress(solution.aig)
        ok, cex = check_equivalence(solution.aig, optimized)
        assert ok, f"optimization broke the circuit at {cex}"


class TestMiniContest:
    @pytest.fixture(scope="class")
    def contest(self):
        flows = {
            name: ALL_FLOWS[name] for name in ("team01", "team07", "team10")
        }
        return run_contest(
            [30, 74], flows, n_train=200, n_valid=200, n_test=200
        )

    def test_scores_complete(self, contest):
        for team, scores in contest.scores_by_team.items():
            assert len(scores) == 2, team
            for s in scores:
                assert 0.0 <= s.test_accuracy <= 1.0
                assert s.legal

    def test_table3_and_winrates_consistent(self, contest):
        rows = table3(contest.scores_by_team)
        assert len(rows) == 3
        wins = win_rates(contest.scores_by_team)
        assert sum(w["best"] for w in wins.values()) >= 2

    def test_matching_teams_ace_parity(self, contest):
        """ex74 is 16-parity: the matching flows must hit 100%."""
        for team in ("team01", "team07"):
            parity_score = next(
                s for s in contest.scores_by_team[team]
                if s.benchmark == "ex74"
            )
            assert parity_score.test_accuracy == 1.0


class TestHardBenchmarksStayHard:
    """The paper's Fig. 3 hard tail must be hard for learners."""

    @pytest.mark.parametrize("idx", [21])  # 8-bit multiplier middle bit
    def test_dt_fails_multiplier_middle(self, idx):
        suite = build_suite()
        problem = make_problem(suite[idx], n_train=400, n_valid=200,
                               n_test=400)
        tree = DecisionTree(max_depth=8).fit(
            problem.train.X, problem.train.y
        )
        acc = float(
            (tree.predict(problem.test.X) == problem.test.y).mean()
        )
        assert acc < 0.8, "multiplier middle bits should resist DTs"
