"""Tests for repro.sched: features, harvesting, policies, scheduling."""

import numpy as np
import pytest

from repro.aig.aiger import dumps_aag, loads_aag
from repro.aig.cec import check_equivalence
from repro.flows import REGISTRY, resolve_spec
from repro.sched import (
    FEATURE_NAMES,
    EpsilonGreedyBandit,
    GreedyPolicy,
    PASS_NAMES,
    default_policy,
    extract_features,
    harvest_circuit,
    load_policy,
    load_tuples,
    save_policy,
    schedule_opt,
    train_policy,
    tuples_to_jsonl,
)
from repro.sched.features import N_FEATURES
from repro.sim import available_backends
from repro.utils.rng import rng_for
from tests.conftest import random_aig


class TestFeatures:
    def test_schema_shape(self):
        aig = random_aig(8, 60, seed=3)
        vec = extract_features(aig)
        assert vec.shape == (N_FEATURES,)
        assert len(FEATURE_NAMES) == N_FEATURES
        assert vec.dtype == np.float64
        assert np.isfinite(vec).all()

    def test_deterministic_across_instances(self):
        a = random_aig(10, 80, seed=7)
        b = loads_aag(dumps_aag(a))
        assert extract_features(a).tobytes() == extract_features(b).tobytes()

    def test_cache_hit_and_invalidation(self):
        aig = random_aig(6, 40, seed=1)
        first = extract_features(aig)
        assert extract_features(aig) is first  # version unchanged: cached
        lits = aig.input_lits()
        aig.add_and(lits[0], lits[1])
        second = extract_features(aig)
        assert second is not first

    def test_backends_agree(self):
        """numpy/fused/numba produce the same feature bytes."""
        text = dumps_aag(random_aig(12, 120, seed=11))
        vectors = {}
        for backend in available_backends():
            # Fresh instance per backend: the per-AIG cache is keyed
            # by structural version only, so reuse would mask drift.
            vectors[backend] = extract_features(
                loads_aag(text), backend=backend
            ).tobytes()
        assert len(set(vectors.values())) == 1, vectors.keys()

    def test_trivial_graphs(self):
        from repro.aig.aig import AIG

        empty = AIG(4)
        empty.set_output(0)  # constant false
        vec = extract_features(empty)
        assert vec.shape == (N_FEATURES,)
        assert np.isfinite(vec).all()


class TestHarvest:
    def test_probes_every_pass_each_step(self):
        aig = random_aig(8, 60, seed=5)
        tuples = harvest_circuit(aig, key="k", horizon=2)
        step0 = [t["pass"] for t in tuples if t["step"] == 0]
        assert step0 == list(PASS_NAMES)
        for t in tuples:
            assert t["key"] == "k"
            assert len(t["features"]) == N_FEATURES
            assert t["size_before"] >= 0 and t["size_after"] >= 0

    def test_jsonl_byte_deterministic(self):
        text = dumps_aag(random_aig(9, 70, seed=13))
        one = tuples_to_jsonl(harvest_circuit(loads_aag(text), "a", 2))
        two = tuples_to_jsonl(harvest_circuit(loads_aag(text), "a", 2))
        assert one == two

    def test_jsonl_round_trip(self, tmp_path):
        tuples = harvest_circuit(random_aig(7, 50, seed=2), "rt", 1)
        path = tmp_path / "t.jsonl"
        path.write_text(tuples_to_jsonl(tuples), encoding="utf-8")
        assert load_tuples(path) == tuples


class TestPolicy:
    def _tuples(self):
        return harvest_circuit(random_aig(8, 60, seed=5), key="t", horizon=2)

    def test_train_save_load_round_trip(self, tmp_path):
        policy = train_policy(self._tuples())
        path = tmp_path / "p.json"
        save_policy(policy, path)
        loaded = load_policy(path)
        phi = extract_features(random_aig(6, 30, seed=9))
        assert policy.predict(phi) == loaded.predict(phi)

    def test_train_rejects_empty(self):
        with pytest.raises(ValueError, match="no usable tuples"):
            train_policy([])

    def test_load_rejects_schema_mismatch(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 99, "passes": {}}', encoding="utf-8")
        with pytest.raises(ValueError, match="retrain"):
            load_policy(path)

    def test_default_policy_ships(self):
        policy = default_policy()
        assert set(policy.weights) == set(PASS_NAMES)

    def test_greedy_exhausted_pool_returns_none(self):
        policy = default_policy()
        phi = extract_features(random_aig(5, 20, seed=4))
        assert policy.choose(phi, exclude=frozenset(PASS_NAMES)) is None

    def test_bandit_requires_rng_when_exploring(self):
        bandit = EpsilonGreedyBandit(epsilon=0.5)
        phi = extract_features(random_aig(5, 20, seed=4))
        with pytest.raises(ValueError, match="seeded rng"):
            bandit.choose(phi, rng=None)

    def test_bandit_updates_move_estimates(self):
        bandit = EpsilonGreedyBandit(epsilon=0.0)
        phi = extract_features(random_aig(5, 20, seed=4))
        before = bandit.predict(phi)["balance"]
        for _ in range(5):
            bandit.update("balance", phi, 1.0)
        assert bandit.predict(phi)["balance"] > before


class TestScheduleOpt:
    def test_never_larger_and_equivalent(self):
        aig = random_aig(10, 150, seed=21)
        cone = aig.extract_cone()
        out, history = schedule_opt(cone, default_policy(), budget=10)
        assert out.num_ands <= cone.num_ands
        assert len(history) <= 10
        assert set(history) <= set(PASS_NAMES)
        ok, cex = check_equivalence(cone, out)
        assert ok, f"scheduling broke equivalence: {cex}"

    def test_zero_budget_is_identity(self):
        cone = random_aig(8, 60, seed=3).extract_cone()
        out, history = schedule_opt(cone, default_policy(), budget=0)
        assert history == []
        assert out.num_ands == cone.num_ands

    def test_negative_budget_raises(self):
        with pytest.raises(ValueError, match="budget"):
            schedule_opt(
                random_aig(4, 10, seed=1), default_policy(), budget=-1
            )

    def test_bandit_schedule_is_seed_deterministic(self):
        text = dumps_aag(random_aig(9, 100, seed=17))

        def run():
            bandit = EpsilonGreedyBandit(
                prior=default_policy(), epsilon=0.3
            )
            return schedule_opt(
                loads_aag(text),
                bandit,
                budget=8,
                rng=rng_for("test-sched", 0),
            )

        out1, hist1 = run()
        out2, hist2 = run()
        assert hist1 == hist2
        assert dumps_aag(out1) == dumps_aag(out2)


class TestLearnedFlows:
    def test_registered(self):
        names = REGISTRY.names()
        assert "learned" in names and "learned-greedy" in names

    def test_unknown_override_suggests(self):
        with pytest.raises(ValueError, match="did you mean budget"):
            resolve_spec("learned:buget=20")

    def test_greedy_flow_runs(self, small_problem):
        flow = resolve_spec("learned-greedy:budget=4")
        result = flow(small_problem, effort="small", master_seed=0)
        assert result.aig.num_ands <= 5000
        detailed = REGISTRY.get("learned-greedy").run_detailed(
            small_problem, effort="small", master_seed=0
        )
        assert detailed.candidates
        for cand in detailed.candidates:
            passes = cand.provenance.get("passes")
            assert passes is not None
            assert set(passes) <= set(PASS_NAMES) | {"approx"}
