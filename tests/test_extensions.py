"""Extensions: popcount side circuit, multi-output, trade-off flow,
suite export and the CLI."""

import numpy as np
import pytest

from repro.contest import build_suite
from repro.contest.export import export_benchmarks
from repro.contest.multioutput import (
    adder_all_bits,
    evaluate_multioutput,
    make_multioutput_problem,
    multiplier_low_bits,
    shared_tree_flow,
)
from repro.flows.tradeoff import run_tradeoff
from repro.ml.metrics import accuracy
from repro.synth.popcount_tree import PopcountTreeClassifier
from repro.twolevel.pla import read_pla


class TestPopcountTree:
    def test_learns_noisy_symmetric(self, rng):
        X = rng.integers(0, 2, size=(2000, 12)).astype(np.uint8)
        y = (X.sum(axis=1) >= 6).astype(np.uint8)
        noise = (rng.random(2000) < 0.05).astype(np.uint8)
        model = PopcountTreeClassifier().fit(X[:1500], y[:1500] ^ noise[:1500])
        acc = accuracy(y[1500:], model.predict(X[1500:]))
        assert acc > 0.9

    def test_aig_matches_model(self, rng):
        X = rng.integers(0, 2, size=(1000, 10)).astype(np.uint8)
        y = ((X.sum(axis=1) % 3) == 0).astype(np.uint8)
        model = PopcountTreeClassifier().fit(X, y)
        aig = model.to_aig()
        assert np.array_equal(aig.simulate(X)[:, 0], model.predict(X))

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            PopcountTreeClassifier().predict(np.zeros((1, 4), np.uint8))


class TestMultiOutput:
    def test_adder_all_bits_problem(self):
        problem = make_multioutput_problem(
            "add4", adder_all_bits(4), n_train=600, n_test=300
        )
        assert problem.n_inputs == 8
        assert problem.n_outputs == 5
        # Ground truth is consistent: recompute one row.
        row = problem.train_X[0]
        a = sum(int(row[i]) << i for i in range(4))
        b = sum(int(row[4 + i]) << i for i in range(4))
        got = sum(int(v) << j for j, v in enumerate(problem.train_Y[0]))
        assert got == a + b

    def test_shared_flow_learns_low_bits(self):
        problem = make_multioutput_problem(
            "mul-low", multiplier_low_bits(4, 3), n_train=2000,
            n_test=500,
        )
        aig = shared_tree_flow(problem, max_depth=8)
        report = evaluate_multioutput(problem, aig)
        # LSB of a product is just a0&b0; low bits are learnable.
        assert report["per_output"][0] == 1.0
        assert report["mean_accuracy"] > 0.8

    def test_sharing_factor_at_least_one(self):
        problem = make_multioutput_problem(
            "add3", adder_all_bits(3), n_train=800, n_test=200
        )
        aig = shared_tree_flow(problem, max_depth=6)
        report = evaluate_multioutput(problem, aig)
        assert report["sharing_factor"] >= 1.0

    def test_output_count_checked(self):
        problem = make_multioutput_problem(
            "add3b", adder_all_bits(3), n_train=300, n_test=100
        )
        from repro.aig.aig import AIG

        wrong = AIG(problem.n_inputs)
        wrong.set_output(0)
        with pytest.raises(ValueError):
            evaluate_multioutput(problem, wrong)


class TestTradeoffFlow:
    def test_frontier_shape(self, small_problem):
        frontier = run_tradeoff(small_problem, effort="small")
        assert len(frontier) >= 2
        sizes = [p.num_ands for p in frontier]
        accs = [p.valid_accuracy for p in frontier]
        assert sizes == sorted(sizes)
        assert accs == sorted(accs)
        assert all(p.num_ands <= 5000 for p in frontier)

    def test_frontier_spans_accuracy(self, small_problem):
        frontier = run_tradeoff(small_problem, effort="small")
        assert frontier[-1].valid_accuracy > 0.8
        assert frontier[-1].valid_accuracy > frontier[0].valid_accuracy


class TestExportAndCLI:
    def test_export_writes_triples(self, tmp_path):
        written = list(
            export_benchmarks(tmp_path, indices=[30], samples=50)
        )
        assert len(written) == 3
        pla = read_pla(tmp_path / "ex30.train.pla")
        X, y = pla.to_samples()
        assert X.shape == (50, 20)
        # Labels match the ground-truth comparator.
        suite = build_suite()
        assert np.array_equal(y, suite[30].label_fn(X))

    def test_cli_list(self, capsys):
        from repro.cli import main

        main(["list"])
        out = capsys.readouterr().out
        assert "ex00" in out and "ex99" in out

    def test_cli_run(self, capsys, tmp_path):
        from repro.cli import main

        out_path = tmp_path / "sol.aag"
        main([
            "run", "--benchmark", "30", "--flow", "team10",
            "--samples", "200", "--out", str(out_path),
        ])
        out = capsys.readouterr().out
        assert "test acc" in out
        assert out_path.exists()

    def test_cli_contest(self, capsys):
        from repro.cli import main

        main([
            "contest", "--benchmarks", "30", "--flows", "team10",
            "--samples", "150",
        ])
        out = capsys.readouterr().out
        assert "team10" in out
        assert "And gates" in out
