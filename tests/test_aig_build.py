"""Unit tests for circuit builders (arithmetic ground truth)."""

import numpy as np
import pytest

from repro.aig.aig import AIG
from repro.aig.build import (
    comparator_greater,
    comparator_less,
    equality,
    from_truth_table,
    lut,
    maj5_tree,
    majority_n,
    multiplier,
    mux_tree_from_table,
    ones_counter,
    parity,
    ripple_adder,
    ripple_subtractor,
    symmetric_function,
)
from repro.utils.bitops import rows_to_ints


def _word_values(X, k):
    return rows_to_ints(X[:, :k]), rows_to_ints(X[:, k:])


@pytest.fixture
def samples(rng):
    def make(n_inputs, n=200):
        return rng.integers(0, 2, size=(n, n_inputs)).astype(np.uint8)

    return make


class TestAdders:
    @pytest.mark.parametrize("k", [1, 3, 8, 16])
    def test_ripple_adder(self, samples, k):
        aig = AIG(2 * k)
        lits = aig.input_lits()
        for bit in ripple_adder(aig, lits[:k], lits[k:]):
            aig.set_output(bit)
        X = samples(2 * k)
        a, b = _word_values(X, k)
        out = aig.simulate(X)
        for row, av, bv in zip(out, a, b, strict=True):
            got = sum(int(v) << i for i, v in enumerate(row))
            assert got == av + bv

    def test_subtractor_borrow_is_a_less_than_b(self, samples):
        k = 6
        aig = AIG(2 * k)
        lits = aig.input_lits()
        _, borrow = ripple_subtractor(aig, lits[:k], lits[k:])
        aig.set_output(borrow)
        X = samples(2 * k)
        a, b = _word_values(X, k)
        out = aig.simulate(X)[:, 0]
        for got, av, bv in zip(out, a, b, strict=True):
            assert got == (1 if av < bv else 0)


class TestComparators:
    def test_greater_and_less(self, samples):
        k = 7
        aig = AIG(2 * k)
        lits = aig.input_lits()
        aig.set_output(comparator_greater(aig, lits[:k], lits[k:]))
        aig.set_output(comparator_less(aig, lits[:k], lits[k:]))
        X = samples(2 * k)
        a, b = _word_values(X, k)
        out = aig.simulate(X)
        for row, av, bv in zip(out, a, b, strict=True):
            assert row[0] == (1 if av > bv else 0)
            assert row[1] == (1 if av < bv else 0)

    def test_equality(self, samples):
        k = 4
        aig = AIG(2 * k)
        lits = aig.input_lits()
        aig.set_output(equality(aig, lits[:k], lits[k:]))
        X = samples(2 * k)
        # Force some equal pairs.
        X[:20, k:] = X[:20, :k]
        a, b = _word_values(X, k)
        out = aig.simulate(X)[:, 0]
        for got, av, bv in zip(out, a, b, strict=True):
            assert got == (1 if av == bv else 0)


class TestMultiplier:
    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_product_bits(self, samples, k):
        aig = AIG(2 * k)
        lits = aig.input_lits()
        for bit in multiplier(aig, lits[:k], lits[k:]):
            aig.set_output(bit)
        X = samples(2 * k, n=100)
        a, b = _word_values(X, k)
        out = aig.simulate(X)
        for row, av, bv in zip(out, a, b, strict=True):
            got = sum(int(v) << i for i, v in enumerate(row))
            assert got == av * bv


class TestCountersAndSymmetric:
    def test_ones_counter(self, samples):
        n = 11
        aig = AIG(n)
        for bit in ones_counter(aig, aig.input_lits()):
            aig.set_output(bit)
        X = samples(n)
        out = aig.simulate(X)
        for row, x in zip(out, X, strict=True):
            got = sum(int(v) << i for i, v in enumerate(row))
            assert got == int(x.sum())

    def test_parity(self, samples):
        aig = AIG(9)
        aig.set_output(parity(aig, aig.input_lits()))
        X = samples(9)
        out = aig.simulate(X)[:, 0]
        assert np.array_equal(out, X.sum(axis=1) % 2)

    @pytest.mark.parametrize(
        "signature", ["0110", "1001", "00111", "010101010"]
    )
    def test_symmetric_function(self, samples, signature):
        n = len(signature) - 1
        aig = AIG(n)
        aig.set_output(
            symmetric_function(aig, aig.input_lits(), signature)
        )
        X = samples(n)
        out = aig.simulate(X)[:, 0]
        for got, x in zip(out, X, strict=True):
            assert got == (1 if signature[int(x.sum())] == "1" else 0)

    def test_symmetric_rejects_bad_signature(self):
        aig = AIG(4)
        with pytest.raises(ValueError):
            symmetric_function(aig, aig.input_lits(), "01")

    @pytest.mark.parametrize("n", [3, 5, 9])
    def test_majority_n(self, samples, n):
        aig = AIG(n)
        aig.set_output(majority_n(aig, aig.input_lits()))
        X = samples(n)
        out = aig.simulate(X)[:, 0]
        want = (X.sum(axis=1) >= (n // 2 + 1)).astype(np.uint8)
        assert np.array_equal(out, want)

    def test_majority_rejects_even(self):
        aig = AIG(4)
        with pytest.raises(ValueError):
            majority_n(aig, aig.input_lits())

    def test_maj5_tree_is_exact_for_five(self, samples):
        aig = AIG(5)
        aig.set_output(maj5_tree(aig, aig.input_lits()))
        X = samples(5)
        want = (X.sum(axis=1) >= 3).astype(np.uint8)
        assert np.array_equal(aig.simulate(X)[:, 0], want)

    def test_maj5_tree_monotone_approximation_for_25(self, samples):
        aig = AIG(25)
        aig.set_output(maj5_tree(aig, aig.input_lits()))
        X = samples(25, n=500)
        got = aig.simulate(X)[:, 0]
        # The tree is an approximation but must agree on extremes and
        # strongly correlate with the true majority overall.
        counts = X.sum(axis=1)
        want = (counts >= 13).astype(np.uint8)
        assert np.array_equal(got[counts >= 20], want[counts >= 20])
        assert np.array_equal(got[counts <= 5], want[counts <= 5])
        assert (got == want).mean() > 0.8


class TestLUTs:
    def test_lut_matches_table(self, rng):
        for _ in range(30):
            k = int(rng.integers(1, 5))
            table = int(rng.integers(0, 1 << (1 << k)))
            aig = AIG(k)
            aig.set_output(lut(aig, table, aig.input_lits()))
            assert aig.truth_tables()[0] == table

    def test_lut_builds_winning_polarity_exactly_once(self, rng):
        # Satellite regression: the seed built the positive cover,
        # rolled it back to price the negative one, and rebuilt the
        # winner — so winning polarities were constructed twice and
        # every call left checkpoint/rollback churn behind.  Now every
        # mutation of the graph must be a kept node: the structural
        # version advances exactly once per appended AND node (plus
        # one for set_output), and no dead garbage is left over.
        # The seed implementation (build-rollback-rebuild) is pinned
        # once, in the reference baseline module.
        from repro.aig.opt.reference import _seed_lut as seed_lut

        for trial in range(40):
            k = int(rng.integers(1, 5))
            table = int(rng.integers(0, 1 << (1 << k)))
            aig = AIG(k)
            version_before = aig._version
            lit = lut(aig, table, aig.input_lits())
            # Returned literal and node count unchanged vs the seed.
            oracle = AIG(k)
            assert lit == seed_lut(oracle, table, oracle.input_lits())
            assert aig.num_ands == oracle.num_ands
            # Each polarity built at most once: no rollbacks, no
            # rebuilds — one version bump per kept node, zero churn.
            assert aig._version - version_before == aig.num_ands
            aig.set_output(lit)
            assert aig.truth_tables()[0] == table & ((1 << (1 << k)) - 1)
            # Nothing dead left behind by the losing polarity.
            assert aig.count_used_ands() == aig.num_ands

    def test_mux_tree_equals_sop(self, rng):
        for _ in range(20):
            k = int(rng.integers(1, 7))
            table = int(rng.integers(0, 2**32)) & ((1 << (1 << k)) - 1)
            sop = from_truth_table(table, k, "sop")
            mux = from_truth_table(table, k, "mux")
            assert sop.truth_tables() == mux.truth_tables()

    def test_from_truth_table_rejects_bad_method(self):
        with pytest.raises(ValueError):
            from_truth_table(1, 2, "nope")

    def test_mux_tree_constant_tables(self):
        aig = AIG(3)
        assert mux_tree_from_table(aig, 0, aig.input_lits()) == 0
        full = (1 << 8) - 1
        assert mux_tree_from_table(aig, full, aig.input_lits()) == 1
