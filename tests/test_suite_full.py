"""Whole-suite smoke coverage: every one of the 100 benchmarks must
sample cleanly and deterministically."""

import numpy as np
import pytest

from repro.contest import build_suite
from repro.utils.rng import rng_for


@pytest.fixture(scope="module")
def suite():
    return build_suite()


@pytest.mark.parametrize("index", range(100))
def test_benchmark_samples(index, suite):
    spec = suite[index]
    rng = rng_for("suite-smoke", index)
    X, y = spec.sample(40, rng)
    assert X.shape == (40, spec.n_inputs)
    assert y.shape == (40,)
    assert X.dtype == np.uint8
    assert set(np.unique(X)) <= {0, 1}
    assert set(np.unique(y)) <= {0, 1}


def test_sampling_deterministic_per_index(suite):
    for index in (0, 25, 55, 85):
        spec = suite[index]
        X1, y1 = spec.sample(30, rng_for("det", index))
        X2, y2 = spec.sample(30, rng_for("det", index))
        assert np.array_equal(X1, X2)
        assert np.array_equal(y1, y2)


def test_deterministic_functions_are_functions(suite):
    """Same inputs -> same labels for the non-generative benchmarks."""
    for index in (3, 13, 23, 33, 43, 53, 63, 73):
        spec = suite[index]
        rng = rng_for("fn", index)
        X, y = spec.sample(25, rng)
        again = spec.label_fn(X)
        assert np.array_equal(y, again), spec.name


def test_category_difficulty_ordering(suite):
    """Wide-word categories expose more inputs than the sample count
    can pin down — the paper's generalization challenge in numbers."""
    widths = {spec.name: spec.n_inputs for spec in suite}
    assert widths["ex09"] == 512   # 256-bit adder: 2^512 input space
    assert widths["ex74"] == 16    # parity: fully coverable
