"""Tests for the levelized simulation engine (repro.sim).

The engine must be bit-exact with the seed per-node simulation loop
(kept as ``reference_simulate_packed_all``); the property test drives
randomized AIGs with varied input counts, complemented and constant
outputs, and sample counts on and off the 64-bit word boundary.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.aig.aig import AIG, CONST0, CONST1, lit_var
from repro.contest.evaluate import evaluate_solution, evaluate_solutions
from repro.contest.problem import Solution
from repro.sim import (
    compile_aig,
    output_predictions,
    reference_simulate_packed_all,
    simulate_circuits,
    simulate_datasets,
)
from repro.utils.bitops import pack_bits, unpack_bits


def build_random_aig(n_inputs, n_nodes, seed, n_outputs=3):
    """Random strashed AIG whose pool includes the constants, so
    outputs can land on const/input/AND literals of either polarity."""
    rnd = random.Random(seed)
    aig = AIG(n_inputs)
    pool = list(aig.input_lits()) + [CONST0, CONST1]
    for _ in range(n_nodes):
        a = rnd.choice(pool) ^ rnd.randint(0, 1)
        b = rnd.choice(pool) ^ rnd.randint(0, 1)
        pool.append(aig.add_and(a, b))
    for _ in range(n_outputs):
        aig.set_output(rnd.choice(pool) ^ rnd.randint(0, 1))
    return aig


def reference_outputs(aig, packed):
    """Output gather on top of the seed loop (the seed simulate_packed)."""
    values = reference_simulate_packed_all(aig, packed)
    ones = np.uint64(0xFFFFFFFFFFFFFFFF)
    out = np.empty((aig.num_outputs, values.shape[1]), dtype=np.uint64)
    for k, lit in enumerate(aig.outputs):
        v = values[lit_var(lit)]
        out[k] = v ^ ones if lit & 1 else v
    return out


class TestEngineBitExact:
    @settings(max_examples=60, deadline=None)
    @given(
        n_inputs=st.integers(min_value=1, max_value=10),
        n_nodes=st.integers(min_value=0, max_value=80),
        seed=st.integers(min_value=0, max_value=10**6),
        n_samples=st.one_of(
            st.integers(min_value=1, max_value=200),
            st.sampled_from([64, 128, 256]),  # exact word multiples
        ),
        n_outputs=st.integers(min_value=0, max_value=4),
    )
    def test_matches_seed_simulator(
        self, n_inputs, n_nodes, seed, n_samples, n_outputs
    ):
        aig = build_random_aig(n_inputs, n_nodes, seed, n_outputs)
        rng = np.random.default_rng(seed)
        X = rng.integers(0, 2, size=(n_samples, n_inputs)).astype(np.uint8)
        packed = pack_bits(X)
        ref_all = reference_simulate_packed_all(aig, packed)
        assert np.array_equal(aig.simulate_packed_all(packed), ref_all)
        ref_out = reference_outputs(aig, packed)
        assert np.array_equal(aig.simulate_packed(packed), ref_out)
        assert np.array_equal(
            aig.simulate(X), unpack_bits(ref_out, n_samples)
        )

    def test_constant_and_passthrough_outputs(self):
        aig = AIG(2)
        aig.set_output(CONST1)
        aig.set_output(CONST0)
        aig.set_output(aig.input_lit(1))
        aig.set_output(aig.input_lit(0) ^ 1)
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=np.uint8)
        expect = np.array(
            [[1, 0, 0, 1], [1, 0, 1, 1], [1, 0, 0, 0], [1, 0, 1, 0]],
            dtype=np.uint8,
        )
        assert np.array_equal(aig.simulate(X), expect)

    def test_no_outputs_and_no_inputs(self):
        aig = AIG(0)
        aig.set_output(CONST1)
        out = aig.simulate(np.zeros((5, 0), dtype=np.uint8))
        assert np.array_equal(out, np.ones((5, 1), dtype=np.uint8))
        empty = AIG(3)
        assert empty.simulate(
            np.zeros((4, 3), dtype=np.uint8)
        ).shape == (4, 0)

    def test_depth_grouping(self):
        aig = AIG(4)
        a = aig.add_and(aig.input_lit(0), aig.input_lit(1))
        b = aig.add_and(aig.input_lit(2), aig.input_lit(3))
        c = aig.add_and(a, b ^ 1)
        aig.set_output(c)
        compiled = compile_aig(aig)
        assert compiled.depth == 2
        assert compiled.level_widths == [2, 1]

    def test_wrong_input_rows_raises(self):
        aig = build_random_aig(4, 10, 0)
        with pytest.raises(ValueError):
            aig.simulate_packed_all(np.zeros((3, 1), dtype=np.uint64))


class TestCompileCache:
    def test_cache_invalidated_by_mutation_and_rollback(self):
        aig = AIG(2)
        aig.set_output(aig.add_and(aig.input_lit(0), aig.input_lit(1)))
        X = np.array([[1, 1], [1, 0]], dtype=np.uint8)
        first = aig.compiled()
        assert aig.compiled() is first  # cached while unchanged
        state = aig.checkpoint()
        aig.set_output(aig.add_and(aig.input_lit(0), aig.input_lit(1) ^ 1))
        assert aig.compiled() is not first
        assert np.array_equal(
            aig.simulate(X), np.array([[1, 0], [0, 1]], dtype=np.uint8)
        )
        aig.rollback(state)
        assert np.array_equal(
            aig.simulate(X), np.array([[1], [0]], dtype=np.uint8)
        )

    def test_cache_tracks_inplace_output_rewiring(self):
        # `outputs` is a public list; complementing an entry in place
        # must not serve stale cached simulation results.
        aig = AIG(1)
        aig.set_output(aig.input_lit(0))
        X = np.array([[0], [1]], dtype=np.uint8)
        assert np.array_equal(aig.simulate(X)[:, 0], [0, 1])
        aig.outputs[0] ^= 1
        assert np.array_equal(aig.simulate(X)[:, 0], [1, 0])


class TestBatch:
    def test_simulate_datasets_matches_individual(self):
        aig = build_random_aig(6, 40, 7)
        rng = np.random.default_rng(7)
        mats = [
            rng.integers(0, 2, size=(n, 6)).astype(np.uint8)
            for n in (5, 64, 130)
        ]
        batched = simulate_datasets(aig, mats)
        assert len(batched) == 3
        for m, out in zip(mats, batched, strict=True):
            assert np.array_equal(out, aig.simulate(m))
        assert simulate_datasets(aig, []) == []

    def test_simulate_circuits_matches_individual(self):
        rng = np.random.default_rng(11)
        X = rng.integers(0, 2, size=(100, 5)).astype(np.uint8)
        aigs = [build_random_aig(5, n, seed=n, n_outputs=1)
                for n in (0, 10, 50)]
        batched = simulate_circuits(aigs, X)
        for aig, out in zip(aigs, batched, strict=True):
            assert np.array_equal(out, aig.simulate(X))
        preds = output_predictions(aigs, X)
        for aig, p in zip(aigs, preds, strict=True):
            assert np.array_equal(p, aig.simulate(X)[:, 0])
        assert simulate_circuits([], X) == []


class TestTruthTables:
    @settings(max_examples=30, deadline=None)
    @given(
        n_inputs=st.integers(min_value=1, max_value=6),
        n_nodes=st.integers(min_value=0, max_value=40),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_matches_per_bit_loop(self, n_inputs, n_nodes, seed):
        aig = build_random_aig(n_inputs, n_nodes, seed, n_outputs=2)
        values = aig.simulate(
            np.array(
                [
                    [(m >> i) & 1 for i in range(n_inputs)]
                    for m in range(1 << n_inputs)
                ],
                dtype=np.uint8,
            )
        )
        expected = []
        for k in range(aig.num_outputs):
            table = 0
            for m in np.nonzero(values[:, k])[0]:
                table |= 1 << int(m)
            expected.append(table)
        assert aig.truth_tables() == expected


class TestEvaluateSolutions:
    def test_matches_single_evaluation(self, small_problem):
        solutions = [
            Solution(aig=build_random_aig(
                small_problem.n_inputs, n, seed=n, n_outputs=1
            ), method=f"rand{n}")
            for n in (0, 20, 100)
        ]
        batched = evaluate_solutions(small_problem, solutions)
        singles = [evaluate_solution(small_problem, s) for s in solutions]
        assert batched == singles
        assert evaluate_solutions(small_problem, []) == []
