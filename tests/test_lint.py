"""The determinism lint engine: rules, suppressions, CLI, ratchets.

Each rule has a fixture under ``tests/lint_fixtures/`` holding exactly
one violation; the firing tests pin both that the rule catches it and
that no *other* rule cross-fires on the same file.  The clean-tree
test is the same gate CI enforces (``repro lint src/repro
benchmarks``), run in-process.  The pyproject test pins the mypy
grandfather list so the typecheck ratchet can only move down.
"""

import json
import re
from pathlib import Path

import pytest

from repro.devtools.lint import (
    ALL_RULES,
    LintConfig,
    lint_paths,
    lint_source,
    main,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

#: rule id -> (fixture file, config override or None)
NO_PATH_SKIPS = LintConfig(rule_path_skips={})
#: REP501 is confined to src/repro by default; its fixture lints
#: under a config with the confinement removed.
NO_PATH_ONLY = LintConfig(rule_path_only={})
FIRING_FIXTURES = {
    "REP101": ("rep101_rng_global.py", None),
    "REP102": ("rep102_rng_unseeded.py", None),
    "REP201": ("rep201_json_sort_keys.py", None),
    "REP202": ("rep202_set_iteration.py", None),
    "REP301": ("rep301_wallclock_worker.py", None),
    "REP302": ("rep302_env_worker.py", None),
    "REP303": ("rep303_global_mutation.py", None),
    "REP401": ("rep401_mutable_default.py", None),
    "REP402": ("rep402_bare_except.py", None),
    # REP403 skips tests/ by default (pytest asserts are fine); the
    # fixture lints under a config with the path skip removed.
    "REP403": ("rep403_runtime_assert.py", NO_PATH_SKIPS),
    "REP501": ("rep501_module_docstring.py", NO_PATH_ONLY),
}


class TestRuleRegistry:
    def test_every_rule_has_a_firing_fixture(self):
        assert {r.rule_id for r in ALL_RULES} == set(FIRING_FIXTURES)

    def test_rule_count_and_metadata(self):
        assert len(ALL_RULES) >= 8
        for rule in ALL_RULES:
            assert re.fullmatch(r"REP\d{3}", rule.rule_id)
            assert rule.name and rule.description


class TestRulesFire:
    @pytest.mark.parametrize("rule_id", sorted(FIRING_FIXTURES))
    def test_fixture_fires_exactly_its_rule(self, rule_id):
        filename, config = FIRING_FIXTURES[rule_id]
        path = FIXTURES / filename
        violations = lint_source(path.read_text(), str(path), config)
        assert len(violations) == 1, violations
        assert violations[0].rule_id == rule_id
        assert violations[0].path == str(path)
        assert violations[0].line > 0

    def test_clean_fixture_is_clean(self):
        path = FIXTURES / "clean.py"
        assert lint_source(path.read_text(), str(path)) == []


class TestSuppression:
    def test_suppressed_fixture_round_trip(self):
        path = FIXTURES / "suppressed.py"
        source = path.read_text()
        assert lint_source(source, str(path)) == []
        unsuppressed = source.replace("  # repro-lint: ignore[REP201]", "")
        assert unsuppressed != source
        violations = lint_source(unsuppressed, str(path))
        assert [v.rule_id for v in violations] == ["REP201"]

    def test_multi_rule_suppression(self):
        source = (
            '"""Example."""\n'
            "import json\n"
            "\n"
            "\n"
            "def f(payload, flag):\n"
            "    assert flag\n"
            "    return json.dumps(payload)\n"
        )
        path = "src/repro/example.py"
        fired = {v.rule_id for v in lint_source(source, path)}
        assert fired == {"REP201", "REP403"}
        silenced = source.replace(
            "    assert flag",
            "    assert flag  # repro-lint: ignore[REP403]",
        ).replace(
            "    return json.dumps(payload)",
            "    return json.dumps(payload)"
            "  # repro-lint: ignore[REP201,REP403]",
        )
        assert lint_source(silenced, path) == []

    def test_suppression_is_per_rule(self):
        source = (
            '"""Example."""\n'
            "import json\n"
            "\n"
            "payload = json.dumps({})  # repro-lint: ignore[REP402]\n"
        )
        violations = lint_source(source, "src/repro/example.py")
        assert [v.rule_id for v in violations] == ["REP201"]


class TestCleanTree:
    def test_src_and_benchmarks_are_lint_clean(self):
        violations, n_files = lint_paths(
            [str(REPO_ROOT / "src" / "repro"), str(REPO_ROOT / "benchmarks")]
        )
        assert violations == [], "\n".join(v.as_text() for v in violations)
        assert n_files > 100


class TestCli:
    def test_json_format_is_machine_parseable(self, capsys):
        path = FIXTURES / "rep201_json_sort_keys.py"
        code = main(["--format", "json", str(path)])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["checked_files"] == 1
        assert payload["violation_count"] == 1
        (violation,) = payload["violations"]
        assert violation["rule"] == "REP201"
        assert violation["path"] == str(path)
        assert set(violation) == {"path", "line", "col", "rule", "message"}

    def test_clean_file_exits_zero(self, capsys):
        assert main([str(FIXTURES / "clean.py")]) == 0
        out = capsys.readouterr().out
        assert "0 violations" in out

    def test_missing_path_exits_two(self, capsys):
        assert main([str(FIXTURES / "does_not_exist.py")]) == 2

    def test_list_rules_covers_all(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.rule_id in out


class TestMypyRatchet:
    """The grandfather list may only ever shrink.

    ``pyproject.toml`` promises "never add to it"; this pins the
    promise.  tomllib is not available on every supported Python, so
    the list is extracted textually.
    """

    #: The grandfathered modules as of this test's introduction.  If
    #: you cleaned one up, delete it here too.  Never add an entry:
    #: new code is born type-checked.
    ALLOWED = frozenset({
        "repro.aig.*",
        "repro.analysis",
        "repro.bdd.*",
        "repro.cgp.*",
        "repro.cli",
        "repro.flows.*",
        "repro.ml.*",
        "repro.synth.*",
        "repro.twolevel.*",
    })

    #: Burned down and permanently out of the grandfather list.
    BURNED_DOWN = frozenset({
        "repro.utils.*",
        "repro.sim.*",
        "repro.runner.*",
        "repro.contest.*",
        "repro.serve.*",
        "repro.devtools.*",
    })

    def _grandfathered(self):
        text = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
        match = re.search(
            r"\[\[tool\.mypy\.overrides\]\]\s*\nmodule = \[(?P<body>[^]]*)\]",
            text,
        )
        assert match is not None, "mypy overrides block not found"
        return frozenset(re.findall(r'"([^"]+)"', match.group("body")))

    def test_grandfather_list_never_grows(self):
        current = self._grandfathered()
        added = current - self.ALLOWED
        assert not added, (
            f"new modules grandfathered into the mypy override: "
            f"{sorted(added)} — the ratchet only turns one way; "
            f"annotate the new code instead"
        )

    def test_burned_down_packages_stay_out(self):
        current = self._grandfathered()
        regressed = current & self.BURNED_DOWN
        assert not regressed, (
            f"{sorted(regressed)} were cleaned up and must stay "
            f"type-checked"
        )
