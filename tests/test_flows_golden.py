"""Golden equivalence: the Flow API ports == the pre-redesign run().

``tests/golden/flows_golden.json`` was captured from the module-level
``run()`` implementations *before* the registry/Stage redesign (see
``tests/golden/gen_flows_golden.py``).  Every registered flow — and
the portfolio composite — must still produce a byte-identical Solution
(method string, metadata, used-node count, AIGER bytes) for the same
fixed (problem, seed).  This is the contract that makes the redesign a
refactor instead of a behaviour change.
"""

import hashlib
import json
from pathlib import Path

import pytest

from repro.aig.aiger import dumps_aag
from repro.contest import build_suite, make_problem
from repro.flows import get_flow
from repro.runner.task import _json_safe

GOLDEN_PATH = Path(__file__).parent / "golden" / "flows_golden.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))

_problems = {}


def _problem(benchmark: int):
    if benchmark not in _problems:
        suite = build_suite()
        _problems[benchmark] = make_problem(
            suite[benchmark],
            n_train=GOLDEN["n_samples"],
            n_valid=GOLDEN["n_samples"],
            n_test=GOLDEN["n_samples"],
            master_seed=GOLDEN["master_seed"],
        )
    return _problems[benchmark]


@pytest.mark.parametrize("case_id", sorted(GOLDEN["cases"]))
def test_flow_matches_pre_redesign_golden(case_id):
    entry = GOLDEN["cases"][case_id]
    flow = get_flow(entry["flow"])
    kwargs = {}
    if "members" in entry:
        kwargs["flows"] = entry["members"]
    solution = flow.run(
        _problem(entry["benchmark"]), effort="small",
        master_seed=GOLDEN["master_seed"], **kwargs,
    )
    assert solution.method == entry["method"], case_id
    assert (
        json.dumps(_json_safe(solution.metadata), sort_keys=True)
        == json.dumps(entry["metadata"], sort_keys=True)
    ), case_id
    assert solution.aig.count_used_ands() == entry["num_ands"], case_id
    aag = dumps_aag(solution.aig.extract_cone())
    digest = hashlib.sha256(aag.encode("utf-8")).hexdigest()
    assert digest == entry["aag_sha256"], case_id


def test_golden_covers_every_team_flow():
    """The pin must not silently lose coverage of a flow."""
    covered = {e["flow"] for e in GOLDEN["cases"].values()}
    expected = {f"team{i:02d}" for i in range(1, 11)} | {"portfolio"}
    assert covered == expected
