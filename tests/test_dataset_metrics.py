"""Dataset plumbing and evaluation metrics."""

import numpy as np
import pytest

from repro.ml.dataset import Dataset
from repro.ml.metrics import accuracy, cross_val_accuracy, stratified_kfold


class TestDataset:
    def _make(self, rng, n=100, d=6, frac=0.3):
        X = rng.integers(0, 2, size=(n, d)).astype(np.uint8)
        y = (rng.random(n) < frac).astype(np.uint8)
        return Dataset(X, y)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(4))

    def test_merge(self, rng):
        a = self._make(rng, n=30)
        b = self._make(rng, n=20)
        merged = a.merge(b)
        assert merged.n_samples == 50
        assert np.array_equal(merged.X[:30], a.X)

    def test_merge_rejects_width_mismatch(self, rng):
        a = self._make(rng, d=4)
        b = self._make(rng, d=5)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_stratified_split_preserves_ratio(self, rng):
        data = self._make(rng, n=1000, frac=0.25)
        first, second = data.split_stratified(0.8, rng)
        assert abs(first.onset_fraction() - data.onset_fraction()) < 0.02
        assert abs(second.onset_fraction() - data.onset_fraction()) < 0.05
        assert first.n_samples + second.n_samples == data.n_samples

    def test_split_is_a_partition(self, rng):
        data = self._make(rng, n=200)
        first, second = data.split_stratified(0.5, rng)
        all_rows = {tuple(r) + (int(lb),) for r, lb in zip(data.X, data.y, strict=True)}
        got = {tuple(r) + (int(lb),) for r, lb in zip(first.X, first.y, strict=True)}
        got |= {tuple(r) + (int(lb),) for r, lb in zip(second.X, second.y, strict=True)}
        assert got <= all_rows  # duplicates collapse, none invented

    def test_pla_roundtrip(self, rng):
        data = self._make(rng, n=40)
        back = Dataset.from_pla(data.to_pla())
        assert np.array_equal(back.X, data.X)
        assert np.array_equal(back.y, data.y)

    def test_select_columns(self, rng):
        data = self._make(rng)
        sub = data.select_columns([0, 2])
        assert sub.n_inputs == 2
        assert np.array_equal(sub.X[:, 1], data.X[:, 2])


class TestMetrics:
    def test_accuracy_basics(self):
        assert accuracy([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)
        assert accuracy([], []) == 0.0

    def test_accuracy_shape_check(self):
        with pytest.raises(ValueError):
            accuracy([1, 0], [1])

    def test_stratified_kfold_partitions(self, rng):
        y = (rng.random(101) < 0.3).astype(np.uint8)
        seen = []
        for train_idx, test_idx in stratified_kfold(y, 5, rng):
            assert set(train_idx) & set(test_idx) == set()
            seen.extend(test_idx.tolist())
        assert sorted(seen) == list(range(101))

    def test_stratified_kfold_balance(self, rng):
        y = np.array([0] * 80 + [1] * 20, dtype=np.uint8)
        for _, test_idx in stratified_kfold(y, 4, rng):
            frac = y[test_idx].mean()
            assert 0.1 <= frac <= 0.3

    def test_cross_val_perfect_learner(self, rng):
        X = rng.integers(0, 2, size=(200, 4)).astype(np.uint8)
        y = X[:, 1]

        def fit_predict(Xa, ya, Xb):
            del Xa, ya
            return Xb[:, 1]

        assert cross_val_accuracy(fit_predict, X, y, 5, rng) == 1.0
