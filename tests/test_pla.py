"""PLA file reading and writing."""

import numpy as np
import pytest

from repro.twolevel.cover import Cover
from repro.twolevel.cube import Cube
from repro.twolevel.pla import PLA, read_pla, write_pla


class TestSamplesRoundTrip:
    def test_roundtrip(self, rng, tmp_path):
        X = rng.integers(0, 2, size=(60, 14)).astype(np.uint8)
        y = rng.integers(0, 2, size=60).astype(np.uint8)
        path = tmp_path / "f.pla"
        write_pla(PLA.from_samples(X, y), path)
        X2, y2 = read_pla(path).to_samples()
        assert np.array_equal(X, X2)
        assert np.array_equal(y, y2)

    def test_labels_preserved(self, tmp_path):
        pla = PLA(2, 1, input_labels=["a", "b"], output_labels=["f"])
        pla.add_row(Cube.from_string("01"), "1")
        path = tmp_path / "lab.pla"
        write_pla(pla, path)
        back = read_pla(path)
        assert back.input_labels == ["a", "b"]
        assert back.output_labels == ["f"]


class TestParsing:
    def test_dont_care_rows(self, tmp_path):
        path = tmp_path / "dc.pla"
        path.write_text(
            ".i 3\n.o 1\n.p 2\n1-0 1\n-11 0\n.e\n", encoding="ascii"
        )
        pla = read_pla(path)
        assert len(pla.rows) == 2
        assert pla.rows[0][0].to_string(3) == "1-0"
        assert pla.rows[0][1] == "1"

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "c.pla"
        path.write_text(
            "# header comment\n.i 2\n.o 1\n\n11 1  # inline\n.e\n",
            encoding="ascii",
        )
        pla = read_pla(path)
        assert len(pla.rows) == 1

    def test_missing_i_directive(self, tmp_path):
        path = tmp_path / "bad.pla"
        path.write_text("11 1\n.e\n", encoding="ascii")
        with pytest.raises(ValueError):
            read_pla(path)

    def test_onset_cover(self):
        pla = PLA(3, 1)
        pla.add_row(Cube.from_string("1--"), "1")
        pla.add_row(Cube.from_string("-0-"), "0")
        cover = pla.onset_cover()
        assert len(cover) == 1

    def test_to_samples_rejects_cube_rows(self):
        pla = PLA(3, 1)
        pla.add_row(Cube.from_string("1--"), "1")
        with pytest.raises(ValueError):
            pla.to_samples()

    def test_from_cover(self):
        cover = Cover(3, [Cube.from_string("0-1")])
        pla = PLA.from_cover(cover)
        assert pla.rows[0][1] == "1"

    def test_output_mismatch_rejected(self):
        pla = PLA(2, 2)
        with pytest.raises(ValueError):
            pla.add_row(Cube.from_string("10"), "1")
